#![allow(clippy::needless_range_loop)]

//! End-to-end tests of the ring protocol: puts, gets, atomics, acks and
//! forwarding across 2–6 hosts, using a plain byte-array delivery target
//! in place of the OpenSHMEM heap.

use std::sync::Arc;

use ntb_net::{AmoOp, DeliveryTarget, NetConfig, RingNetwork, RouteDirection};
use ntb_sim::{Region, Result, TransferMode};
use parking_lot::Mutex;

/// A flat 1 MiB symmetric space backed by a region, with a lock that
/// serializes atomics (what the SHMEM heap provides in the real stack).
struct TestHeap {
    region: Region,
    amo_lock: Mutex<()>,
}

impl TestHeap {
    fn new() -> Arc<Self> {
        Arc::new(TestHeap { region: Region::anonymous(1 << 20), amo_lock: Mutex::new(()) })
    }
}

impl DeliveryTarget for TestHeap {
    fn deliver_put(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.region.write(offset, data)
    }

    fn read_for_get(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        self.region.read(offset, out)
    }

    fn deliver_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> Result<u64> {
        let _guard = self.amo_lock.lock();
        let mut buf = [0u8; 8];
        self.region.read(offset, &mut buf[..width])?;
        let old = u64::from_le_bytes(buf);
        let new = op.apply(old, operand, compare);
        self.region.write(offset, &new.to_le_bytes()[..width])?;
        Ok(old)
    }
}

fn build(hosts: usize) -> (RingNetwork, Vec<Arc<TestHeap>>) {
    let net = RingNetwork::build(NetConfig::fast(hosts)).unwrap();
    let heaps: Vec<Arc<TestHeap>> = (0..hosts).map(|_| TestHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
    }
    (net, heaps)
}

fn assert_no_errors(net: &RingNetwork) {
    for node in net.nodes() {
        let errs = node.take_errors();
        assert!(errs.is_empty(), "host {} errors: {errs:?}", node.host_id());
    }
}

#[test]
fn put_to_neighbor_delivers_and_acks() {
    let (net, heaps) = build(3);
    let payload = vec![0xAB_u8; 4096];
    net.node(0).put_bytes(1, 128, &payload, TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("quiet");
    assert_eq!(heaps[1].region.read_vec(128, 4096).unwrap(), payload);
    assert_eq!(net.node(0).outstanding_puts(), 0);
    assert_eq!(net.node(1).stats().puts_delivered.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_no_errors(&net);
}

#[test]
fn put_two_hops_forwards_through_bypass() {
    let (net, heaps) = build(4);
    let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    // 0 -> 2 is two hops on a 4-ring.
    net.node(0).put_bytes(2, 0, &payload, TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("quiet");
    assert_eq!(heaps[2].region.read_vec(0, 8192).unwrap(), payload);
    // Exactly one intermediate host forwarded (host 1, the rightward path).
    let fwd1 = net.node(1).stats().forwards.load(std::sync::atomic::Ordering::Relaxed);
    assert!(fwd1 >= 1, "host 1 should have forwarded");
    assert_no_errors(&net);
}

#[test]
fn put_chunking_spans_buffer_size() {
    let cfg = NetConfig::fast(3).with_buffers(4096, 4096).with_get_chunk(1024);
    let net = RingNetwork::build(cfg).unwrap();
    let heaps: Vec<Arc<TestHeap>> = (0..3).map(|_| TestHeap::new()).collect();
    for (i, h) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(h) as Arc<dyn DeliveryTarget>);
    }
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
    net.node(0).put_bytes(1, 64, &payload, TransferMode::Memcpy).unwrap();
    net.node(0).quiet().expect("quiet");
    assert_eq!(heaps[1].region.read_vec(64, 20_000).unwrap(), payload);
    // ceil(20000/4096) = 5 chunks delivered.
    assert_eq!(net.node(1).stats().puts_delivered.load(std::sync::atomic::Ordering::Relaxed), 5);
    assert_no_errors(&net);
}

#[test]
fn get_from_neighbor() {
    let (net, heaps) = build(3);
    heaps[2].region.write(500, b"get me back").unwrap();
    let data = net.node(0).get_bytes(2, 500, 11, TransferMode::Dma).unwrap();
    assert_eq!(data, b"get me back");
    assert_no_errors(&net);
}

#[test]
fn get_two_hops_round_trip() {
    let (net, heaps) = build(5);
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 239) as u8).collect();
    heaps[2].region.write(0, &payload).unwrap();
    // 0 -> 2 request travels 2 hops; response returns 2 hops, chunked.
    let data = net.node(0).get_bytes(2, 0, payload.len() as u64, TransferMode::Dma).unwrap();
    assert_eq!(data, payload);
    assert_no_errors(&net);
}

#[test]
fn get_memcpy_mode_round_trip() {
    let (net, heaps) = build(3);
    heaps[1].region.write(0, &[7u8; 3000]).unwrap();
    let data = net.node(2).get_bytes(1, 0, 3000, TransferMode::Memcpy).unwrap();
    assert_eq!(data, vec![7u8; 3000]);
    assert_no_errors(&net);
}

#[test]
fn zero_length_put_and_get() {
    let (net, _heaps) = build(3);
    net.node(0).put_bytes(1, 0, &[], TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("quiet");
    let data = net.node(0).get_bytes(1, 0, 0, TransferMode::Dma).unwrap();
    assert!(data.is_empty());
    assert_no_errors(&net);
}

#[test]
fn bidirectional_traffic() {
    let (net, heaps) = build(3);
    let a = vec![1u8; 10_000];
    let b = vec![2u8; 10_000];
    let n0 = Arc::clone(net.node(0));
    let n1 = Arc::clone(net.node(1));
    let a2 = a.clone();
    let b2 = b.clone();
    let h0 = std::thread::spawn(move || {
        n0.put_bytes(1, 0, &a2, TransferMode::Dma).unwrap();
        n0.quiet().expect("quiet");
    });
    let h1 = std::thread::spawn(move || {
        n1.put_bytes(0, 0, &b2, TransferMode::Dma).unwrap();
        n1.quiet().expect("quiet");
    });
    h0.join().unwrap();
    h1.join().unwrap();
    assert_eq!(heaps[1].region.read_vec(0, 10_000).unwrap(), a);
    assert_eq!(heaps[0].region.read_vec(0, 10_000).unwrap(), b);
    assert_no_errors(&net);
}

#[test]
fn all_pairs_put_get_on_six_ring() {
    let (net, heaps) = build(6);
    for src in 0..6usize {
        for dst in 0..6usize {
            if src == dst {
                continue;
            }
            let payload = vec![(src * 16 + dst) as u8; 777];
            let off = (src * 6 + dst) as u64 * 1024;
            net.node(src).put_bytes(dst, off, &payload, TransferMode::Dma).unwrap();
            net.node(src).quiet().expect("quiet");
            assert_eq!(heaps[dst].region.read_vec(off, 777).unwrap(), payload, "{src}->{dst}");
            let back = net.node(src).get_bytes(dst, off, 777, TransferMode::Dma).unwrap();
            assert_eq!(back, payload, "get {src}<-{dst}");
        }
    }
    assert_no_errors(&net);
}

#[test]
fn two_host_ring_uses_both_links() {
    let (net, heaps) = build(2);
    net.node(0).put_bytes(1, 0, &[5u8; 100], TransferMode::Dma).unwrap();
    net.node(1).put_bytes(0, 0, &[6u8; 100], TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("quiet");
    net.node(1).quiet().expect("quiet");
    assert_eq!(heaps[1].region.read_vec(0, 100).unwrap(), vec![5u8; 100]);
    assert_eq!(heaps[0].region.read_vec(0, 100).unwrap(), vec![6u8; 100]);
    assert_no_errors(&net);
}

#[test]
fn amo_fetch_add_accumulates_from_all_hosts() {
    let (net, heaps) = build(4);
    // Hosts 1..4 all fetch-add into host 0's counter at offset 0.
    let mut handles = vec![];
    for i in 1..4usize {
        let node = Arc::clone(net.node(i));
        handles.push(std::thread::spawn(move || {
            let mut olds = vec![];
            for _ in 0..50 {
                olds.push(node.amo(0, AmoOp::FetchAdd, 0, 8, 1, 0).unwrap());
            }
            olds
        }));
    }
    let mut all_olds: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    all_olds.sort_unstable();
    // 150 increments: the old values must be exactly 0..150 (each seen once).
    assert_eq!(all_olds, (0..150u64).collect::<Vec<_>>());
    assert_eq!(heaps[0].region.read_u64(0).unwrap(), 150);
    assert_no_errors(&net);
}

#[test]
fn amo_compare_swap_mutual_exclusion() {
    let (net, heaps) = build(3);
    // Only one CAS 0->x can win.
    let n1 = Arc::clone(net.node(1));
    let n2 = Arc::clone(net.node(2));
    let h1 = std::thread::spawn(move || n1.amo(0, AmoOp::CompareSwap, 8, 8, 111, 0).unwrap());
    let h2 = std::thread::spawn(move || n2.amo(0, AmoOp::CompareSwap, 8, 8, 222, 0).unwrap());
    let r1 = h1.join().unwrap();
    let r2 = h2.join().unwrap();
    let winners = [r1, r2].iter().filter(|&&old| old == 0).count();
    assert_eq!(winners, 1, "exactly one CAS wins (olds: {r1}, {r2})");
    let stored = heaps[0].region.read_u64(8).unwrap();
    assert!(stored == 111 || stored == 222);
    assert_no_errors(&net);
}

#[test]
fn amo_narrow_width() {
    let (net, heaps) = build(2);
    heaps[1].region.write(0, &[0xFF, 0xEE, 0xDD, 0xCC]).unwrap();
    // 2-byte swap at offset 0: old must be 0xEEFF, bytes 2..4 untouched.
    let old = net.node(0).amo(1, AmoOp::Swap, 0, 2, 0x1234, 0).unwrap();
    assert_eq!(old, 0xEEFF);
    assert_eq!(heaps[1].region.read_vec(0, 4).unwrap(), vec![0x34, 0x12, 0xDD, 0xCC]);
    assert_no_errors(&net);
}

#[test]
fn barrier_doorbells_travel_right() {
    let (net, _heaps) = build(3);
    // Host 0 rings start on host 1; host 1 sees it from its left.
    net.node(0).send_barrier(RouteDirection::Right, true).unwrap();
    let fired = net
        .node(1)
        .wait_barrier(RouteDirection::Left, true, std::time::Duration::from_secs(1))
        .unwrap();
    assert!(fired);
    // Nothing pending at host 2.
    let fired2 = net
        .node(2)
        .wait_barrier(RouteDirection::Left, true, std::time::Duration::from_millis(20))
        .unwrap();
    assert!(!fired2);
    assert_no_errors(&net);
}

#[test]
fn raw_send_lands_in_neighbor_window() {
    let (net, _heaps) = build(3);
    let src = Region::anonymous(4096);
    src.fill(0, 4096, 0x77).unwrap();
    net.node(0).raw_send(RouteDirection::Right, &src, 0, 0, 4096, TransferMode::Dma).unwrap();
    let win = net.node(1).endpoint(RouteDirection::Left).port().incoming().region();
    assert_eq!(win.read_vec(0, 4096).unwrap(), vec![0x77; 4096]);
}

#[test]
fn stress_random_traffic() {
    use rand::prelude::*;
    let (net, heaps) = build(4);
    let mut rng = rand::rng();
    for round in 0..40 {
        let src = rng.random_range(0..4);
        let mut dst = rng.random_range(0..4);
        if dst == src {
            dst = (dst + 1) % 4;
        }
        let len = rng.random_range(1..5000usize);
        let off = rng.random_range(0..1000u64) * 8;
        let mode = if rng.random_bool(0.5) { TransferMode::Dma } else { TransferMode::Memcpy };
        let payload: Vec<u8> = (0..len).map(|_| rng.random()).collect();
        if rng.random_bool(0.5) {
            net.node(src).put_bytes(dst, off, &payload, mode).unwrap();
            net.node(src).quiet().expect("quiet");
            assert_eq!(
                heaps[dst].region.read_vec(off, len as u64).unwrap(),
                payload,
                "round {round}"
            );
        } else {
            heaps[dst].region.write(off, &payload).unwrap();
            let got = net.node(src).get_bytes(dst, off, len as u64, mode).unwrap();
            assert_eq!(got, payload, "round {round}");
        }
    }
    assert_no_errors(&net);
}

#[test]
fn shutdown_is_clean_and_idempotent() {
    let (net, _heaps) = build(3);
    net.node(0).put_bytes(1, 0, &[1u8; 64], TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("quiet");
    net.shutdown();
    net.shutdown();
}

#[test]
fn trace_records_protocol_events() {
    let (net, heaps) = build(4);
    net.enable_tracing();
    net.node(0).put_bytes(2, 0, &[7u8; 4096], TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("quiet");
    heaps[1].region.write(0, &[3u8; 64]).unwrap();
    let _ = net.node(0).get_bytes(1, 0, 64, TransferMode::Dma).unwrap();
    net.disable_tracing();
    let events = net.take_trace();
    use ntb_net::TraceKind;
    let kinds: Vec<TraceKind> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&TraceKind::FrameSent), "{kinds:?}");
    assert!(kinds.contains(&TraceKind::FrameHandled));
    assert!(kinds.contains(&TraceKind::Forwarded), "2-hop put forwards");
    assert!(kinds.contains(&TraceKind::PutDelivered));
    assert!(kinds.contains(&TraceKind::AckReceived));
    assert!(kinds.contains(&TraceKind::GetServed));
    // Timestamps sorted, hosts in range.
    assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    assert!(events.iter().all(|e| e.host < 4));
    // The delivery of the put happened at host 2.
    assert!(events
        .iter()
        .any(|e| e.kind == TraceKind::PutDelivered && e.host == 2 && e.len == 4096));
    // JSON export is renderable and non-trivial.
    let (net2, _h2) = build(2);
    net2.enable_tracing();
    net2.node(0).put_bytes(1, 0, &[1u8; 16], TransferMode::Dma).unwrap();
    net2.node(0).quiet().expect("quiet");
    let json = net2.take_trace_json();
    assert!(json.starts_with('[') && json.contains("put_delivered"));
}

#[test]
fn trace_disabled_by_default() {
    let (net, _heaps) = build(2);
    net.node(0).put_bytes(1, 0, &[1u8; 16], TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("quiet");
    assert!(net.take_trace().is_empty());
}

/// Regression for the fault-timeline walker: two closely-spaced faults —
/// a freeze with a long hold and a queue shrink scheduled *during* the
/// hold — must each land at their own absolute deadline. The old walker
/// served the freeze's hold inline, pushing the shrink out past the thaw.
#[test]
fn fault_timeline_holds_do_not_delay_later_faults() {
    let faults = ntb_sim::FaultPlan::none()
        .with_node_freeze(
            1,
            std::time::Duration::from_millis(40),
            std::time::Duration::from_millis(500),
        )
        .with_queue_shrink(0, std::time::Duration::from_millis(80), 8);
    let cfg = NetConfig::fast(3).with_faults(faults);
    let net = RingNetwork::build(cfg).unwrap();
    net.obs_enable();
    // Sleep long enough for the shrink's 80 ms deadline (plus scheduling
    // slack) but well short of the freeze's 540 ms completion.
    std::thread::sleep(std::time::Duration::from_millis(250));
    let events = net.take_events();
    let shrink = events
        .iter()
        .find(|e| e.kind == ntb_sim::EventKind::CapacityShrink)
        .expect("queue shrink must land during the freeze hold, not after it");
    assert!(
        shrink.t_us < 450_000,
        "shrink fired at t={}µs: the freeze hold delayed it (inline-hold walker bug)",
        shrink.t_us
    );
    assert_eq!(shrink.op_id, 8, "shrunk capacity travels in op_id");
    // Shutdown mid-hold must thaw the frozen host so its threads join.
    net.shutdown();
}

/// An idle network must stay cold: service threads park in the doorbell
/// wait (bounded busy-waits escalate to sleeping, never spin forever),
/// so no link moves a single frame while nothing is happening.
#[test]
fn idle_service_threads_stay_cold() {
    use std::sync::atomic::Ordering;
    let (net, _heaps) = build(3);
    // Prime the network so every thread is past bring-up, then drain.
    net.node(0).put_bytes(1, 0, &[7u8; 64], TransferMode::Dma).unwrap();
    net.node(0).quiet().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let snapshot = |net: &RingNetwork| -> Vec<u64> {
        net.nodes()
            .iter()
            .flat_map(|n| {
                (0..n.metrics().link_count()).map(|i| {
                    let l = n.metrics().link(i).unwrap();
                    l.frames_tx.load(Ordering::Relaxed)
                        + l.frames_rx.load(Ordering::Relaxed)
                        + l.retransmits.load(Ordering::Relaxed)
                })
            })
            .collect()
    };
    let before = snapshot(&net);
    std::thread::sleep(std::time::Duration::from_millis(300));
    let after = snapshot(&net);
    assert_eq!(before, after, "idle network moved frames: {before:?} -> {after:?}");
    assert_no_errors(&net);
}

#[test]
fn amo_bad_offset_fails_typed_without_leaking_pending_entry() {
    let (net, _heaps) = build(2);
    // An offset past the 32-bit wire field must fail typed *before* the
    // request is registered: a `?` after `pending.register` used to leak
    // the entry (and its AmoReqTx trace event) on this exact path.
    let err = net
        .node(0)
        .amo(1, AmoOp::FetchAdd, u64::from(u32::MAX) + 8, 8, 1, 0)
        .expect_err("oversized offset must be rejected");
    assert!(
        matches!(err, ntb_sim::NtbError::BadDescriptor { .. }),
        "expected BadDescriptor, got {err:?}"
    );
    assert_eq!(net.node(0).pending_in_flight(), 0, "rejected AMO leaked a pending entry");
    // The path stays healthy after the rejection.
    let old = net.node(0).amo(1, AmoOp::FetchAdd, 0, 8, 1, 0).unwrap();
    assert_eq!(old, 0);
    assert_eq!(net.node(0).pending_in_flight(), 0);
    assert_no_errors(&net);
}
