#![allow(clippy::needless_range_loop)]

//! The switch-emulating full-mesh topology: every pair directly cabled,
//! no forwarding — the comparison baseline to the paper's switchless
//! ring.

use std::sync::Arc;

use ntb_net::{AmoOp, DeliveryTarget, NetConfig, RingNetwork, Topology};
use ntb_sim::{Region, Result, TransferMode};
use parking_lot::Mutex;

struct TestHeap {
    region: Region,
    amo_lock: Mutex<()>,
}

impl TestHeap {
    fn new() -> Arc<Self> {
        Arc::new(TestHeap { region: Region::anonymous(1 << 20), amo_lock: Mutex::new(()) })
    }
}

impl DeliveryTarget for TestHeap {
    fn deliver_put(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.region.write(offset, data)
    }

    fn read_for_get(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        self.region.read(offset, out)
    }

    fn deliver_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> Result<u64> {
        let _guard = self.amo_lock.lock();
        let mut buf = [0u8; 8];
        self.region.read(offset, &mut buf[..width])?;
        let old = u64::from_le_bytes(buf);
        self.region.write(offset, &op.apply(old, operand, compare).to_le_bytes()[..width])?;
        Ok(old)
    }
}

fn build(hosts: usize) -> (RingNetwork, Vec<Arc<TestHeap>>) {
    let net =
        RingNetwork::build(NetConfig::fast(hosts).with_topology(Topology::clique(hosts))).unwrap();
    let heaps: Vec<Arc<TestHeap>> = (0..hosts).map(|_| TestHeap::new()).collect();
    for (i, heap) in heaps.iter().enumerate() {
        net.node(i).set_delivery(Arc::clone(heap) as Arc<dyn DeliveryTarget>);
    }
    (net, heaps)
}

#[test]
fn all_pairs_put_get_without_forwarding() {
    let (net, heaps) = build(5);
    for src in 0..5usize {
        for dst in 0..5usize {
            if src == dst {
                continue;
            }
            let payload = vec![(src * 16 + dst) as u8; 999];
            let off = (src * 5 + dst) as u64 * 1024;
            net.node(src).put_bytes(dst, off, &payload, TransferMode::Dma).unwrap();
            net.node(src).quiet().expect("quiet");
            assert_eq!(heaps[dst].region.read_vec(off, 999).unwrap(), payload);
            let back = net.node(src).get_bytes(dst, off, 999, TransferMode::Dma).unwrap();
            assert_eq!(back, payload);
        }
    }
    // The defining property of the mesh: nobody ever forwarded.
    for node in net.nodes() {
        assert_eq!(
            node.stats().forwards.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "host {} forwarded on a full mesh",
            node.host_id()
        );
        assert!(node.take_errors().is_empty());
    }
}

#[test]
fn mesh_amo_linearizable() {
    let (net, heaps) = build(4);
    let mut handles = vec![];
    for i in 1..4usize {
        let node = Arc::clone(net.node(i));
        handles.push(std::thread::spawn(move || {
            for _ in 0..60 {
                node.amo(0, AmoOp::FetchAdd, 0, 8, 1, 0).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(heaps[0].region.read_u64(0).unwrap(), 180);
}

#[test]
fn mesh_has_dedicated_links_per_pair() {
    let (net, _heaps) = build(4);
    // 4 hosts -> each node has 3 endpoints; traffic between 0 and 3 never
    // touches the 0-1 link.
    net.node(0).put_bytes(3, 0, &[9u8; 4096], TransferMode::Dma).unwrap();
    net.node(0).quiet().expect("quiet");
    let to_1 = net.node(0).endpoint_to(1).port().stats().bytes_tx();
    let to_3 = net.node(0).endpoint_to(3).port().stats().bytes_tx();
    assert_eq!(to_1, 0, "0-1 link must stay idle");
    assert!(to_3 >= 4096, "0-3 link carried the payload");
}

#[test]
fn two_host_mesh_is_a_single_link() {
    let (net, heaps) = build(2);
    net.node(0).put_bytes(1, 0, &[1u8; 64], TransferMode::Memcpy).unwrap();
    net.node(1).put_bytes(0, 0, &[2u8; 64], TransferMode::Memcpy).unwrap();
    net.node(0).quiet().expect("quiet");
    net.node(1).quiet().expect("quiet");
    assert_eq!(heaps[1].region.read_vec(0, 64).unwrap(), vec![1u8; 64]);
    assert_eq!(heaps[0].region.read_vec(0, 64).unwrap(), vec![2u8; 64]);
}

#[test]
#[should_panic(expected = "clique adapter slots")]
fn mesh_host_cap_enforced() {
    let _ = RingNetwork::build(NetConfig::fast(17).with_topology(Topology::clique(17)));
}
