//! Credit-based flow control and the retransmission token bucket.
//!
//! Under overload the failure mode to avoid is *unbounded memory*: a slow
//! receiver whose peer keeps staging frames grows queues until the host
//! dies long after the link itself stopped being useful. The overload
//! design (DESIGN.md §14) bounds every queue and makes the sender stop at
//! the source instead:
//!
//! * [`CreditGate`] — the receiver advertises a **cumulative** credit
//!   grant (one credit = one staged frame) through the control slot's
//!   credit word and piggybacked on put-acks; the sender consumes one
//!   credit per staged frame and stops staging when none remain. Both
//!   counters only grow, so a re-read of a stale grant is harmless and
//!   conservation is checkable: `granted == consumed + available`.
//! * [`RetryBudget`] — a token bucket bounding retransmissions per link.
//!   Retries are the classic congestion amplifier (every lost frame
//!   becomes N frames); when the bucket runs dry the sweeper sheds the
//!   retransmission with a typed event instead of piling on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Sender-side view of the peer's cumulative credit grant.
///
/// Both counters are cumulative and monotonic, mirroring how the grant
/// travels on the wire (an absolute value, not a delta), so duplicated or
/// reordered advertisements never double-count.
#[derive(Debug)]
pub struct CreditGate {
    /// Total credits the peer has ever granted us.
    granted: AtomicU64,
    /// Total credits we have ever consumed.
    consumed: AtomicU64,
}

impl CreditGate {
    /// A gate pre-loaded with `initial` credits (the configured credit
    /// window, granted implicitly at link bring-up).
    pub fn new(initial: u64) -> Self {
        CreditGate { granted: AtomicU64::new(initial), consumed: AtomicU64::new(0) }
    }

    /// Absorb a cumulative grant advertisement from the peer. Stale or
    /// reordered values (≤ the current grant) are ignored.
    pub fn advertise(&self, cumulative: u64) {
        // lint: relaxed-ok(monotonic max over a cumulative counter; the fetch_max resolves races)
        self.granted.fetch_max(cumulative, Ordering::Relaxed);
    }

    /// Credits currently available to spend.
    pub fn available(&self) -> u64 {
        // lint: relaxed-ok(advisory snapshot; try_consume re-validates under CAS)
        let granted = self.granted.load(Ordering::Relaxed);
        // lint: relaxed-ok(advisory snapshot; try_consume re-validates under CAS)
        let consumed = self.consumed.load(Ordering::Relaxed);
        granted.saturating_sub(consumed)
    }

    /// Consume one credit; `false` (and no state change) when none are
    /// available.
    pub fn try_consume(&self) -> bool {
        // lint: relaxed-ok(CAS loop on a single counter; no other data is published by the consume)
        let mut consumed = self.consumed.load(Ordering::Relaxed);
        loop {
            // lint: relaxed-ok(cumulative grant only grows; a stale read just retries)
            let granted = self.granted.load(Ordering::Relaxed);
            if consumed >= granted {
                return false;
            }
            match self.consumed.compare_exchange_weak(
                consumed,
                consumed + 1,
                Ordering::Relaxed, // lint: relaxed-ok(CAS on a single counter; nothing else published)
                Ordering::Relaxed, // lint: relaxed-ok(failure path just re-reads the counter)
            ) {
                Ok(_) => return true,
                Err(actual) => consumed = actual,
            }
        }
    }

    /// Return one consumed credit. Used when a consumed credit's frame
    /// never left this host (the send itself failed): the receiver will
    /// never see — and therefore never re-grant — that frame, so without
    /// the refund every local send failure would leak one credit forever.
    /// `consumed` is sender-local (only `granted` travels on the wire),
    /// so decrementing it keeps conservation intact.
    pub fn refund(&self) {
        // lint: relaxed-ok(single counter adjustment; no other data is published)
        self.consumed.fetch_sub(1, Ordering::Relaxed);
    }

    /// Total credits ever granted (diagnostics, trace events).
    pub fn granted_total(&self) -> u64 {
        // lint: relaxed-ok(diagnostic counter read)
        self.granted.load(Ordering::Relaxed)
    }

    /// Total credits ever consumed (diagnostics, trace events).
    pub fn consumed_total(&self) -> u64 {
        // lint: relaxed-ok(diagnostic counter read)
        self.consumed.load(Ordering::Relaxed)
    }
}

/// Receiver-side cumulative grant ledger: how many credits this endpoint
/// has advertised to its peer sender.
#[derive(Debug, Default)]
pub struct CreditLedger {
    granted: AtomicU64,
}

impl CreditLedger {
    /// Ledger starting at `initial` (the implicit bring-up window; must
    /// match the sender gate's initial value so the wire value stays
    /// cumulative).
    pub fn new(initial: u64) -> Self {
        CreditLedger { granted: AtomicU64::new(initial) }
    }

    /// Grant `n` more credits; returns the new cumulative total to put on
    /// the wire.
    pub fn grant(&self, n: u64) -> u64 {
        // lint: relaxed-ok(cumulative counter; the wire carries the returned absolute value)
        self.granted.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Cumulative total granted so far.
    pub fn total(&self) -> u64 {
        // lint: relaxed-ok(diagnostic counter read)
        self.granted.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

/// Token-bucket retry budget: `rate` tokens per second, holding at most
/// `burst`. Each retransmission spends one token; an empty bucket means
/// the retry is shed (typed, counted — never silent).
#[derive(Debug)]
pub struct RetryBudget {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

impl RetryBudget {
    /// Budget refilling at `rate` tokens/second with `burst` capacity
    /// (also the initial fill).
    pub fn new(rate: f64, burst: u32) -> Self {
        assert!(rate > 0.0 && burst >= 1, "retry budget needs a positive rate and burst");
        RetryBudget {
            rate,
            burst: f64::from(burst),
            state: Mutex::new(BucketState {
                tokens: f64::from(burst),
                last_refill: Instant::now(),
            }),
        }
    }

    /// Spend one token; `false` when the bucket is empty.
    pub fn try_spend(&self) -> bool {
        crate::lockdep_track!(&crate::lockdep::NET_RETRY_BUDGET);
        let mut st = self.state.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(st.last_refill);
        st.last_refill = now;
        st.tokens = (st.tokens + elapsed.as_secs_f64() * self.rate).min(self.burst);
        if st.tokens >= 1.0 {
            st.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently in the bucket (diagnostics; racy by nature).
    pub fn tokens(&self) -> f64 {
        crate::lockdep_track!(&crate::lockdep::NET_RETRY_BUDGET);
        self.state.lock().tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    #[test]
    fn gate_consumes_down_to_zero_then_blocks() {
        let gate = CreditGate::new(3);
        assert_eq!(gate.available(), 3);
        assert!(gate.try_consume());
        assert!(gate.try_consume());
        assert!(gate.try_consume());
        assert!(!gate.try_consume());
        assert_eq!(gate.available(), 0);
        gate.advertise(4); // one more credit (cumulative)
        assert!(gate.try_consume());
        assert!(!gate.try_consume());
    }

    #[test]
    fn stale_advertisement_is_ignored() {
        let gate = CreditGate::new(10);
        gate.advertise(4); // stale: below the bring-up window
        assert_eq!(gate.available(), 10);
        gate.advertise(12);
        assert_eq!(gate.available(), 12);
    }

    #[test]
    fn ledger_and_gate_stay_cumulative() {
        let ledger = CreditLedger::new(8);
        let gate = CreditGate::new(8);
        let wire = ledger.grant(4);
        gate.advertise(wire);
        assert_eq!(gate.available(), 12);
        assert_eq!(ledger.total(), 12);
    }

    /// Property: under random interleavings of grants and consumes,
    /// credits are conserved — `granted == consumed + available` — and
    /// consumption never exceeds the grant.
    #[test]
    fn credit_conservation_under_random_interleavings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..200 {
            let initial = rng.random_range(0..16u64);
            let gate = CreditGate::new(initial);
            let ledger = CreditLedger::new(initial);
            let mut expected_consumed = 0u64;
            for _ in 0..rng.random_range(1..64u32) {
                match rng.random_range(0..3u32) {
                    0 => {
                        let wire = ledger.grant(rng.random_range(1..5u64));
                        gate.advertise(wire);
                    }
                    1 => {
                        // Replay a stale advertisement (wire reordering).
                        gate.advertise(ledger.total().saturating_sub(rng.random_range(0..3u64)));
                    }
                    _ => {
                        if gate.try_consume() {
                            expected_consumed += 1;
                        }
                    }
                }
                let granted = gate.granted_total();
                let consumed = gate.consumed_total();
                assert!(consumed <= granted, "consumed {consumed} > granted {granted}");
                assert_eq!(granted, consumed + gate.available(), "credit conservation violated");
            }
            assert_eq!(gate.consumed_total(), expected_consumed);
            assert_eq!(gate.granted_total(), ledger.total());
        }
    }

    /// The same conservation property under genuine thread concurrency:
    /// one granter, two consumers hammering the gate.
    #[test]
    fn credit_conservation_under_threads() {
        use std::sync::Arc;
        let gate = Arc::new(CreditGate::new(0));
        let ledger = Arc::new(CreditLedger::new(0));
        let granter = {
            let (gate, ledger) = (Arc::clone(&gate), Arc::clone(&ledger));
            std::thread::spawn(move || {
                for _ in 0..500 {
                    let wire = ledger.grant(2);
                    gate.advertise(wire);
                }
            })
        };
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    let mut got = 0u64;
                    for _ in 0..2000 {
                        if gate.try_consume() {
                            got += 1;
                        }
                        std::hint::spin_loop();
                    }
                    got
                })
            })
            .collect();
        granter.join().unwrap();
        let consumed_by_threads: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(gate.consumed_total(), consumed_by_threads);
        assert!(gate.consumed_total() <= gate.granted_total());
        assert_eq!(gate.granted_total(), gate.consumed_total() + gate.available());
        assert_eq!(gate.granted_total(), 1000);
    }

    #[test]
    fn refund_restores_a_failed_sends_credit() {
        let gate = CreditGate::new(1);
        assert!(gate.try_consume());
        assert!(!gate.try_consume());
        gate.refund();
        assert_eq!(gate.available(), 1);
        assert!(gate.try_consume());
        assert_eq!(gate.granted_total(), gate.consumed_total() + gate.available());
    }

    #[test]
    fn budget_burst_then_dry() {
        let b = RetryBudget::new(0.000_001, 3); // effectively no refill
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
        assert!(!b.try_spend());
    }

    #[test]
    fn budget_refills_over_time() {
        let b = RetryBudget::new(1000.0, 2);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
        std::thread::sleep(Duration::from_millis(10));
        assert!(b.try_spend(), "10ms at 1000 tokens/s must refill at least one token");
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_rejected() {
        let _ = RetryBudget::new(0.0, 1);
    }
}
