//! Offline protocol invariant checker: replays a merged event trace and
//! asserts the end-to-end guarantees the recovery machinery promises.
//!
//! The invariants, over a quiescent trace (all application traffic
//! finished, `quiet`/barrier drained before the trace was taken):
//!
//! 1. **Put resolution** — every issued put chunk (`PutIssue`) is
//!    resolved exactly once: one `PutAcked` *or* one `PutAbandon`, never
//!    both, never twice, never zero times.
//! 2. **AMO exactly-once** — an AMO request is applied (`AmoApply`) at
//!    most once; retransmissions must hit the replay cache
//!    (`AmoReplay`). A completed AMO (`AmoDone`) has exactly one apply.
//! 3. **Get coverage** — the response chunks (`GetChunkRx`) of a
//!    completed get (`GetDone`) tile the requested byte range exactly:
//!    no gap, no overlap, no spill past the end.
//! 4. **Barrier ordering** — no PE leaves a barrier epoch
//!    (`BarrierEnd`) before every participating PE has entered it
//!    (`BarrierStart`), and each PE's epochs are strictly increasing.
//! 5. **Down-link discipline** — no put chunk is transmitted
//!    (`PutChunkTx`) over a link the emitting PE currently holds Down
//!    (between its `LinkDown` and the matching `LinkUp`).
//! 6. **Slot coalescing** — every coalesced doorbell
//!    (`DoorbellCoalesce`) covers at least one published transmit-ring
//!    slot and never more slots than its ring has published so far, and
//!    every drained slot (`SlotDrain`) matches exactly one publish
//!    (`SlotPublish`) — drained at most once. Published-but-undrained
//!    slots are legal (a trailing batch the receiver had not consumed
//!    when the trace was cut, or a slot consumed as corrupt under fault
//!    injection).
//! 7. **Dead-PE discipline** — once a sender *knows* a PE is dead (the
//!    sender's own `PeDead` emission, not yet followed by its matching
//!    `PeRejoin`), it transmits no put chunk (`PutChunkTx`) at that PE.
//!    The transmit path makes this exact, not probabilistic: sends pin
//!    the membership view, so a death declaration linearizes strictly
//!    after every send that passed its liveness gate.
//! 8. **Membership-epoch monotonicity** — each PE's published membership
//!    views (`MembershipUpdate`) carry strictly increasing epochs; a
//!    regression means gossip adopted a stale view.
//! 9. **Overload bounds** — every forward-queue admission
//!    (`QueueEnqueue`) lands within the queue's advertised capacity,
//!    and flow-control credits are conserved: no `CreditConsume` shows
//!    more credits consumed than its link's cumulative grant, and each
//!    endpoint's advertised grant total (`CreditGrant`) never regresses
//!    (both counters are cumulative by design).
//! 10. **Deadline admission** — no hop transmits a frame whose deadline
//!     has already expired: every `DeadlineTx` (sampled at the admission
//!     decision, immediately before the send) has `now ≤ deadline`.
//!     Expired work must be shed (`DeadlineShed`), never forwarded.
//! 11. **Get resolution** — every issued get sub-request (`GetReqTx`)
//!     resolves exactly once: one `GetDone` *or* one `GetAbandon`, never
//!     both, never twice, never zero times. Its fills (`GetChunkRx`)
//!     never overlap one another and never spill past the requested
//!     length — even on the abandoned path, where partial coverage is
//!     legal but corruption is not. Late duplicate response chunks must
//!     be suppressed (`DupSuppressed`), never double-filled. Invariant 3
//!     checks completed gets tile exactly; this one makes the pipelined
//!     get window's bookkeeping honest on *every* path, including sheds,
//!     deadline expiry, and responder crashes mid-window.
//!
//! Invariant 4 is membership-aware: a PE whose dead interval (between
//! the first `PeDead` naming it and the first subsequent `PeRejoin`)
//! overlaps a barrier epoch's event window is excused from entering that
//! epoch — that is exactly the degraded-collective contract.
//!
//! Soundness of the replay relies on two properties of the
//! [`EventLog`]: the global sequence number is allocated with one atomic
//! `fetch_add` (a total order consistent with each thread's program
//! order), and the emission sites are placed *after* the state
//! transitions they describe (e.g. `PutChunkTx` is emitted after the
//! link-health bookkeeping, so a successful send on a recovering link
//! orders its `LinkUp` first).
//!
//! A trace that overflowed its per-PE rings ([`EventLog::dropped`]) is
//! refused rather than certified — an invariant cannot be checked
//! against evidence that was evicted.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use ntb_sim::{render_events, EventKind, EventLog, TraceEvent};

/// How many events of leading/trailing context a violation window keeps
/// around the offending events.
const WINDOW_CONTEXT: usize = 12;

/// One invariant violation, with the trace window that proves it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Short stable identifier of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// The offending events plus surrounding context, in seq order.
    pub window: Vec<TraceEvent>,
}

impl Violation {
    /// Render the violation with its trace window, the format the chaos
    /// harness dumps to `target/trace-dumps/`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "invariant violated: {} — {}", self.invariant, self.message);
        out.push_str(&render_events(&self.window));
        out
    }
}

/// Outcome of one checker run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Events replayed.
    pub events: usize,
    /// Distinct put chunks tracked through invariant 1.
    pub puts_checked: usize,
    /// Distinct AMO requests tracked through invariant 2.
    pub amos_checked: usize,
    /// Completed gets tracked through invariant 3.
    pub gets_checked: usize,
    /// Barrier epochs tracked through invariant 4.
    pub barriers_checked: usize,
    /// Transmit-ring slot publishes tracked through invariant 6.
    pub slots_checked: usize,
    /// Membership views tracked through invariant 8.
    pub membership_updates_checked: usize,
    /// Queue admissions and credit events tracked through invariant 9.
    pub overload_events_checked: usize,
    /// Admission-time transmissions tracked through invariant 10.
    pub deadline_tx_checked: usize,
    /// Issued get sub-requests tracked through invariant 11.
    pub get_reqs_checked: usize,
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render every violation (empty string when clean).
    pub fn render_violations(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.render());
            out.push('\n');
        }
        out
    }
}

/// Cut a context window out of `events`: everything matching `pick`
/// plus [`WINDOW_CONTEXT`] events on either side of the first match.
fn window(events: &[TraceEvent], pick: impl Fn(&TraceEvent) -> bool) -> Vec<TraceEvent> {
    let Some(first) = events.iter().position(&pick) else {
        return Vec::new();
    };
    let lo = first.saturating_sub(WINDOW_CONTEXT);
    let hi = (first + WINDOW_CONTEXT + 1).min(events.len());
    let mut out: Vec<TraceEvent> = events[lo..hi].to_vec();
    // Matching events outside the context range still matter (e.g. the
    // second ack of a double-acked put, far downstream).
    for ev in &events[hi..] {
        if pick(ev) {
            out.push(*ev);
        }
    }
    out
}

/// Invariant 1: every `PutIssue` resolves exactly once.
fn check_puts(events: &[TraceEvent], report: &mut CheckReport) {
    // Keyed by (origin pe, put id): put ids are per-origin.
    let mut issued: HashMap<(u16, u64), (u32, u32)> = HashMap::new(); // (acked, abandoned)
    for ev in events {
        match ev.kind {
            EventKind::PutIssue => {
                issued.entry((ev.pe, ev.op_id)).or_insert((0, 0));
            }
            EventKind::PutAcked => {
                if let Some(e) = issued.get_mut(&(ev.pe, ev.op_id)) {
                    e.0 += 1;
                } else {
                    report.violations.push(Violation {
                        invariant: "put-resolution",
                        message: format!(
                            "pe {} put {} acked without a PutIssue record",
                            ev.pe, ev.op_id
                        ),
                        window: window(events, |e| {
                            e.pe == ev.pe && e.op_id == ev.op_id && put_lifecycle(e.kind)
                        }),
                    });
                }
            }
            EventKind::PutAbandon => {
                if let Some(e) = issued.get_mut(&(ev.pe, ev.op_id)) {
                    e.1 += 1;
                }
            }
            _ => {}
        }
    }
    report.puts_checked = issued.len();
    for (&(pe, id), &(acked, abandoned)) in &issued {
        let resolved = acked + abandoned;
        if resolved == 1 {
            continue;
        }
        let message = if resolved == 0 {
            format!("pe {pe} put {id} was issued but never acked nor abandoned")
        } else {
            format!(
                "pe {pe} put {id} resolved {resolved} times ({acked} acks, {abandoned} abandons)"
            )
        };
        report.violations.push(Violation {
            invariant: "put-resolution",
            message,
            window: window(events, |e| e.pe == pe && e.op_id == id && put_lifecycle(e.kind)),
        });
    }
}

fn put_lifecycle(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::PutIssue
            | EventKind::PutChunkTx
            | EventKind::PutDeliver
            | EventKind::PutAcked
            | EventKind::PutAbandon
            | EventKind::AckRx
            | EventKind::Retransmit
    )
}

/// Invariant 2: an AMO is applied at most once, and exactly once when it
/// completed at the origin.
fn check_amos(events: &[TraceEvent], report: &mut CheckReport) {
    // AmoApply is emitted at the *target* with payload[0] = origin pe and
    // op_id = the origin's request id; AmoDone at the origin.
    let mut applies: HashMap<(u64, u64), u32> = HashMap::new(); // (origin, req) -> count
    let mut done: HashSet<(u64, u64)> = HashSet::new();
    for ev in events {
        match ev.kind {
            EventKind::AmoApply => {
                *applies.entry((ev.payload[0], ev.op_id)).or_insert(0) += 1;
            }
            EventKind::AmoDone => {
                done.insert((u64::from(ev.pe), ev.op_id));
            }
            _ => {}
        }
    }
    report.amos_checked = applies.len().max(done.len());
    for (&(origin, req), &count) in &applies {
        if count > 1 {
            report.violations.push(Violation {
                invariant: "amo-exactly-once",
                message: format!("AMO req {req} from pe {origin} applied {count} times"),
                window: window(events, |e| {
                    e.op_id == req
                        && matches!(e.kind, EventKind::AmoApply | EventKind::AmoReplay)
                        && e.payload[0] == origin
                }),
            });
        }
    }
    for &(origin, req) in &done {
        if applies.get(&(origin, req)).copied().unwrap_or(0) == 0 {
            report.violations.push(Violation {
                invariant: "amo-exactly-once",
                message: format!("AMO req {req} from pe {origin} completed without an AmoApply"),
                window: window(events, |e| {
                    e.op_id == req
                        && matches!(
                            e.kind,
                            EventKind::AmoReqTx
                                | EventKind::AmoApply
                                | EventKind::AmoReplay
                                | EventKind::AmoDone
                        )
                }),
            });
        }
    }
}

/// Invariant 3: the chunks of a completed get tile `[0, len)` exactly.
fn check_gets(events: &[TraceEvent], report: &mut CheckReport) {
    let mut requested: HashMap<(u16, u64), u64> = HashMap::new(); // (pe, req) -> len
    let mut chunks: HashMap<(u16, u64), Vec<(u64, u64)>> = HashMap::new();
    let mut done: HashSet<(u16, u64)> = HashSet::new();
    for ev in events {
        match ev.kind {
            EventKind::GetReqTx => {
                requested.insert((ev.pe, ev.op_id), ev.payload[1]);
            }
            EventKind::GetChunkRx => {
                chunks.entry((ev.pe, ev.op_id)).or_default().push((ev.payload[0], ev.payload[1]));
            }
            EventKind::GetDone => {
                done.insert((ev.pe, ev.op_id));
            }
            _ => {}
        }
    }
    report.gets_checked = done.len();
    for &(pe, req) in &done {
        let Some(&len) = requested.get(&(pe, req)) else {
            continue; // request issued before tracing was enabled
        };
        let mut cs = chunks.get(&(pe, req)).cloned().unwrap_or_default();
        cs.sort_unstable();
        let mut cursor = 0u64;
        let mut bad: Option<String> = None;
        for &(off, clen) in &cs {
            if off < cursor {
                bad = Some(format!("chunk at {off} overlaps previous coverage up to {cursor}"));
                break;
            }
            if off > cursor {
                bad =
                    Some(format!("gap: coverage ends at {cursor} but next chunk starts at {off}"));
                break;
            }
            cursor = off + clen;
        }
        if bad.is_none() && cursor != len {
            bad = Some(format!("chunks cover {cursor} of {len} requested bytes"));
        }
        if let Some(why) = bad {
            report.violations.push(Violation {
                invariant: "get-coverage",
                message: format!("pe {pe} get {req}: {why}"),
                window: window(events, |e| {
                    e.pe == pe
                        && e.op_id == req
                        && matches!(
                            e.kind,
                            EventKind::GetReqTx | EventKind::GetChunkRx | EventKind::GetDone
                        )
                }),
            });
        }
    }
}

/// Invariant 11: every issued get sub-request resolves exactly once, and
/// its fills never corrupt the destination buffer.
fn check_get_resolution(events: &[TraceEvent], report: &mut CheckReport) {
    struct GetState {
        len: u64,
        done: u32,
        abandoned: u32,
        fills: Vec<(u64, u64)>,
    }
    // Keyed by (requester pe, request id): request ids are per-origin.
    let mut reqs: HashMap<(u16, u64), GetState> = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::GetReqTx => {
                reqs.insert(
                    (ev.pe, ev.op_id),
                    GetState { len: ev.payload[1], done: 0, abandoned: 0, fills: Vec::new() },
                );
            }
            EventKind::GetChunkRx => {
                if let Some(s) = reqs.get_mut(&(ev.pe, ev.op_id)) {
                    s.fills.push((ev.payload[0], ev.payload[1]));
                } else {
                    report.violations.push(Violation {
                        invariant: "get-resolution",
                        message: format!(
                            "pe {} get {} filled without a GetReqTx record",
                            ev.pe, ev.op_id
                        ),
                        window: window(events, |e| {
                            e.pe == ev.pe && e.op_id == ev.op_id && get_lifecycle(e.kind)
                        }),
                    });
                }
            }
            EventKind::GetDone => {
                if let Some(s) = reqs.get_mut(&(ev.pe, ev.op_id)) {
                    s.done += 1;
                } else {
                    report.violations.push(Violation {
                        invariant: "get-resolution",
                        message: format!(
                            "pe {} get {} completed without a GetReqTx record",
                            ev.pe, ev.op_id
                        ),
                        window: window(events, |e| {
                            e.pe == ev.pe && e.op_id == ev.op_id && get_lifecycle(e.kind)
                        }),
                    });
                }
            }
            EventKind::GetAbandon => {
                if let Some(s) = reqs.get_mut(&(ev.pe, ev.op_id)) {
                    s.abandoned += 1;
                } else {
                    report.violations.push(Violation {
                        invariant: "get-resolution",
                        message: format!(
                            "pe {} get {} abandoned without a GetReqTx record",
                            ev.pe, ev.op_id
                        ),
                        window: window(events, |e| {
                            e.pe == ev.pe && e.op_id == ev.op_id && get_lifecycle(e.kind)
                        }),
                    });
                }
            }
            _ => {}
        }
    }
    report.get_reqs_checked = reqs.len();
    for (&(pe, req), s) in &reqs {
        let resolved = s.done + s.abandoned;
        if resolved != 1 {
            let message = if resolved == 0 {
                format!("pe {pe} get {req} was issued but never completed nor abandoned")
            } else {
                format!(
                    "pe {pe} get {req} resolved {resolved} times ({} dones, {} abandons)",
                    s.done, s.abandoned
                )
            };
            report.violations.push(Violation {
                invariant: "get-resolution",
                message,
                window: window(events, |e| e.pe == pe && e.op_id == req && get_lifecycle(e.kind)),
            });
        }
        // Fill discipline holds on every path: an abandoned window may be
        // partially covered (gaps are fine), but fills must never overlap
        // one another nor land past the requested length.
        let mut fills = s.fills.clone();
        fills.sort_unstable();
        let mut cursor = 0u64;
        let mut covered = 0u64;
        let mut bad: Option<String> = None;
        for &(off, flen) in &fills {
            if off < cursor {
                bad = Some(format!("fill at {off} overlaps previous coverage up to {cursor}"));
                break;
            }
            if off + flen > s.len {
                bad = Some(format!(
                    "fill [{off}, {}) spills past the {} requested bytes",
                    off + flen,
                    s.len
                ));
                break;
            }
            cursor = off + flen;
            covered += flen;
        }
        // A *completed* sub-request must have been filled exactly: with
        // overlap and spill excluded above, full coverage is equivalent
        // to `covered == len`. (Abandoned windows may legally stop
        // short.)
        if bad.is_none() && s.done >= 1 && covered != s.len {
            bad = Some(format!(
                "completed with {covered} of {} requested bytes filled — a dropped fill",
                s.len
            ));
        }
        if let Some(why) = bad {
            report.violations.push(Violation {
                invariant: "get-resolution",
                message: format!("pe {pe} get {req}: {why}"),
                window: window(events, |e| e.pe == pe && e.op_id == req && get_lifecycle(e.kind)),
            });
        }
    }
}

fn get_lifecycle(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::GetReqTx
            | EventKind::GetChunkRx
            | EventKind::GetDone
            | EventKind::GetAbandon
            | EventKind::Retransmit
            | EventKind::DupSuppressed
    )
}

/// The dead intervals of every PE named in a `PeDead` event: from the
/// first `PeDead` naming it (any observer) to the first subsequent
/// `PeRejoin`, or trace-end (`u64::MAX`) if it never rejoined.
fn dead_intervals(events: &[TraceEvent]) -> HashMap<u64, Vec<(u64, u64)>> {
    let mut intervals: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    let mut open: HashMap<u64, u64> = HashMap::new(); // dead pe -> first PeDead seq
    for ev in events {
        match ev.kind {
            EventKind::PeDead => {
                open.entry(ev.payload[0]).or_insert(ev.seq);
            }
            EventKind::PeRejoin => {
                if let Some(start) = open.remove(&ev.payload[0]) {
                    intervals.entry(ev.payload[0]).or_default().push((start, ev.seq));
                }
            }
            _ => {}
        }
    }
    for (pe, start) in open {
        intervals.entry(pe).or_default().push((start, u64::MAX));
    }
    intervals
}

/// Invariant 4: barrier epochs are collective and ordered — no PE ends
/// an epoch before every PE started it, and each PE's epochs increase.
/// Two failure-model allowances: a PE dead for (part of) the epoch's
/// event window is excused from entering it, and a PE may *re-enter* an
/// epoch it never completed (a failed attempt surrenders its epoch and
/// the retry carries the same number) — but never one it finished.
fn check_barriers(events: &[TraceEvent], pes: usize, report: &mut CheckReport) {
    let dead = dead_intervals(events);
    let mut starts: HashMap<u64, Vec<(u16, u64)>> = HashMap::new(); // epoch -> (pe, seq)
    let mut ends: HashMap<u64, Vec<(u16, u64)>> = HashMap::new();
    let mut last_epoch: HashMap<u16, u64> = HashMap::new();
    let mut completed: HashSet<(u16, u64)> = HashSet::new();
    for ev in events {
        match ev.kind {
            EventKind::BarrierStart => {
                starts.entry(ev.op_id).or_default().push((ev.pe, ev.seq));
                if let Some(&prev) = last_epoch.get(&ev.pe) {
                    let reentered_done = ev.op_id == prev && completed.contains(&(ev.pe, prev));
                    if ev.op_id < prev || reentered_done {
                        report.violations.push(Violation {
                            invariant: "barrier-order",
                            message: format!(
                                "pe {} entered barrier epoch {} after epoch {}{}",
                                ev.pe,
                                ev.op_id,
                                prev,
                                if reentered_done { " (already completed)" } else { "" }
                            ),
                            window: window(events, |e| {
                                e.pe == ev.pe && e.kind == EventKind::BarrierStart
                            }),
                        });
                    }
                }
                last_epoch.insert(ev.pe, ev.op_id);
            }
            EventKind::BarrierEnd => {
                ends.entry(ev.op_id).or_default().push((ev.pe, ev.seq));
                completed.insert((ev.pe, ev.op_id));
            }
            _ => {}
        }
    }
    report.barriers_checked = ends.len();
    for (&epoch, enders) in &ends {
        let empty = Vec::new();
        let enterers = starts.get(&epoch).unwrap_or(&empty);
        let entered: HashSet<u16> = enterers.iter().map(|&(pe, _)| pe).collect();
        // The epoch's event window, for the dead-interval excuse below.
        let seqs = || enterers.iter().chain(enders.iter()).map(|&(_, s)| s);
        let first_seq = seqs().min().unwrap_or(0);
        let last_seq = seqs().max().unwrap_or(u64::MAX);
        let excused = |pe: u16| {
            dead.get(&u64::from(pe)).is_some_and(|ivs| {
                ivs.iter().any(|&(from, until)| from <= last_seq && until >= first_seq)
            })
        };
        let missing: Vec<u16> =
            (0..pes as u16).filter(|&pe| !entered.contains(&pe) && !excused(pe)).collect();
        if !missing.is_empty() {
            report.violations.push(Violation {
                invariant: "barrier-order",
                message: format!(
                    "barrier epoch {epoch} ended but PEs {missing:?} never entered it"
                ),
                window: window(events, |e| {
                    e.op_id == epoch
                        && matches!(e.kind, EventKind::BarrierStart | EventKind::BarrierEnd)
                }),
            });
            continue;
        }
        // Each PE's *first* entry marks when it reached the barrier; a
        // later re-entry is a retry of a failed attempt, not a new
        // arrival, so it must not push the release bound forward.
        let mut first_start: HashMap<u16, u64> = HashMap::new();
        for &(pe, s) in enterers {
            let e = first_start.entry(pe).or_insert(s);
            *e = (*e).min(s);
        }
        let max_start = first_start.values().copied().max().unwrap_or(0);
        for &(pe, end_seq) in enders {
            if end_seq < max_start {
                report.violations.push(Violation {
                    invariant: "barrier-order",
                    message: format!(
                        "pe {pe} left barrier epoch {epoch} (seq {end_seq}) before every PE \
                         entered it (last entry seq {max_start})"
                    ),
                    window: window(events, |e| {
                        e.op_id == epoch
                            && matches!(e.kind, EventKind::BarrierStart | EventKind::BarrierEnd)
                    }),
                });
            }
        }
    }
}

/// Invariant 5: no put chunk leaves over a link its PE holds Down.
fn check_down_links(events: &[TraceEvent], report: &mut CheckReport) {
    let mut down: HashSet<(u16, u16)> = HashSet::new(); // (pe, link)
    for ev in events {
        match ev.kind {
            EventKind::LinkDown => {
                down.insert((ev.pe, ev.link));
            }
            EventKind::LinkUp => {
                down.remove(&(ev.pe, ev.link));
            }
            EventKind::PutChunkTx if down.contains(&(ev.pe, ev.link)) => {
                let (pe, link, seq) = (ev.pe, ev.link, ev.seq);
                report.violations.push(Violation {
                    invariant: "down-link-discipline",
                    message: format!(
                        "pe {pe} transmitted put {} on link {link} while holding it Down \
                         (no reroute/recovery first)",
                        ev.op_id
                    ),
                    window: window(events, move |e| {
                        e.seq == seq
                            || (e.pe == pe
                                && e.link == link
                                && matches!(
                                    e.kind,
                                    EventKind::LinkDown | EventKind::LinkUp | EventKind::Reroute
                                ))
                    }),
                });
            }
            _ => {}
        }
    }
}

/// Invariant 6: coalesced doorbells and slot drains are consistent with
/// the publishes that preceded them.
///
/// A transmit ring is identified by `(sender pe, link)`: each sender
/// owns one ring per cabled link, and its slot sequence numbers are
/// monotonic. `SlotPublish` is emitted by the sender; `SlotDrain` by the
/// *receiver* with the sender's pe in `payload[0]`, so both sides key to
/// the same ring.
fn check_slots(events: &[TraceEvent], report: &mut CheckReport) {
    let mut published: HashMap<(u16, u16), u64> = HashMap::new(); // ring -> publish count
    let mut covered: HashMap<(u16, u16), u64> = HashMap::new(); // ring -> coalesced slot count
    let mut publishes: HashSet<(u16, u16, u64)> = HashSet::new(); // (ring, slot seq)
    let mut drains: HashMap<(u16, u16, u64), u32> = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::SlotPublish => {
                *published.entry((ev.pe, ev.link)).or_insert(0) += 1;
                publishes.insert((ev.pe, ev.link, ev.op_id));
            }
            EventKind::DoorbellCoalesce => {
                let n = ev.payload[0];
                if n == 0 {
                    report.violations.push(Violation {
                        invariant: "slot-coalescing",
                        message: format!(
                            "pe {} rang a coalesced doorbell covering zero slots on link {}",
                            ev.pe, ev.link
                        ),
                        window: window(events, |e| {
                            e.pe == ev.pe && e.link == ev.link && slot_lifecycle(e.kind)
                        }),
                    });
                    continue;
                }
                let c = covered.entry((ev.pe, ev.link)).or_insert(0);
                *c += n;
                let avail = published.get(&(ev.pe, ev.link)).copied().unwrap_or(0);
                if *c > avail {
                    report.violations.push(Violation {
                        invariant: "slot-coalescing",
                        message: format!(
                            "pe {} link {}: coalesced doorbells cover {} slots but only {} were \
                             published",
                            ev.pe, ev.link, *c, avail
                        ),
                        window: window(events, |e| {
                            e.pe == ev.pe && e.link == ev.link && slot_lifecycle(e.kind)
                        }),
                    });
                }
            }
            EventKind::SlotDrain => {
                // `payload[0]` carries the sending pe (the drain itself is
                // emitted at the receiver).
                *drains.entry((ev.payload[0] as u16, ev.link, ev.op_id)).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    report.slots_checked = publishes.len();
    for (&(pe, link, seq), &count) in &drains {
        if !publishes.contains(&(pe, link, seq)) {
            report.violations.push(Violation {
                invariant: "slot-coalescing",
                message: format!(
                    "slot seq {seq} of pe {pe}'s ring on link {link} was drained without a \
                     matching publish"
                ),
                window: window(events, |e| e.link == link && slot_lifecycle(e.kind)),
            });
        } else if count > 1 {
            report.violations.push(Violation {
                invariant: "slot-coalescing",
                message: format!(
                    "slot seq {seq} of pe {pe}'s ring on link {link} was drained {count} times"
                ),
                window: window(events, |e| {
                    e.link == link && e.op_id == seq && slot_lifecycle(e.kind)
                }),
            });
        }
    }
}

fn slot_lifecycle(kind: EventKind) -> bool {
    matches!(kind, EventKind::SlotPublish | EventKind::SlotDrain | EventKind::DoorbellCoalesce)
}

/// Invariant 7: a sender that has declared a PE dead (and not yet seen
/// it rejoin) transmits no put chunk at it. Knowledge is per-sender —
/// only the sender's *own* `PeDead`/`PeRejoin` emissions gate its
/// transmissions, since gossip reaches different PEs at different times.
fn check_dead_pe_discipline(events: &[TraceEvent], report: &mut CheckReport) {
    let mut known_dead: HashSet<(u16, u64)> = HashSet::new(); // (observer, dead pe)
    for ev in events {
        match ev.kind {
            EventKind::PeDead => {
                known_dead.insert((ev.pe, ev.payload[0]));
            }
            EventKind::PeRejoin => {
                known_dead.remove(&(ev.pe, ev.payload[0]));
            }
            EventKind::PutChunkTx if known_dead.contains(&(ev.pe, ev.payload[0])) => {
                let (pe, dest, seq) = (ev.pe, ev.payload[0], ev.seq);
                report.violations.push(Violation {
                    invariant: "dead-pe-discipline",
                    message: format!(
                        "pe {pe} transmitted put {} at pe {dest} after learning of its death",
                        ev.op_id
                    ),
                    window: window(events, move |e| {
                        e.seq == seq
                            || (e.pe == pe
                                && e.payload[0] == dest
                                && matches!(e.kind, EventKind::PeDead | EventKind::PeRejoin))
                    }),
                });
            }
            _ => {}
        }
    }
}

/// Invariant 8: each PE's published membership views carry strictly
/// increasing epochs.
fn check_membership_epochs(events: &[TraceEvent], report: &mut CheckReport) {
    let mut last: HashMap<u16, u64> = HashMap::new();
    for ev in events {
        if ev.kind != EventKind::MembershipUpdate {
            continue;
        }
        report.membership_updates_checked += 1;
        if let Some(&prev) = last.get(&ev.pe) {
            if ev.op_id <= prev {
                report.violations.push(Violation {
                    invariant: "membership-epoch-monotone",
                    message: format!(
                        "pe {} published membership epoch {} after epoch {prev}",
                        ev.pe, ev.op_id
                    ),
                    window: window(events, |e| {
                        e.pe == ev.pe && e.kind == EventKind::MembershipUpdate
                    }),
                });
            }
        }
        last.insert(ev.pe, ev.op_id);
    }
}

/// Invariant 9: bounded queues stay bounded and credits are conserved.
///
/// `QueueEnqueue` carries `[post-push depth, capacity]` — an admission
/// past capacity means the bound is advisory, not enforced.
/// `CreditConsume` carries `[consumed total, granted total]` sampled at
/// the consuming endpoint (consumed first, and the grant only grows, so
/// a racy snapshot can only *under*-report the grant — a violation is
/// therefore never a sampling artifact). `CreditGrant` carries the
/// granting endpoint's cumulative total in `payload[0]`; it must never
/// regress per `(pe, link)`.
fn check_overload_bounds(events: &[TraceEvent], report: &mut CheckReport) {
    let mut last_grant: HashMap<(u16, u16), u64> = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::QueueEnqueue => {
                report.overload_events_checked += 1;
                let (depth, capacity) = (ev.payload[0], ev.payload[1]);
                if depth > capacity {
                    let seq = ev.seq;
                    report.violations.push(Violation {
                        invariant: "overload-bounds",
                        message: format!(
                            "pe {} link {}: queue admitted op {} at depth {depth} past its \
                             capacity {capacity}",
                            ev.pe, ev.link, ev.op_id
                        ),
                        window: window(events, move |e| e.seq == seq),
                    });
                }
            }
            EventKind::CreditConsume => {
                report.overload_events_checked += 1;
                let (consumed, granted) = (ev.payload[0], ev.payload[1]);
                if consumed > granted {
                    let seq = ev.seq;
                    report.violations.push(Violation {
                        invariant: "overload-bounds",
                        message: format!(
                            "pe {} link {}: put {} consumed credit {consumed} but only \
                             {granted} were ever granted",
                            ev.pe, ev.link, ev.op_id
                        ),
                        window: window(events, move |e| e.seq == seq),
                    });
                }
            }
            EventKind::CreditGrant => {
                report.overload_events_checked += 1;
                let total = ev.payload[0];
                let prev = last_grant.entry((ev.pe, ev.link)).or_insert(total);
                if total < *prev {
                    report.violations.push(Violation {
                        invariant: "overload-bounds",
                        message: format!(
                            "pe {} link {}: cumulative credit grant regressed from {prev} to \
                             {total}",
                            ev.pe, ev.link
                        ),
                        window: window(events, |e| {
                            e.pe == ev.pe && e.link == ev.link && e.kind == EventKind::CreditGrant
                        }),
                    });
                }
                *prev = (*prev).max(total);
            }
            _ => {}
        }
    }
}

/// Invariant 10: no hop transmits an already-expired frame. `DeadlineTx`
/// is emitted only for deadline-carrying frames, with
/// `[deadline_us, now_us]` where `now` was sampled at the admission
/// decision immediately before the send — so a violation is a real
/// admission of expired work, not a slow send.
fn check_deadline_admission(events: &[TraceEvent], report: &mut CheckReport) {
    for ev in events {
        if ev.kind != EventKind::DeadlineTx {
            continue;
        }
        report.deadline_tx_checked += 1;
        let (deadline, now) = (ev.payload[0], ev.payload[1]);
        if deadline != 0 && now > deadline {
            let seq = ev.seq;
            report.violations.push(Violation {
                invariant: "deadline-admission",
                message: format!(
                    "pe {} link {}: op {} transmitted at t={now}µs, {}µs past its deadline \
                     ({deadline}µs) — expired work must be shed, not forwarded",
                    ev.pe,
                    ev.link,
                    ev.op_id,
                    now - deadline
                ),
                window: window(events, move |e| {
                    e.seq == seq
                        || matches!(e.kind, EventKind::DeadlineShed | EventKind::DeadlineTx)
                }),
            });
        }
    }
}

/// Replay `events` (must be seq-sorted, as [`EventLog::take`] returns
/// them) and check every invariant. `pes` is the PE count of the network
/// the trace came from (barrier membership).
pub fn check(events: &[TraceEvent], pes: usize) -> CheckReport {
    let mut report = CheckReport { events: events.len(), ..CheckReport::default() };
    check_puts(events, &mut report);
    check_amos(events, &mut report);
    check_gets(events, &mut report);
    check_get_resolution(events, &mut report);
    check_barriers(events, pes, &mut report);
    check_down_links(events, &mut report);
    check_slots(events, &mut report);
    check_dead_pe_discipline(events, &mut report);
    check_membership_epochs(events, &mut report);
    check_overload_bounds(events, &mut report);
    check_deadline_admission(events, &mut report);
    report
}

/// Check a live log without draining it. Refuses to certify a truncated
/// trace: ring overflow means evidence was evicted.
pub fn check_log(log: &EventLog, pes: usize) -> CheckReport {
    let events = log.merged();
    let mut report = check(&events, pes);
    let dropped = log.dropped();
    if dropped > 0 {
        report.violations.push(Violation {
            invariant: "trace-complete",
            message: format!(
                "{dropped} events were dropped (ring overflow); refusing to certify a \
                 truncated trace"
            ),
            window: Vec::new(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntb_sim::NO_LINK;

    fn ev(
        seq: u64,
        pe: u16,
        link: u16,
        kind: EventKind,
        op_id: u64,
        payload: [u64; 2],
    ) -> TraceEvent {
        TraceEvent { seq, t_us: seq, pe, link, kind, op_id, payload }
    }

    #[test]
    fn clean_put_lifecycle_passes() {
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PutIssue, 1, [1, 64]),
            ev(1, 0, 0, EventKind::PutChunkTx, 1, [1, 64]),
            ev(2, 1, NO_LINK, EventKind::PutDeliver, 1, [0, 0]),
            ev(3, 0, NO_LINK, EventKind::AckRx, 1, [1, 0]),
            ev(4, 0, NO_LINK, EventKind::PutAcked, 1, [1, 0]),
        ];
        let r = check(&t, 2);
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.puts_checked, 1);
    }

    #[test]
    fn unresolved_put_is_flagged() {
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PutIssue, 1, [1, 64]),
            ev(1, 0, 0, EventKind::PutChunkTx, 1, [1, 64]),
        ];
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "put-resolution");
        assert!(r.violations[0].message.contains("never acked"), "{}", r.violations[0].message);
        assert!(!r.violations[0].window.is_empty());
    }

    #[test]
    fn double_acked_put_is_flagged() {
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PutIssue, 7, [1, 64]),
            ev(1, 0, NO_LINK, EventKind::PutAcked, 7, [1, 0]),
            ev(2, 0, NO_LINK, EventKind::PutAcked, 7, [1, 0]),
        ];
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("2 acks"), "{}", r.violations[0].message);
    }

    #[test]
    fn acked_and_abandoned_put_is_flagged() {
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PutIssue, 7, [1, 64]),
            ev(1, 0, NO_LINK, EventKind::PutAbandon, 7, [6, 1]),
            ev(2, 0, NO_LINK, EventKind::PutAcked, 7, [1, 0]),
        ];
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("resolved 2 times"));
    }

    #[test]
    fn put_ids_are_scoped_per_origin() {
        // Two different PEs reuse put id 1; both resolve once. Clean.
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PutIssue, 1, [1, 64]),
            ev(1, 2, NO_LINK, EventKind::PutIssue, 1, [1, 64]),
            ev(2, 0, NO_LINK, EventKind::PutAcked, 1, [1, 0]),
            ev(3, 2, NO_LINK, EventKind::PutAbandon, 1, [6, 1]),
        ];
        let r = check(&t, 3);
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.puts_checked, 2);
    }

    #[test]
    fn amo_double_apply_is_flagged_and_replay_is_not() {
        let clean = vec![
            ev(0, 0, NO_LINK, EventKind::AmoReqTx, 3, [0, 8]),
            ev(1, 1, NO_LINK, EventKind::AmoApply, 3, [0, 41]),
            ev(2, 1, NO_LINK, EventKind::AmoReplay, 3, [0, 0]),
            ev(3, 0, NO_LINK, EventKind::AmoDone, 3, [0, 0]),
        ];
        assert!(check(&clean, 2).is_clean());
        let broken = vec![
            ev(0, 0, NO_LINK, EventKind::AmoReqTx, 3, [0, 8]),
            ev(1, 1, NO_LINK, EventKind::AmoApply, 3, [0, 41]),
            ev(2, 1, NO_LINK, EventKind::AmoApply, 3, [0, 42]),
            ev(3, 0, NO_LINK, EventKind::AmoDone, 3, [0, 0]),
        ];
        let r = check(&broken, 2);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "amo-exactly-once");
    }

    #[test]
    fn get_gap_overlap_and_spill_are_flagged() {
        let base = |chunks: &[(u64, u64)]| {
            let mut t = vec![ev(0, 0, NO_LINK, EventKind::GetReqTx, 5, [0, 100])];
            for (i, &(off, len)) in chunks.iter().enumerate() {
                t.push(ev(1 + i as u64, 0, NO_LINK, EventKind::GetChunkRx, 5, [off, len]));
            }
            t.push(ev(90, 0, NO_LINK, EventKind::GetDone, 5, [0, 100]));
            t
        };
        assert!(check(&base(&[(0, 60), (60, 40)]), 2).is_clean());
        let gap = check(&base(&[(0, 60), (70, 30)]), 2);
        assert!(gap.violations[0].message.contains("gap"), "{}", gap.violations[0].message);
        let overlap = check(&base(&[(0, 60), (50, 50)]), 2);
        assert!(overlap.violations[0].message.contains("overlap"));
        let short = check(&base(&[(0, 60)]), 2);
        assert!(short.violations[0].message.contains("cover 60 of 100"));
    }

    #[test]
    fn pipelined_get_window_resolves_cleanly() {
        // Three sub-requests in flight: two complete, one is abandoned
        // after a partial fill. Every id resolves exactly once.
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::GetReqTx, 7, [0, 64]),
            ev(1, 0, NO_LINK, EventKind::GetReqTx, 8, [64, 64]),
            ev(2, 0, NO_LINK, EventKind::GetReqTx, 9, [128, 64]),
            ev(3, 0, NO_LINK, EventKind::GetChunkRx, 7, [0, 64]),
            ev(4, 0, NO_LINK, EventKind::GetChunkRx, 8, [0, 64]),
            ev(5, 0, NO_LINK, EventKind::GetDone, 7, [0, 64]),
            ev(6, 0, NO_LINK, EventKind::GetDone, 8, [64, 64]),
            ev(7, 0, NO_LINK, EventKind::GetChunkRx, 9, [0, 32]),
            ev(8, 0, NO_LINK, EventKind::GetAbandon, 9, [0, 0]),
            ev(9, 0, NO_LINK, EventKind::DupSuppressed, 9, [32, 2]),
        ];
        let r = check(&t, 2);
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.get_reqs_checked, 3);
    }

    #[test]
    fn unresolved_and_double_resolved_gets_are_flagged() {
        let unresolved = vec![
            ev(0, 0, NO_LINK, EventKind::GetReqTx, 7, [0, 64]),
            ev(1, 0, NO_LINK, EventKind::GetChunkRx, 7, [0, 64]),
        ];
        let r = check(&unresolved, 2);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "get-resolution");
        assert!(r.violations[0].message.contains("never completed nor abandoned"));
        let double = vec![
            ev(0, 0, NO_LINK, EventKind::GetReqTx, 7, [0, 64]),
            ev(1, 0, NO_LINK, EventKind::GetChunkRx, 7, [0, 64]),
            ev(2, 0, NO_LINK, EventKind::GetDone, 7, [0, 64]),
            ev(3, 0, NO_LINK, EventKind::GetAbandon, 7, [0, 0]),
        ];
        let r = check(&double, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("resolved 2 times (1 dones, 1 abandons)"));
    }

    #[test]
    fn abandoned_get_fill_discipline_is_still_enforced() {
        // Partial coverage on an abandoned window is legal...
        let partial = vec![
            ev(0, 0, NO_LINK, EventKind::GetReqTx, 7, [0, 100]),
            ev(1, 0, NO_LINK, EventKind::GetChunkRx, 7, [0, 40]),
            ev(2, 0, NO_LINK, EventKind::GetAbandon, 7, [0, 0]),
        ];
        assert!(check(&partial, 2).is_clean());
        // ...but overlapping fills are corruption even there.
        let overlap = vec![
            ev(0, 0, NO_LINK, EventKind::GetReqTx, 7, [0, 100]),
            ev(1, 0, NO_LINK, EventKind::GetChunkRx, 7, [0, 40]),
            ev(2, 0, NO_LINK, EventKind::GetChunkRx, 7, [30, 40]),
            ev(3, 0, NO_LINK, EventKind::GetAbandon, 7, [0, 0]),
        ];
        let r = check(&overlap, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("overlap"));
        // ...and so is a fill past the requested length.
        let spill = vec![
            ev(0, 0, NO_LINK, EventKind::GetReqTx, 7, [0, 100]),
            ev(1, 0, NO_LINK, EventKind::GetChunkRx, 7, [80, 40]),
            ev(2, 0, NO_LINK, EventKind::GetAbandon, 7, [0, 0]),
        ];
        let r = check(&spill, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("spills past"));
    }

    #[test]
    fn get_resolution_without_request_record_is_flagged() {
        let t = vec![ev(0, 0, NO_LINK, EventKind::GetDone, 7, [0, 64])];
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("without a GetReqTx record"));
    }

    #[test]
    fn barrier_escape_and_missing_pe_are_flagged() {
        let clean = vec![
            ev(0, 0, NO_LINK, EventKind::BarrierStart, 1, [0, 0]),
            ev(1, 1, NO_LINK, EventKind::BarrierStart, 1, [0, 0]),
            ev(2, 0, NO_LINK, EventKind::BarrierEnd, 1, [0, 0]),
            ev(3, 1, NO_LINK, EventKind::BarrierEnd, 1, [0, 0]),
        ];
        assert!(check(&clean, 2).is_clean());
        let escape = vec![
            ev(0, 0, NO_LINK, EventKind::BarrierStart, 1, [0, 0]),
            ev(1, 0, NO_LINK, EventKind::BarrierEnd, 1, [0, 0]),
            ev(2, 1, NO_LINK, EventKind::BarrierStart, 1, [0, 0]),
            ev(3, 1, NO_LINK, EventKind::BarrierEnd, 1, [0, 0]),
        ];
        let r = check(&escape, 2);
        assert!(!r.is_clean());
        assert!(r.violations[0].message.contains("before every PE"));
        let missing = vec![
            ev(0, 0, NO_LINK, EventKind::BarrierStart, 1, [0, 0]),
            ev(1, 0, NO_LINK, EventKind::BarrierEnd, 1, [0, 0]),
        ];
        let r = check(&missing, 2);
        assert!(r.violations[0].message.contains("never entered"));
    }

    #[test]
    fn per_pe_epochs_must_increase() {
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::BarrierStart, 2, [0, 0]),
            ev(1, 0, NO_LINK, EventKind::BarrierStart, 1, [0, 0]),
        ];
        let r = check(&t, 1);
        assert!(!r.is_clean());
        assert!(r.violations[0].message.contains("after epoch"));
    }

    #[test]
    fn put_tx_on_down_link_is_flagged_and_recovery_clears_it() {
        let broken = vec![
            ev(0, 0, 1, EventKind::LinkDown, 0, [0, 0]),
            ev(1, 0, 1, EventKind::PutChunkTx, 4, [1, 64]),
            ev(2, 0, NO_LINK, EventKind::PutIssue, 4, [1, 64]),
            ev(3, 0, NO_LINK, EventKind::PutAcked, 4, [1, 0]),
        ];
        let r = check(&broken, 2);
        assert!(r.violations.iter().any(|v| v.invariant == "down-link-discipline"));
        let recovered = vec![
            ev(0, 0, NO_LINK, EventKind::PutIssue, 4, [1, 64]),
            ev(1, 0, 1, EventKind::LinkDown, 0, [0, 0]),
            ev(2, 0, 1, EventKind::LinkUp, 0, [0, 0]),
            ev(3, 0, 1, EventKind::PutChunkTx, 4, [1, 64]),
            ev(4, 0, NO_LINK, EventKind::PutAcked, 4, [1, 0]),
        ];
        assert!(check(&recovered, 2).is_clean());
    }

    #[test]
    fn down_state_is_per_pe_and_per_link() {
        // PE 0 holds link 1 down; PE 1 transmitting on link 1 is fine,
        // and PE 0 transmitting on link 0 is fine.
        let t = vec![
            ev(0, 0, 1, EventKind::LinkDown, 0, [0, 0]),
            ev(1, 1, 1, EventKind::PutChunkTx, 9, [0, 64]),
            ev(2, 0, 0, EventKind::PutChunkTx, 8, [1, 64]),
            ev(3, 0, NO_LINK, EventKind::PutIssue, 8, [1, 64]),
            ev(4, 1, NO_LINK, EventKind::PutIssue, 9, [0, 64]),
            ev(5, 0, NO_LINK, EventKind::PutAcked, 8, [0, 0]),
            ev(6, 1, NO_LINK, EventKind::PutAcked, 9, [0, 0]),
        ];
        assert!(check(&t, 2).is_clean());
    }

    #[test]
    fn truncated_log_is_refused() {
        let log = EventLog::new(1, 16);
        log.enable();
        for i in 0..40u64 {
            log.emit(0, NO_LINK, EventKind::SpadWrite, i, [0, 0]);
        }
        let r = check_log(&log, 1);
        assert!(r.violations.iter().any(|v| v.invariant == "trace-complete"));
    }

    #[test]
    fn clean_slot_batch_passes() {
        // PE 0 publishes 3 slots on link 0, rings one coalesced doorbell,
        // PE 1 drains all three. An extra undrained publish (a trailing
        // batch) is legal.
        let t = vec![
            ev(0, 0, 0, EventKind::SlotPublish, 0, [64, 0]),
            ev(1, 0, 0, EventKind::SlotPublish, 1, [64, 1]),
            ev(2, 0, 0, EventKind::SlotPublish, 2, [64, 2]),
            ev(3, 0, 0, EventKind::DoorbellCoalesce, 0, [3, 0]),
            ev(4, 1, 0, EventKind::SlotDrain, 0, [0, 0]),
            ev(5, 1, 0, EventKind::SlotDrain, 1, [0, 1]),
            ev(6, 1, 0, EventKind::SlotDrain, 2, [0, 2]),
            ev(7, 0, 0, EventKind::SlotPublish, 3, [64, 3]),
        ];
        let r = check(&t, 2);
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.slots_checked, 4);
    }

    #[test]
    fn empty_coalesced_doorbell_is_flagged() {
        let t = vec![
            ev(0, 0, 0, EventKind::SlotPublish, 0, [64, 0]),
            ev(1, 0, 0, EventKind::DoorbellCoalesce, 0, [0, 0]),
        ];
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "slot-coalescing");
        assert!(r.violations[0].message.contains("zero slots"));
    }

    #[test]
    fn doorbell_covering_unpublished_slots_is_flagged() {
        let t = vec![
            ev(0, 0, 0, EventKind::SlotPublish, 0, [64, 0]),
            ev(1, 0, 0, EventKind::DoorbellCoalesce, 0, [2, 0]),
        ];
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(
            r.violations[0].message.contains("cover 2 slots but only 1"),
            "{}",
            r.violations[0].message
        );
    }

    #[test]
    fn double_drained_slot_is_flagged() {
        let t = vec![
            ev(0, 0, 0, EventKind::SlotPublish, 5, [64, 1]),
            ev(1, 0, 0, EventKind::DoorbellCoalesce, 5, [1, 0]),
            ev(2, 1, 0, EventKind::SlotDrain, 5, [0, 1]),
            ev(3, 1, 0, EventKind::SlotDrain, 5, [0, 1]),
        ];
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("drained 2 times"));
    }

    #[test]
    fn drain_without_publish_is_flagged() {
        let t = vec![ev(0, 1, 0, EventKind::SlotDrain, 9, [0, 1])];
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("without a matching publish"));
    }

    #[test]
    fn slot_rings_are_scoped_per_sender_and_link() {
        // Two senders reuse slot seq 0 on different links; each drain
        // resolves against its own ring.
        let t = vec![
            ev(0, 0, 0, EventKind::SlotPublish, 0, [8, 0]),
            ev(1, 2, 1, EventKind::SlotPublish, 0, [8, 0]),
            ev(2, 0, 0, EventKind::DoorbellCoalesce, 0, [1, 0]),
            ev(3, 2, 1, EventKind::DoorbellCoalesce, 0, [1, 0]),
            ev(4, 1, 0, EventKind::SlotDrain, 0, [0, 0]),
            ev(5, 1, 1, EventKind::SlotDrain, 0, [2, 0]),
        ];
        let r = check(&t, 3);
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.slots_checked, 2);
    }

    #[test]
    fn put_tx_at_known_dead_pe_is_flagged() {
        // PE 0 declares PE 2 dead (epoch 1), then still transmits at it.
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PeDead, 1, [2, 0]),
            ev(1, 0, NO_LINK, EventKind::MembershipUpdate, 1, [0b1011, 0]),
            ev(2, 0, 0, EventKind::PutChunkTx, 9, [2, 64]),
            ev(3, 0, NO_LINK, EventKind::PutIssue, 9, [2, 64]),
            ev(4, 0, NO_LINK, EventKind::PutAbandon, 9, [0, 2]),
        ];
        let r = check(&t, 4);
        assert!(r.violations.iter().any(|v| v.invariant == "dead-pe-discipline"));
    }

    #[test]
    fn dead_pe_knowledge_is_per_sender_and_rejoin_clears_it() {
        // PE 0 knows PE 2 is dead; PE 1 does not (its gossip hasn't
        // landed), so PE 1's transmit is legal. After PE 0 sees the
        // rejoin, its transmits are legal again.
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PeDead, 1, [2, 0]),
            ev(1, 1, 0, EventKind::PutChunkTx, 5, [2, 64]),
            ev(2, 0, NO_LINK, EventKind::PeRejoin, 2, [2, 1]),
            ev(3, 0, 0, EventKind::PutChunkTx, 6, [2, 64]),
            ev(4, 0, NO_LINK, EventKind::PutIssue, 6, [2, 64]),
            ev(5, 1, NO_LINK, EventKind::PutIssue, 5, [2, 64]),
            ev(6, 0, NO_LINK, EventKind::PutAcked, 6, [2, 0]),
            ev(7, 1, NO_LINK, EventKind::PutAcked, 5, [2, 0]),
        ];
        let r = check(&t, 4);
        assert!(r.is_clean(), "{}", r.render_violations());
    }

    #[test]
    fn membership_epoch_regression_is_flagged() {
        let clean = vec![
            ev(0, 0, NO_LINK, EventKind::MembershipUpdate, 1, [0b1011, 0]),
            ev(1, 0, NO_LINK, EventKind::MembershipUpdate, 2, [0b1111, 0b100]),
            ev(2, 1, NO_LINK, EventKind::MembershipUpdate, 1, [0b1011, 0]),
        ];
        let r = check(&clean, 4);
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.membership_updates_checked, 3);
        let broken = vec![
            ev(0, 0, NO_LINK, EventKind::MembershipUpdate, 2, [0b1111, 0]),
            ev(1, 0, NO_LINK, EventKind::MembershipUpdate, 2, [0b1011, 0]),
        ];
        let r = check(&broken, 4);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "membership-epoch-monotone");
    }

    #[test]
    fn dead_pe_is_excused_from_barriers_it_missed() {
        // PE 2 dies; PEs 0 and 1 complete epoch 1 degraded without it.
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PeDead, 1, [2, 0]),
            ev(1, 0, NO_LINK, EventKind::BarrierStart, 1, [0, 0]),
            ev(2, 1, NO_LINK, EventKind::BarrierStart, 1, [0, 0]),
            ev(3, 0, NO_LINK, EventKind::BarrierEnd, 1, [0, 0]),
            ev(4, 1, NO_LINK, EventKind::BarrierEnd, 1, [0, 0]),
        ];
        let r = check(&t, 3);
        assert!(r.is_clean(), "{}", r.render_violations());
        // Without the death, the same trace is a violation.
        let r = check(&t[1..], 3);
        assert!(r.violations.iter().any(|v| v.message.contains("never entered")));
    }

    #[test]
    fn barrier_excuse_ends_when_the_pe_rejoins() {
        // PE 2's dead interval closes before epoch 5 begins, so missing
        // that barrier is a real violation again.
        let t = vec![
            ev(0, 0, NO_LINK, EventKind::PeDead, 1, [2, 0]),
            ev(1, 0, NO_LINK, EventKind::PeRejoin, 2, [2, 1]),
            ev(2, 0, NO_LINK, EventKind::BarrierStart, 5, [0, 0]),
            ev(3, 1, NO_LINK, EventKind::BarrierStart, 5, [0, 0]),
            ev(4, 0, NO_LINK, EventKind::BarrierEnd, 5, [0, 0]),
            ev(5, 1, NO_LINK, EventKind::BarrierEnd, 5, [0, 0]),
        ];
        let r = check(&t, 3);
        assert!(r.violations.iter().any(|v| v.message.contains("never entered")));
    }

    #[test]
    fn overload_bounds_certify_clean_trace_and_catch_tampering() {
        // A healthy overload episode: admissions inside capacity, credits
        // conserved, grants monotone, one shed (sheds are legal — they
        // are the mechanism, not a violation).
        let clean = vec![
            ev(0, 0, 0, EventKind::CreditGrant, 0, [16, 0]),
            ev(1, 1, 0, EventKind::CreditConsume, 1, [1, 16]),
            ev(2, 1, 0, EventKind::QueueEnqueue, 1, [1, 4]),
            ev(3, 1, 0, EventKind::QueueEnqueue, 2, [4, 4]),
            ev(4, 1, 0, EventKind::OverloadShed, 3, [4, 4]),
            ev(5, 0, 0, EventKind::CreditGrant, 0, [18, 0]),
            ev(6, 1, 0, EventKind::CreditConsume, 4, [2, 18]),
        ];
        let r = check(&clean, 2);
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.overload_events_checked, 6);

        // Tampering control 1: an admission past capacity must be caught.
        let mut t = clean.clone();
        t[3] = ev(3, 1, 0, EventKind::QueueEnqueue, 2, [5, 4]);
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "overload-bounds");
        assert!(r.violations[0].message.contains("past its capacity"));

        // Tampering control 2: consuming more credits than ever granted.
        let mut t = clean.clone();
        t[6] = ev(6, 1, 0, EventKind::CreditConsume, 4, [19, 18]);
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("were ever granted"));

        // Tampering control 3: a regressing cumulative grant.
        let mut t = clean;
        t[5] = ev(5, 0, 0, EventKind::CreditGrant, 0, [15, 0]);
        t[6] = ev(6, 1, 0, EventKind::CreditConsume, 4, [2, 16]);
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("regressed"));
    }

    #[test]
    fn credit_grants_are_scoped_per_endpoint() {
        // Different (pe, link) endpoints carry independent cumulative
        // totals; a lower total on another endpoint is not a regression.
        let t = vec![
            ev(0, 0, 0, EventKind::CreditGrant, 0, [100, 0]),
            ev(1, 1, 1, EventKind::CreditGrant, 0, [5, 0]),
            ev(2, 0, 0, EventKind::CreditGrant, 0, [101, 0]),
        ];
        let r = check(&t, 2);
        assert!(r.is_clean(), "{}", r.render_violations());
    }

    #[test]
    fn deadline_admission_certifies_clean_trace_and_catches_tampering() {
        // Transmissions at and before the deadline are legal; sheds of
        // expired work are the expected shape, not violations.
        let clean = vec![
            ev(0, 0, 0, EventKind::DeadlineTx, 1, [1000, 400]),
            ev(1, 1, 0, EventKind::DeadlineTx, 1, [1000, 1000]),
            ev(2, 1, 0, EventKind::DeadlineShed, 2, [500, 900]),
        ];
        let r = check(&clean, 2);
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.deadline_tx_checked, 2);

        // Tampering control: forwarding a frame 250µs past its deadline.
        let mut t = clean;
        t[1] = ev(1, 1, 0, EventKind::DeadlineTx, 1, [1000, 1250]);
        let r = check(&t, 2);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "deadline-admission");
        assert!(r.violations[0].message.contains("250µs past its deadline"));
        assert!(!r.violations[0].window.is_empty());
    }

    #[test]
    fn empty_trace_is_clean() {
        let r = check(&[], 4);
        assert!(r.is_clean());
        assert_eq!(r.events, 0);
    }

    #[test]
    fn violation_window_carries_context() {
        let mut t: Vec<TraceEvent> =
            (0..40).map(|i| ev(i, 0, NO_LINK, EventKind::SpadWrite, 1000 + i, [0, 0])).collect();
        t.push(ev(40, 0, NO_LINK, EventKind::PutIssue, 7, [1, 64]));
        let r = check(&t, 1);
        assert_eq!(r.violations.len(), 1);
        let w = &r.violations[0].window;
        assert!(w.iter().any(|e| e.kind == EventKind::PutIssue));
        assert!(w.len() > 1, "window should carry surrounding context");
        let rendered = r.violations[0].render();
        assert!(rendered.contains("put_issue"), "{rendered}");
    }
}
