//! Interconnect configuration.

use std::time::Duration;

use ntb_sim::{FaultPlan, TimeModel};

/// Retry/recovery knobs for the lossy-link protocol: how long to wait for
/// a positive acknowledgement, how many retransmissions to attempt, and
/// how the backoff between them grows. The defaults are deliberately
/// generous relative to simulated wire latencies (microseconds) so a
/// fault-free run never trips a spurious retransmit, yet bound every
/// blocking call: with the default policy an unreachable peer surfaces
/// `LinkFailed` in well under ten seconds instead of hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long an unacknowledged put (or outstanding Get/AMO response)
    /// may age before it is retransmitted.
    pub ack_timeout: Duration,
    /// Retransmissions to attempt after the initial send before the
    /// operation is declared failed.
    pub max_retries: u32,
    /// Backoff added to `ack_timeout` after the first retransmission;
    /// doubles per attempt.
    pub backoff_base: Duration,
    /// Cap on the exponential backoff.
    pub backoff_max: Duration,
    /// How often a `Down` link endpoint is probed for recovery.
    pub probe_interval: Duration,
    /// How long a sender spins on a full mailbox slot before re-ringing
    /// the last doorbell (recovers a dropped interrupt).
    pub mailbox_timeout: Duration,
    /// Consecutive transient failures before a link endpoint is marked
    /// `Down` and traffic reroutes around it.
    pub failure_threshold: u32,
}

impl RetryPolicy {
    /// Backoff for the given retransmission attempt (0-based):
    /// `backoff_base * 2^attempt`, capped at `backoff_max`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shifted = self
            .backoff_base
            .checked_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .unwrap_or(self.backoff_max);
        shifted.min(self.backoff_max)
    }

    /// Rough upper bound on how long an operation can stay pending before
    /// `LinkFailed` surfaces: every attempt's timeout plus every backoff.
    pub fn worst_case(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 0..=self.max_retries {
            total += self.ack_timeout + self.backoff(attempt);
        }
        total
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ack_timeout: Duration::from_millis(200),
            max_retries: 5,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_millis(400),
            probe_interval: Duration::from_millis(50),
            mailbox_timeout: Duration::from_millis(100),
            failure_threshold: 3,
        }
    }
}

/// Overload-survival knobs: bounded queues, credit-based flow control and
/// the retransmission token bucket (DESIGN.md §14). The defaults are
/// generous — sized so a fault-free functional run never sheds — while
/// still bounding every queue and retry stream; overload benches and
/// chaos cells shrink them deliberately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Bound on each per-link forward queue (jobs). Every transmit-path
    /// queue must be bounded; this is the main staging bound.
    pub forward_queue_cap: usize,
    /// Forward-queue occupancy at/above which the endpoint reports
    /// congestion and stops advertising credits to its peer sender.
    pub high_watermark: usize,
    /// Occupancy at/below which congestion clears (hysteresis).
    pub low_watermark: usize,
    /// Frames' worth of credit a receiver advertises to each peer sender
    /// at bring-up, re-granted one per drained frame.
    pub credit_window: u64,
    /// Token-bucket retry budget: sustained retransmissions per second
    /// per link the sweeper may issue.
    pub retry_budget_rate: f64,
    /// Retry token-bucket burst capacity (and initial fill).
    pub retry_budget_burst: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            forward_queue_cap: 1024,
            high_watermark: 768,
            low_watermark: 512,
            credit_window: 256,
            retry_budget_rate: 500.0,
            retry_budget_burst: 250,
        }
    }
}

impl OverloadConfig {
    /// Validate invariants; panics with a descriptive message on misuse.
    pub fn validate(&self) {
        assert!(self.forward_queue_cap >= 1, "forward queue capacity must be at least 1");
        assert!(
            self.low_watermark <= self.high_watermark
                && self.high_watermark <= self.forward_queue_cap,
            "watermarks must satisfy low <= high <= capacity"
        );
        assert!(self.credit_window >= 1, "credit window must be at least 1 frame");
        assert!(
            self.retry_budget_rate > 0.0 && self.retry_budget_burst >= 1,
            "retry budget needs a positive rate and burst"
        );
    }
}

/// Configuration of the switchless ring network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of hosts in the ring (1..=64; the paper's testbed has 3).
    pub hosts: usize,
    /// Interconnect shape: the paper's switchless ring, or the
    /// switch-emulating full mesh used as the comparison baseline.
    pub topology: crate::topology::Topology,
    /// Incoming window size per link (power of two). Must hold the direct
    /// and bypass areas.
    pub window_size: u64,
    /// Direct buffer size: payload area for traffic terminating at this
    /// host. Also the put chunk size.
    pub direct_buf: u64,
    /// Bypass buffer size: payload area for traffic this host forwards
    /// (paper §III-B1 allocates it at init).
    pub bypass_buf: u64,
    /// Chunk size for streaming Get responses.
    pub get_resp_chunk: u64,
    /// Largest byte range one Get *request* frame asks for: a bigger get
    /// is split into independent sub-requests that the pipeline keeps in
    /// flight concurrently (each sub-request's response still streams in
    /// `get_resp_chunk` pieces).
    pub get_req_chunk: u64,
    /// Default number of get sub-requests kept in flight per operation
    /// (the pipeline window). 1 degenerates to the paper prototype's
    /// stop-and-wait behaviour. Per-op override via `OpOptions` upstack.
    pub get_window: usize,
    /// DMA channels per NTB adapter.
    pub dma_channels: usize,
    /// Simulated physical memory per host.
    pub host_mem_capacity: u64,
    /// The timing model all hardware shares.
    pub model: TimeModel,
    /// Retry/recovery policy for the lossy-link protocol.
    pub retry: RetryPolicy,
    /// Overload-survival tuning: queue bounds, credits, retry budget.
    pub overload: OverloadConfig,
    /// Heartbeat failure-detector tuning (whole-PE death, not link loss).
    pub heartbeat: crate::membership::HeartbeatConfig,
    /// Fault-injection plan applied to every link (empty = clean links).
    pub faults: FaultPlan,
    /// Enable the coalescing transmit ring: terminating puts/acks publish
    /// into mailbox ring slots and a whole drained batch rings one
    /// doorbell. Off = legacy one-doorbell-per-frame scratchpad path.
    pub coalesce: bool,
    /// Transmit-ring slots per link direction.
    pub tx_slots: u32,
    /// Published slots that force a flush (capped by `tx_slots`).
    pub coalesce_batch: u32,
    /// Largest payload a ring slot's lane carries; bigger frames fall
    /// back to the scratchpad path.
    pub coalesce_payload_max: u64,
    /// Payloads at or below this move by zero-copy PIO writes even in
    /// DMA mode — the paper's Fig. 9 DMA/PIO crossover, applied on the
    /// ring fast path.
    pub pio_crossover: u64,
}

impl NetConfig {
    /// Paper-scale configuration with `hosts` hosts.
    pub fn paper(hosts: usize) -> Self {
        NetConfig { hosts, ..Self::default() }
    }

    /// Fast functional configuration (no injected delays) for tests.
    pub fn fast(hosts: usize) -> Self {
        NetConfig { hosts, model: TimeModel::zero(), ..Self::default() }
    }

    /// Override the timing model.
    pub fn with_model(mut self, model: TimeModel) -> Self {
        self.model = model;
        self
    }

    /// Override direct/bypass buffer sizes (put chunking granularity).
    pub fn with_buffers(mut self, direct: u64, bypass: u64) -> Self {
        self.direct_buf = direct;
        self.bypass_buf = bypass;
        self
    }

    /// Override the get response chunk size.
    pub fn with_get_chunk(mut self, chunk: u64) -> Self {
        self.get_resp_chunk = chunk;
        self
    }

    /// Override the get pipeline geometry: sub-request size and how many
    /// sub-requests stay in flight per operation.
    pub fn with_get_pipeline(mut self, req_chunk: u64, window: usize) -> Self {
        self.get_req_chunk = req_chunk;
        self.get_window = window;
        self
    }

    /// Override the interconnect topology.
    pub fn with_topology(mut self, topology: crate::topology::Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Override the retry/recovery policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Override the overload-survival tuning.
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }

    /// Override the heartbeat failure-detector tuning.
    pub fn with_heartbeat(mut self, heartbeat: crate::membership::HeartbeatConfig) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Install a fault-injection plan on every link.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enable or disable the coalescing transmit ring.
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Override the transmit-ring geometry (slot count and batch cap).
    pub fn with_tx_ring(mut self, slots: u32, batch: u32) -> Self {
        self.tx_slots = slots;
        self.coalesce_batch = batch;
        self
    }

    /// Override the DMA/PIO crossover for ring-path payloads.
    pub fn with_pio_crossover(mut self, bytes: u64) -> Self {
        self.pio_crossover = bytes;
        self
    }

    /// Effective batch cap: the configured cap bounded by the ring size.
    pub fn batch_cap(&self) -> u32 {
        self.coalesce_batch.clamp(1, self.tx_slots.max(1))
    }

    /// The put chunking granularity: a payload larger than this is split.
    /// Bounded by both areas because a chunk may need forwarding.
    pub fn put_chunk(&self) -> u64 {
        self.direct_buf.min(self.bypass_buf)
    }

    /// Validate invariants; panics with a descriptive message on misuse.
    pub fn validate(&self) {
        assert!(self.hosts >= 1 && self.hosts <= crate::frame::MAX_HOSTS + 1, "1..=64 hosts");
        assert!(self.window_size.is_power_of_two(), "window size must be a power of two");
        let (ring_slots, ring_lane) =
            if self.coalesce { (self.tx_slots, self.coalesce_payload_max) } else { (0, 0) };
        assert!(
            crate::layout::WindowLayout::required_size_with_ring(
                self.direct_buf,
                self.bypass_buf,
                ring_slots,
                ring_lane,
            ) <= self.window_size,
            "window too small for direct+bypass areas and the transmit ring"
        );
        if self.coalesce {
            assert!(self.tx_slots >= 1, "coalescing needs at least one transmit-ring slot");
            assert!(self.coalesce_batch >= 1, "coalesce batch must be at least one slot");
            assert!(
                self.coalesce_payload_max >= 4,
                "ring payload lane must hold at least one word"
            );
        }
        assert!(
            self.get_resp_chunk > 0 && self.get_resp_chunk <= self.put_chunk(),
            "get response chunk must fit the payload areas"
        );
        assert!(self.get_req_chunk >= 1, "get request chunk must be at least one byte");
        assert!(self.get_window >= 1, "get pipeline window must be at least 1");
        assert!(self.dma_channels >= 1, "need at least one DMA channel");
        self.overload.validate();
        if self.heartbeat.enabled {
            assert!(
                self.hosts <= 32,
                "the membership bitmap is one 32-bit scratchpad word; disable the heartbeat \
                 detector for rings beyond 32 hosts"
            );
            assert!(
                self.heartbeat.period > Duration::ZERO && self.heartbeat.miss_threshold >= 1,
                "heartbeat period and miss threshold must be positive"
            );
        }
        if let Some(declared) = self.topology.declared_hosts() {
            assert!(
                declared == self.hosts,
                "topology declares {declared} hosts but the config has {}",
                self.hosts
            );
        }
        if self.topology.shape() == crate::topology::Shape::Clique {
            assert!(self.hosts <= 16, "clique adapter slots are limited to 16 hosts");
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            hosts: 3,
            topology: crate::topology::Topology::default(),
            window_size: 4 << 20,
            direct_buf: 256 << 10,
            bypass_buf: 256 << 10,
            get_resp_chunk: 64 << 10,
            get_req_chunk: 256 << 10,
            get_window: 4,
            dma_channels: 1,
            host_mem_capacity: 512 << 20,
            model: TimeModel::paper(),
            retry: RetryPolicy::default(),
            overload: OverloadConfig::default(),
            heartbeat: crate::membership::HeartbeatConfig::default(),
            faults: FaultPlan::none(),
            coalesce: true,
            tx_slots: 8,
            coalesce_batch: 8,
            coalesce_payload_max: 4096,
            pio_crossover: 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        NetConfig::default().validate();
        NetConfig::fast(2).validate();
        NetConfig::paper(3).validate();
    }

    #[test]
    fn fast_has_no_delays() {
        assert!(!NetConfig::fast(3).model.enabled());
    }

    #[test]
    fn put_chunk_is_min_of_areas() {
        let c = NetConfig::default().with_buffers(128 << 10, 64 << 10).with_get_chunk(32 << 10);
        assert_eq!(c.put_chunk(), 64 << 10);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "window too small")]
    fn oversized_buffers_rejected() {
        let mut c = NetConfig::fast(3);
        c.direct_buf = 4 << 20;
        c.bypass_buf = 4 << 20;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_window_rejected() {
        let mut c = NetConfig::fast(3);
        c.window_size = 3 << 20;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "get response chunk")]
    fn oversized_get_chunk_rejected() {
        let c = NetConfig::fast(3).with_get_chunk(1 << 20);
        c.validate();
    }

    #[test]
    fn get_pipeline_knobs_validate() {
        let c = NetConfig::fast(3).with_get_pipeline(4096, 8);
        assert_eq!(c.get_req_chunk, 4096);
        assert_eq!(c.get_window, 8);
        c.validate();
        // Window 1 (stop-and-wait oracle) is legal.
        NetConfig::fast(3).with_get_pipeline(1, 1).validate();
    }

    #[test]
    #[should_panic(expected = "get pipeline window")]
    fn zero_get_window_rejected() {
        NetConfig::fast(3).with_get_pipeline(4096, 0).validate();
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(35),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(35));
        assert_eq!(p.backoff(31), Duration::from_millis(35));
    }

    #[test]
    fn worst_case_bounds_all_attempts() {
        let p = RetryPolicy::default();
        // One initial attempt + max_retries retransmissions, each bounded.
        assert!(p.worst_case() >= p.ack_timeout * (p.max_retries + 1));
        assert!(p.worst_case() < Duration::from_secs(30));
    }

    #[test]
    fn coalescing_knobs_validate() {
        let c = NetConfig::fast(3).with_tx_ring(4, 2).with_pio_crossover(512);
        assert!(c.coalesce);
        assert_eq!(c.batch_cap(), 2);
        c.validate();
        let off = NetConfig::fast(3).with_coalescing(false);
        off.validate();
        // Batch cap never exceeds the ring size.
        assert_eq!(NetConfig::fast(3).with_tx_ring(2, 16).batch_cap(), 2);
    }

    #[test]
    #[should_panic(expected = "transmit ring")]
    fn ring_counted_against_window_size() {
        let mut c = NetConfig::fast(3);
        c.window_size = 1 << 20;
        c.direct_buf = 512 << 10;
        c.bypass_buf = 512 << 10; // direct+bypass fill the window exactly
        c.validate();
    }

    #[test]
    fn overload_defaults_validate() {
        let o = OverloadConfig::default();
        o.validate();
        assert!(o.low_watermark <= o.high_watermark);
        assert!(o.high_watermark <= o.forward_queue_cap);
    }

    #[test]
    #[should_panic(expected = "low <= high <= capacity")]
    fn inverted_watermarks_rejected() {
        let o = OverloadConfig { high_watermark: 10, low_watermark: 20, ..Default::default() };
        o.validate();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn unbounded_forward_queue_rejected() {
        let o = OverloadConfig {
            forward_queue_cap: 0,
            high_watermark: 0,
            low_watermark: 0,
            ..Default::default()
        };
        o.validate();
    }

    #[test]
    fn default_faults_inactive() {
        assert!(!NetConfig::default().faults.is_active());
        let c = NetConfig::fast(3).with_faults(FaultPlan::none().with_doorbell_drop(0.01));
        assert!(c.faults.is_active());
        c.validate();
    }
}
