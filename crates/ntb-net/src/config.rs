//! Interconnect configuration.

use ntb_sim::TimeModel;

/// Configuration of the switchless ring network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of hosts in the ring (1..=64; the paper's testbed has 3).
    pub hosts: usize,
    /// Interconnect shape: the paper's switchless ring, or the
    /// switch-emulating full mesh used as the comparison baseline.
    pub topology: crate::topology::Topology,
    /// Incoming window size per link (power of two). Must hold the direct
    /// and bypass areas.
    pub window_size: u64,
    /// Direct buffer size: payload area for traffic terminating at this
    /// host. Also the put chunk size.
    pub direct_buf: u64,
    /// Bypass buffer size: payload area for traffic this host forwards
    /// (paper §III-B1 allocates it at init).
    pub bypass_buf: u64,
    /// Chunk size for streaming Get responses.
    pub get_resp_chunk: u64,
    /// DMA channels per NTB adapter.
    pub dma_channels: usize,
    /// Simulated physical memory per host.
    pub host_mem_capacity: u64,
    /// The timing model all hardware shares.
    pub model: TimeModel,
}

impl NetConfig {
    /// Paper-scale configuration with `hosts` hosts.
    pub fn paper(hosts: usize) -> Self {
        NetConfig { hosts, ..Self::default() }
    }

    /// Fast functional configuration (no injected delays) for tests.
    pub fn fast(hosts: usize) -> Self {
        NetConfig { hosts, model: TimeModel::zero(), ..Self::default() }
    }

    /// Override the timing model.
    pub fn with_model(mut self, model: TimeModel) -> Self {
        self.model = model;
        self
    }

    /// Override direct/bypass buffer sizes (put chunking granularity).
    pub fn with_buffers(mut self, direct: u64, bypass: u64) -> Self {
        self.direct_buf = direct;
        self.bypass_buf = bypass;
        self
    }

    /// Override the get response chunk size.
    pub fn with_get_chunk(mut self, chunk: u64) -> Self {
        self.get_resp_chunk = chunk;
        self
    }

    /// Override the interconnect topology.
    pub fn with_topology(mut self, topology: crate::topology::Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The put chunking granularity: a payload larger than this is split.
    /// Bounded by both areas because a chunk may need forwarding.
    pub fn put_chunk(&self) -> u64 {
        self.direct_buf.min(self.bypass_buf)
    }

    /// Validate invariants; panics with a descriptive message on misuse.
    pub fn validate(&self) {
        assert!(self.hosts >= 1 && self.hosts <= crate::frame::MAX_HOSTS + 1, "1..=64 hosts");
        assert!(self.window_size.is_power_of_two(), "window size must be a power of two");
        assert!(
            crate::layout::WindowLayout::required_size(self.direct_buf, self.bypass_buf)
                <= self.window_size,
            "window too small for direct+bypass areas"
        );
        assert!(self.get_resp_chunk > 0 && self.get_resp_chunk <= self.put_chunk(),
            "get response chunk must fit the payload areas");
        assert!(self.dma_channels >= 1, "need at least one DMA channel");
        if self.topology == crate::topology::Topology::FullMesh {
            assert!(self.hosts <= 16, "mesh adapter slots are limited to 16 hosts");
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            hosts: 3,
            topology: crate::topology::Topology::Ring,
            window_size: 4 << 20,
            direct_buf: 256 << 10,
            bypass_buf: 256 << 10,
            get_resp_chunk: 64 << 10,
            dma_channels: 1,
            host_mem_capacity: 512 << 20,
            model: TimeModel::paper(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        NetConfig::default().validate();
        NetConfig::fast(2).validate();
        NetConfig::paper(3).validate();
    }

    #[test]
    fn fast_has_no_delays() {
        assert!(!NetConfig::fast(3).model.enabled());
    }

    #[test]
    fn put_chunk_is_min_of_areas() {
        let c = NetConfig::default().with_buffers(128 << 10, 64 << 10).with_get_chunk(32 << 10);
        assert_eq!(c.put_chunk(), 64 << 10);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "window too small")]
    fn oversized_buffers_rejected() {
        let mut c = NetConfig::fast(3);
        c.direct_buf = 4 << 20;
        c.bypass_buf = 4 << 20;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_window_rejected() {
        let mut c = NetConfig::fast(3);
        c.window_size = 3 << 20;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "get response chunk")]
    fn oversized_get_chunk_rejected() {
        let c = NetConfig::fast(3).with_get_chunk(1 << 20);
        c.validate();
    }
}
