//! Whole-PE failure detection and ring membership.
//!
//! The lossy-link layer (`LinkHealthTracker`) recovers from *link* faults:
//! a cable that drops frames still has a live host on each end that
//! retransmits. A crashed or powered-off host is different — every link
//! adjacent to it keeps negotiating electrically, but nothing on the far
//! side ever answers. This module adds the node-level failure story:
//!
//! * **Heartbeats** — each service thread stamps a liveness counter into a
//!   dedicated scratchpad block on every link, on a configurable period.
//! * **Failure detector** — a neighbour whose beat stalls for
//!   `miss_threshold` periods becomes *suspect*; if a confirmation probe
//!   (a doorbell ring, which succeeds against a dead host but fails with
//!   `LinkDown` against a faulted cable) rules out a link fault and the
//!   beat stays frozen past `confirm_grace`, the neighbour is declared
//!   dead.
//! * **Membership** — an epoch-stamped live bitmap ([`MembershipView`]),
//!   gossiped ring-wide through the same scratchpad block plus a dedicated
//!   doorbell ([`crate::doorbells::DB_GOSSIP`]). Views with a strictly
//!   greater epoch win; every local change bumps the epoch.
//! * **Rejoin** — a restarted PE publishes a rejoin request (its beat word
//!   with the top bit set and a config-derived signature in the low bits);
//!   the neighbour validates the signature, purges its duplicate-
//!   suppression state for that PE, and gossips the PE back in at a new
//!   epoch. A *thawed* (frozen-then-resumed) PE needs no purge — its state
//!   survived — so its beats simply resuming is enough to rejoin it.
//!
//! ## Scratchpad layout
//!
//! The heartbeat block lives in scratchpad registers 8..16, above the
//! mailbox bank (0..8), split by direction exactly like the mailboxes:
//! the upstream side transmits in 8..12, the downstream side in 12..16.
//!
//! | offset | content |
//! |--------|---------|
//! | `+0`   | beat word: bit 31 = rejoin request, low 31 bits = counter (or rejoin signature) |
//! | `+1`   | membership epoch (low 32 bits) |
//! | `+2`   | live bitmap (bit *i* = host *i* believed alive) |
//! | `+3`   | crash bitmap (bit *i* = host *i*'s latest rejoin was a crash-restart) |
//!
//! The crash bitmap tells adopters whether a dead→alive transition must
//! purge duplicate-suppression state for that PE (crash lost the PE's own
//! dedup tables, so retransmits would otherwise double-apply) or must keep
//! it (a thaw preserved the tables; purging would double-apply AMOs).

use std::time::{Duration, Instant};

use ntb_sim::LinkDirection;
use parking_lot::{RwLock, RwLockReadGuard};

/// Heartbeat / failure-detector tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Master switch. Disabled = no beats, no detector, static membership.
    pub enabled: bool,
    /// How often each service thread stamps its beat and samples its
    /// neighbour's.
    pub period: Duration,
    /// Consecutive unchanged samples of a neighbour's beat before it
    /// becomes suspect.
    pub miss_threshold: u32,
    /// After suspicion, how long the beat must stay frozen (with the
    /// confirmation probe ruling out a link fault) before the neighbour
    /// is declared dead. Guards against scheduling hiccups.
    pub confirm_grace: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            enabled: true,
            period: Duration::from_millis(500),
            miss_threshold: 4,
            confirm_grace: Duration::from_millis(1500),
        }
    }
}

impl HeartbeatConfig {
    /// Aggressive timings for tests: detect a dead neighbour in tens of
    /// milliseconds instead of seconds.
    pub fn fast() -> Self {
        HeartbeatConfig {
            enabled: true,
            period: Duration::from_millis(20),
            miss_threshold: 3,
            confirm_grace: Duration::from_millis(60),
        }
    }

    /// Turn the detector off (static membership, as before this module).
    pub fn disabled() -> Self {
        HeartbeatConfig { enabled: false, ..Self::default() }
    }

    /// Earliest a dead neighbour can be *confirmed* dead: the misses that
    /// raise suspicion plus the confirmation grace.
    pub fn detection_floor(&self) -> Duration {
        self.period * self.miss_threshold + self.confirm_grace
    }
}

/// Register offsets inside the heartbeat block.
pub const HB_BEAT: usize = 0;
/// Epoch register offset.
pub const HB_EPOCH: usize = 1;
/// Live-bitmap register offset.
pub const HB_LIVE: usize = 2;
/// Crash-bitmap register offset.
pub const HB_CRASH: usize = 3;
/// Registers per directional heartbeat block.
pub const HB_BLOCK_LEN: usize = 4;

/// Bit 31 of the beat word marks a rejoin request; the low 31 bits then
/// carry [`rejoin_signature`] instead of a counter.
pub const REJOIN_FLAG: u32 = 1 << 31;

/// Transmit base of the heartbeat block for a port facing `dir`. Mirrors
/// the mailbox convention (upstream writes the lower half) shifted above
/// the mailbox bank.
pub fn hb_tx_base(dir: LinkDirection) -> usize {
    match dir {
        LinkDirection::Upstream => 8,
        LinkDirection::Downstream => 12,
    }
}

/// Receive base: where the *peer* of a port facing `dir` transmits.
pub fn hb_rx_base(dir: LinkDirection) -> usize {
    match dir {
        LinkDirection::Upstream => 12,
        LinkDirection::Downstream => 8,
    }
}

/// Signature a restarting PE publishes in its rejoin request. Derived
/// from stable configuration both sides know, so a neighbour can tell a
/// genuine rejoin from scratchpad garbage. Low bit forced so the word is
/// never zero (zero means "no beat yet").
pub fn rejoin_signature(me: usize, hosts: usize) -> u32 {
    let h = (me as u32)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add((hosts as u32).wrapping_mul(0x85EB_CA6B));
    (h & 0x7FFF_FFFE) | 1
}

/// An epoch-stamped snapshot of ring membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipView {
    /// Monotone version counter; every membership change bumps it. Views
    /// gossip ring-wide and a strictly greater epoch wins.
    pub epoch: u64,
    /// Bit *i* set = host *i* believed alive.
    pub live: u32,
    /// Bit *i* set = host *i*'s latest rejoin was a crash-restart (its
    /// dedup state was lost; adopters must purge theirs for it).
    pub crash_flags: u32,
}

impl MembershipView {
    /// The boot view: everyone alive, epoch zero.
    pub fn all_live(hosts: usize) -> Self {
        let live = if hosts >= 32 { u32::MAX } else { (1u32 << hosts) - 1 };
        MembershipView { epoch: 0, live, crash_flags: 0 }
    }

    /// Is `pe` alive in this view? The bitmap is one 32-bit scratchpad
    /// word, so only PEs 0..32 are tracked; beyond that the heartbeat
    /// detector is disabled by config validation and untracked PEs are
    /// presumed alive rather than presumed dead.
    pub fn is_live(&self, pe: usize) -> bool {
        pe >= 32 || self.live & (1 << pe) != 0
    }

    /// The live PEs in ascending order (PEs ≥ 32 are untracked and
    /// always reported live).
    pub fn live_pes(&self, hosts: usize) -> Vec<usize> {
        (0..hosts).filter(|&pe| self.is_live(pe)).collect()
    }

    /// Number of live PEs.
    pub fn live_count(&self, hosts: usize) -> usize {
        let tracked = hosts.min(32);
        let mask = if tracked >= 32 { u32::MAX } else { (1u32 << tracked) - 1 };
        (self.live & mask).count_ones() as usize + hosts.saturating_sub(32)
    }
}

/// The shared membership state of one node, behind a reader-writer lock.
///
/// Readers are the hot paths: every put/get/AMO consults the live bitmap,
/// and the transmit path *pins* a read guard across the send so that a
/// concurrent death declaration (a write) linearizes strictly after every
/// send that passed its liveness check — the trace checker's "no frame to
/// a dead PE after its death is known" invariant holds exactly, not just
/// probabilistically.
///
/// Deliberately holds no `Obs` handle and (except for the deliberate
/// transmit pin) takes no other lock while its own is held: every method
/// snapshots, mutates, and releases. Event emission and reactions
/// (failing pending ops, gossiping) belong to the caller, outside the
/// lock.
pub struct Membership {
    me: usize,
    hosts: usize,
    state: RwLock<MembershipView>,
}

impl Membership {
    /// Boot-time membership: everyone alive.
    pub fn new(me: usize, hosts: usize) -> Self {
        Membership { me, hosts, state: RwLock::new(MembershipView::all_live(hosts)) }
    }

    fn read(&self) -> RwLockReadGuard<'_, MembershipView> {
        crate::lockdep_track!(&crate::lockdep::NET_MEMBERSHIP);
        self.state.read()
    }

    fn write(&self) -> parking_lot::RwLockWriteGuard<'_, MembershipView> {
        crate::lockdep_track!(&crate::lockdep::NET_MEMBERSHIP);
        self.state.write()
    }

    /// Pin the current view for the duration of a transmit: while the
    /// returned guard lives, no death (or rejoin) can be declared, so a
    /// send gated on `guard.is_live(dest)` is ordered strictly before any
    /// `PeDead` the declaring thread emits after its write completes.
    ///
    /// Does NOT place its own lockdep tracking guard (it could not outlive
    /// this call); the caller tracks `NET_MEMBERSHIP` at the call site.
    /// Never call another `Membership` method while holding the pin —
    /// parking_lot readers are not reentrant once a writer queues.
    pub fn pin(&self) -> RwLockReadGuard<'_, MembershipView> {
        self.state.read()
    }

    /// Snapshot the current view.
    pub fn view(&self) -> MembershipView {
        *self.read()
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.read().epoch
    }

    /// Is `pe` alive in the current view?
    pub fn is_live(&self, pe: usize) -> bool {
        self.read().is_live(pe)
    }

    /// The live PEs in ascending order.
    pub fn live_pes(&self) -> Vec<usize> {
        self.read().live_pes(self.hosts)
    }

    /// Host count this membership tracks.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Declare `pe` dead. Returns the new view if this was a change, or
    /// `None` if `pe` was already dead (e.g. both neighbours confirmed
    /// independently). Clears the PE's crash flag — whether its *next*
    /// incarnation lost state is decided at rejoin time.
    pub fn mark_dead(&self, pe: usize) -> Option<MembershipView> {
        let mut st = self.write();
        if pe >= 32 || !st.is_live(pe) || pe == self.me {
            return None;
        }
        st.live &= !(1 << pe);
        st.crash_flags &= !(1 << pe);
        st.epoch += 1;
        Some(*st)
    }

    /// Declare `pe` alive again. `crashed` records whether this rejoin is
    /// a crash-restart (dedup state lost — adopters must purge) or a thaw
    /// (state intact — adopters must NOT purge). Returns the new view if
    /// this was a change.
    pub fn mark_alive(&self, pe: usize, crashed: bool) -> Option<MembershipView> {
        let mut st = self.write();
        if pe >= 32 || st.is_live(pe) {
            return None;
        }
        st.live |= 1 << pe;
        if crashed {
            st.crash_flags |= 1 << pe;
        } else {
            st.crash_flags &= !(1 << pe);
        }
        st.epoch += 1;
        Some(*st)
    }

    /// Adopt a gossiped view if its epoch is strictly greater than ours.
    /// Our own live bit is forced on — a node never believes itself dead
    /// (a thawed PE adopting the interim view would otherwise wedge).
    /// Returns `(old, new)` on adoption so the caller can react to the
    /// per-PE transitions (purge dedup state, fail pending ops).
    pub fn adopt(&self, remote: MembershipView) -> Option<(MembershipView, MembershipView)> {
        let mut st = self.write();
        if remote.epoch <= st.epoch {
            return None;
        }
        let old = *st;
        *st = remote;
        st.live |= 1 << self.me;
        Some((old, *st))
    }

    /// Reset to the boot view (everyone alive, epoch zero). Used by a
    /// restarting node before it re-learns the ring's current epoch from
    /// a neighbour.
    pub fn reset(&self) {
        *self.write() = MembershipView::all_live(self.hosts);
    }

    /// Record a validated rejoin *request* from `pe` (the beat word with
    /// [`REJOIN_FLAG`] and a matching [`rejoin_signature`]). Handles both
    /// orderings of crash vs. detection:
    ///
    /// * `pe` already marked dead → alive again, crash flag set (its dedup
    ///   state is gone; adopters must purge theirs).
    /// * `pe` still marked live (it crashed and restarted *faster* than
    ///   the detector confirmed the death) → stays live, crash flag set,
    ///   epoch bumped so the purge still gossips ring-wide.
    ///
    /// Idempotent: returns `None` when `pe` is live with its crash flag
    /// already set (the same request observed on a second tick).
    pub fn mark_rejoined(&self, pe: usize) -> Option<MembershipView> {
        let mut st = self.write();
        if pe >= 32 || (st.is_live(pe) && st.crash_flags & (1 << pe) != 0) {
            return None;
        }
        st.live |= 1 << pe;
        st.crash_flags |= 1 << pe;
        st.epoch += 1;
        Some(*st)
    }
}

/// What one detector sample concluded about a neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeatVerdict {
    /// The beat advanced (or this is the first nonzero sample).
    Alive,
    /// The beat did not advance, but suspicion hasn't been reached.
    Missed(u32),
    /// The miss threshold was just crossed: the neighbour is now suspect.
    /// Carries the miss count for the `PeSuspect` event.
    NewlySuspect(u32),
    /// Already suspect and the grace period has elapsed: time to confirm
    /// (probe the link, then declare death).
    ConfirmDue,
    /// Already suspect, still inside the grace period.
    Suspect,
}

/// Per-endpoint beat tracker: local state of one service thread watching
/// one neighbour. Not shared; needs no lock.
pub struct BeatMonitor {
    last_beat: u32,
    missed: u32,
    suspect_since: Option<Instant>,
}

impl Default for BeatMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl BeatMonitor {
    /// Fresh monitor: no beat seen yet.
    pub fn new() -> Self {
        BeatMonitor { last_beat: 0, missed: 0, suspect_since: None }
    }

    /// Feed one sample of the neighbour's beat word (rejoin flag already
    /// stripped). Timing is wall-clock so a whole-process stall on *our*
    /// side cannot shorten the neighbour's grace window: suspicion is
    /// dated from when it was raised, not reconstructed from miss counts.
    pub fn observe(&mut self, beat: u32, cfg: &HeartbeatConfig) -> BeatVerdict {
        if beat != self.last_beat {
            self.last_beat = beat;
            self.missed = 0;
            self.suspect_since = None;
            return BeatVerdict::Alive;
        }
        if beat == 0 {
            // Neighbour hasn't published a first beat yet; don't count
            // boot-time silence as misses.
            return BeatVerdict::Alive;
        }
        if let Some(since) = self.suspect_since {
            if since.elapsed() >= cfg.confirm_grace {
                return BeatVerdict::ConfirmDue;
            }
            return BeatVerdict::Suspect;
        }
        self.missed += 1;
        if self.missed >= cfg.miss_threshold {
            self.suspect_since = Some(Instant::now());
            BeatVerdict::NewlySuspect(self.missed)
        } else {
            BeatVerdict::Missed(self.missed)
        }
    }

    /// The confirmation probe ruled the stall a *link* fault, not a node
    /// death: restart the grace window so the detector re-evaluates once
    /// the link recovers.
    pub fn defer(&mut self) {
        self.suspect_since = Some(Instant::now());
    }

    /// Death confirmed (or the PE was marked dead via gossip): clear
    /// suspicion so beats resuming later (a thaw, a rejoin) read as a
    /// fresh `Alive`.
    pub fn clear(&mut self) {
        self.missed = 0;
        self.suspect_since = None;
    }

    /// The beat value at the last sample (0 = never seen one).
    pub fn last_beat(&self) -> u32 {
        self.last_beat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_view_has_everyone_live() {
        let v = MembershipView::all_live(5);
        assert_eq!(v.epoch, 0);
        assert_eq!(v.live_pes(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(v.live_count(5), 5);
        assert!(!v.is_live(5));
    }

    #[test]
    fn mark_dead_bumps_epoch_once() {
        let m = Membership::new(0, 5);
        let v = m.mark_dead(2).expect("first death is a change");
        assert_eq!(v.epoch, 1);
        assert!(!v.is_live(2));
        assert!(m.mark_dead(2).is_none(), "second confirmation is not a change");
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.live_pes(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn own_death_is_refused() {
        let m = Membership::new(3, 5);
        assert!(m.mark_dead(3).is_none());
        assert!(m.is_live(3));
    }

    #[test]
    fn crash_rejoin_sets_flag_and_thaw_clears_it() {
        let m = Membership::new(0, 5);
        m.mark_dead(2).unwrap();
        let v = m.mark_alive(2, true).expect("rejoin is a change");
        assert_eq!(v.epoch, 2);
        assert!(v.is_live(2));
        assert_ne!(v.crash_flags & (1 << 2), 0, "crash rejoin flags the PE");
        m.mark_dead(2).unwrap();
        let v = m.mark_alive(2, false).unwrap();
        assert_eq!(v.crash_flags & (1 << 2), 0, "thaw rejoin clears the flag");
        assert!(m.mark_alive(2, true).is_none(), "already live is not a change");
    }

    #[test]
    fn mark_rejoined_covers_both_orderings() {
        let m = Membership::new(0, 5);
        // Fast restart: the PE crashed and came back before any death was
        // confirmed — still flagged + epoch bumped so purges gossip.
        let v = m.mark_rejoined(2).expect("fast restart is a change");
        assert_eq!(v.epoch, 1);
        assert!(v.is_live(2));
        assert_ne!(v.crash_flags & (1 << 2), 0);
        assert!(m.mark_rejoined(2).is_none(), "second observation is idempotent");
        // Normal ordering: death confirmed first.
        m.mark_dead(2).unwrap();
        let v = m.mark_rejoined(2).expect("rejoin after death is a change");
        assert!(v.is_live(2));
        assert_ne!(v.crash_flags & (1 << 2), 0);
    }

    #[test]
    fn adopt_requires_strictly_greater_epoch() {
        let m = Membership::new(0, 5);
        let stale = MembershipView { epoch: 0, live: 0b1, crash_flags: 0 };
        assert!(m.adopt(stale).is_none());
        let newer = MembershipView { epoch: 7, live: 0b1_1011, crash_flags: 0b100 };
        let (old, new) = m.adopt(newer).expect("greater epoch adopted");
        assert_eq!(old.epoch, 0);
        assert_eq!(new.epoch, 7);
        assert!(!new.is_live(2));
        assert!(m.adopt(newer).is_none(), "equal epoch refused after adoption");
    }

    #[test]
    fn adopt_forces_own_live_bit() {
        let m = Membership::new(2, 5);
        // A view that claims we are dead (e.g. gossiped while we were
        // frozen) must not make us believe it.
        let v = MembershipView { epoch: 3, live: 0b1_1011, crash_flags: 0 };
        let (_, new) = m.adopt(v).unwrap();
        assert!(new.is_live(2));
    }

    #[test]
    fn reset_returns_to_boot() {
        let m = Membership::new(0, 4);
        m.mark_dead(1).unwrap();
        m.reset();
        assert_eq!(m.view(), MembershipView::all_live(4));
    }

    #[test]
    fn monitor_suspects_after_threshold_and_confirms_after_grace() {
        let cfg = HeartbeatConfig {
            enabled: true,
            period: Duration::from_millis(1),
            miss_threshold: 3,
            confirm_grace: Duration::from_millis(10),
        };
        let mut mon = BeatMonitor::new();
        assert_eq!(mon.observe(1, &cfg), BeatVerdict::Alive);
        assert_eq!(mon.observe(1, &cfg), BeatVerdict::Missed(1));
        assert_eq!(mon.observe(1, &cfg), BeatVerdict::Missed(2));
        assert_eq!(mon.observe(1, &cfg), BeatVerdict::NewlySuspect(3));
        assert_eq!(mon.observe(1, &cfg), BeatVerdict::Suspect);
        std::thread::sleep(Duration::from_millis(12));
        assert_eq!(mon.observe(1, &cfg), BeatVerdict::ConfirmDue);
        // A fresh beat clears everything.
        assert_eq!(mon.observe(2, &cfg), BeatVerdict::Alive);
        assert_eq!(mon.observe(2, &cfg), BeatVerdict::Missed(1));
    }

    #[test]
    fn monitor_ignores_boot_silence() {
        let cfg = HeartbeatConfig::fast();
        let mut mon = BeatMonitor::new();
        for _ in 0..10 {
            assert_eq!(mon.observe(0, &cfg), BeatVerdict::Alive);
        }
    }

    #[test]
    fn defer_restarts_grace() {
        let cfg = HeartbeatConfig {
            enabled: true,
            period: Duration::from_millis(1),
            miss_threshold: 1,
            confirm_grace: Duration::from_millis(20),
        };
        let mut mon = BeatMonitor::new();
        mon.observe(5, &cfg);
        assert_eq!(mon.observe(5, &cfg), BeatVerdict::NewlySuspect(1));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(mon.observe(5, &cfg), BeatVerdict::ConfirmDue);
        mon.defer();
        assert_eq!(mon.observe(5, &cfg), BeatVerdict::Suspect, "defer restarts the window");
    }

    #[test]
    fn rejoin_signature_is_stable_nonzero_and_flagless() {
        for me in 0..32 {
            let sig = rejoin_signature(me, 5);
            assert_ne!(sig, 0);
            assert_eq!(sig & REJOIN_FLAG, 0);
            assert_eq!(sig, rejoin_signature(me, 5));
        }
        assert_ne!(rejoin_signature(1, 5), rejoin_signature(2, 5));
    }

    #[test]
    fn hb_bases_are_disjoint_and_mirror() {
        assert_eq!(hb_tx_base(LinkDirection::Upstream), hb_rx_base(LinkDirection::Downstream));
        assert_eq!(hb_tx_base(LinkDirection::Downstream), hb_rx_base(LinkDirection::Upstream));
        assert!(hb_tx_base(LinkDirection::Upstream) >= 8, "above the mailbox bank");
        assert!(
            hb_tx_base(LinkDirection::Downstream) + HB_BLOCK_LEN <= ntb_sim::SCRATCHPAD_COUNT,
            "fits the bank"
        );
    }
}
