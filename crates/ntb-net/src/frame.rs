//! Transfer-info frames: the metadata published through ScratchPad
//! registers.
//!
//! The paper's protocol sends, for every payload, "information such as the
//! source host Id (SrcId), destination host Id (DestId), Address offset,
//! Data size, and flag for Send/Receive" through the ScratchPad registers
//! before ringing the doorbell (§III-A). One link has eight 32-bit
//! scratchpads shared by both sides, so each direction owns four registers:
//!
//! | register | content |
//! |----------|---------|
//! | `base+0` | header: `kind(4) \| src(6) \| dest(6) \| seq(16)` — zero means *empty mailbox* |
//! | `base+1` | bit 31: transfer mode (0=DMA, 1=memcpy); bits 0..24/31: length (AMO frames pack the opcode in bits 24..31) |
//! | `base+2` | address offset (symmetric-heap or response-buffer relative) |
//! | `base+3` | auxiliary word (request id for Get/AMO traffic, put id for Put/PutAck) |
//!
//! The header register is written **last** by the sender and zeroed by the
//! receiver as the acknowledgement, giving a one-slot mailbox per link
//! direction.

use ntb_sim::TransferMode;

use crate::delivery::AmoOp;

/// Maximum representable host id (6 bits in the header).
pub const MAX_HOSTS: usize = 63;

const MODE_BIT: u32 = 1 << 31;
const AMO_LEN_MASK: u32 = 0x00FF_FFFF;

/// What a frame announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A put payload (or one chunk of one) sits in the window.
    Put,
    /// A payload-free request: send me `len` bytes from your symmetric
    /// heap at `offset`; reply with request id `aux`.
    GetReq,
    /// One chunk of a get response; `offset` is relative to the
    /// requester's destination buffer, `aux` is the request id.
    GetResp,
    /// Delivery acknowledgement for put chunks, routed back to the origin
    /// (consumed by `quiet`/barrier); `len` counts the chunks acked and
    /// `aux` echoes the put id being retired.
    PutAck,
    /// Remote atomic request; 24-byte operand payload
    /// `[operand, compare, width]` in the window, `aux` is the request id.
    AmoReq,
    /// Remote atomic response; 8-byte old-value payload, `aux` is the
    /// request id.
    AmoResp,
}

impl FrameKind {
    fn code(self) -> u32 {
        match self {
            FrameKind::Put => 1,
            FrameKind::GetReq => 2,
            FrameKind::GetResp => 3,
            FrameKind::PutAck => 4,
            FrameKind::AmoReq => 5,
            FrameKind::AmoResp => 6,
        }
    }

    fn from_code(code: u32) -> Option<FrameKind> {
        Some(match code {
            1 => FrameKind::Put,
            2 => FrameKind::GetReq,
            3 => FrameKind::GetResp,
            4 => FrameKind::PutAck,
            5 => FrameKind::AmoReq,
            6 => FrameKind::AmoResp,
            _ => return None,
        })
    }

    /// Whether frames of this kind carry payload bytes in the window.
    pub fn has_payload(self) -> bool {
        !matches!(self, FrameKind::GetReq | FrameKind::PutAck)
    }

    /// Which doorbell announces this kind (paper: `DOORBELL_DMAPUT` for
    /// data movement, `DOORBELL_DMAGET` for get-side requests).
    pub fn doorbell(self) -> u32 {
        match self {
            FrameKind::GetReq | FrameKind::AmoReq => crate::doorbells::DB_DMAGET,
            _ => crate::doorbells::DB_DMAPUT,
        }
    }
}

/// A decoded transfer-info frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Originating host id.
    pub src: usize,
    /// Final destination host id.
    pub dest: usize,
    /// Per-link-direction sequence number (wraps at 16 bits; diagnostic).
    pub seq: u16,
    /// Payload length in bytes (for GetReq: the requested byte count).
    pub len: u32,
    /// Address offset: symmetric-heap offset for Put/GetReq/Amo,
    /// response-buffer offset for GetResp.
    pub offset: u32,
    /// Auxiliary word: request id for Get/AMO traffic, put id for
    /// Put/PutAck traffic.
    pub aux: u32,
    /// Transfer mode this operation (and its forwards) uses on the wire.
    pub mode: TransferMode,
    /// AMO opcode (only meaningful for AmoReq frames; rides the top bits
    /// of the length register on the wire).
    pub amo_op: Option<AmoOp>,
    /// Absolute operation deadline in microseconds since the network
    /// epoch; 0 means "no deadline". The four scratchpad words are fully
    /// allocated, so this does **not** ride [`Frame::encode`] — the
    /// mailbox path carries it in the control slot's deadline word and
    /// the ring path in body word 5; [`Frame::decode`] therefore yields 0
    /// and the receiving hop re-attaches the wire value.
    pub deadline_us: u32,
}

impl Frame {
    /// A put (data) frame. `put_id` is the origin-assigned retransmission
    /// id echoed back in the matching [`FrameKind::PutAck`]; the receiver
    /// uses it to suppress duplicate deliveries of retransmitted chunks.
    pub fn put(
        src: usize,
        dest: usize,
        len: u32,
        heap_offset: u32,
        put_id: u32,
        mode: TransferMode,
    ) -> Frame {
        Frame {
            kind: FrameKind::Put,
            src,
            dest,
            seq: 0,
            len,
            offset: heap_offset,
            aux: put_id,
            mode,
            amo_op: None,
            deadline_us: 0,
        }
    }

    /// A get request frame; `mode` is the wire mode the response should
    /// stream back with.
    pub fn get_req(
        src: usize,
        dest: usize,
        len: u32,
        heap_offset: u32,
        req_id: u32,
        mode: TransferMode,
    ) -> Frame {
        Frame {
            kind: FrameKind::GetReq,
            src,
            dest,
            seq: 0,
            len,
            offset: heap_offset,
            aux: req_id,
            mode,
            amo_op: None,
            deadline_us: 0,
        }
    }

    /// A get response chunk frame.
    pub fn get_resp(
        src: usize,
        dest: usize,
        len: u32,
        buf_offset: u32,
        req_id: u32,
        mode: TransferMode,
    ) -> Frame {
        Frame {
            kind: FrameKind::GetResp,
            src,
            dest,
            seq: 0,
            len,
            offset: buf_offset,
            aux: req_id,
            mode,
            amo_op: None,
            deadline_us: 0,
        }
    }

    /// A put-delivery acknowledgement frame covering `chunks` chunks;
    /// `put_id` echoes the acknowledged put frame's retransmission id so
    /// the origin can retire the matching unacked-put record.
    pub fn put_ack(src: usize, dest: usize, chunks: u32, put_id: u32) -> Frame {
        Frame {
            kind: FrameKind::PutAck,
            src,
            dest,
            seq: 0,
            len: chunks,
            offset: 0,
            aux: put_id,
            mode: TransferMode::Dma,
            amo_op: None,
            deadline_us: 0,
        }
    }

    /// An atomic request frame (24-byte operand payload follows).
    pub fn amo_req(src: usize, dest: usize, op: AmoOp, heap_offset: u32, req_id: u32) -> Frame {
        Frame {
            kind: FrameKind::AmoReq,
            src,
            dest,
            seq: 0,
            len: 24,
            offset: heap_offset,
            aux: req_id,
            mode: TransferMode::Dma,
            amo_op: Some(op),
            deadline_us: 0,
        }
    }

    /// An atomic response frame (8-byte old-value payload follows).
    pub fn amo_resp(src: usize, dest: usize, req_id: u32) -> Frame {
        Frame {
            kind: FrameKind::AmoResp,
            src,
            dest,
            seq: 0,
            len: 8,
            offset: 0,
            aux: req_id,
            mode: TransferMode::Dma,
            amo_op: None,
            deadline_us: 0,
        }
    }

    /// Attach an absolute deadline (microseconds since the network
    /// epoch); 0 clears it.
    pub fn with_deadline_us(mut self, deadline_us: u32) -> Frame {
        self.deadline_us = deadline_us;
        self
    }

    /// True when this frame carries a deadline that has already passed at
    /// `now_us` (microseconds since the network epoch).
    pub fn deadline_expired(&self, now_us: u32) -> bool {
        self.deadline_us != 0 && now_us > self.deadline_us
    }

    /// Encode into the four scratchpad words `[header, len, offset, aux]`.
    /// The header is non-zero for every valid frame.
    pub fn encode(&self) -> [u32; 4] {
        debug_assert!(self.src <= MAX_HOSTS && self.dest <= MAX_HOSTS);
        debug_assert!(self.len < MODE_BIT, "length field overflows the mode bit");
        let header = self.kind.code()
            | ((self.src as u32 & 0x3F) << 4)
            | ((self.dest as u32 & 0x3F) << 10)
            | (u32::from(self.seq) << 16);
        let mut len_word = match (self.kind, self.amo_op) {
            (FrameKind::AmoReq, Some(op)) => {
                debug_assert!(self.len <= AMO_LEN_MASK);
                self.len | (op.code() << 24)
            }
            _ => self.len,
        };
        if self.mode == TransferMode::Memcpy {
            len_word |= MODE_BIT;
        }
        [header, len_word, self.offset, self.aux]
    }

    /// Decode from the four scratchpad words; `None` if the header is
    /// empty or malformed.
    pub fn decode(words: [u32; 4]) -> Option<Frame> {
        let header = words[0];
        if header == 0 {
            return None;
        }
        let kind = FrameKind::from_code(header & 0xF)?;
        let src = ((header >> 4) & 0x3F) as usize;
        let dest = ((header >> 10) & 0x3F) as usize;
        let seq = (header >> 16) as u16;
        let mode = if words[1] & MODE_BIT != 0 { TransferMode::Memcpy } else { TransferMode::Dma };
        let len_word = words[1] & !MODE_BIT;
        let (len, amo_op) = if kind == FrameKind::AmoReq {
            let op = AmoOp::from_code((len_word >> 24) & 0x7F)?;
            (len_word & AMO_LEN_MASK, Some(op))
        } else {
            (len_word, None)
        };
        Some(Frame {
            kind,
            src,
            dest,
            seq,
            len,
            offset: words[2],
            aux: words[3],
            mode,
            amo_op,
            deadline_us: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_roundtrip_both_modes() {
        for mode in [TransferMode::Dma, TransferMode::Memcpy] {
            let mut f = Frame::put(3, 7, 65536, 1024, 17, mode);
            f.seq = 42;
            let decoded = Frame::decode(f.encode()).unwrap();
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn get_req_roundtrip() {
        let f = Frame::get_req(0, 62, 0x7FFF_FFFF, u32::MAX, 0xDEAD_BEEF, TransferMode::Memcpy);
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn get_resp_roundtrip() {
        let f = Frame::get_resp(5, 1, 4096, 8192, 77, TransferMode::Dma);
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn put_ack_roundtrip() {
        let f = Frame::put_ack(2, 0, 3, 0xABCD);
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        assert!(!f.kind.has_payload());
        assert_eq!(Frame::decode(f.encode()).unwrap().aux, 0xABCD);
    }

    #[test]
    fn amo_roundtrip_all_ops() {
        for op in AmoOp::ALL {
            let f = Frame::amo_req(1, 2, op, 512, 9);
            let d = Frame::decode(f.encode()).unwrap();
            assert_eq!(d, f, "op {op:?}");
            assert_eq!(d.amo_op, Some(op));
        }
    }

    #[test]
    fn amo_resp_roundtrip() {
        let f = Frame::amo_resp(2, 1, 9);
        assert_eq!(Frame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn deadline_rides_beside_the_scratchpad_words() {
        // The scratchpad encode is full: the deadline travels in the ctrl
        // slot / ring body instead, so encode/decode must neither carry
        // nor corrupt it.
        let f = Frame::put(1, 2, 64, 0, 7, TransferMode::Dma).with_deadline_us(123_456);
        assert_eq!(f.deadline_us, 123_456);
        let d = Frame::decode(f.encode()).unwrap();
        assert_eq!(d.deadline_us, 0);
        assert_eq!(d.with_deadline_us(f.deadline_us), f);
        assert!(f.deadline_expired(123_457));
        assert!(!f.deadline_expired(123_456));
        assert!(!Frame::put(1, 2, 64, 0, 7, TransferMode::Dma).deadline_expired(u32::MAX));
    }

    #[test]
    fn empty_header_decodes_to_none() {
        assert_eq!(Frame::decode([0, 5, 5, 5]), None);
    }

    #[test]
    fn bad_kind_decodes_to_none() {
        assert_eq!(Frame::decode([0xF, 0, 0, 0]), None);
        assert_eq!(Frame::decode([0x7, 0, 0, 0]), None);
    }

    #[test]
    fn header_nonzero_for_all_kinds() {
        // The mailbox relies on header==0 meaning empty.
        let frames = [
            Frame::put(0, 0, 0, 0, 0, TransferMode::Dma),
            Frame::get_req(0, 0, 0, 0, 0, TransferMode::Dma),
            Frame::get_resp(0, 0, 0, 0, 0, TransferMode::Dma),
            Frame::put_ack(0, 0, 0, 0),
            Frame::amo_req(0, 0, AmoOp::FetchAdd, 0, 0),
            Frame::amo_resp(0, 0, 0),
        ];
        for f in frames {
            assert_ne!(f.encode()[0], 0, "{:?}", f.kind);
        }
    }

    #[test]
    fn doorbell_mapping() {
        use crate::doorbells::{DB_DMAGET, DB_DMAPUT};
        assert_eq!(FrameKind::Put.doorbell(), DB_DMAPUT);
        assert_eq!(FrameKind::GetResp.doorbell(), DB_DMAPUT);
        assert_eq!(FrameKind::PutAck.doorbell(), DB_DMAPUT);
        assert_eq!(FrameKind::AmoResp.doorbell(), DB_DMAPUT);
        assert_eq!(FrameKind::GetReq.doorbell(), DB_DMAGET);
        assert_eq!(FrameKind::AmoReq.doorbell(), DB_DMAGET);
    }

    #[test]
    fn payload_flags() {
        assert!(FrameKind::Put.has_payload());
        assert!(FrameKind::GetResp.has_payload());
        assert!(FrameKind::AmoReq.has_payload());
        assert!(FrameKind::AmoResp.has_payload());
        assert!(!FrameKind::GetReq.has_payload());
        assert!(!FrameKind::PutAck.has_payload());
    }

    #[test]
    fn max_host_ids_survive() {
        let f = Frame::put(MAX_HOSTS, MAX_HOSTS, 1, 1, 1, TransferMode::Dma);
        let d = Frame::decode(f.encode()).unwrap();
        assert_eq!(d.src, MAX_HOSTS);
        assert_eq!(d.dest, MAX_HOSTS);
    }

    #[test]
    fn amo_len_field_masked() {
        // AMO length shares its register with the opcode: the masks must
        // keep them separate.
        let f = Frame::amo_req(0, 1, AmoOp::CompareSwap, 0, 0);
        let words = f.encode();
        assert_eq!(words[1] & AMO_LEN_MASK, 24);
        assert_eq!((words[1] >> 24) & 0x7F, AmoOp::CompareSwap.code());
    }

    #[test]
    fn mode_bit_does_not_corrupt_amo_op() {
        let mut f = Frame::amo_req(0, 1, AmoOp::FetchXor, 0, 0);
        f.mode = TransferMode::Memcpy;
        let d = Frame::decode(f.encode()).unwrap();
        assert_eq!(d.amo_op, Some(AmoOp::FetchXor));
        assert_eq!(d.mode, TransferMode::Memcpy);
        assert_eq!(d.len, 24);
    }
}
