//! The delivery interface between the interconnect and the symmetric heap.
//!
//! The service threads (paper Fig. 5) must copy arriving payloads "to the
//! symmetric memory heap with the specified address offset and size" and
//! read heap data back for Get requests — but the heap belongs to the
//! OpenSHMEM layer. [`DeliveryTarget`] is the narrow waist the OpenSHMEM
//! layer installs into each [`NtbNode`](crate::node::NtbNode) at
//! `shmem_init` time.
//!
//! Remote atomic operations ([`AmoOp`]) execute *at the target host* inside
//! its service thread, which is what makes them atomic with respect to each
//! other: OpenSHMEM's AMO atomicity is per-target, and the target's
//! delivery path serializes them.

use ntb_sim::Result;

/// Remote atomic operation codes carried in AMO request frames.
///
/// Operands are 64-bit; narrower OpenSHMEM types are widened by the caller
/// and truncated on the way back (the heap bytes touched are `width`
/// bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Atomic fetch-and-add: returns the old value.
    FetchAdd,
    /// Atomic swap: stores operand, returns the old value.
    Swap,
    /// Atomic compare-and-swap: stores operand if old == compare; returns
    /// the old value either way.
    CompareSwap,
    /// Atomic fetch (read).
    Fetch,
    /// Atomic set (write).
    Set,
    /// Atomic fetch-and-and.
    FetchAnd,
    /// Atomic fetch-and-or.
    FetchOr,
    /// Atomic fetch-and-xor.
    FetchXor,
}

impl AmoOp {
    /// All operations (test helper).
    pub const ALL: [AmoOp; 8] = [
        AmoOp::FetchAdd,
        AmoOp::Swap,
        AmoOp::CompareSwap,
        AmoOp::Fetch,
        AmoOp::Set,
        AmoOp::FetchAnd,
        AmoOp::FetchOr,
        AmoOp::FetchXor,
    ];

    /// Wire code (rides the top byte of the frame length register).
    pub fn code(self) -> u32 {
        match self {
            AmoOp::FetchAdd => 1,
            AmoOp::Swap => 2,
            AmoOp::CompareSwap => 3,
            AmoOp::Fetch => 4,
            AmoOp::Set => 5,
            AmoOp::FetchAnd => 6,
            AmoOp::FetchOr => 7,
            AmoOp::FetchXor => 8,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u32) -> Option<AmoOp> {
        Some(match code {
            1 => AmoOp::FetchAdd,
            2 => AmoOp::Swap,
            3 => AmoOp::CompareSwap,
            4 => AmoOp::Fetch,
            5 => AmoOp::Set,
            6 => AmoOp::FetchAnd,
            7 => AmoOp::FetchOr,
            8 => AmoOp::FetchXor,
            _ => return None,
        })
    }

    /// Apply the operation to `old` with `operand`/`compare`; returns the
    /// new value to store (the caller returns `old` to the requester).
    pub fn apply(self, old: u64, operand: u64, compare: u64) -> u64 {
        match self {
            AmoOp::FetchAdd => old.wrapping_add(operand),
            AmoOp::Swap | AmoOp::Set => operand,
            AmoOp::CompareSwap => {
                if old == compare {
                    operand
                } else {
                    old
                }
            }
            AmoOp::Fetch => old,
            AmoOp::FetchAnd => old & operand,
            AmoOp::FetchOr => old | operand,
            AmoOp::FetchXor => old ^ operand,
        }
    }
}

/// Where arriving traffic lands: implemented by the OpenSHMEM symmetric
/// heap (and by test fixtures).
pub trait DeliveryTarget: Send + Sync {
    /// Deliver a put chunk into the symmetric address space at flat
    /// offset `offset`.
    fn deliver_put(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Read `out.len()` bytes for a Get from flat offset `offset`.
    fn read_for_get(&self, offset: u64, out: &mut [u8]) -> Result<()>;

    /// Execute an atomic at flat offset `offset` on `width` bytes
    /// (1/2/4/8). Returns the old value, zero-extended to 64 bits. The
    /// implementation must serialize all `deliver_atomic` calls on the
    /// same host.
    fn deliver_atomic(
        &self,
        op: AmoOp,
        offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> Result<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for op in AmoOp::ALL {
            assert_eq!(AmoOp::from_code(op.code()), Some(op));
        }
        assert_eq!(AmoOp::from_code(0), None);
        assert_eq!(AmoOp::from_code(99), None);
    }

    #[test]
    fn fetch_add_wraps() {
        assert_eq!(AmoOp::FetchAdd.apply(u64::MAX, 2, 0), 1);
        assert_eq!(AmoOp::FetchAdd.apply(10, 5, 0), 15);
    }

    #[test]
    fn swap_and_set_store_operand() {
        assert_eq!(AmoOp::Swap.apply(1, 99, 0), 99);
        assert_eq!(AmoOp::Set.apply(1, 99, 0), 99);
    }

    #[test]
    fn compare_swap_conditional() {
        assert_eq!(AmoOp::CompareSwap.apply(5, 9, 5), 9, "matches: stores");
        assert_eq!(AmoOp::CompareSwap.apply(5, 9, 4), 5, "mismatch: keeps old");
    }

    #[test]
    fn fetch_keeps_value() {
        assert_eq!(AmoOp::Fetch.apply(123, 9, 9), 123);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(AmoOp::FetchAnd.apply(0b1100, 0b1010, 0), 0b1000);
        assert_eq!(AmoOp::FetchOr.apply(0b1100, 0b1010, 0), 0b1110);
        assert_eq!(AmoOp::FetchXor.apply(0b1100, 0b1010, 0), 0b0110);
    }
}
