//! Interconnect topology: shapes, neighbours, shortest routes, hop counts.
//!
//! The paper's switchless interconnect is a ring: host *i*'s right adapter
//! is cabled to host *i+1*'s left adapter (mod N). A transfer to a
//! non-neighbour is forwarded hop by hop through intermediate hosts'
//! bypass buffers, so route choice determines both latency and which links
//! carry the traffic.
//!
//! Past the paper's 5 hosts the ring's linear diameter becomes the scaling
//! wall, so the same per-link machinery can now be cabled into other
//! [`Shape`]s: a 2D torus (diameter `rows/2 + cols/2`, constant degree 4)
//! and a fully-cabled clique (diameter 1, degree N−1, adapter-limited to
//! small N). The [`TopoGraph`] answers `neighbors` / `next_hop` / `hops`
//! for any shape from a precomputed BFS distance matrix, and can recompute
//! next hops over the live subgraph to route around dead hosts.

/// Maximum hosts any topology supports; matches the frame format's
/// 6-bit PE id space (`frame::MAX_HOSTS + 1`).
pub const MAX_TOPO_NODES: usize = 64;

/// The cabling pattern of the interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Switchless ring: each host's two NTB adapters are cabled to its
    /// neighbours; non-neighbour traffic is forwarded through bypass
    /// buffers. The paper's contribution.
    #[default]
    Ring,
    /// 2D torus: host `r*cols + c` is cabled to its four row/column
    /// neighbours with wraparound. Keeps the switchless forwarding model
    /// but cuts the diameter from `N/2` to `rows/2 + cols/2`.
    Torus {
        /// Number of rows (wraps vertically).
        rows: usize,
        /// Number of columns (wraps horizontally).
        cols: usize,
    },
    /// Fully-cabled clique: a dedicated NTB link per host pair; every
    /// destination is one hop away, no forwarding. Models the
    /// conventional switched alternative the paper positions itself
    /// against, and is adapter-limited to small host counts.
    Clique,
}

impl Shape {
    /// Human-readable label for bench output and traces.
    pub fn label(&self) -> String {
        match self {
            Shape::Ring => "ring".to_string(),
            Shape::Torus { rows, cols } => format!("torus{rows}x{cols}"),
            Shape::Clique => "clique".to_string(),
        }
    }
}

/// How the hosts are interconnected: a [`Shape`] plus the host count the
/// caller declared when building it (validated against `NetConfig::hosts`).
///
/// Build one with [`Topology::ring`], [`Topology::torus`] or
/// [`Topology::clique`] and hand it to `NetConfig::with_topology` or
/// `ShmemConfig::builder().topology(..)`. The old enum-style
/// `Topology::Ring` / `Topology::FullMesh` values survive as deprecated
/// associated constants so existing constructors still compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    shape: Shape,
    /// Host count declared at construction; `None` for the shim consts,
    /// whose size is implied by `NetConfig::hosts`.
    declared: Option<usize>,
}

impl Default for Topology {
    fn default() -> Topology {
        Topology { shape: Shape::Ring, declared: None }
    }
}

impl Topology {
    /// Deprecated enum-style shim for the paper's ring; the size comes
    /// from `NetConfig::hosts`.
    #[deprecated(note = "use Topology::ring(n) instead")]
    #[allow(non_upper_case_globals)]
    pub const Ring: Topology = Topology { shape: Shape::Ring, declared: None };

    /// Deprecated enum-style shim for the fully-cabled comparison
    /// baseline; the size comes from `NetConfig::hosts`.
    #[deprecated(note = "use Topology::clique(n) instead")]
    #[allow(non_upper_case_globals)]
    pub const FullMesh: Topology = Topology { shape: Shape::Clique, declared: None };

    /// A switchless ring of `n` hosts.
    pub fn ring(n: usize) -> Topology {
        assert!(
            (1..=MAX_TOPO_NODES).contains(&n),
            "ring size {n} out of range 1..={MAX_TOPO_NODES}"
        );
        Topology { shape: Shape::Ring, declared: Some(n) }
    }

    /// A `rows`×`cols` 2D torus of `rows*cols` hosts.
    pub fn torus(rows: usize, cols: usize) -> Topology {
        assert!(rows >= 1 && cols >= 1, "torus dimensions must be >= 1 ({rows}x{cols})");
        assert!(
            rows * cols <= MAX_TOPO_NODES,
            "torus {rows}x{cols} exceeds {MAX_TOPO_NODES} hosts"
        );
        Topology { shape: Shape::Torus { rows, cols }, declared: Some(rows * cols) }
    }

    /// A fully-cabled clique of `n` hosts (adapter-limited; `NetConfig`
    /// validation caps it at 16).
    pub fn clique(n: usize) -> Topology {
        assert!(
            (1..=MAX_TOPO_NODES).contains(&n),
            "clique size {n} out of range 1..={MAX_TOPO_NODES}"
        );
        Topology { shape: Shape::Clique, declared: Some(n) }
    }

    /// The cabling pattern.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Host count declared at construction, if any. A torus always knows
    /// its size; the deprecated shim consts never do.
    pub fn declared_hosts(&self) -> Option<usize> {
        match self.shape {
            Shape::Torus { rows, cols } => Some(rows * cols),
            _ => self.declared,
        }
    }

    /// Human-readable label for bench output and traces.
    pub fn label(&self) -> String {
        self.shape.label()
    }
}

/// Which way around the ring a transfer leaves a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteDirection {
    /// Towards host `(me + 1) % n`.
    Right,
    /// Towards host `(me + n - 1) % n`.
    Left,
}

impl RouteDirection {
    /// The opposite way around.
    pub fn opposite(self) -> RouteDirection {
        match self {
            RouteDirection::Right => RouteDirection::Left,
            RouteDirection::Left => RouteDirection::Right,
        }
    }
}

/// Shortest-path direction from `me` to `dest` on a ring of `n` hosts.
/// Ties (exactly opposite host on an even ring) go right, which keeps the
/// choice deterministic.
///
/// # Panics
/// Panics if `me == dest` (no route needed) or either id is out of range.
pub fn route(me: usize, dest: usize, n: usize) -> RouteDirection {
    assert!(n >= 2, "routing needs at least two hosts");
    assert!(me < n && dest < n, "host ids must be < n");
    assert_ne!(me, dest, "no route from a host to itself");
    let rightward = (dest + n - me) % n;
    if rightward <= n - rightward {
        RouteDirection::Right
    } else {
        RouteDirection::Left
    }
}

/// Number of link hops on the shortest path between `me` and `dest` on a
/// ring of `n` hosts.
pub fn hop_count(me: usize, dest: usize, n: usize) -> usize {
    assert!(n >= 1, "empty ring");
    assert!(me < n && dest < n, "host ids must be < n");
    let rightward = (dest + n - me) % n;
    rightward.min(n - rightward)
}

/// A ring of `n` hosts seen from one member. Still used by the ring-sweep
/// barrier doorbells and the left/right adapter bookkeeping; shape-generic
/// routing lives in [`TopoGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingTopology {
    /// This host's id.
    pub me: usize,
    /// Total hosts in the ring.
    pub n: usize,
}

impl RingTopology {
    /// Construct; panics if `me >= n`.
    pub fn new(me: usize, n: usize) -> Self {
        assert!(n >= 1 && me < n, "invalid topology (me={me}, n={n})");
        RingTopology { me, n }
    }

    /// Right neighbour's id.
    pub fn right(&self) -> usize {
        (self.me + 1) % self.n
    }

    /// Left neighbour's id.
    pub fn left(&self) -> usize {
        (self.me + self.n - 1) % self.n
    }

    /// Whether `dest` is directly cabled to this host.
    pub fn is_neighbor(&self, dest: usize) -> bool {
        self.n >= 2 && (dest == self.left() || dest == self.right())
    }

    /// Shortest direction towards `dest`.
    pub fn route_to(&self, dest: usize) -> RouteDirection {
        route(self.me, dest, self.n)
    }

    /// Hop count to `dest`.
    pub fn hops_to(&self, dest: usize) -> usize {
        hop_count(self.me, dest, self.n)
    }

    /// The next host on the shortest path to `dest`.
    pub fn next_hop(&self, dest: usize) -> usize {
        match self.route_to(dest) {
            RouteDirection::Right => self.right(),
            RouteDirection::Left => self.left(),
        }
    }
}

/// Sentinel for "unreachable" in the distance matrices.
const UNREACHED: u8 = u8::MAX;

/// The whole interconnect as a graph: deduplicated adjacency lists, a BFS
/// all-pairs distance matrix and a precomputed next-hop table.
///
/// Every host builds the same graph from `(shape, n)`, so the origin of a
/// transfer and every forwarding hop agree on the route: `next_hop` picks,
/// among the neighbours that strictly shrink the remaining distance, the
/// one with the smallest clockwise offset `(nb + n - me) % n`. On an even
/// ring that reproduces the paper's "ties go right" rule, and the strict
/// distance decrease makes loops and two-hop ping-pongs impossible by
/// construction.
#[derive(Debug, Clone)]
pub struct TopoGraph {
    n: usize,
    shape: Shape,
    adj: Vec<Vec<usize>>,
    /// `dist[me * n + dest]`, hops on the shortest path.
    dist: Vec<u8>,
    /// `next[me * n + dest]`, first hop of the shortest path
    /// (`next[me*n+me] == me`).
    next: Vec<u8>,
}

impl TopoGraph {
    /// Build the graph for `n` hosts cabled as `shape`.
    ///
    /// # Panics
    /// Panics if `n` is out of `1..=MAX_TOPO_NODES` or a torus shape
    /// disagrees with `n`.
    pub fn new(shape: Shape, n: usize) -> TopoGraph {
        assert!(
            (1..=MAX_TOPO_NODES).contains(&n),
            "topology size {n} out of range 1..={MAX_TOPO_NODES}"
        );
        if let Shape::Torus { rows, cols } = shape {
            assert_eq!(rows * cols, n, "torus {rows}x{cols} does not cover {n} hosts");
        }
        let adj = build_adjacency(shape, n);
        let mut dist = vec![UNREACHED; n * n];
        for src in 0..n {
            bfs(&adj, src, |_| true, &mut dist[src * n..(src + 1) * n]);
        }
        let mut next = vec![UNREACHED; n * n];
        for me in 0..n {
            for dest in 0..n {
                if me == dest {
                    next[me * n + dest] = me as u8;
                    continue;
                }
                let d = &dist[dest * n..(dest + 1) * n];
                let hop = best_hop(&adj[me], me, n, |nb| d[nb]);
                // lint: unwrap-ok(every shape built here is connected, so a
                // neighbour on a shortest path always exists)
                next[me * n + dest] = hop.unwrap() as u8;
            }
        }
        TopoGraph { n, shape, adj, dist, next }
    }

    /// Number of hosts.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The cabling pattern.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Hosts directly cabled to `me`, ascending, deduplicated.
    pub fn neighbors(&self, me: usize) -> &[usize] {
        &self.adj[me]
    }

    /// Hops on the shortest path from `me` to `dest` (0 for `me == dest`).
    pub fn hops(&self, me: usize, dest: usize) -> usize {
        self.dist[me * self.n + dest] as usize
    }

    /// Longest shortest path in the graph.
    pub fn diameter(&self) -> usize {
        self.dist.iter().map(|&d| d as usize).max().unwrap_or(0)
    }

    /// First hop of the deterministic shortest path from `me` to `dest`
    /// (`me` itself when `me == dest`). Identical at the origin and at
    /// every forwarding hop.
    pub fn next_hop(&self, me: usize, dest: usize) -> usize {
        self.next[me * self.n + dest] as usize
    }

    /// First hop of the shortest path from `me` to `dest` through live
    /// hosts only, restricted to first hops `first_hop_ok` accepts (split
    /// horizon, down adapters). `dest` itself is always treated as
    /// reachable — whether it is alive is the caller's concern. `None`
    /// when no such path exists.
    pub fn next_hop_live(
        &self,
        me: usize,
        dest: usize,
        mut first_hop_ok: impl FnMut(usize) -> bool,
        mut is_live: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        if me == dest {
            return Some(me);
        }
        // BFS from dest over the live subgraph gives each candidate first
        // hop its remaining live distance; n <= 64 keeps this on the stack.
        // `me` is excluded so no candidate's path doubles back through the
        // origin.
        let mut dist = [UNREACHED; MAX_TOPO_NODES];
        bfs(
            &self.adj,
            dest,
            |node| node != me && (node == dest || is_live(node)),
            &mut dist[..self.n],
        );
        best_hop(&self.adj[me], me, self.n, |nb| {
            if !first_hop_ok(nb) || (nb != dest && !is_live(nb)) {
                UNREACHED
            } else {
                dist[nb]
            }
        })
    }

    /// Whether the deterministic static route from `from` to `dest` passes
    /// only through live intermediate hosts (`from` included, `dest`
    /// excluded — the destination's liveness is the caller's concern).
    pub fn static_path_clear(
        &self,
        from: usize,
        dest: usize,
        mut is_live: impl FnMut(usize) -> bool,
    ) -> bool {
        let mut hop = from;
        while hop != dest {
            if !is_live(hop) {
                return false;
            }
            hop = self.next_hop(hop, dest);
        }
        true
    }

    /// Every cable in deterministic build order, as `(i, j)` host pairs.
    /// The ring keeps the paper's `i → (i+1) % n` order (two parallel
    /// cables for a 2-host ring); other shapes list each unordered
    /// adjacent pair once, ascending.
    pub fn links(&self) -> Vec<(usize, usize)> {
        match self.shape {
            Shape::Ring if self.n >= 2 => (0..self.n).map(|i| (i, (i + 1) % self.n)).collect(),
            Shape::Ring => Vec::new(),
            _ => {
                let mut links = Vec::new();
                for i in 0..self.n {
                    for &j in &self.adj[i] {
                        if i < j {
                            links.push((i, j));
                        }
                    }
                }
                links
            }
        }
    }
}

/// Deduplicated, ascending adjacency lists for `n` hosts cabled as
/// `shape`. Degenerate dimensions collapse cleanly: a 1×k or k×1 torus is
/// a ring, a 2-wide dimension does not cable the same neighbour twice.
fn build_adjacency(shape: Shape, n: usize) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    match shape {
        Shape::Ring => {
            if n >= 2 {
                for (i, list) in adj.iter_mut().enumerate() {
                    list.push((i + 1) % n);
                    list.push((i + n - 1) % n);
                }
            }
        }
        Shape::Torus { rows, cols } => {
            for r in 0..rows {
                for c in 0..cols {
                    let id = r * cols + c;
                    adj[id].extend([
                        r * cols + (c + 1) % cols,
                        r * cols + (c + cols - 1) % cols,
                        ((r + 1) % rows) * cols + c,
                        ((r + rows - 1) % rows) * cols + c,
                    ]);
                }
            }
        }
        Shape::Clique => {
            for (i, list) in adj.iter_mut().enumerate() {
                list.extend((0..n).filter(|&j| j != i));
            }
        }
    }
    for (i, list) in adj.iter_mut().enumerate() {
        list.sort_unstable();
        list.dedup();
        list.retain(|&j| j != i);
    }
    adj
}

/// Fill `out[node]` with BFS hop counts from `src` over the nodes
/// `admit` accepts (`src` is always admitted).
fn bfs(adj: &[Vec<usize>], src: usize, mut admit: impl FnMut(usize) -> bool, out: &mut [u8]) {
    out.fill(UNREACHED);
    out[src] = 0;
    let mut queue = [0usize; MAX_TOPO_NODES];
    let (mut head, mut tail) = (0, 0);
    queue[tail] = src;
    tail += 1;
    while head < tail {
        let node = queue[head];
        head += 1;
        for &nb in &adj[node] {
            if out[nb] == UNREACHED && admit(nb) {
                out[nb] = out[node] + 1;
                queue[tail] = nb;
                tail += 1;
            }
        }
    }
}

/// Among `neighbors` of `me`, the one minimizing `(remaining distance,
/// clockwise offset from me)`; `None` if none is reachable. The clockwise
/// tie-break reproduces the even-ring "ties go right" rule on every shape
/// and at every hop.
fn best_hop(
    neighbors: &[usize],
    me: usize,
    n: usize,
    mut remaining: impl FnMut(usize) -> u8,
) -> Option<usize> {
    neighbors
        .iter()
        .copied()
        .map(|nb| (remaining(nb), (nb + n - me) % n, nb))
        .filter(|&(d, _, _)| d != UNREACHED)
        .min()
        .map(|(_, _, nb)| nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_on_three_ring() {
        let t = RingTopology::new(0, 3);
        assert_eq!(t.right(), 1);
        assert_eq!(t.left(), 2);
        assert!(t.is_neighbor(1));
        assert!(t.is_neighbor(2));
        assert!(!t.is_neighbor(0));
    }

    #[test]
    fn two_ring_everyone_is_neighbor() {
        let t = RingTopology::new(1, 2);
        assert_eq!(t.right(), 0);
        assert_eq!(t.left(), 0);
        assert!(t.is_neighbor(0));
    }

    #[test]
    fn route_prefers_shortest() {
        // Ring of 5: from 0, dest 1,2 go right; 3,4 go left.
        assert_eq!(route(0, 1, 5), RouteDirection::Right);
        assert_eq!(route(0, 2, 5), RouteDirection::Right);
        assert_eq!(route(0, 3, 5), RouteDirection::Left);
        assert_eq!(route(0, 4, 5), RouteDirection::Left);
    }

    #[test]
    fn route_tie_goes_right() {
        // Ring of 4: dest exactly opposite.
        assert_eq!(route(0, 2, 4), RouteDirection::Right);
        assert_eq!(route(1, 3, 4), RouteDirection::Right);
    }

    #[test]
    fn hop_counts() {
        assert_eq!(hop_count(0, 1, 3), 1);
        assert_eq!(hop_count(0, 2, 3), 1);
        assert_eq!(hop_count(0, 2, 4), 2);
        assert_eq!(hop_count(0, 3, 6), 3);
        assert_eq!(hop_count(0, 4, 6), 2);
        assert_eq!(hop_count(2, 2, 5), 0);
    }

    #[test]
    fn next_hop_walks_towards_dest() {
        let t = RingTopology::new(0, 6);
        assert_eq!(t.next_hop(2), 1);
        assert_eq!(t.next_hop(5), 5);
        assert_eq!(t.next_hop(4), 5);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn route_to_self_panics() {
        route(2, 2, 4);
    }

    #[test]
    fn walking_next_hops_reaches_destination_within_hop_count() {
        let n = 7;
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let mut cur = src;
                let mut steps = 0;
                while cur != dst {
                    cur = RingTopology::new(cur, n).next_hop(dst);
                    steps += 1;
                    assert!(steps <= n, "route loop from {src} to {dst}");
                }
                assert_eq!(steps, hop_count(src, dst, n), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn direction_opposite() {
        assert_eq!(RouteDirection::Right.opposite(), RouteDirection::Left);
        assert_eq!(RouteDirection::Left.opposite(), RouteDirection::Right);
    }

    // -----------------------------------------------------------------
    // Topology construction surface
    // -----------------------------------------------------------------

    #[test]
    fn constructors_declare_their_size() {
        assert_eq!(Topology::ring(5).declared_hosts(), Some(5));
        assert_eq!(Topology::torus(4, 8).declared_hosts(), Some(32));
        assert_eq!(Topology::clique(8).declared_hosts(), Some(8));
        assert_eq!(Topology::default().declared_hosts(), None);
        assert_eq!(Topology::torus(2, 3).shape(), Shape::Torus { rows: 2, cols: 3 });
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_map_to_shapes() {
        assert_eq!(Topology::Ring.shape(), Shape::Ring);
        assert_eq!(Topology::FullMesh.shape(), Shape::Clique);
        assert_eq!(Topology::Ring.declared_hosts(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_torus_rejected() {
        Topology::torus(8, 9);
    }

    #[test]
    fn labels() {
        assert_eq!(Topology::ring(4).label(), "ring");
        assert_eq!(Topology::torus(4, 4).label(), "torus4x4");
        assert_eq!(Topology::clique(4).label(), "clique");
    }

    // -----------------------------------------------------------------
    // TopoGraph
    // -----------------------------------------------------------------

    fn shapes_under_test() -> Vec<(Shape, usize)> {
        vec![
            (Shape::Ring, 1),
            (Shape::Ring, 2),
            (Shape::Ring, 5),
            (Shape::Ring, 8),
            (Shape::Torus { rows: 2, cols: 2 }, 4),
            (Shape::Torus { rows: 2, cols: 4 }, 8),
            (Shape::Torus { rows: 1, cols: 6 }, 6),
            (Shape::Torus { rows: 4, cols: 4 }, 16),
            (Shape::Torus { rows: 8, cols: 8 }, 64),
            (Shape::Clique, 2),
            (Shape::Clique, 7),
            (Shape::Clique, 16),
        ]
    }

    #[test]
    fn ring_graph_matches_legacy_ring_math() {
        for n in 2..=9 {
            let g = TopoGraph::new(Shape::Ring, n);
            for me in 0..n {
                for dest in 0..n {
                    assert_eq!(g.hops(me, dest), hop_count(me, dest, n), "hops {me}->{dest} n={n}");
                    if me != dest {
                        // The graph tie-break must reproduce the legacy
                        // ties-go-right rule at every hop, not just the
                        // origin — forwarders and origins use the same
                        // table.
                        assert_eq!(
                            g.next_hop(me, dest),
                            RingTopology::new(me, n).next_hop(dest),
                            "next hop {me}->{dest} n={n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn torus_adjacency_has_constant_degree_four() {
        let g = TopoGraph::new(Shape::Torus { rows: 4, cols: 4 }, 16);
        for me in 0..16 {
            assert_eq!(g.neighbors(me).len(), 4, "host {me}");
        }
        // Host 5 = (row 1, col 1): neighbours 4, 6 (row) and 1, 9 (col).
        assert_eq!(g.neighbors(5), &[1, 4, 6, 9]);
        // Corner wraparound: host 0 reaches 3 (row wrap) and 12 (col wrap).
        assert_eq!(g.neighbors(0), &[1, 3, 4, 12]);
    }

    #[test]
    fn degenerate_torus_dims_dedupe() {
        // 2-wide dimensions would cable the same neighbour twice; the
        // adjacency must deduplicate.
        let g = TopoGraph::new(Shape::Torus { rows: 2, cols: 2 }, 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        // A 1-row torus degenerates to a ring.
        let line = TopoGraph::new(Shape::Torus { rows: 1, cols: 5 }, 5);
        for me in 0..5 {
            for dest in 0..5 {
                assert_eq!(line.hops(me, dest), hop_count(me, dest, 5));
            }
        }
    }

    #[test]
    fn torus_diameter_is_sum_of_half_dims() {
        assert_eq!(TopoGraph::new(Shape::Torus { rows: 4, cols: 4 }, 16).diameter(), 4);
        assert_eq!(TopoGraph::new(Shape::Torus { rows: 8, cols: 8 }, 64).diameter(), 8);
        assert_eq!(TopoGraph::new(Shape::Ring, 64).diameter(), 32);
        assert_eq!(TopoGraph::new(Shape::Clique, 16).diameter(), 1);
    }

    /// Satellite audit: no shape can produce a routing loop or a
    /// ping-pong between two hops. Because every hop strictly shrinks the
    /// BFS distance, walking `next_hop` must reach the destination in
    /// exactly `hops` steps without revisiting any host.
    #[test]
    fn no_shape_produces_routing_loops_or_ping_pong() {
        for (shape, n) in shapes_under_test() {
            let g = TopoGraph::new(shape, n);
            for src in 0..n {
                for dst in 0..n {
                    let mut cur = src;
                    let mut steps = 0;
                    let mut visited = vec![false; n];
                    let mut prev = None;
                    while cur != dst {
                        assert!(!visited[cur], "loop at {cur} on {src}->{dst} {shape:?}/{n}");
                        visited[cur] = true;
                        let hop = g.next_hop(cur, dst);
                        assert_ne!(Some(hop), prev, "ping-pong {cur}<->{hop} {shape:?}/{n}");
                        assert!(
                            g.hops(hop, dst) < g.hops(cur, dst),
                            "hop {cur}->{hop} does not shrink distance to {dst} on {shape:?}/{n}"
                        );
                        prev = Some(cur);
                        cur = hop;
                        steps += 1;
                    }
                    assert_eq!(steps, g.hops(src, dst), "{src}->{dst} on {shape:?}/{n}");
                }
            }
        }
    }

    #[test]
    fn live_rerouting_avoids_dead_hosts() {
        // 4x4 torus, kill host 1; 0 -> 2 must route around it.
        let g = TopoGraph::new(Shape::Torus { rows: 4, cols: 4 }, 16);
        assert_eq!(g.next_hop(0, 2), 1);
        let hop = g.next_hop_live(0, 2, |_| true, |pe| pe != 1).expect("alternate path");
        assert_ne!(hop, 1);
        // Walk the live route to completion.
        let mut cur = hop;
        let mut steps = 1;
        while cur != 2 {
            cur = g.next_hop_live(cur, 2, |_| true, |pe| pe != 1).expect("live chain");
            steps += 1;
            assert!(steps <= 16, "live route loop");
        }
        assert!(steps <= 4, "detour unreasonably long: {steps} hops");

        // Excluding the only remaining first hop yields None on a ring.
        let ring = TopoGraph::new(Shape::Ring, 5);
        assert_eq!(ring.next_hop_live(0, 2, |h| h != 1, |pe| pe != 4), None);
    }

    #[test]
    fn static_path_clear_walks_intermediates() {
        let g = TopoGraph::new(Shape::Ring, 6);
        // 0 -> 3 ties right through 1, 2.
        assert!(g.static_path_clear(g.next_hop(0, 3), 3, |pe| pe != 0));
        assert!(!g.static_path_clear(g.next_hop(0, 3), 3, |pe| pe != 2));
        // Destination liveness is the caller's concern.
        assert!(g.static_path_clear(g.next_hop(0, 3), 3, |pe| pe != 3));
    }

    #[test]
    fn links_cover_every_adjacency_once() {
        for (shape, n) in shapes_under_test() {
            let g = TopoGraph::new(shape, n);
            let links = g.links();
            if matches!(shape, Shape::Ring) && n == 2 {
                // The paper's 2-host ring keeps both parallel cables.
                assert_eq!(links, vec![(0, 1), (1, 0)]);
                continue;
            }
            let expected: usize = (0..n).map(|i| g.neighbors(i).len()).sum::<usize>() / 2;
            assert_eq!(links.len(), expected, "{shape:?}/{n}");
            let mut seen = std::collections::HashSet::new();
            for &(i, j) in &links {
                assert!(g.neighbors(i).contains(&j), "uncabled pair ({i},{j}) {shape:?}/{n}");
                assert!(seen.insert((i.min(j), i.max(j))), "duplicate cable {shape:?}/{n}");
            }
        }
    }

    #[test]
    fn ring_links_keep_paper_order() {
        let g = TopoGraph::new(Shape::Ring, 5);
        assert_eq!(g.links(), vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    }
}
