//! Ring topology math: neighbours, shortest routes, hop counts.
//!
//! The paper's switchless interconnect is a ring: host *i*'s right adapter
//! is cabled to host *i+1*'s left adapter (mod N). A transfer to a
//! non-neighbour is forwarded hop by hop through intermediate hosts'
//! bypass buffers, so route choice determines both latency and which links
//! carry the traffic.

/// How the hosts are interconnected.
///
/// The paper's contribution is the switchless [`Topology::Ring`]; the
/// switch-based [`Topology::FullMesh`] models the conventional
/// alternative the paper positions itself against (every host pair
/// directly connected, as an ideal non-blocking switch would provide) and
/// exists as the comparison baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Switchless ring: each host's two NTB adapters are cabled to its
    /// neighbours; non-neighbour traffic is forwarded through bypass
    /// buffers.
    #[default]
    Ring,
    /// Switch-emulating full mesh: a dedicated NTB link per host pair;
    /// every destination is one hop away, no forwarding.
    FullMesh,
}

/// Which way around the ring a transfer leaves a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteDirection {
    /// Towards host `(me + 1) % n`.
    Right,
    /// Towards host `(me + n - 1) % n`.
    Left,
}

impl RouteDirection {
    /// The opposite way around.
    pub fn opposite(self) -> RouteDirection {
        match self {
            RouteDirection::Right => RouteDirection::Left,
            RouteDirection::Left => RouteDirection::Right,
        }
    }
}

/// Shortest-path direction from `me` to `dest` on a ring of `n` hosts.
/// Ties (exactly opposite host on an even ring) go right, which keeps the
/// choice deterministic.
///
/// # Panics
/// Panics if `me == dest` (no route needed) or either id is out of range.
pub fn route(me: usize, dest: usize, n: usize) -> RouteDirection {
    assert!(n >= 2, "routing needs at least two hosts");
    assert!(me < n && dest < n, "host ids must be < n");
    assert_ne!(me, dest, "no route from a host to itself");
    let rightward = (dest + n - me) % n;
    if rightward <= n - rightward {
        RouteDirection::Right
    } else {
        RouteDirection::Left
    }
}

/// Number of link hops on the shortest path between `me` and `dest`.
pub fn hop_count(me: usize, dest: usize, n: usize) -> usize {
    assert!(n >= 1, "empty ring");
    assert!(me < n && dest < n, "host ids must be < n");
    let rightward = (dest + n - me) % n;
    rightward.min(n - rightward)
}

/// A ring of `n` hosts seen from one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingTopology {
    /// This host's id.
    pub me: usize,
    /// Total hosts in the ring.
    pub n: usize,
}

impl RingTopology {
    /// Construct; panics if `me >= n`.
    pub fn new(me: usize, n: usize) -> Self {
        assert!(n >= 1 && me < n, "invalid topology (me={me}, n={n})");
        RingTopology { me, n }
    }

    /// Right neighbour's id.
    pub fn right(&self) -> usize {
        (self.me + 1) % self.n
    }

    /// Left neighbour's id.
    pub fn left(&self) -> usize {
        (self.me + self.n - 1) % self.n
    }

    /// Whether `dest` is directly cabled to this host.
    pub fn is_neighbor(&self, dest: usize) -> bool {
        self.n >= 2 && (dest == self.left() || dest == self.right())
    }

    /// Shortest direction towards `dest`.
    pub fn route_to(&self, dest: usize) -> RouteDirection {
        route(self.me, dest, self.n)
    }

    /// Hop count to `dest`.
    pub fn hops_to(&self, dest: usize) -> usize {
        hop_count(self.me, dest, self.n)
    }

    /// The next host on the shortest path to `dest`.
    pub fn next_hop(&self, dest: usize) -> usize {
        match self.route_to(dest) {
            RouteDirection::Right => self.right(),
            RouteDirection::Left => self.left(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_on_three_ring() {
        let t = RingTopology::new(0, 3);
        assert_eq!(t.right(), 1);
        assert_eq!(t.left(), 2);
        assert!(t.is_neighbor(1));
        assert!(t.is_neighbor(2));
        assert!(!t.is_neighbor(0));
    }

    #[test]
    fn two_ring_everyone_is_neighbor() {
        let t = RingTopology::new(1, 2);
        assert_eq!(t.right(), 0);
        assert_eq!(t.left(), 0);
        assert!(t.is_neighbor(0));
    }

    #[test]
    fn route_prefers_shortest() {
        // Ring of 5: from 0, dest 1,2 go right; 3,4 go left.
        assert_eq!(route(0, 1, 5), RouteDirection::Right);
        assert_eq!(route(0, 2, 5), RouteDirection::Right);
        assert_eq!(route(0, 3, 5), RouteDirection::Left);
        assert_eq!(route(0, 4, 5), RouteDirection::Left);
    }

    #[test]
    fn route_tie_goes_right() {
        // Ring of 4: dest exactly opposite.
        assert_eq!(route(0, 2, 4), RouteDirection::Right);
        assert_eq!(route(1, 3, 4), RouteDirection::Right);
    }

    #[test]
    fn hop_counts() {
        assert_eq!(hop_count(0, 1, 3), 1);
        assert_eq!(hop_count(0, 2, 3), 1);
        assert_eq!(hop_count(0, 2, 4), 2);
        assert_eq!(hop_count(0, 3, 6), 3);
        assert_eq!(hop_count(0, 4, 6), 2);
        assert_eq!(hop_count(2, 2, 5), 0);
    }

    #[test]
    fn next_hop_walks_towards_dest() {
        let t = RingTopology::new(0, 6);
        assert_eq!(t.next_hop(2), 1);
        assert_eq!(t.next_hop(5), 5);
        assert_eq!(t.next_hop(4), 5);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn route_to_self_panics() {
        route(2, 2, 4);
    }

    #[test]
    fn walking_next_hops_reaches_destination_within_hop_count() {
        let n = 7;
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let mut cur = src;
                let mut steps = 0;
                while cur != dst {
                    cur = RingTopology::new(cur, n).next_hop(dst);
                    steps += 1;
                    assert!(steps <= n, "route loop from {src} to {dst}");
                }
                assert_eq!(steps, hop_count(src, dst, n), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn direction_opposite() {
        assert_eq!(RouteDirection::Right.opposite(), RouteDirection::Left);
        assert_eq!(RouteDirection::Left.opposite(), RouteDirection::Right);
    }
}
