//! The coalescing transmit ring: multi-slot mailboxes with one doorbell
//! per drained batch.
//!
//! The legacy scratchpad mailbox ([`crate::mailbox`]) is a one-slot
//! protocol: every frame waits for the previous frame's consumption,
//! publishes four ScratchPad registers, and rings its own doorbell — one
//! full link round-trip and one interrupt per message. That per-op
//! overhead dominates small transfers (the paper's Fig. 8/9 story), so
//! this module pipelines the hot path:
//!
//! * The window gains a **ring of mailbox slots** past the control slot
//!   (see [`WindowLayout::with_ring`]): each slot is a 32-byte record
//!   (header word, length, offset, aux, sequence, deadline, CRC) plus a
//!   private payload lane. A sender publishes record + payload with plain window
//!   writes, keeping several frames in flight at once.
//! * Headers are written **last and in batch** by [`TxSlotRing::flush`]:
//!   after the batch's payloads land (small ones by zero-copy PIO below
//!   the crossover threshold, large ones as one chained DMA submission
//!   with a single completion), every staged header is published and ONE
//!   `DB_DMAPUT` doorbell covers the whole batch.
//! * The receiver's service thread drains **all** pending slots per
//!   interrupt, zeroing each header as the per-slot acknowledgement; the
//!   sender polls a slot's header back to zero (a non-posted read)
//!   before reusing it, so flow control needs no reverse channel.
//!
//! Loss tolerance mirrors the scratchpad path: a swallowed doorbell is
//! recovered by the sender's bounded re-ring and the receiver's idle
//! poll; a corrupted record or payload fails the per-slot CRC (armed only
//! when the link has an active fault plan) and is consumed without
//! dispatch, leaving recovery to end-to-end retransmission. The ring
//! deliberately enforces no sequence-gap invariant — slots can be
//! legitimately lost under fault injection, and the unacked-put ledger
//! already provides exactly-once delivery.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntb_sim::{
    DmaRequest, EventKind, NtbError, NtbPort, Obs, Region, Result, TimeModel, TransferMode,
};
use parking_lot::Mutex;

use crate::config::NetConfig;
use crate::crc::crc32;
use crate::doorbells::DB_DMAPUT;
use crate::frame::Frame;
use crate::layout::WindowLayout;

/// Byte offset of the record body (everything after the header word).
const BODY_OFF: u64 = 4;
/// Record body length: len word, offset, aux, slot sequence, deadline, CRC.
const BODY_LEN: usize = 24;

/// One frame staged in the current batch: its header word is withheld
/// until [`TxSlotRing::flush`] publishes the whole batch.
#[derive(Debug, Clone, Copy)]
struct StagedSlot {
    idx: u32,
    header: u32,
    seq: u32,
}

#[derive(Debug, Default)]
struct TxState {
    /// Round-robin slot cursor (monotonic; slot = cursor % ring_slots).
    cursor: u32,
    /// Monotonic slot sequence; rides the record so publish and drain
    /// events pair up in the trace.
    slot_seq: u32,
    /// Frames staged since the last flush, in publish order.
    staged: Vec<StagedSlot>,
    /// DMA descriptors accumulated for the batch's large payloads;
    /// submitted as one chain at flush time.
    dma_reqs: Vec<DmaRequest>,
}

/// The transmit side of one link direction's slot ring.
pub struct TxSlotRing {
    port: Arc<NtbPort>,
    layout: WindowLayout,
    obs: Obs,
    model: Arc<TimeModel>,
    pio_crossover: u64,
    payload_max: u64,
    batch_cap: u32,
    abort: Option<Arc<AtomicBool>>,
    retry: Option<(Duration, u32)>,
    state: Mutex<TxState>,
}

impl TxSlotRing {
    /// Transmit ring of `port`, publishing into the peer's window ring
    /// area described by `layout`.
    pub fn new(
        port: Arc<NtbPort>,
        layout: WindowLayout,
        cfg: &NetConfig,
        model: Arc<TimeModel>,
        obs: Obs,
    ) -> Self {
        assert!(layout.has_ring(), "TxSlotRing needs a layout with a ring area");
        TxSlotRing {
            port,
            layout,
            obs,
            model,
            pio_crossover: cfg.pio_crossover,
            payload_max: cfg.coalesce_payload_max,
            batch_cap: cfg.batch_cap(),
            abort: None,
            retry: None,
            state: Mutex::new(TxState::default()),
        }
    }

    /// Install an abort flag: a publish blocked on an occupied slot fails
    /// with `DmaShutdown` once the flag is raised (network teardown).
    pub fn set_abort(&mut self, flag: Arc<AtomicBool>) {
        self.abort = Some(flag);
    }

    /// Bound the slot-free wait: after `timeout` the drain doorbell is
    /// re-rung (recovering a dropped interrupt), and after `max_rerings`
    /// such rounds the publish fails with [`NtbError::LinkFailed`].
    pub fn set_retry(&mut self, timeout: Duration, max_rerings: u32) {
        self.retry = Some((timeout, max_rerings));
    }

    /// Whether a payload of `len` bytes fits a slot's payload lane.
    pub fn fits(&self, len: usize) -> bool {
        len as u64 <= self.payload_max
    }

    /// Frames staged but not yet flushed (diagnostics and tests).
    pub fn staged(&self) -> usize {
        self.state.lock().staged.len()
    }

    /// Wait until slot `idx`'s header reads back zero (the receiver
    /// consumed its previous occupant). Non-posted read per poll; bounded
    /// by the retry policy like the scratchpad wait.
    ///
    /// The wait escalates instead of busy-spinning forever: a short pure
    /// spin catches the common sub-microsecond free, then the thread
    /// yields its core, then it parks for exponentially growing slices
    /// (capped at 64 µs) so a long-occupied slot costs interrupts, not a
    /// pegged core.
    fn wait_slot_free(&self, idx: u32) -> Result<()> {
        let off = self.layout.ring_slot_off(idx);
        let mut buf = [0u8; 4];
        let mut spins: u32 = 0;
        let mut round_start = Instant::now();
        let mut rounds: u32 = 0;
        loop {
            self.port.outgoing().read_bytes(off, &mut buf, TransferMode::Memcpy)?;
            if buf == [0u8; 4] {
                return Ok(());
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                if self.abort.as_ref().is_some_and(|f| f.load(std::sync::atomic::Ordering::SeqCst))
                {
                    return Err(NtbError::DmaShutdown);
                }
                if let Some((timeout, max_rerings)) = self.retry {
                    if round_start.elapsed() >= timeout {
                        if rounds >= max_rerings {
                            // RESOLVES(none): slot acquisition failed before
                            // the frame was staged — nothing was registered.
                            return Err(NtbError::LinkFailed { attempts: rounds + 1 });
                        }
                        rounds += 1;
                        round_start = Instant::now();
                        // The peer likely missed the interrupt for the
                        // batch occupying this slot; ring again. A down
                        // link rejects the ring — keep waiting, the
                        // retry budget bounds us.
                        let _ = self.port.ring_peer(DB_DMAPUT);
                    }
                }
            }
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 512 {
                std::thread::yield_now();
            } else {
                // 1, 2, 4 ... 64 µs parks; a pending unpark or timeout
                // both resume the poll, so correctness is unchanged.
                let exp = (spins - 512).min(6);
                // DEADLINE-CLIPPED: micro-park poll quantum; the re-ring
                // retry budget above bounds the whole wait.
                std::thread::park_timeout(Duration::from_micros(1 << exp));
            }
        }
    }

    /// Stage `frame` (+ payload) into the next free ring slot without
    /// ringing a doorbell. The payload and record body are written now;
    /// the header word is withheld until [`flush`](Self::flush) publishes
    /// the batch. Auto-flushes first when the batch cap is reached.
    pub fn publish(&self, mut frame: Frame, payload: Option<&[u8]>) -> Result<()> {
        let data = payload.unwrap_or(&[]);
        debug_assert!(self.fits(data.len()), "payload exceeds the slot lane");
        crate::lockdep_track!(&crate::lockdep::NET_TXRING);
        let mut st = self.state.lock();
        if st.staged.len() as u32 >= self.batch_cap {
            self.flush_locked(&mut st)?;
        }
        let idx = st.cursor % self.layout.ring_slots;
        self.wait_slot_free(idx)?;
        st.cursor = st.cursor.wrapping_add(1);
        let seq = st.slot_seq;
        st.slot_seq = st.slot_seq.wrapping_add(1);
        frame.seq = seq as u16;
        let words = frame.encode();
        if !data.is_empty() {
            let lane = self.layout.ring_lane_off(idx);
            if frame.mode == TransferMode::Memcpy || data.len() as u64 <= self.pio_crossover {
                // Zero-copy PIO fast path: below the crossover a CPU
                // store beats paying DMA setup (paper Fig. 9).
                self.port.outgoing().write_bytes(lane, data, TransferMode::Memcpy)?;
            } else {
                let staging = Region::anonymous(data.len() as u64);
                staging.write(0, data)?;
                self.model.delay(self.model.local_copy_time(data.len() as u64));
                st.dma_reqs.push(DmaRequest {
                    src: staging,
                    src_offset: 0,
                    dst_offset: lane,
                    len: data.len() as u64,
                });
            }
        }
        let mut body = [0u8; BODY_LEN];
        body[0..4].copy_from_slice(&words[1].to_le_bytes());
        body[4..8].copy_from_slice(&words[2].to_le_bytes());
        body[8..12].copy_from_slice(&words[3].to_le_bytes());
        body[12..16].copy_from_slice(&seq.to_le_bytes());
        body[16..20].copy_from_slice(&frame.deadline_us.to_le_bytes());
        // Per-slot integrity word, armed (like the control-slot CRC) only
        // on links with an active fault plan. Covers the header word too —
        // it is written separately at flush time, and a corrupted header
        // that still decodes would otherwise dispatch a frame with garbage
        // routing fields.
        if self.port.outgoing().faults().is_active() {
            let mut crc = slot_crc(words[0], &body);
            if !data.is_empty() {
                crc ^= crc32(data);
            }
            body[20..24].copy_from_slice(&crc.to_le_bytes());
        }
        self.port.outgoing().write_bytes(
            self.layout.ring_slot_off(idx) + BODY_OFF,
            &body,
            TransferMode::Memcpy,
        )?;
        st.staged.push(StagedSlot { idx, header: words[0], seq });
        self.obs.emit(EventKind::SlotPublish, u64::from(seq), [data.len() as u64, u64::from(idx)]);
        Ok(())
    }

    /// Publish the staged batch: submit the accumulated DMA chain (one
    /// completion for every large payload), then write every header word,
    /// then ring ONE doorbell. On a chain error no header is written —
    /// the slots stay free and end-to-end retransmission recovers.
    pub fn flush(&self) -> Result<()> {
        crate::lockdep_track!(&crate::lockdep::NET_TXRING);
        let mut st = self.state.lock();
        self.flush_locked(&mut st)
    }

    fn flush_locked(&self, st: &mut TxState) -> Result<()> {
        if st.staged.is_empty() {
            st.dma_reqs.clear();
            return Ok(());
        }
        let reqs = std::mem::take(&mut st.dma_reqs);
        if !reqs.is_empty() {
            if let Err(e) = self.port.dma_transfer_chain(reqs) {
                // No header was written: every staged slot still reads
                // zero at the receiver and stays reusable.
                st.staged.clear();
                return Err(e);
            }
        }
        let staged = std::mem::take(&mut st.staged);
        let first = staged[0].seq;
        let mut written: u32 = 0;
        let mut err: Option<NtbError> = None;
        for s in &staged {
            match self.port.outgoing().write_bytes(
                self.layout.ring_slot_off(s.idx),
                &s.header.to_le_bytes(),
                TransferMode::Memcpy,
            ) {
                Ok(()) => written += 1,
                Err(e) => {
                    // Later headers are withheld (their slots stay free);
                    // the already-published prefix still needs its
                    // doorbell below.
                    err = Some(e);
                    break;
                }
            }
        }
        if written > 0 {
            match self.port.ring_peer(DB_DMAPUT) {
                Ok(()) => {
                    self.obs.emit(
                        EventKind::DoorbellCoalesce,
                        u64::from(first),
                        [u64::from(written), 0],
                    );
                }
                // Published frames without a ring are still recovered by
                // the receiver's idle poll and the sender's re-ring.
                Err(e) => err = err.or(Some(e)),
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for TxSlotRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxSlotRing")
            .field("slots", &self.layout.ring_slots)
            .field("staged", &self.staged())
            .finish()
    }
}

/// One successfully decoded ring slot on the receive side.
#[derive(Debug)]
pub struct DrainedSlot {
    /// The decoded frame.
    pub frame: Frame,
    /// Payload copied out of the slot's lane (`None` for payload-free
    /// kinds).
    pub payload: Option<Vec<u8>>,
    /// Slot index the frame occupied.
    pub slot_idx: u32,
    /// The sender's slot sequence number (pairs publish with drain in
    /// the trace).
    pub slot_seq: u32,
}

/// What the receiver found in one ring slot.
#[derive(Debug)]
pub enum SlotRead {
    /// Header is zero: nothing published (or already consumed).
    Empty,
    /// Header non-zero but the record failed to decode or its CRC did
    /// not match; the slot must be consumed without dispatch.
    Corrupt,
    /// A complete frame.
    Frame(DrainedSlot),
}

/// Read ring slot `idx` from the receiver's own incoming `region`.
/// Does not consume the slot — the caller zeroes the header (see
/// [`consume_slot`]) after copying what it needs.
pub fn read_slot(
    region: &Region,
    layout: &WindowLayout,
    idx: u32,
    check_crc: bool,
) -> Result<SlotRead> {
    let off = layout.ring_slot_off(idx);
    let header_bytes = region.read_vec(off, 4)?;
    let header = u32::from_le_bytes(header_bytes.try_into().unwrap_or([0; 4]));
    if header == 0 {
        return Ok(SlotRead::Empty);
    }
    let body = region.read_vec(off + BODY_OFF, BODY_LEN as u64)?;
    let word = |i: usize| {
        u32::from_le_bytes(body[i * 4..i * 4 + 4].try_into().unwrap_or([0; 4]))
        // lint: unwrap-ok(read_vec returned exactly BODY_LEN bytes; slices are 4-aligned)
    };
    let (len_w, offset_w, aux_w, slot_seq, deadline_us, stored_crc) =
        (word(0), word(1), word(2), word(3), word(4), word(5));
    let Some(frame) = Frame::decode([header, len_w, offset_w, aux_w]) else {
        return Ok(SlotRead::Corrupt);
    };
    let frame = frame.with_deadline_us(deadline_us);
    let payload = if frame.kind.has_payload() && frame.len > 0 {
        if u64::from(frame.len) > layout.ring_lane {
            // A corrupted length must not trigger an out-of-bounds lane
            // read; treat it like any other integrity failure.
            return Ok(SlotRead::Corrupt);
        }
        Some(region.read_vec(layout.ring_lane_off(idx), u64::from(frame.len))?)
    } else {
        None
    };
    if check_crc {
        let mut crc = slot_crc(header, &body);
        if let Some(data) = &payload {
            if !data.is_empty() {
                crc ^= crc32(data);
            }
        }
        if crc != stored_crc {
            return Ok(SlotRead::Corrupt);
        }
    }
    Ok(SlotRead::Frame(DrainedSlot { frame, payload, slot_idx: idx, slot_seq }))
}

/// CRC over a slot record: the header word plus the first 20 body bytes
/// (length, offset, aux, slot sequence, deadline). The payload CRC is
/// XORed on top by the callers.
fn slot_crc(header: u32, body: &[u8]) -> u32 {
    let mut record = [0u8; 24];
    record[0..4].copy_from_slice(&header.to_le_bytes());
    record[4..24].copy_from_slice(&body[0..20]);
    crc32(&record)
}

/// Consume ring slot `idx`: zero its header in the receiver's own
/// incoming region, freeing it for the sender's next wraparound.
pub fn consume_slot(region: &Region, layout: &WindowLayout, idx: u32) -> Result<()> {
    region.write(layout.ring_slot_off(idx), &0u32.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntb_sim::{connect_ports, EventLog, HostMemory, PortConfig, TimeModel};

    fn ring_pair(cfg: &NetConfig) -> (Arc<NtbPort>, Arc<NtbPort>, WindowLayout) {
        let ma = HostMemory::new(0, 64 << 20);
        let mb = HostMemory::new(1, 64 << 20);
        let (a, b) = connect_ports(
            PortConfig::new(0, 1),
            PortConfig::new(1, 0),
            &ma,
            &mb,
            Arc::new(TimeModel::zero()),
        )
        .unwrap();
        let layout = WindowLayout::with_ring(
            cfg.direct_buf,
            cfg.bypass_buf,
            cfg.tx_slots,
            cfg.coalesce_payload_max,
        );
        (a, b, layout)
    }

    fn small_cfg() -> NetConfig {
        let mut cfg = NetConfig::fast(2);
        cfg.direct_buf = 64 << 10;
        cfg.bypass_buf = 64 << 10;
        cfg.tx_slots = 4;
        cfg.coalesce_batch = 4;
        cfg.coalesce_payload_max = 1024;
        cfg
    }

    fn tx_ring(port: &Arc<NtbPort>, layout: WindowLayout, cfg: &NetConfig) -> TxSlotRing {
        let obs = Obs::new(EventLog::new(1, 16), 0, 0);
        TxSlotRing::new(Arc::clone(port), layout, cfg, Arc::new(TimeModel::zero()), obs)
    }

    #[test]
    fn publish_withholds_header_until_flush() {
        let cfg = small_cfg();
        let (a, b, layout) = ring_pair(&cfg);
        let tx = tx_ring(&a, layout, &cfg);
        tx.publish(Frame::put(0, 1, 3, 0, 7, TransferMode::Memcpy), Some(b"abc")).unwrap();
        let region = b.incoming().region();
        assert!(matches!(read_slot(region, &layout, 0, false).unwrap(), SlotRead::Empty));
        assert_eq!(tx.staged(), 1);
        tx.flush().unwrap();
        assert_eq!(tx.staged(), 0);
        let SlotRead::Frame(slot) = read_slot(region, &layout, 0, false).unwrap() else {
            panic!("expected a frame after flush");
        };
        assert_eq!(slot.frame.aux, 7);
        assert_eq!(slot.payload.as_deref(), Some(&b"abc"[..]));
        assert_eq!(slot.slot_seq, 0);
    }

    #[test]
    fn batch_lands_in_distinct_slots_with_one_drain_pass() {
        let cfg = small_cfg();
        let (a, b, layout) = ring_pair(&cfg);
        let tx = tx_ring(&a, layout, &cfg);
        for i in 0..3u32 {
            let body = vec![i as u8 + 1; 8];
            tx.publish(Frame::put(0, 1, 8, i * 8, 100 + i, TransferMode::Memcpy), Some(&body))
                .unwrap();
        }
        tx.flush().unwrap();
        let region = b.incoming().region();
        let mut auxes = vec![];
        for idx in 0..layout.ring_slots {
            if let SlotRead::Frame(s) = read_slot(region, &layout, idx, false).unwrap() {
                auxes.push(s.frame.aux);
                consume_slot(region, &layout, idx).unwrap();
            }
        }
        assert_eq!(auxes, vec![100, 101, 102]);
        // All consumed: the ring reads empty again.
        for idx in 0..layout.ring_slots {
            assert!(matches!(read_slot(region, &layout, idx, false).unwrap(), SlotRead::Empty));
        }
    }

    #[test]
    fn consumed_slot_is_reusable() {
        let cfg = small_cfg();
        let (a, b, layout) = ring_pair(&cfg);
        let tx = tx_ring(&a, layout, &cfg);
        let region = b.incoming().region();
        // Two full wraps of the 4-slot ring; consume as we go.
        for round in 0..8u32 {
            tx.publish(Frame::put(0, 1, 4, 0, round + 1, TransferMode::Memcpy), Some(&[9u8; 4]))
                .unwrap();
            tx.flush().unwrap();
            let idx = round % layout.ring_slots;
            let SlotRead::Frame(s) = read_slot(region, &layout, idx, false).unwrap() else {
                panic!("round {round}: expected frame in slot {idx}");
            };
            assert_eq!(s.frame.aux, round + 1);
            assert_eq!(s.slot_seq, round);
            consume_slot(region, &layout, idx).unwrap();
        }
    }

    #[test]
    fn occupied_slot_blocks_with_bounded_wait() {
        let cfg = small_cfg();
        let (a, b, layout) = ring_pair(&cfg);
        let mut tx = tx_ring(&a, layout, &cfg);
        tx.set_retry(Duration::from_millis(5), 2);
        let region = b.incoming().region();
        // Fill every slot without consuming any.
        for i in 0..4u32 {
            tx.publish(Frame::put(0, 1, 0, 0, i + 1, TransferMode::Memcpy), None).unwrap();
        }
        tx.flush().unwrap();
        // Slot 0 is still occupied: the fifth publish must fail in
        // bounded time, not hang.
        let err = tx.publish(Frame::put(0, 1, 0, 0, 9, TransferMode::Memcpy), None).unwrap_err();
        assert_eq!(err, NtbError::LinkFailed { attempts: 3 });
        // Consume one slot; the publish now succeeds into it.
        consume_slot(region, &layout, 0).unwrap();
        tx.publish(Frame::put(0, 1, 0, 0, 9, TransferMode::Memcpy), None).unwrap();
        tx.flush().unwrap();
        let SlotRead::Frame(s) = read_slot(region, &layout, 0, false).unwrap() else {
            panic!("expected reused slot 0");
        };
        assert_eq!(s.frame.aux, 9);
    }

    #[test]
    fn large_payload_rides_the_dma_chain() {
        let mut cfg = small_cfg();
        cfg.pio_crossover = 16; // force the chain path for 64-byte payloads
        let (a, b, layout) = ring_pair(&cfg);
        let tx = tx_ring(&a, layout, &cfg);
        let p1 = vec![0xAA; 64];
        let p2 = vec![0xBB; 64];
        tx.publish(Frame::put(0, 1, 64, 0, 1, TransferMode::Dma), Some(&p1)).unwrap();
        tx.publish(Frame::put(0, 1, 64, 64, 2, TransferMode::Dma), Some(&p2)).unwrap();
        tx.flush().unwrap();
        let region = b.incoming().region();
        let SlotRead::Frame(s0) = read_slot(region, &layout, 0, false).unwrap() else {
            panic!("slot 0")
        };
        let SlotRead::Frame(s1) = read_slot(region, &layout, 1, false).unwrap() else {
            panic!("slot 1")
        };
        assert_eq!(s0.payload.unwrap(), p1);
        assert_eq!(s1.payload.unwrap(), p2);
    }

    #[test]
    fn deadline_word_roundtrips_through_the_ring() {
        let cfg = small_cfg();
        let (a, b, layout) = ring_pair(&cfg);
        let tx = tx_ring(&a, layout, &cfg);
        let f = Frame::put(0, 1, 3, 0, 7, TransferMode::Memcpy).with_deadline_us(987_654);
        tx.publish(f, Some(b"abc")).unwrap();
        tx.flush().unwrap();
        let region = b.incoming().region();
        let SlotRead::Frame(slot) = read_slot(region, &layout, 0, false).unwrap() else {
            panic!("expected a frame");
        };
        assert_eq!(slot.frame.deadline_us, 987_654);
        assert_eq!(slot.frame.aux, 7);
    }

    #[test]
    fn corrupt_length_is_rejected_not_overread() {
        let cfg = small_cfg();
        let (a, b, layout) = ring_pair(&cfg);
        let tx = tx_ring(&a, layout, &cfg);
        tx.publish(Frame::put(0, 1, 4, 0, 1, TransferMode::Memcpy), Some(&[1, 2, 3, 4])).unwrap();
        tx.flush().unwrap();
        let region = b.incoming().region();
        // Forge an absurd length in the record body (simulating in-flight
        // corruption that still decodes).
        let huge = (layout.ring_lane as u32 + 64).to_le_bytes();
        region.write(layout.ring_slot_off(0) + BODY_OFF, &huge).unwrap();
        assert!(matches!(read_slot(region, &layout, 0, false).unwrap(), SlotRead::Corrupt));
    }

    #[test]
    fn crc_mismatch_reads_corrupt() {
        let cfg = small_cfg();
        let (a, b, layout) = ring_pair(&cfg);
        let tx = tx_ring(&a, layout, &cfg);
        tx.publish(Frame::put(0, 1, 4, 0, 1, TransferMode::Memcpy), Some(&[1, 2, 3, 4])).unwrap();
        tx.flush().unwrap();
        let region = b.incoming().region();
        // The clean-link sender left the CRC word zero, so a checked read
        // against real contents fails — stand-in for a flipped payload
        // byte on a faulty link.
        assert!(matches!(read_slot(region, &layout, 0, true).unwrap(), SlotRead::Corrupt));
    }
}
