//! Layout of a link's incoming window.
//!
//! Each incoming window is carved into two payload areas, mirroring the
//! paper's buffer structure:
//!
//! ```text
//! +----------------+--------------------+------+
//! | direct buffer  | bypass buffer      | ctrl |
//! | (terminating   | (forwarded         | slot |
//! |  payloads)     |  payloads)         |      |
//! +----------------+--------------------+------+
//! 0            direct_buf     direct_buf+bypass_buf  (+CTRL_LEN)
//! ```
//!
//! The sender chooses the area: if the *next hop is the final destination*
//! the payload goes to the direct buffer; otherwise it goes to the bypass
//! buffer, from which the receiving host's service thread stages and
//! forwards it (paper §III-B3, Fig. 4).
//!
//! The trailing control slot is a small fixed region past both payload
//! areas: bytes 0..4 hold the CRC-32 of the in-flight payload (written by
//! the sender before the doorbell, verified by the receiving hop), bytes
//! 4..8 are a scratch word down-link probes write to test the path without
//! touching payload bytes, bytes 8..12 carry the in-flight frame's
//! absolute deadline (µs since the network epoch, 0 = none; written by
//! the sender before the header publish), and bytes 12..16 hold the
//! cumulative credit grant the window's *owner* advertises to the peer
//! for credit-based flow control. One slot suffices because the mailbox
//! protocol allows only one in-flight frame per link direction.

use ntb_sim::{Region, Result};

/// Size of the control slot appended after the payload areas.
pub const CTRL_LEN: u64 = 16;

/// Offset within the control slot of the payload CRC word.
pub const CTRL_CRC_OFF: u64 = 0;

/// Offset within the control slot of the probe scratch word.
pub const CTRL_PROBE_OFF: u64 = 4;

/// Offset within the control slot of the in-flight frame's absolute
/// deadline word (µs since the network epoch; 0 = no deadline).
pub const CTRL_DEADLINE_OFF: u64 = 8;

/// Offset within the control slot of the cumulative credit-grant word
/// the receiving side advertises back to the data sender.
pub const CTRL_CREDIT_OFF: u64 = 12;

/// Bytes of one transmit-ring slot record: 8 u32 words — header, len,
/// offset, aux, slot sequence, deadline, crc, and one reserved word (the
/// PEX scratchpad mirror is word-granular, so a record is a power-of-two
/// run of words the sender can publish with plain window writes).
pub const SLOT_RECORD_LEN: u64 = 32;

/// Resolved offsets of one incoming window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowLayout {
    /// Direct buffer offset (always 0).
    pub direct_off: u64,
    /// Direct buffer size.
    pub direct_len: u64,
    /// Bypass buffer offset.
    pub bypass_off: u64,
    /// Bypass buffer size.
    pub bypass_len: u64,
    /// Control slot offset (CRC + probe words live here).
    pub ctrl_off: u64,
    /// Transmit-ring area offset (0 when the ring is disabled).
    pub ring_off: u64,
    /// Number of transmit-ring slots (0 = no ring).
    pub ring_slots: u32,
    /// Payload lane size per ring slot.
    pub ring_lane: u64,
}

impl WindowLayout {
    /// Build a layout with the given area sizes and no transmit ring.
    pub fn new(direct_len: u64, bypass_len: u64) -> Self {
        Self::with_ring(direct_len, bypass_len, 0, 0)
    }

    /// Build a layout with a transmit ring of `slots` slots, each with a
    /// `lane` byte payload lane, appended after the control slot.
    pub fn with_ring(direct_len: u64, bypass_len: u64, slots: u32, lane: u64) -> Self {
        WindowLayout {
            direct_off: 0,
            direct_len,
            bypass_off: direct_len,
            bypass_len,
            ctrl_off: direct_len + bypass_len,
            ring_off: direct_len + bypass_len + CTRL_LEN,
            ring_slots: slots,
            ring_lane: lane,
        }
    }

    /// Minimum window size that holds both areas, the control slot, and
    /// a ring of `slots` slots with `lane` byte payload lanes.
    pub fn required_size_with_ring(direct_len: u64, bypass_len: u64, slots: u32, lane: u64) -> u64 {
        direct_len + bypass_len + CTRL_LEN + u64::from(slots) * (SLOT_RECORD_LEN + lane)
    }

    /// Minimum window size that holds both areas plus the control slot.
    pub fn required_size(direct_len: u64, bypass_len: u64) -> u64 {
        Self::required_size_with_ring(direct_len, bypass_len, 0, 0)
    }

    /// Offset of ring slot `idx`'s record (header word first).
    pub fn ring_slot_off(&self, idx: u32) -> u64 {
        debug_assert!(idx < self.ring_slots);
        self.ring_off + u64::from(idx) * SLOT_RECORD_LEN
    }

    /// Offset of ring slot `idx`'s payload lane. Lanes sit after the
    /// whole record array so records stay densely packed for polling.
    pub fn ring_lane_off(&self, idx: u32) -> u64 {
        debug_assert!(idx < self.ring_slots);
        self.ring_off
            + u64::from(self.ring_slots) * SLOT_RECORD_LEN
            + u64::from(idx) * self.ring_lane
    }

    /// True when this layout carries a transmit ring.
    pub fn has_ring(&self) -> bool {
        self.ring_slots > 0
    }

    /// Offset of the payload CRC word within the window.
    pub fn crc_off(&self) -> u64 {
        self.ctrl_off + CTRL_CRC_OFF
    }

    /// Offset of the probe scratch word within the window.
    pub fn probe_off(&self) -> u64 {
        self.ctrl_off + CTRL_PROBE_OFF
    }

    /// Offset of the in-flight frame's deadline word within the window.
    pub fn deadline_off(&self) -> u64 {
        self.ctrl_off + CTRL_DEADLINE_OFF
    }

    /// Offset of the cumulative credit-grant word within the window.
    pub fn credit_off(&self) -> u64 {
        self.ctrl_off + CTRL_CREDIT_OFF
    }

    /// Offset of the area payloads of the given routing class land in.
    pub fn area_offset(&self, terminating: bool) -> u64 {
        if terminating {
            self.direct_off
        } else {
            self.bypass_off
        }
    }

    /// Size of the area for the given routing class.
    pub fn area_len(&self, terminating: bool) -> u64 {
        if terminating {
            self.direct_len
        } else {
            self.bypass_len
        }
    }

    /// View of the direct buffer within `window`.
    pub fn direct_region(&self, window: &Region) -> Result<Region> {
        window.slice(self.direct_off, self.direct_len)
    }

    /// View of the bypass buffer within `window`.
    pub fn bypass_region(&self, window: &Region) -> Result<Region> {
        window.slice(self.bypass_off, self.bypass_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_dont_overlap() {
        let l = WindowLayout::new(256 << 10, 128 << 10);
        assert_eq!(l.direct_off, 0);
        assert_eq!(l.bypass_off, 256 << 10);
        assert_eq!(l.ctrl_off, 384 << 10);
        assert_eq!(WindowLayout::required_size(256 << 10, 128 << 10), (384 << 10) + CTRL_LEN);
        assert_eq!(l.crc_off(), 384 << 10);
        assert_eq!(l.probe_off(), (384 << 10) + 4);
        assert_eq!(l.deadline_off(), (384 << 10) + 8);
        assert_eq!(l.credit_off(), (384 << 10) + 12);
    }

    #[test]
    fn area_selection() {
        let l = WindowLayout::new(100, 200);
        assert_eq!(l.area_offset(true), 0);
        assert_eq!(l.area_offset(false), 100);
        assert_eq!(l.area_len(true), 100);
        assert_eq!(l.area_len(false), 200);
    }

    #[test]
    fn regions_view_right_bytes() {
        let l = WindowLayout::new(64, 64);
        let win = Region::anonymous(256);
        l.direct_region(&win).unwrap().write(0, b"direct").unwrap();
        l.bypass_region(&win).unwrap().write(0, b"bypass").unwrap();
        assert_eq!(win.read_vec(0, 6).unwrap(), b"direct");
        assert_eq!(win.read_vec(64, 6).unwrap(), b"bypass");
    }

    #[test]
    fn ring_areas_dont_overlap() {
        let l = WindowLayout::with_ring(1024, 512, 4, 256);
        assert!(l.has_ring());
        assert_eq!(l.ring_off, 1024 + 512 + CTRL_LEN);
        assert_eq!(l.ring_slot_off(0), l.ring_off);
        assert_eq!(l.ring_slot_off(3), l.ring_off + 3 * SLOT_RECORD_LEN);
        assert_eq!(l.ring_lane_off(0), l.ring_off + 4 * SLOT_RECORD_LEN);
        assert_eq!(l.ring_lane_off(3), l.ring_off + 4 * SLOT_RECORD_LEN + 3 * 256);
        assert_eq!(
            WindowLayout::required_size_with_ring(1024, 512, 4, 256),
            1024 + 512 + CTRL_LEN + 4 * (SLOT_RECORD_LEN + 256)
        );
        assert!(!WindowLayout::new(1024, 512).has_ring());
    }

    #[test]
    fn region_views_bounds_checked() {
        let l = WindowLayout::new(64, 64);
        let win = Region::anonymous(100); // too small for bypass area
        assert!(l.direct_region(&win).is_ok());
        assert!(l.bypass_region(&win).is_err());
    }
}
