//! Runtime lock-order instrumentation ("lockdep", after the Linux kernel
//! facility of the same name).
//!
//! The static pass in `ntb-lint` proves intra-function acquisition order
//! against the LOCK_ORDER manifest; this module closes the gap it cannot
//! see — orders composed *across* functions and crates at runtime (e.g. a
//! service-thread callback taking a heap lock while the caller already
//! holds a pending-table lock).
//!
//! Instrumented lock sites call [`track`] immediately before the real
//! acquisition, pushing the site's [`LockClass`] onto a thread-local held
//! stack; the returned [`ClassGuard`] pops it on drop. Every observed
//! `held → acquired` pair is recorded as a directed edge in a global
//! graph, and an acquisition whose rank does not strictly increase over
//! the top of the held stack is recorded as a violation. Violations are
//! **recorded, not panicked**: service threads swallow panics via
//! `let _ = h.join()`, so the chaos suite instead drains
//! [`take_violations`] at the end and fails loudly there.
//!
//! The tracking machinery is always compiled (so its tests run under the
//! default feature set); the hot-path call sites in `ntb-net` and
//! `shmem-core` are gated behind the `lockdep` feature via
//! [`lockdep_track!`](crate::lockdep_track), making the default build
//! zero-overhead.
//!
//! The class table below is cross-checked against the `ntb-lint`
//! LOCK_ORDER manifest by the lint's `lockdep-sync` rule: editing a rank
//! here without editing the manifest (or vice versa) fails the lint.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// A named rung of the lock hierarchy. Ranks must strictly increase along
/// any acquisition chain.
#[derive(Debug)]
pub struct LockClass {
    /// Manifest name (kebab-case, matches `ntb-lint`'s LOCK_ORDER).
    pub name: &'static str,
    /// Hierarchy rank; strictly increasing along nested acquisitions.
    pub rank: u32,
}

// The runtime-reachable subset of the LOCK_ORDER manifest. Declarations
// must stay literal `LockClass { name: "...", rank: N }` initializers:
// the lint's lockdep-sync rule parses them textually.

/// Serializes remote AMO read-modify-write on the symmetric heap.
pub const SHMEM_AMO: LockClass = LockClass { name: "shmem-amo", rank: 10 };
/// Symmetric-heap allocator state (segments, live map).
pub const SHMEM_HEAP: LockClass = LockClass { name: "shmem-heap", rank: 20 };
/// Heap change-version counter + condvar for wait/wake.
pub const SHMEM_VERSION: LockClass = LockClass { name: "shmem-version", rank: 30 };
/// The node's registered delivery target (RwLock).
pub const NET_DELIVERY: LockClass = LockClass { name: "net-delivery", rank: 40 };
/// Duplicate-suppression state: seen-put window and AMO replay cache.
pub const NET_DEDUP: LockClass = LockClass { name: "net-dedup", rank: 50 };
/// Ring membership view (heartbeat failure detector + gossip).
pub const NET_MEMBERSHIP: LockClass = LockClass { name: "net-membership", rank: 55 };
/// One shard of the in-flight request completion table.
pub const NET_PENDING_SHARD: LockClass = LockClass { name: "net-pending-shard", rank: 60 };
/// One shard of the unacked-put retransmission ledger.
pub const NET_UNACKED_SHARD: LockClass = LockClass { name: "net-unacked-shard", rank: 64 };
/// Bypass-forwarding job queue.
pub const NET_FORWARD: LockClass = LockClass { name: "net-forward", rank: 70 };
/// Per-link retransmission token bucket (leaf; held only across the
/// refill arithmetic).
pub const NET_RETRY_BUDGET: LockClass = LockClass { name: "net-retry-budget", rank: 72 };
/// Transmit-ring publish state (slot seq + coalesced doorbell pairing).
pub const NET_TXRING: LockClass = LockClass { name: "net-txring", rank: 78 };
/// Mailbox send serialization (slot seq + doorbell pairing).
pub const NET_MAILBOX: LockClass = LockClass { name: "net-mailbox", rank: 80 };
/// Node admin state: service-thread handles, error sink.
pub const NET_ADMIN: LockClass = LockClass { name: "net-admin", rank: 90 };
/// This module's own graph state; leaf of the hierarchy, never tracked.
pub const LOCKDEP_INTERNAL: LockClass = LockClass { name: "lockdep-internal", rank: 130 };

/// Global acquisition graph + recorded violations.
#[derive(Default)]
struct LockdepState {
    /// Directed `held → acquired` edges, by class name.
    edges: HashSet<(&'static str, &'static str)>,
    /// Human-readable violation records, deduplicated.
    violations: Vec<String>,
}

static STATE: Mutex<Option<LockdepState>> = Mutex::new(None);

thread_local! {
    /// Classes this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<&'static LockClass>> = const { RefCell::new(Vec::new()) };
}

fn with_state<R>(f: impl FnOnce(&mut LockdepState) -> R) -> R {
    // A poisoned graph is still a readable graph: violations found before
    // a panicking thread died are exactly what the caller wants to see.
    let mut st = STATE.lock().unwrap_or_else(|p| p.into_inner());
    f(st.get_or_insert_with(LockdepState::default))
}

/// RAII token marking `class` as held by the current thread; created by
/// [`track`] immediately before the real lock acquisition, dropped with
/// (or just after) the real guard.
#[must_use = "the ClassGuard must live as long as the lock guard it shadows"]
pub struct ClassGuard {
    class: &'static LockClass,
}

impl Drop for ClassGuard {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // LIFO in the common case; rposition tolerates out-of-order
            // drops from e.g. `mem::drop(first_guard)`.
            if let Some(pos) = held.iter().rposition(|c| c.name == self.class.name) {
                held.remove(pos);
            }
        });
    }
}

/// Record the acquisition of `class` by the current thread. Call directly
/// before the real `.lock()`/`.read()`/`.write()` and keep the returned
/// guard alive alongside the real one.
pub fn track(class: &'static LockClass) -> ClassGuard {
    let top = HELD.with(|h| h.borrow().last().map(|c| (c.name, c.rank)));
    if let Some((held_name, held_rank)) = top {
        with_state(|st| {
            st.edges.insert((held_name, class.name));
            if class.rank <= held_rank {
                let msg = format!(
                    "lock order violation: acquired `{}` (rank {}) while holding `{}` (rank {})",
                    class.name, class.rank, held_name, held_rank
                );
                if !st.violations.contains(&msg) {
                    st.violations.push(msg);
                }
            }
        });
    }
    HELD.with(|h| h.borrow_mut().push(class));
    ClassGuard { class }
}

/// Drain and return every violation recorded since the last drain (or
/// [`reset`]). Chaos tests call this at the end and assert emptiness.
pub fn take_violations() -> Vec<String> {
    with_state(|st| std::mem::take(&mut st.violations))
}

/// Snapshot of the observed acquisition edges (`held → acquired`).
pub fn edges() -> Vec<(&'static str, &'static str)> {
    with_state(|st| st.edges.iter().copied().collect())
}

/// Search the acquisition graph for a directed cycle; returns the class
/// names along one cycle if found. A cycle means two code paths disagree
/// on acquisition order — a latent deadlock even if no single path broke
/// its rank locally.
pub fn find_cycle() -> Option<Vec<&'static str>> {
    let edge_list = edges();
    let mut adj: HashMap<&'static str, Vec<&'static str>> = HashMap::new();
    for (from, to) in &edge_list {
        adj.entry(from).or_default().push(to);
    }
    // Iterative DFS with white/gray/black coloring; gray hit = cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        Gray,
        Black,
    }
    let mut color: HashMap<&'static str, Color> = HashMap::new();
    let mut nodes: Vec<&'static str> = adj.keys().copied().collect();
    nodes.sort_unstable(); // determinism across HashMap iteration orders
    for start in nodes {
        if color.contains_key(start) {
            continue;
        }
        let mut path: Vec<&'static str> = Vec::new();
        let mut stack: Vec<(&'static str, usize)> = vec![(start, 0)];
        color.insert(start, Color::Gray);
        path.push(start);
        while let Some(top) = stack.len().checked_sub(1) {
            let (node, next) = stack[top];
            let succs = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if next < succs.len() {
                let s = succs[next];
                stack[top].1 += 1;
                match color.get(s) {
                    Some(Color::Gray) => {
                        // Found a back edge: slice the gray path into the cycle.
                        let at = path.iter().position(|n| *n == s).unwrap_or(0);
                        let mut cycle = path[at..].to_vec();
                        cycle.push(s);
                        return Some(cycle);
                    }
                    Some(Color::Black) => {}
                    None => {
                        color.insert(s, Color::Gray);
                        path.push(s);
                        stack.push((s, 0));
                    }
                }
            } else {
                color.insert(node, Color::Black);
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

/// Clear the global graph and violation log (the thread-local held stacks
/// unwind on their own via `ClassGuard`). Test setup calls this.
pub fn reset() {
    let mut st = STATE.lock().unwrap_or_else(|p| p.into_inner());
    *st = None;
}

/// Place a lockdep tracking guard for `$class` at the current statement
/// when the calling crate's `lockdep` feature is on; expands to nothing
/// otherwise. Use directly before the real lock acquisition:
///
/// ```ignore
/// ntb_net::lockdep_track!(&ntb_net::lockdep::NET_MAILBOX);
/// let mut seq = self.seq.lock();
/// ```
#[macro_export]
macro_rules! lockdep_track {
    ($class:expr) => {
        #[cfg(feature = "lockdep")]
        let _lockdep_guard = $crate::lockdep::track($class);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The graph is process-global; serialize the tests that mutate it.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn increasing_order_records_no_violation() {
        let _s = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        {
            let _a = track(&SHMEM_AMO);
            let _b = track(&SHMEM_HEAP);
            let _c = track(&NET_MAILBOX);
        }
        assert!(take_violations().is_empty());
        assert!(find_cycle().is_none());
        assert!(edges().contains(&("shmem-amo", "shmem-heap")));
    }

    #[test]
    fn inverted_order_is_a_violation() {
        let _s = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        {
            let _hi = track(&NET_MAILBOX);
            let _lo = track(&NET_FORWARD);
        }
        let v = take_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("net-forward") && v[0].contains("net-mailbox"), "{v:?}");
    }

    #[test]
    fn ab_ba_from_two_threads_is_a_cycle() {
        let _s = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        // Thread 1: A then B. Thread 2: B then A. Sequential joins — the
        // classes are tracking tokens, not real locks, so no deadlock.
        let t1 = std::thread::spawn(|| {
            let _a = track(&NET_PENDING_SHARD);
            let _b = track(&NET_UNACKED_SHARD);
        });
        let _ = t1.join();
        let t2 = std::thread::spawn(|| {
            let _b = track(&NET_UNACKED_SHARD);
            let _a = track(&NET_PENDING_SHARD);
        });
        let _ = t2.join();
        // Thread 2 broke rank locally...
        assert!(!take_violations().is_empty());
        // ...and the combined graph holds the A→B→A cycle.
        let cycle = find_cycle().expect("cycle must be found");
        assert!(
            cycle.contains(&"net-pending-shard") && cycle.contains(&"net-unacked-shard"),
            "{cycle:?}"
        );
    }

    #[test]
    fn released_guard_unpins_the_hierarchy() {
        let _s = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        {
            let _hi = track(&NET_ADMIN);
        }
        // NET_ADMIN released; a low-rank acquisition is clean again.
        let _lo = track(&SHMEM_AMO);
        drop(_lo);
        assert!(take_violations().is_empty());
    }

    #[test]
    fn out_of_order_drop_is_tolerated() {
        let _s = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        let a = track(&SHMEM_HEAP);
        let b = track(&NET_DEDUP);
        drop(a); // drop the older guard first
        let _c = track(&NET_FORWARD); // top of stack is NET_DEDUP (50) < 70
        drop(b);
        assert!(take_violations().is_empty(), "{:?}", take_violations());
    }
}
