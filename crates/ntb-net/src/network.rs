//! Building the ring: cabling N hosts' adapters into a switchless network.
//!
//! Host *i*'s **right** adapter (slot 1) is connected to host *(i+1) mod
//! N*'s **left** adapter (slot 0), exactly like the paper's testbed cables
//! its PEX adapters (Fig. 7(d)). A two-host ring has two independent
//! links (both adapter pairs are cabled); a single "host" has none and
//! supports only local operation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntb_sim::{
    connect_ports_observed, EventKind, EventLog, FaultInjector, FaultStatsSnapshot, HostMemory,
    MetricsRegistry, NodeFault, NodeFaultAction, NtbPort, Obs, PortConfig, ResourceFault,
    ResourceFaultAction, Result, TimeModel, TraceEvent, DEFAULT_TRACE_CAPACITY,
};
use parking_lot::Mutex;

use crate::config::NetConfig;
use crate::handshake::exchange_link_info;
use crate::node::NtbNode;
use crate::topology::{Shape, TopoGraph};
use crate::trace::{to_chrome_json, TraceRecord, Tracer};

/// Worlds beyond this many hosts automatically switch the time model to
/// coarse (sleeping) waits. The paper-scale worlds (≤ 5 hosts) and every
/// calibrated bench stay on the precise spin-tail strategy; the 16–64 PE
/// scale worlds trade µs wait precision for delays that overlap instead
/// of serializing on the spin tails of ~9 threads per host.
pub const COARSE_WAITS_AUTO_HOSTS: usize = 8;

/// Run the paper's init-time id/geometry exchange on a freshly cabled
/// link (both sides concurrently) and verify the cable reaches the host
/// the topology expects.
fn bring_up_link(
    a: &Arc<NtbPort>,
    id_a: usize,
    b: &Arc<NtbPort>,
    id_b: usize,
    config: &NetConfig,
) -> Result<()> {
    let ws = config.window_size as u32;
    let dl = config.direct_buf as u32;
    let timeout = std::time::Duration::from_secs(10);
    let (ra, rb) = std::thread::scope(|s| {
        let ha = s.spawn(|| exchange_link_info(a, id_a, ws, dl, timeout));
        let hb = s.spawn(|| exchange_link_info(b, id_b, ws, dl, timeout));
        let panicked =
            || Err(ntb_sim::NtbError::BadDescriptor { reason: "link handshake thread panicked" });
        (ha.join().unwrap_or_else(|_| panicked()), hb.join().unwrap_or_else(|_| panicked()))
    });
    let pa = ra?;
    let pb = rb?;
    if pa.host_id != id_b || pb.host_id != id_a {
        return Err(ntb_sim::NtbError::BadDescriptor {
            reason: "link cabled to an unexpected host (id exchange mismatch)",
        });
    }
    Ok(())
}

/// The assembled switchless ring network.
pub struct RingNetwork {
    nodes: Vec<Arc<NtbNode>>,
    config: NetConfig,
    /// One fault injector per physical link, in cabling order (ring: link
    /// *i* connects host *i* to host *i+1*; mesh: pairs in `(i, j)` order).
    injectors: Vec<Arc<FaultInjector>>,
    /// The unified structured event log every layer emits into
    /// (disabled by default; see [`Self::obs_enable`]).
    event_log: Arc<EventLog>,
    /// Stop flag + handle of the chaos orchestrator thread (spawned only
    /// when the fault plan schedules node or resource faults).
    chaos_stop: Arc<AtomicBool>,
    chaos: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// One scheduled orchestrator step, pre-expanded to an absolute instant.
/// Timed faults (a freeze's `hold`, a slow port's recovery) become *two*
/// actions — begin and end — so nothing is ever served inline.
enum ChaosAction {
    Crash(usize),
    Freeze(usize),
    Thaw(usize),
    Restart(usize),
    SlowPort { link: usize, factor: f64 },
    PortNominal { link: usize },
    ShrinkQueue { pe: usize, capacity: usize },
    ShrinkMem { pe: usize, capacity: u64 },
}

/// Walk the scheduled fault timeline: node faults and resource faults are
/// expanded into `(absolute instant, action)` pairs up front — a freeze
/// contributes a freeze *and* a thaw entry, a slow port a slowdown and a
/// recovery — then walked in deadline order with interruptible sleeps.
/// Every fault therefore lands at its own absolute deadline regardless of
/// how long any other fault holds.
fn chaos_orchestrator(
    nodes: Vec<Arc<NtbNode>>,
    injectors: Vec<Arc<FaultInjector>>,
    node_faults: Vec<NodeFault>,
    resource_faults: Vec<ResourceFault>,
    stop: Arc<AtomicBool>,
) {
    let start = Instant::now();
    let mut timeline: Vec<(Duration, ChaosAction)> = Vec::new();
    for fault in node_faults {
        match fault.action {
            NodeFaultAction::Crash => timeline.push((fault.at, ChaosAction::Crash(fault.pe))),
            NodeFaultAction::Freeze { hold } => {
                timeline.push((fault.at, ChaosAction::Freeze(fault.pe)));
                timeline.push((fault.at + hold, ChaosAction::Thaw(fault.pe)));
            }
            NodeFaultAction::Restart => timeline.push((fault.at, ChaosAction::Restart(fault.pe))),
        }
    }
    for fault in resource_faults {
        match fault.action {
            ResourceFaultAction::SlowPort { factor, hold } => {
                timeline.push((fault.at, ChaosAction::SlowPort { link: fault.target, factor }));
                timeline.push((fault.at + hold, ChaosAction::PortNominal { link: fault.target }));
            }
            ResourceFaultAction::ShrinkForwardQueue { capacity } => {
                timeline.push((fault.at, ChaosAction::ShrinkQueue { pe: fault.target, capacity }));
            }
            ResourceFaultAction::ShrinkHostMem { capacity } => {
                timeline.push((fault.at, ChaosAction::ShrinkMem { pe: fault.target, capacity }));
            }
        }
    }
    // Stable by instant: a zero-hold freeze still thaws after it froze.
    timeline.sort_by_key(|(at, _)| *at);
    let interruptible_sleep_until = |deadline: Duration| {
        while start.elapsed() < deadline {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::sleep((deadline - start.elapsed()).min(Duration::from_millis(5)));
        }
        !stop.load(Ordering::SeqCst)
    };
    // Hosts currently frozen by this thread; a shutdown mid-plan must
    // thaw them (their stalled threads could not be joined otherwise).
    let mut frozen: Vec<usize> = Vec::new();
    let thaw_all = |frozen: &mut Vec<usize>, nodes: &[Arc<NtbNode>]| {
        for pe in frozen.drain(..) {
            nodes[pe].thaw();
        }
    };
    for (at, action) in timeline {
        if !interruptible_sleep_until(at) {
            thaw_all(&mut frozen, &nodes);
            return;
        }
        match action {
            ChaosAction::Crash(pe) if pe < nodes.len() => nodes[pe].crash(),
            ChaosAction::Freeze(pe) if pe < nodes.len() => {
                nodes[pe].freeze();
                frozen.push(pe);
            }
            ChaosAction::Thaw(pe) if pe < nodes.len() => {
                nodes[pe].thaw();
                frozen.retain(|&f| f != pe);
            }
            ChaosAction::Restart(pe) if pe < nodes.len() => {
                // A restart that cannot complete (e.g. every neighbour is
                // down too) surfaces through the test's own assertions;
                // the orchestrator just records the attempt's failure.
                if let Err(e) = nodes[pe].restart(Duration::from_secs(10)) {
                    nodes[pe].record_error(e);
                }
            }
            ChaosAction::SlowPort { link, factor } if link < injectors.len() => {
                injectors[link].set_slow_factor(factor);
                nodes[0].obs().emit(
                    EventKind::PortSlow,
                    link as u64,
                    [(factor * 1000.0) as u64, 0],
                );
            }
            ChaosAction::PortNominal { link } if link < injectors.len() => {
                injectors[link].set_slow_factor(1.0);
                nodes[0].obs().emit(EventKind::PortSlow, link as u64, [1000, 0]);
            }
            ChaosAction::ShrinkQueue { pe, capacity } if pe < nodes.len() => {
                for ep in &nodes[pe].endpoints {
                    ep.fwd.set_capacity(capacity);
                }
                nodes[pe].obs().emit(EventKind::CapacityShrink, capacity as u64, [pe as u64, 0]);
            }
            ChaosAction::ShrinkMem { pe, capacity } if pe < nodes.len() => {
                nodes[pe].memory().set_capacity(capacity);
                nodes[pe].obs().emit(EventKind::CapacityShrink, capacity, [pe as u64, 1]);
            }
            // Out-of-range targets in a hand-written plan are ignored,
            // matching the old walker's bounds behaviour.
            _ => {}
        }
    }
    thaw_all(&mut frozen, &nodes);
}

impl RingNetwork {
    /// Build and start a network of `config.hosts` hosts in the
    /// configured topology: allocate window memory, cable the adapters,
    /// spawn the service/forwarder threads.
    pub fn build(config: NetConfig) -> Result<RingNetwork> {
        config.validate();
        let n = config.hosts;
        let kind = config.topology;
        let mut model = config.model.clone();
        if n > COARSE_WAITS_AUTO_HOSTS {
            // Big worlds run hundreds of service/forwarder threads; the
            // precise spin-tail wait would serialize their modelled
            // delays on small machines (see `TimeModel::coarse_waits`).
            model.coarse_waits = true;
        }
        let model = Arc::new(model);
        let tracer = Arc::new(Tracer::default());
        let event_log = EventLog::new(n, DEFAULT_TRACE_CAPACITY);
        let mems: Vec<Arc<HostMemory>> =
            (0..n).map(|i| HostMemory::new(i, config.host_mem_capacity)).collect();

        // Per-host adapter lists: (neighbor, physical link index, port).
        // Each physical link gets its own fault injector derived from the
        // network-wide plan and the link's cabling-order index (an empty
        // plan is inert); the link index also keys the event trace and
        // per-link metrics.
        let mut ports: Vec<Vec<(usize, usize, Arc<NtbPort>)>> =
            (0..n).map(|_| Vec::new()).collect();
        let mut injectors: Vec<Arc<FaultInjector>> = Vec::new();
        let next_injector = |injectors: &mut Vec<Arc<FaultInjector>>| {
            let inj = FaultInjector::new(config.faults.clone(), injectors.len());
            injectors.push(Arc::clone(&inj));
            inj
        };
        // Cable the shape's links in the graph's deterministic order. The
        // ring keeps the paper's convention (host i's right adapter, slot
        // 1, to host i+1's left adapter, slot 0); other shapes hand each
        // host its adapter slots in cabling order, which for the clique
        // reproduces the historical "slot towards j is j, or j-1 past
        // self" numbering.
        let graph = Arc::new(TopoGraph::new(kind.shape(), n));
        let mut next_slot = vec![0usize; n];
        for &(i, j) in &graph.links() {
            let (slot_i, slot_j) = match kind.shape() {
                Shape::Ring => (1, 0),
                _ => {
                    let (si, sj) = (next_slot[i], next_slot[j]);
                    next_slot[i] += 1;
                    next_slot[j] += 1;
                    (si, sj)
                }
            };
            let link_idx = injectors.len();
            let cfg_i = PortConfig::new(i, slot_i).with_window_size(config.window_size);
            let cfg_j = PortConfig::new(j, slot_j).with_window_size(config.window_size);
            let (pi, pj) = connect_ports_observed(
                cfg_i,
                cfg_j,
                &mems[i],
                &mems[j],
                Arc::clone(&model),
                next_injector(&mut injectors),
                Obs::new(Arc::clone(&event_log), i, link_idx),
                Obs::new(Arc::clone(&event_log), j, link_idx),
            )?;
            bring_up_link(&pi, i, &pj, j, &config)?;
            ports[i].push((j, link_idx, pi));
            ports[j].push((i, link_idx, pj));
        }

        let num_links = injectors.len();
        // One shared time origin for the whole network: wire deadlines are
        // absolute microseconds since this instant, so every host decodes
        // them against the same clock.
        let epoch = Instant::now();
        let nodes: Vec<Arc<NtbNode>> = ports
            .into_iter()
            .enumerate()
            .map(|(i, host_ports)| {
                NtbNode::new(
                    i,
                    config.clone(),
                    kind,
                    Arc::clone(&graph),
                    Arc::clone(&model),
                    Arc::clone(&mems[i]),
                    Arc::new(AtomicBool::new(false)),
                    Arc::clone(&tracer),
                    Arc::clone(&event_log),
                    MetricsRegistry::new(num_links),
                    host_ports,
                    epoch,
                )
            })
            .collect();
        for node in &nodes {
            node.start();
        }
        let chaos_stop = Arc::new(AtomicBool::new(false));
        let chaos = if config.faults.has_node_faults() || config.faults.has_resource_faults() {
            let node_plan = config.faults.node_faults.clone();
            let resource_plan = config.faults.resource_faults.clone();
            let orch_nodes = nodes.clone();
            let orch_injectors = injectors.clone();
            let orch_stop = Arc::clone(&chaos_stop);
            Some(
                std::thread::Builder::new()
                    .name("ntb-chaos-orch".into())
                    .spawn(move || {
                        chaos_orchestrator(
                            orch_nodes,
                            orch_injectors,
                            node_plan,
                            resource_plan,
                            orch_stop,
                        )
                    })
                    .map_err(|_| ntb_sim::NtbError::BadDescriptor {
                        reason: "failed to spawn chaos orchestrator thread",
                    })?,
            )
        } else {
            None
        };
        Ok(RingNetwork {
            nodes,
            config,
            injectors,
            event_log,
            chaos_stop,
            chaos: Mutex::new(chaos),
        })
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Injected-fault counters per physical link, in cabling order (ring:
    /// link *i* connects host *i* to host *i+1*).
    pub fn fault_stats(&self) -> Vec<FaultStatsSnapshot> {
        self.injectors.iter().map(|inj| inj.stats().snapshot()).collect()
    }

    /// Sum of the injected-fault counters across every link.
    pub fn fault_stats_total(&self) -> FaultStatsSnapshot {
        let mut total = FaultStatsSnapshot::default();
        for s in self.fault_stats() {
            total.doorbells_dropped += s.doorbells_dropped;
            total.payloads_corrupted += s.payloads_corrupted;
            total.dma_failures += s.dma_failures;
            total.dma_stalls += s.dma_stalls;
            total.link_down_windows += s.link_down_windows;
            total.acks_suppressed += s.acks_suppressed;
        }
        total
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty (impossible, but Clippy insists) network.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Host `i`'s node.
    pub fn node(&self, i: usize) -> &Arc<NtbNode> {
        &self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<NtbNode>] {
        &self.nodes
    }

    /// The shared time model.
    pub fn model(&self) -> Arc<TimeModel> {
        Arc::clone(self.nodes[0].model())
    }

    /// Start recording protocol events on every host (one shared clock).
    pub fn enable_tracing(&self) {
        self.nodes[0].tracer().enable();
    }

    /// Stop recording protocol events.
    pub fn disable_tracing(&self) {
        self.nodes[0].tracer().disable();
    }

    /// Take the recorded events, sorted by timestamp.
    pub fn take_trace(&self) -> Vec<TraceRecord> {
        let mut events = self.nodes[0].tracer().take();
        events.sort_by(|a, b| a.t_us.total_cmp(&b.t_us));
        events
    }

    /// Take the recorded events as Chrome tracing JSON
    /// (`chrome://tracing` / Perfetto).
    pub fn take_trace_json(&self) -> String {
        to_chrome_json(&self.take_trace())
    }

    /// The unified structured event log shared by every layer of this
    /// network (ntb-sim hardware events, ntb-net protocol events and the
    /// OpenSHMEM API events all land here).
    pub fn event_log(&self) -> &Arc<EventLog> {
        &self.event_log
    }

    /// Start recording structured trace events (the invariant checker's
    /// input). Off by default; emission sites cost one relaxed load
    /// while off.
    pub fn obs_enable(&self) {
        self.event_log.enable();
    }

    /// Stop recording structured trace events.
    pub fn obs_disable(&self) {
        self.event_log.disable();
    }

    /// Drain the merged structured event trace, sorted by the global
    /// sequence number (total emission order).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.event_log.take()
    }

    /// Every PE's metrics registry rendered as one JSON array (index =
    /// PE id).
    pub fn metrics_json(&self) -> String {
        let per_pe: Vec<String> = self.nodes.iter().map(|n| n.metrics().to_json()).collect();
        format!("[{}]", per_pe.join(","))
    }

    /// Crash host `pe` (see [`NtbNode::crash`]). Survivors detect the
    /// death through the heartbeat failure detector and heal the ring.
    pub fn crash_node(&self, pe: usize) {
        self.nodes[pe].crash();
    }

    /// Freeze host `pe`: its threads stall mid-protocol until
    /// [`Self::thaw_node`].
    pub fn freeze_node(&self, pe: usize) {
        self.nodes[pe].freeze();
    }

    /// Release a freeze on host `pe`.
    pub fn thaw_node(&self, pe: usize) {
        self.nodes[pe].thaw();
    }

    /// Restart a crashed host `pe`: revive its ports and run the rejoin
    /// handshake until a neighbour gossips it back into membership (or
    /// `timeout` expires).
    pub fn restart_node(&self, pe: usize, timeout: Duration) -> Result<()> {
        self.nodes[pe].restart(timeout)
    }

    /// Stop every node's background threads. The network must be
    /// quiescent (callers finished, `quiet` drained). Idempotent.
    pub fn shutdown(&self) {
        self.chaos_stop.store(true, Ordering::SeqCst);
        let handle = {
            crate::lockdep_track!(&crate::lockdep::NET_ADMIN);
            self.chaos.lock().take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        for node in &self.nodes {
            node.stop();
        }
    }
}

impl Drop for RingNetwork {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RingNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingNetwork").field("hosts", &self.nodes.len()).finish()
    }
}
