//! One host of the switchless ring: ports, mailboxes, forwarders, and the
//! host-side operations (put / get / atomics / quiet / barrier signals).
//!
//! Lossy-link recovery lives here too: every put chunk is tracked in
//! [`UnackedPuts`] until its positive acknowledgement returns, a per-node
//! retry sweeper retransmits overdue chunks with exponential backoff and
//! probes `Down` links back to life, per-endpoint
//! [`LinkHealthTracker`]s steer traffic the long way around the ring
//! while a link is down, and receivers suppress the duplicate deliveries
//! retransmission inevitably creates.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ntb_sim::{
    DmaRequest, EventKind, EventLog, HostMemory, LinkHealth, LinkHealthTracker, MetricsRegistry,
    NtbError, NtbPort, Obs, PortStatsSnapshot, Region, Result, TimeModel, TransferMode,
};
use parking_lot::{Mutex, RwLock};

use crate::config::NetConfig;
use crate::crc::crc32;
use crate::credit::{CreditGate, CreditLedger, RetryBudget};
use crate::delivery::{AmoOp, DeliveryTarget};
use crate::doorbells::{DB_BARRIER_END, DB_BARRIER_START, DB_GOSSIP, DB_SHUTDOWN};
use crate::forwarder::{ForwardQueue, PushOutcome};
use crate::frame::Frame;
use crate::layout::WindowLayout;
use crate::mailbox::{RxMailbox, TxMailbox};
use crate::membership::{
    hb_rx_base, hb_tx_base, rejoin_signature, Membership, MembershipView, HB_BEAT, HB_CRASH,
    HB_EPOCH, HB_LIVE, REJOIN_FLAG,
};
use crate::pending::{PendingOps, UnackedPuts};
use crate::slots::TxSlotRing;
use crate::topology::{RingTopology, RouteDirection, Shape, TopoGraph, Topology};
use crate::trace::{TraceKind, Tracer};

/// Counters of one node's protocol activity.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Frames received and handled by the service threads.
    pub frames_rx: AtomicU64,
    /// Frames forwarded around the ring (this host was an intermediate).
    pub forwards: AtomicU64,
    /// Put chunks delivered into the local symmetric space.
    pub puts_delivered: AtomicU64,
    /// Get requests served from the local symmetric space.
    pub gets_served: AtomicU64,
    /// Put acknowledgements received back at this origin.
    pub acks_received: AtomicU64,
    /// Atomic operations executed at this host.
    pub amos_served: AtomicU64,
    /// Frames retransmitted after an acknowledgement timeout (puts by the
    /// sweeper, get/AMO requests by the bounded requester wait).
    pub retransmits: AtomicU64,
    /// Inbound frames dropped because the payload CRC did not match.
    pub checksum_rejects: AtomicU64,
    /// Sends steered away from a `Down` endpoint (the long way around).
    pub reroutes: AtomicU64,
    /// Duplicate deliveries suppressed (retransmitted puts/AMOs already
    /// applied, duplicated get-response chunks already deposited).
    pub duplicates_suppressed: AtomicU64,
    /// Probe writes issued to `Down` endpoints by the sweeper.
    pub probes_sent: AtomicU64,
    /// Endpoint transitions into the `Down` state.
    pub link_down_events: AtomicU64,
}

impl NodeStats {
    fn bump(counter: &AtomicU64) {
        // lint: relaxed-ok(monotonic event counter; readers only need eventual totals)
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of all recovery-path counters — zero on a clean run.
    pub fn recovery_total(&self) -> u64 {
        // lint: relaxed-ok(monotonic counters summed for diagnostics; staleness is fine)
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ld(&self.retransmits)
            + ld(&self.checksum_rejects)
            + ld(&self.reroutes)
            + ld(&self.duplicates_suppressed)
            + ld(&self.probes_sent)
            + ld(&self.link_down_events)
    }
}

/// How many recently-seen put ids (per node, across all origins) are
/// remembered for duplicate suppression. Retransmission timeouts bound
/// how stale a duplicate can be, so a few thousand ids is plenty.
const PUT_DEDUP_WINDOW: usize = 4096;

/// Sliding window of `(origin, put id)` pairs already delivered.
#[derive(Debug, Default)]
pub(crate) struct SeenPuts {
    set: HashSet<(usize, u32)>,
    order: VecDeque<(usize, u32)>,
}

impl SeenPuts {
    /// Record a delivery; `false` if this id was already delivered (the
    /// caller must suppress the duplicate).
    pub(crate) fn insert(&mut self, origin: usize, put_id: u32) -> bool {
        if !self.set.insert((origin, put_id)) {
            return false;
        }
        self.order.push_back((origin, put_id));
        if self.order.len() > PUT_DEDUP_WINDOW {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// Forget every id from `origin`: a crash-restarted PE reuses put ids
    /// from zero, and suppressing its fresh traffic as "duplicates" would
    /// silently lose data.
    pub(crate) fn purge_origin(&mut self, origin: usize) {
        self.set.retain(|k| k.0 != origin);
        self.order.retain(|k| k.0 != origin);
    }
}

/// How many served AMO results are cached for duplicate re-serving.
const AMO_CACHE_WINDOW: usize = 1024;

/// Cache of `(origin, request id) → old value` for served atomics: a
/// retransmitted AMO request must *not* re-execute (the first execution
/// already mutated the heap); the cached old value is re-served instead.
#[derive(Debug, Default)]
pub(crate) struct AmoCache {
    map: HashMap<(usize, u32), u64>,
    order: VecDeque<(usize, u32)>,
}

impl AmoCache {
    /// Old value served for this request, if it already executed.
    pub(crate) fn lookup(&self, origin: usize, req_id: u32) -> Option<u64> {
        self.map.get(&(origin, req_id)).copied()
    }

    /// Remember a served request's old value.
    pub(crate) fn insert(&mut self, origin: usize, req_id: u32, old: u64) {
        if self.map.insert((origin, req_id), old).is_none() {
            self.order.push_back((origin, req_id));
            if self.order.len() > AMO_CACHE_WINDOW {
                if let Some(stale) = self.order.pop_front() {
                    self.map.remove(&stale);
                }
            }
        }
    }

    /// Forget every cached result from `origin` (crash-restart purge; the
    /// restarted PE reuses request ids from zero).
    pub(crate) fn purge_origin(&mut self, origin: usize) {
        self.map.retain(|k, _| k.0 != origin);
        self.order.retain(|k| k.0 != origin);
    }
}

/// One cabled link of a host: the port plus its mailboxes and forward
/// queue.
pub struct LinkEndpoint {
    /// The neighbour host on the other side.
    pub(crate) neighbor: usize,
    /// Physical link index in network cabling order (shared by both
    /// sides of the cable; indexes the per-link metrics).
    pub(crate) link_idx: usize,
    /// Event emission handle bound to `(this host, this link)`.
    pub(crate) obs: Obs,
    /// Next expected inbound frame sequence number (service thread only;
    /// detects protocol bugs that would lose or duplicate frames).
    pub(crate) rx_seq: std::sync::atomic::AtomicU32,
    /// The NTB port.
    pub(crate) port: Arc<NtbPort>,
    /// Transmit mailbox (PE thread and forwarder contend through its
    /// internal lock).
    pub(crate) tx: TxMailbox,
    /// Receive mailbox (service thread only).
    pub(crate) rx: RxMailbox,
    /// Store-and-forward queue consumed by this endpoint's forwarder.
    pub(crate) fwd: Arc<ForwardQueue>,
    /// Coalescing transmit ring for terminating data frames (`None` when
    /// `NetConfig::coalesce` is off — everything rides the scratchpad).
    pub(crate) txring: Option<TxSlotRing>,
    /// Observed link health (drives rerouting and recovery probes).
    pub(crate) health: LinkHealthTracker,
    /// Sender-side credit gate for puts staged toward this neighbour:
    /// one credit per staged chunk, granted back by the peer as it
    /// absorbs them (DESIGN.md §14).
    pub(crate) credit: CreditGate,
    /// Receiver-side ledger of the credits this endpoint has granted its
    /// peer sender — its cumulative total is what goes on the wire.
    pub(crate) ledger: CreditLedger,
    /// Token-bucket budget bounding retransmissions on this link.
    pub(crate) retry_budget: RetryBudget,
    /// Whether the outgoing control slot's deadline word currently holds
    /// a non-zero value. Lets deadline-free sends (the common case) skip
    /// the clearing write; sends serialize under the mailbox lock, so a
    /// plain flag suffices.
    pub(crate) deadline_armed: AtomicBool,
}

impl LinkEndpoint {
    /// The port of this endpoint (stats, doorbells).
    pub fn port(&self) -> &Arc<NtbPort> {
        &self.port
    }

    /// Neighbour host id.
    pub fn neighbor(&self) -> usize {
        self.neighbor
    }

    /// Observed health of this endpoint.
    pub fn health(&self) -> LinkHealth {
        self.health.health()
    }

    /// Physical link index in network cabling order.
    pub fn link_idx(&self) -> usize {
        self.link_idx
    }
}

/// A host in the switchless NTB interconnect (ring or mesh).
pub struct NtbNode {
    pub(crate) topo: RingTopology,
    pub(crate) kind: Topology,
    /// Shape-generic routing tables shared by every host: adjacency, BFS
    /// distances and deterministic next hops, identical at the origin and
    /// every forwarding hop.
    pub(crate) graph: Arc<TopoGraph>,
    pub(crate) model: Arc<TimeModel>,
    pub(crate) config: NetConfig,
    pub(crate) layout: WindowLayout,
    /// One endpoint per cabled adapter. Ring: two (left, right).
    /// Mesh: one per other host.
    pub(crate) endpoints: Vec<LinkEndpoint>,
    pub(crate) delivery: RwLock<Option<Arc<dyn DeliveryTarget>>>,
    pub(crate) pending: PendingOps,
    pub(crate) unacked: UnackedPuts,
    pub(crate) seen_puts: Mutex<SeenPuts>,
    pub(crate) amo_cache: Mutex<AmoCache>,
    /// Epoch-stamped live bitmap maintained by the heartbeat failure
    /// detector and gossiped ring-wide.
    pub(crate) membership: Membership,
    /// True while [`Self::restart`] runs its rejoin handshake; service
    /// loops park on this in addition to the port vitals.
    pub(crate) rejoining: AtomicBool,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) threads: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) stats: NodeStats,
    pub(crate) errors: Mutex<Vec<NtbError>>,
    pub(crate) mem: Arc<HostMemory>,
    pub(crate) tracer: Arc<Tracer>,
    /// Node-scoped event handle (`link = NO_LINK`).
    pub(crate) obs: Obs,
    /// Per-PE metrics: op latency histograms plus counters indexed by
    /// physical link. Always on.
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// The network's shared time origin for wire deadlines: every host's
    /// `deadline_us` values are microseconds since this instant, so a
    /// deadline stamped at the origin is comparable at every hop.
    pub(crate) epoch: Instant,
}

fn offset32(offset: u64) -> Result<u32> {
    u32::try_from(offset)
        .map_err(|_| NtbError::BadDescriptor { reason: "symmetric offset exceeds 4 GiB" })
}

fn len31(len: u64) -> Result<u32> {
    if len >= (1 << 31) {
        return Err(NtbError::BadDescriptor { reason: "transfer length exceeds 2 GiB" });
    }
    Ok(len as u32)
}

/// Reclassify a requester-wait failure that landed after the op's
/// deadline passed: the caller asked for a time bound and missed it,
/// which is strictly more information than "the link gave up".
fn deadline_failure(e: NtbError, deadline_us: u32, now_us: u32) -> NtbError {
    if deadline_us != 0 && now_us > deadline_us && matches!(e, NtbError::LinkFailed { .. }) {
        // RESOLVES(none): pure reclassification helper — the caller's wait
        // already resolved (or is resolving) the pending entry.
        NtbError::DeadlineExceeded
    } else {
        e
    }
}

impl NtbNode {
    /// Assemble a node from its cabled ports (one `(neighbor, port)` pair
    /// per adapter; empty only on a single-host network).
    #[allow(clippy::too_many_arguments)] // internal constructor, one call site
    pub(crate) fn new(
        me: usize,
        config: NetConfig,
        kind: Topology,
        graph: Arc<TopoGraph>,
        model: Arc<TimeModel>,
        mem: Arc<HostMemory>,
        shutdown: Arc<AtomicBool>,
        tracer: Arc<Tracer>,
        event_log: Arc<EventLog>,
        metrics: Arc<MetricsRegistry>,
        ports: Vec<(usize, usize, Arc<NtbPort>)>,
        epoch: Instant,
    ) -> Arc<NtbNode> {
        let topo = RingTopology::new(me, config.hosts);
        let layout = if config.coalesce {
            WindowLayout::with_ring(
                config.direct_buf,
                config.bypass_buf,
                config.tx_slots,
                config.coalesce_payload_max,
            )
        } else {
            WindowLayout::new(config.direct_buf, config.bypass_buf)
        };
        let obs = Obs::new(Arc::clone(&event_log), me, 0).unlinked();
        let endpoints = ports
            .into_iter()
            .map(|(neighbor, link_idx, port)| {
                let mut tx = TxMailbox::new(Arc::clone(&port));
                tx.set_abort(Arc::clone(&shutdown));
                tx.set_retry(config.retry.mailbox_timeout, config.retry.max_retries);
                let txring = config.coalesce.then(|| {
                    let mut ring = TxSlotRing::new(
                        Arc::clone(&port),
                        layout,
                        &config,
                        Arc::clone(&model),
                        Obs::new(Arc::clone(&event_log), me, link_idx),
                    );
                    ring.set_abort(Arc::clone(&shutdown));
                    ring.set_retry(config.retry.mailbox_timeout, config.retry.max_retries);
                    ring
                });
                LinkEndpoint {
                    neighbor,
                    link_idx,
                    obs: Obs::new(Arc::clone(&event_log), me, link_idx),
                    rx_seq: std::sync::atomic::AtomicU32::new(0),
                    rx: RxMailbox::new(Arc::clone(&port)),
                    tx,
                    port,
                    fwd: Arc::new(ForwardQueue::with_watermarks(
                        config.overload.forward_queue_cap,
                        config.overload.high_watermark,
                        config.overload.low_watermark,
                    )),
                    txring,
                    health: LinkHealthTracker::new(config.retry.failure_threshold),
                    credit: CreditGate::new(config.overload.credit_window),
                    ledger: CreditLedger::new(config.overload.credit_window),
                    retry_budget: RetryBudget::new(
                        config.overload.retry_budget_rate,
                        config.overload.retry_budget_burst,
                    ),
                    deadline_armed: AtomicBool::new(false),
                }
            })
            .collect();
        Arc::new(NtbNode {
            topo,
            kind,
            graph,
            model,
            layout,
            endpoints,
            delivery: RwLock::new(None),
            pending: PendingOps::new(),
            unacked: UnackedPuts::new(),
            seen_puts: Mutex::new(SeenPuts::default()),
            amo_cache: Mutex::new(AmoCache::default()),
            membership: Membership::new(me, config.hosts),
            rejoining: AtomicBool::new(false),
            shutdown,
            threads: Mutex::new(Vec::new()),
            stats: NodeStats::default(),
            errors: Mutex::new(Vec::new()),
            mem,
            tracer,
            obs,
            metrics,
            config,
            epoch,
        })
    }

    /// This host's id.
    pub fn host_id(&self) -> usize {
        self.topo.me
    }

    /// Hosts in the ring.
    pub fn num_hosts(&self) -> usize {
        self.topo.n
    }

    /// Ring topology view from this host.
    pub fn topology(&self) -> RingTopology {
        self.topo
    }

    /// The shared timing model.
    pub fn model(&self) -> &Arc<TimeModel> {
        &self.model
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// This host's simulated physical memory arena (the symmetric heap
    /// allocates its chunks here).
    pub fn memory(&self) -> &Arc<HostMemory> {
        &self.mem
    }

    /// The interconnect shape.
    pub fn topology_kind(&self) -> Topology {
        self.kind
    }

    /// The endpoint cabled to `neighbor`.
    ///
    /// # Panics
    /// Panics when no adapter is cabled to `neighbor` — callers route via
    /// the topology tables built at bring-up, so a miss is a routing bug,
    /// not a runtime condition.
    pub fn endpoint_to(&self, neighbor: usize) -> &LinkEndpoint {
        self.endpoints
            .iter()
            .find(|e| e.neighbor == neighbor)
            // lint: unwrap-ok(topology invariant: routing tables only name cabled neighbors)
            .expect("no adapter cabled to that host")
    }

    /// The endpoint facing `dir` on the ring (the barrier sweeps and the
    /// link benchmarks address adapters by ring direction). On a clique
    /// the ring neighbours still exist, so this resolves there too.
    ///
    /// # Panics
    /// Panics on a single-host network, which has no links, and on a
    /// torus host whose ring neighbour is not cabled (row boundaries) —
    /// ring-direction callers are ring/clique-only by construction.
    pub fn endpoint(&self, dir: RouteDirection) -> &LinkEndpoint {
        assert!(!self.endpoints.is_empty(), "single-host network has no links");
        let neighbor = match dir {
            RouteDirection::Left => self.topo.left(),
            RouteDirection::Right => self.topo.right(),
        };
        self.endpoint_to(neighbor)
    }

    /// The endpoint a message to `dest` leaves through: the first hop of
    /// the deterministic shortest path on a forwarding shape (ring,
    /// torus), the dedicated link on a clique. A `Down` preferred
    /// endpoint — or a preferred path blocked by an intermediate PE the
    /// failure detector declared dead — is routed around via the best
    /// detour over the live subgraph, as long as one exists through a
    /// healthy adapter.
    pub(crate) fn endpoint_for(&self, dest: usize) -> &LinkEndpoint {
        let view = self.membership.view();
        self.endpoint_for_view(dest, &view)
    }

    /// [`Self::endpoint_for`] against an already-snapshotted (or pinned)
    /// membership view — the transmit path holds a read pin and must not
    /// re-enter the membership lock.
    pub(crate) fn endpoint_for_view(&self, dest: usize, view: &MembershipView) -> &LinkEndpoint {
        if self.kind.shape() == Shape::Clique {
            return self.endpoint_to(dest);
        }
        let hop = self.graph.next_hop(self.topo.me, dest);
        let preferred = self.endpoint_to(hop);
        if self.endpoints.len() > 1
            && (preferred.health.is_down()
                || !self.graph.static_path_clear(hop, dest, |pe| view.is_live(pe)))
        {
            if let Some(alt) = self.detour_hop(dest, view, hop) {
                let other = self.endpoint_to(alt);
                NodeStats::bump(&self.stats.reroutes);
                self.metrics.bump_link(preferred.link_idx, |l| &l.reroutes);
                preferred.obs.emit(EventKind::Reroute, 0, [other.link_idx as u64, dest as u64]);
                return other;
            }
        }
        preferred
    }

    /// The best alternative first hop towards `dest` over the live
    /// subgraph, skipping `exclude` and any neighbour whose adapter is
    /// `Down`. The membership view matters because the link-health
    /// trackers cannot see a dead intermediate host: the links adjacent
    /// to it still negotiate electrically — only its service threads are
    /// gone, so a frame parked in its bypass buffer would never move
    /// again.
    fn detour_hop(&self, dest: usize, view: &MembershipView, exclude: usize) -> Option<usize> {
        self.graph.next_hop_live(
            self.topo.me,
            dest,
            |hop| hop != exclude && !self.endpoint_to(hop).health.is_down(),
            |pe| view.is_live(pe),
        )
    }

    /// The endpoint a *forwarded* frame leaves through. Split horizon: a
    /// frame never goes back out the endpoint it arrived on (`arrived`),
    /// which would orbit the interconnect forever once rerouting reverses
    /// a route mid-flight. When the preferred route points back, the best
    /// live detour wins; with none, any other endpoint.
    pub(crate) fn forward_endpoint(&self, dest: usize, arrived: usize) -> &LinkEndpoint {
        let preferred = self.endpoint_for(dest);
        if std::ptr::eq(preferred, &self.endpoints[arrived]) {
            let view = self.membership.view();
            let back = self.endpoints[arrived].neighbor;
            if let Some(alt) = self.detour_hop(dest, &view, back) {
                return self.endpoint_to(alt);
            }
            if let Some(other) =
                self.endpoints.iter().enumerate().find(|(i, _)| *i != arrived).map(|(_, e)| e)
            {
                return other;
            }
        }
        preferred
    }

    /// Install the delivery target (the symmetric heap). Called by
    /// `shmem_init`.
    pub fn set_delivery(&self, target: Arc<dyn DeliveryTarget>) {
        *self.delivery.write() = Some(target);
    }

    /// Remove the delivery target (called by `shmem_finalize`).
    pub fn clear_delivery(&self) {
        *self.delivery.write() = None;
    }

    /// Expose `target` (the symmetric heap) through every link's read
    /// aperture so small gets from a direct neighbour become a single
    /// PIO window read with no responder involvement. Called by
    /// `shmem_init` alongside [`Self::set_delivery`].
    pub fn publish_aperture(&self, target: Arc<dyn ntb_sim::ReadAperture>) {
        for ep in &self.endpoints {
            ep.port.publish_aperture(Arc::clone(&target));
        }
    }

    /// Withdraw the read aperture (called by `shmem_finalize`); peers
    /// fall back to the request/response get protocol.
    pub fn clear_aperture(&self) {
        for ep in &self.endpoints {
            ep.port.clear_aperture();
        }
    }

    pub(crate) fn deliver(&self) -> Result<Arc<dyn DeliveryTarget>> {
        self.delivery.read().clone().ok_or(NtbError::BadDescriptor {
            reason: "no delivery target installed (shmem_init not run?)",
        })
    }

    pub(crate) fn record_error(&self, err: NtbError) {
        self.errors.lock().push(err);
    }

    /// Errors recorded by background threads since the last call
    /// (tests and diagnostics).
    pub fn take_errors(&self) -> Vec<NtbError> {
        std::mem::take(&mut *self.errors.lock())
    }

    /// The shared protocol tracer (one clock for the whole network).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Record a protocol trace event at this host.
    pub(crate) fn trace(&self, kind: TraceKind, src: usize, dest: usize, len: u32) {
        self.tracer.record(self.topo.me, kind, src, dest, len);
    }

    /// Protocol counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// This PE's metrics registry: latency histograms per op class plus
    /// counters per physical link. Always on (a handful of relaxed
    /// atomics per op).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Node-scoped structured-event handle (`link = NO_LINK`); the
    /// OpenSHMEM layer emits its API-level events through this.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Stats snapshot of the port facing `dir` (ring/clique adapters).
    pub fn port_stats(&self, dir: RouteDirection) -> PortStatsSnapshot {
        self.endpoint(dir).port.stats().snapshot()
    }

    /// Number of cabled adapters on this host.
    pub fn num_links(&self) -> usize {
        self.endpoints.len()
    }

    /// Stats snapshot of the adapter at `idx` in cabling order; works on
    /// every shape (torus hosts have no left/right adapters to name).
    pub fn port_stats_at(&self, idx: usize) -> PortStatsSnapshot {
        self.endpoints[idx].port.stats().snapshot()
    }

    /// The shape-generic routing tables (shared by every host).
    pub fn graph(&self) -> &Arc<TopoGraph> {
        &self.graph
    }

    /// True once shutdown began.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Push `data` into the peer's window at `area_off` under `mode`
    /// (staging through a pinned bounce buffer for DMA, as the prototype
    /// stages local data for the NTB engine).
    pub(crate) fn push_payload(
        &self,
        port: &NtbPort,
        area_off: u64,
        data: &[u8],
        mode: TransferMode,
    ) -> Result<()> {
        match mode {
            TransferMode::Memcpy => {
                port.outgoing().write_bytes(area_off, data, TransferMode::Memcpy)?
            }
            TransferMode::Dma => {
                let staging = Region::anonymous(data.len() as u64);
                staging.write(0, data)?;
                self.model.delay(self.model.local_copy_time(data.len() as u64));
                port.dma_transfer(DmaRequest {
                    src: staging,
                    src_offset: 0,
                    dst_offset: area_off,
                    len: data.len() as u64,
                })?;
            }
        }
        // Publish the payload checksum in the control slot so the
        // receiving hop can verify integrity before staging. Written
        // after the payload and before the frame header — the same
        // posted-write ordering that publishes the payload itself. Only
        // links with an armed fault plan pay the checksum tax: the clean
        // hardware model never corrupts a posted write, and benchmark
        // latencies must not shift when no faults are configured.
        if !data.is_empty() && port.outgoing().faults().is_active() {
            let crc = crc32(data);
            port.outgoing().write_bytes(
                self.layout.crc_off(),
                &crc.to_le_bytes(),
                TransferMode::Memcpy,
            )?;
        }
        Ok(())
    }

    /// Feed a send result into the endpoint's health tracker; an
    /// `Up`/`Degraded` → `Down` transition is counted.
    pub(crate) fn note_send_result(&self, ep: &LinkEndpoint, result: &Result<()>) {
        match result {
            Ok(()) => {
                let was_down = ep.health.is_down();
                ep.health.record_success();
                if was_down {
                    ep.obs.emit(EventKind::LinkUp, 0, [0, 0]);
                }
            }
            Err(e) if e.is_transient() || matches!(e, NtbError::LinkFailed { .. }) => {
                let was_down = ep.health.is_down();
                if ep.health.record_failure() == LinkHealth::Down && !was_down {
                    NodeStats::bump(&self.stats.link_down_events);
                    ep.obs.emit(EventKind::LinkDown, 0, [0, 0]);
                }
            }
            Err(_) => {}
        }
    }

    /// Flush one endpoint's coalescing ring (no-op without one, or with
    /// nothing staged). A flush failure drops the staged batch, which is
    /// safe: every staged put chunk stays registered in the unacked
    /// ledger and the sweeper retransmits it.
    pub(crate) fn flush_ring(&self, ep: &LinkEndpoint) {
        if let Some(ring) = &ep.txring {
            let result = ring.flush();
            self.note_send_result(ep, &result);
        }
    }

    /// Flush every endpoint's coalescing ring (quiet, end of a put batch).
    pub(crate) fn flush_all_rings(&self) {
        for ep in &self.endpoints {
            self.flush_ring(ep);
        }
    }

    // ----- Overload machinery: wire deadlines and link credits -----
    // (DESIGN.md §14. Helpers shared by the PE transmit path, the
    // service/forwarder loops and the retry sweeper.)

    /// Microseconds since the network epoch, saturating at `u32::MAX`
    /// (~71 simulated minutes — far beyond any run this model hosts).
    pub(crate) fn now_us(&self) -> u32 {
        u32::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u32::MAX)
    }

    /// Absolute wire deadline `budget` from now. Clamped to at least 1:
    /// zero means "no deadline" on the wire, and a budget so tight it
    /// truncates to the epoch itself must still expire, not disarm.
    pub fn deadline_us_in(&self, budget: Duration) -> u32 {
        self.now_us().saturating_add(u32::try_from(budget.as_micros()).unwrap_or(u32::MAX)).max(1)
    }

    /// Account a forward-queue push outcome: emit the enqueue depth for
    /// the occupancy invariant, count and emit sheds (typed, never
    /// silent). Returns whether the job was accepted.
    pub(crate) fn note_push(
        &self,
        ep: &LinkEndpoint,
        outcome: PushOutcome,
        op_id: u64,
        deadline_us: u32,
        now_us: u32,
    ) -> bool {
        match outcome {
            PushOutcome::Queued { depth, capacity } => {
                ep.obs.emit(EventKind::QueueEnqueue, op_id, [depth as u64, capacity as u64]);
                true
            }
            PushOutcome::ShedOverload { occupancy, capacity } => {
                self.metrics.bump_link(ep.link_idx, |l| &l.overload_sheds);
                ep.obs.emit(EventKind::OverloadShed, op_id, [occupancy as u64, capacity as u64]);
                false
            }
            PushOutcome::ShedExpired => {
                self.metrics.bump_link(ep.link_idx, |l| &l.deadline_sheds);
                ep.obs.emit(
                    EventKind::DeadlineShed,
                    op_id,
                    [u64::from(deadline_us), u64::from(now_us)],
                );
                false
            }
            PushOutcome::ShedShutdown => false,
        }
    }

    /// Write the outgoing control slot's deadline word for the next
    /// mailbox frame. Called inside the send closure — under the mailbox
    /// sequencer lock — so exactly one frame observes each value.
    /// Deadline-free sends (the common case) skip the write entirely
    /// unless a stale non-zero value must be cleared.
    pub(crate) fn write_deadline_word(&self, ep: &LinkEndpoint, deadline_us: u32) -> Result<()> {
        // lint: relaxed-ok(flag is only mutated under the mailbox sequencer lock)
        if deadline_us == 0 && !ep.deadline_armed.load(Ordering::Relaxed) {
            return Ok(());
        }
        ep.port.outgoing().write_bytes(
            self.layout.deadline_off(),
            &deadline_us.to_le_bytes(),
            TransferMode::Memcpy,
        )?;
        // lint: relaxed-ok(flag is only mutated under the mailbox sequencer lock)
        ep.deadline_armed.store(deadline_us != 0, Ordering::Relaxed);
        Ok(())
    }

    /// Refresh the sender-side credit gate from the credit word the peer
    /// last wrote into our incoming control slot. Zero means "never
    /// written" (bring-up) and is skipped; real totals start at the
    /// configured window and only grow.
    pub(crate) fn refresh_credits(&self, ep: &LinkEndpoint) {
        if let Ok(bytes) = ep.port.incoming().region().read_vec(self.layout.credit_off(), 4) {
            // lint: unwrap-ok(read_vec returned exactly the 4 requested bytes)
            let wire = u32::from_le_bytes(bytes.try_into().unwrap());
            if wire != 0 {
                ep.credit.advertise(u64::from(wire));
            }
        }
    }

    /// Grant `n` credits for put frames absorbed from `ep`'s neighbour
    /// and re-advertise the new cumulative total (unless congestion
    /// defers the advertisement).
    pub(crate) fn grant_credits(&self, ep: &LinkEndpoint, n: u64) {
        let total = ep.ledger.grant(n);
        ep.obs.emit(EventKind::CreditGrant, 0, [total, 0]);
        self.advertise_credits(ep);
    }

    /// Write the cumulative grant total into the peer's credit word.
    /// Withheld while this endpoint's forward queue sits above its high
    /// watermark — that *is* the backpressure: the ledger keeps growing
    /// locally and the next heartbeat tick (or post-drain grant)
    /// re-advertises, so deferred credits are delayed, never lost.
    pub(crate) fn advertise_credits(&self, ep: &LinkEndpoint) {
        if ep.fwd.congested() {
            return;
        }
        let wire = u32::try_from(ep.ledger.total()).unwrap_or(u32::MAX);
        let _ = ep.port.outgoing().write_bytes(
            self.layout.credit_off(),
            &wire.to_le_bytes(),
            TransferMode::Memcpy,
        );
    }

    /// Consume one transmit credit toward `ep`'s neighbour, polling the
    /// peer's advertisement when none are available. Bounded and typed:
    /// [`NtbError::DeadlineExceeded`] when the op's own deadline expires
    /// first, [`NtbError::Overloaded`] after an ack-timeout's worth of
    /// waiting without a grant.
    pub(crate) fn acquire_credit(
        &self,
        ep: &LinkEndpoint,
        put_id: u32,
        deadline_us: u32,
    ) -> Result<()> {
        if !ep.credit.try_consume() {
            let wait_start = Instant::now();
            loop {
                self.refresh_credits(ep);
                if ep.credit.try_consume() {
                    break;
                }
                let now = self.now_us();
                if deadline_us != 0 && now > deadline_us {
                    self.metrics.bump_link(ep.link_idx, |l| &l.deadline_sheds);
                    ep.obs.emit(
                        EventKind::DeadlineShed,
                        u64::from(put_id),
                        [u64::from(deadline_us), u64::from(now)],
                    );
                    // RESOLVES(none): no credit consumed yet on this path —
                    // the shed happens before CreditConsume is emitted.
                    return Err(NtbError::DeadlineExceeded);
                }
                if wait_start.elapsed() > self.config.retry.ack_timeout {
                    self.metrics.bump_link(ep.link_idx, |l| &l.overload_sheds);
                    ep.obs.emit(EventKind::OverloadShed, u64::from(put_id), [0, 0]);
                    // RESOLVES(none): ditto — nothing to refund before consume.
                    return Err(NtbError::Overloaded { queue: "link credit window" });
                }
                std::thread::yield_now();
            }
        }
        // `consumed` read before `granted`: the grant total only grows,
        // so the pair always satisfies the conservation invariant even
        // if another thread consumes between the two reads.
        ep.obs.emit(
            // RESOLVES(CreditConsume): resolved out-of-function — the peer's
            // next CreditGrant re-extends the window, and `transmit_put`
            // refunds on transmit failure (checker invariant 9 audits the
            // consumed/granted conservation pair end-to-end).
            EventKind::CreditConsume,
            u64::from(put_id),
            [ep.credit.consumed_total(), ep.credit.granted_total()],
        );
        Ok(())
    }

    /// Transmit (or retransmit) one tracked put chunk. Does not touch the
    /// unacked table — registration and retirement are the caller's job.
    ///
    /// A chunk that fits a ring slot rides the coalescing ring whether
    /// its next hop terminates or forwards: with `defer_flush` it is only
    /// staged (the caller batches several chunks behind one doorbell and
    /// flushes later), otherwise it is flushed immediately. Oversized
    /// chunks use the legacy scratchpad mailbox and its bypass area.
    #[allow(clippy::too_many_arguments)] // internal hot path, two call sites
    pub(crate) fn transmit_put(
        &self,
        put_id: u32,
        dest: usize,
        heap_offset: u32,
        chunk: &[u8],
        mode: TransferMode,
        retransmit: bool,
        defer_flush: bool,
        deadline_us: u32,
    ) -> Result<()> {
        // Pin the membership view across the send: a send that passes
        // this liveness gate is ordered strictly before any concurrent
        // death declaration (which needs the write side of the lock), so
        // no `PutChunkTx` toward `dest` can trail this node's `PeDead`.
        // Covers the sweeper's retransmissions too — they all funnel
        // through here.
        crate::lockdep_track!(&crate::lockdep::NET_MEMBERSHIP);
        let view = self.membership.pin();
        if !view.is_live(dest) {
            return Err(NtbError::PeFailed { pe: dest, epoch: view.epoch });
        }
        let ep = self.endpoint_for_view(dest, &view);
        // Admission decision time: sampled *before* the send so a slow
        // transmission cannot turn an admitted frame into a spurious
        // "transmitted while expired" checker violation.
        let now = self.now_us();
        if deadline_us != 0 && now > deadline_us {
            self.metrics.bump_link(ep.link_idx, |l| &l.deadline_sheds);
            ep.obs.emit(
                EventKind::DeadlineShed,
                u64::from(put_id),
                [u64::from(deadline_us), u64::from(now)],
            );
            return Err(NtbError::DeadlineExceeded);
        }
        self.acquire_credit(ep, put_id, deadline_us)?;
        let terminating = ep.neighbor == dest;
        let frame = Frame::put(self.topo.me, dest, chunk.len() as u32, heap_offset, put_id, mode)
            .with_deadline_us(deadline_us);
        self.trace(TraceKind::FrameSent, self.topo.me, dest, chunk.len() as u32);
        // Any chunk that fits a slot lane rides the coalescing ring —
        // including routed chunks whose next hop is only an intermediate
        // host (the drain side routes non-terminating slot frames onward
        // exactly like mailbox frames). Only oversized chunks fall back
        // to the scratchpad mailbox and its bypass staging area.
        let ring = ep.txring.as_ref().filter(|r| r.fits(chunk.len()));
        let result = match ring {
            Some(ring) => match ring.publish(frame, Some(chunk)) {
                Ok(()) if !defer_flush => ring.flush(),
                other => other,
            },
            None => {
                let area = self.layout.area_offset(terminating);
                ep.tx.send(frame, |port| {
                    self.push_payload(port, area, chunk, mode)?;
                    self.write_deadline_word(ep, deadline_us)
                })
            }
        };
        if result.is_err() {
            // The frame never left this host, so the peer will never see
            // (or re-grant) its credit — return it.
            ep.credit.refund();
        }
        self.note_send_result(ep, &result);
        // `PutChunkTx` is emitted only on success and only *after* the
        // health tracker saw the result: a send that succeeds on a
        // formerly-Down endpoint first snaps it Up (emitting `LinkUp`
        // above), so the checker's down-link invariant needs no special
        // cases.
        if result.is_ok() {
            ep.obs.emit(
                EventKind::PutChunkTx,
                u64::from(put_id),
                [dest as u64, chunk.len() as u64],
            );
            if deadline_us != 0 {
                ep.obs.emit(
                    EventKind::DeadlineTx,
                    u64::from(put_id),
                    [u64::from(deadline_us), u64::from(now)],
                );
            }
            self.metrics.bump_link(ep.link_idx, |l| &l.frames_tx);
            if retransmit {
                self.metrics.bump_link(ep.link_idx, |l| &l.retransmits);
            }
        }
        result
    }

    fn send_put_chunk(
        &self,
        dest: usize,
        heap_offset: u64,
        chunk: &[u8],
        mode: TransferMode,
        deadline_us: u32,
    ) -> Result<()> {
        let offset = offset32(heap_offset)?;
        let deadline = Instant::now() + self.config.retry.ack_timeout;
        let put_id =
            self.unacked.register(dest, offset, chunk.to_vec(), mode, deadline, deadline_us);
        self.obs.emit(EventKind::PutIssue, u64::from(put_id), [dest as u64, chunk.len() as u64]);
        // Always staged-deferred on the ring path: `put_bytes` flushes
        // once per call (or leaves the batch for quiet / the batch cap).
        match self.transmit_put(put_id, dest, offset, chunk, mode, false, true, deadline_us) {
            Ok(()) => Ok(()),
            // A transiently failed first transmission stays registered:
            // the retry sweeper owns it from here (retransmission,
            // rerouting, and eventually abandonment into `quiet`).
            Err(e) if e.is_transient() || matches!(e, NtbError::LinkFailed { .. }) => Ok(()),
            Err(e) => {
                // Retire the entry without a failure record: the error is
                // reported synchronously to the caller, and a record would
                // make the next quiet() re-report it. If the sweeper (or a
                // racing ack) already retired the id, that path owns the
                // put's one resolution event — don't emit a second.
                if self.unacked.ack(put_id) {
                    self.obs.emit(EventKind::PutAbandon, u64::from(put_id), [1, dest as u64]);
                }
                Err(e)
            }
        }
    }

    /// One-sided put: write `data` into host `dest`'s symmetric space at
    /// flat offset `heap_offset`. Locally blocking — returns once the
    /// local buffer is reusable (payload handed to the NTB); delivery
    /// completes asynchronously and is awaited by [`quiet`](Self::quiet).
    pub fn put_bytes(
        &self,
        dest: usize,
        heap_offset: u64,
        data: &[u8],
        mode: TransferMode,
    ) -> Result<()> {
        self.put_bytes_coalesced(dest, heap_offset, data, mode, false)
    }

    /// [`put_bytes`](Self::put_bytes) with explicit doorbell-coalescing
    /// control: with `defer_doorbell` the chunks are only staged in the
    /// transmit ring — the doorbell fires at the ring's batch cap or at
    /// the next [`quiet`](Self::quiet), letting a caller batch many
    /// small puts behind one interrupt.
    pub fn put_bytes_coalesced(
        &self,
        dest: usize,
        heap_offset: u64,
        data: &[u8],
        mode: TransferMode,
        defer_doorbell: bool,
    ) -> Result<()> {
        self.put_bytes_opts(dest, heap_offset, data, mode, defer_doorbell, 0)
    }

    /// [`put_bytes_coalesced`](Self::put_bytes_coalesced) with an
    /// absolute wire deadline (`0` = none, see
    /// [`deadline_us_in`](Self::deadline_us_in)): chunks not staged by
    /// the deadline fail typed with [`NtbError::DeadlineExceeded`], and
    /// every hop downstream sheds the frame once the deadline passes —
    /// the op is bounded in time end to end, not just at the origin.
    pub fn put_bytes_opts(
        &self,
        dest: usize,
        heap_offset: u64,
        data: &[u8],
        mode: TransferMode,
        defer_doorbell: bool,
        deadline_us: u32,
    ) -> Result<()> {
        assert_ne!(dest, self.topo.me, "local puts are handled by the SHMEM layer");
        assert!(dest < self.topo.n, "destination host out of range");
        self.check_alive(dest)?;
        let chunk_size = self.config.put_chunk() as usize;
        let mut off = 0usize;
        while off < data.len() {
            let n = chunk_size.min(data.len() - off);
            self.send_put_chunk(
                dest,
                heap_offset + off as u64,
                &data[off..off + n],
                mode,
                deadline_us,
            )?;
            off += n;
        }
        if !defer_doorbell {
            self.flush_all_rings();
        }
        Ok(())
    }

    /// One-sided get: read `len` bytes from host `src`'s symmetric space
    /// at flat offset `heap_offset`. Blocks until the data arrives.
    pub fn get_bytes(
        &self,
        src: usize,
        heap_offset: u64,
        len: u64,
        mode: TransferMode,
    ) -> Result<Vec<u8>> {
        self.get_bytes_opts(src, heap_offset, len, mode, 0)
    }

    /// [`get_bytes`](Self::get_bytes) with an absolute wire deadline
    /// (`0` = none): the request and its response chunks carry the
    /// deadline, every hop sheds them once it passes, and the waiting
    /// requester reports [`NtbError::DeadlineExceeded`] instead of
    /// retrying past its time budget. Uses the configured pipeline
    /// window ([`NetConfig::get_window`]).
    pub fn get_bytes_opts(
        &self,
        src: usize,
        heap_offset: u64,
        len: u64,
        mode: TransferMode,
        deadline_us: u32,
    ) -> Result<Vec<u8>> {
        self.get_bytes_windowed(src, heap_offset, len, mode, deadline_us, self.config.get_window)
    }

    /// [`get_bytes_opts`](Self::get_bytes_opts) with an explicit
    /// pipeline window.
    ///
    /// Large gets are split into [`NetConfig::get_req_chunk`]-sized
    /// sub-requests, each a payload-free `GetReq` with its own pending
    /// entry, with up to `window` of them outstanding at once: the
    /// responder's per-request service think and the response wire time
    /// overlap instead of serializing. `window == 1` degenerates to the
    /// old stop-and-wait behaviour. Terminating requests batch through
    /// the transmit slot ring, so priming the window costs a single
    /// coalesced doorbell.
    ///
    /// Small terminating gets skip the protocol entirely: when the
    /// source has published its heap through the link aperture
    /// ([`Self::publish_aperture`]) and `len` is at or below the PIO
    /// crossover, the bytes are pulled with one window read and no
    /// responder involvement.
    pub fn get_bytes_windowed(
        &self,
        src: usize,
        heap_offset: u64,
        len: u64,
        mode: TransferMode,
        deadline_us: u32,
        window: usize,
    ) -> Result<Vec<u8>> {
        assert_ne!(src, self.topo.me, "local gets are handled by the SHMEM layer");
        assert!(src < self.topo.n, "source host out of range");
        self.check_alive(src)?;
        if let Some(buf) = self.try_aperture_get(src, heap_offset, len, deadline_us)? {
            return Ok(buf);
        }
        let window = window.max(1);
        let chunk = self.config.get_req_chunk.max(1);
        // Sub-request tiling of the op buffer: (offset, len) pairs. A
        // zero-length get still makes one round trip — it is a visible
        // synchronization point, not a no-op.
        let mut subs: Vec<(u64, u64)> = Vec::new();
        if len == 0 {
            subs.push((0, 0));
        } else {
            let mut off = 0;
            while off < len {
                let n = chunk.min(len - off);
                subs.push((off, n));
                off += n;
            }
        }
        let mut out = vec![0u8; len as usize];
        let mut ids: Vec<u32> = Vec::with_capacity(subs.len().min(window));
        let mut fatal: Option<NtbError> = None;
        // Prime the pipeline: register and transmit the initial window
        // with the doorbell held back, then flush the batch once.
        let primed = window.min(subs.len());
        for &(sub_off, sub_len) in &subs[..primed] {
            let req_id = self.pending.register(sub_len, src);
            self.obs.emit(EventKind::GetReqTx, u64::from(req_id), [heap_offset + sub_off, sub_len]);
            self.trace(TraceKind::FrameSent, self.topo.me, src, 0);
            ids.push(req_id);
            if let Err(e) = self.send_get_req(
                src,
                heap_offset + sub_off,
                sub_len,
                req_id,
                mode,
                deadline_us,
                false,
                true,
            ) {
                // A transient failure leaves the entry pending; the
                // bounded wait below re-issues it (possibly rerouted).
                if !(e.is_transient() || matches!(e, NtbError::LinkFailed { .. })) {
                    fatal = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = fatal {
            for &id in &ids {
                self.pending.abandon(id);
                self.obs.emit(EventKind::GetAbandon, u64::from(id), [0, 0]);
            }
            return Err(e);
        }
        self.flush_all_rings();
        let op_deadline =
            (deadline_us != 0).then(|| self.epoch + Duration::from_micros(u64::from(deadline_us)));
        // Completion loop: wait for sub-requests in issue order, and as
        // each lands refill the window with the next tile (flushed
        // immediately — the pipeline is already primed, there is nothing
        // to batch it with).
        let mut next = primed;
        let mut failed_at: Option<(usize, NtbError)> = None;
        let mut done = 0;
        while done < ids.len() {
            let req_id = ids[done];
            let (sub_off, sub_len) = subs[done];
            let waited = self.pending.wait_with_retry_until(
                req_id,
                &self.model,
                &self.config.retry,
                op_deadline,
                |attempt| {
                    NodeStats::bump(&self.stats.retransmits);
                    self.obs.emit(
                        EventKind::Retransmit,
                        u64::from(req_id),
                        [u64::from(attempt), 0],
                    );
                    self.send_get_req(
                        src,
                        heap_offset + sub_off,
                        sub_len,
                        req_id,
                        mode,
                        deadline_us,
                        true,
                        false,
                    )
                },
            );
            match waited {
                Ok(buf) => {
                    out[sub_off as usize..(sub_off + sub_len) as usize].copy_from_slice(&buf);
                    self.obs.emit(
                        EventKind::GetDone,
                        u64::from(req_id),
                        [heap_offset + sub_off, sub_len],
                    );
                    done += 1;
                    if next < subs.len() {
                        let (n_off, n_len) = subs[next];
                        let id = self.pending.register(n_len, src);
                        self.obs.emit(
                            EventKind::GetReqTx,
                            u64::from(id),
                            [heap_offset + n_off, n_len],
                        );
                        self.trace(TraceKind::FrameSent, self.topo.me, src, 0);
                        ids.push(id);
                        next += 1;
                        if let Err(e) = self.send_get_req(
                            src,
                            heap_offset + n_off,
                            n_len,
                            id,
                            mode,
                            deadline_us,
                            false,
                            false,
                        ) {
                            if !(e.is_transient() || matches!(e, NtbError::LinkFailed { .. })) {
                                // The completed tiles stand; everything
                                // still outstanding (including the one
                                // just registered) is torn down below.
                                failed_at = Some((done, e));
                                break;
                            }
                        }
                    }
                }
                Err(e) => {
                    // `wait_with_retry_until` already abandoned this
                    // entry; the resolution event is ours to emit.
                    self.obs.emit(EventKind::GetAbandon, u64::from(req_id), [0, 0]);
                    failed_at = Some((done + 1, e));
                    break;
                }
            }
        }
        if let Some((outstanding_from, e)) = failed_at {
            for &id in &ids[outstanding_from..] {
                self.pending.abandon(id);
                self.obs.emit(EventKind::GetAbandon, u64::from(id), [0, 0]);
            }
            // A retry budget exhausted *after* the op's deadline passed
            // is the deadline's failure, not the link's.
            return Err(deadline_failure(e, deadline_us, self.now_us()));
        }
        self.model.delay(self.model.requester_wake_delay);
        Ok(out)
    }

    /// Transmit one get sub-request. Terminating requests are
    /// payload-free, so they always fit a ring slot and batch through
    /// the coalescing transmit ring (the doorbell held back while
    /// `defer_flush`); routed requests use the scratchpad mailbox.
    #[allow(clippy::too_many_arguments)] // internal fan-in for the windowed get path
    fn send_get_req(
        &self,
        src: usize,
        abs_offset: u64,
        sub_len: u64,
        req_id: u32,
        mode: TransferMode,
        deadline_us: u32,
        retransmit: bool,
        defer_flush: bool,
    ) -> Result<()> {
        let now = self.now_us();
        if deadline_us != 0 && now > deadline_us {
            // RESOLVES(none): pre-flight check — the sub-request is failed
            // before any frame or pending entry exists for it.
            return Err(NtbError::DeadlineExceeded);
        }
        self.check_alive(src)?;
        let ep = self.endpoint_for(src);
        let frame =
            Frame::get_req(self.topo.me, src, len31(sub_len)?, offset32(abs_offset)?, req_id, mode)
                .with_deadline_us(deadline_us);
        let ring = ep.txring.as_ref().filter(|_| ep.neighbor == src);
        let result = match ring {
            Some(ring) => match ring.publish(frame, None) {
                Ok(()) if !defer_flush => ring.flush(),
                other => other,
            },
            None => ep.tx.send(frame, |_port| self.write_deadline_word(ep, deadline_us)),
        };
        self.note_send_result(ep, &result);
        if result.is_ok() {
            self.metrics.bump_link(ep.link_idx, |l| &l.frames_tx);
            if deadline_us != 0 {
                ep.obs.emit(
                    EventKind::DeadlineTx,
                    u64::from(req_id),
                    [u64::from(deadline_us), u64::from(now)],
                );
            }
            if retransmit {
                self.metrics.bump_link(ep.link_idx, |l| &l.retransmits);
            }
        }
        result
    }

    /// The zero-copy fast path for small gets: pull the bytes straight
    /// out of the source's published heap aperture with one PIO window
    /// read. Returns `Ok(None)` when the fast path does not apply (get
    /// too large, source not a direct neighbour, aperture unpublished or
    /// revoked, or the read failed transiently) — the caller falls back
    /// to the request/response protocol.
    fn try_aperture_get(
        &self,
        src: usize,
        heap_offset: u64,
        len: u64,
        deadline_us: u32,
    ) -> Result<Option<Vec<u8>>> {
        if len == 0 || len > self.config.pio_crossover {
            return Ok(None);
        }
        // Only a direct neighbour's heap is aperture-mapped; multi-hop
        // gets always take the protocol path.
        let Some(ep) = self.endpoints.iter().find(|ep| ep.neighbor == src) else {
            return Ok(None);
        };
        if deadline_us != 0 && self.now_us() > deadline_us {
            // RESOLVES(none): pre-flight check — the PIO fast path has not
            // registered anything yet; the caller falls back or fails typed.
            return Err(NtbError::DeadlineExceeded);
        }
        let mut buf = vec![0u8; len as usize];
        match ep.port.aperture_read(heap_offset, &mut buf) {
            Ok(true) => {
                // Synchronous completion, but the trace still records a
                // fully resolved get so the checker's get-resolution
                // invariant sees aperture and protocol gets alike.
                let req_id = self.pending.allocate_id();
                self.obs.emit(EventKind::GetReqTx, u64::from(req_id), [heap_offset, len]);
                self.obs.emit(EventKind::GetChunkRx, u64::from(req_id), [0, len]);
                self.obs.emit(EventKind::GetDone, u64::from(req_id), [heap_offset, len]);
                self.metrics.bump_link(ep.link_idx, |l| &l.frames_tx);
                Ok(Some(buf))
            }
            // Out of the exposed mapping — an oversized heap offset the
            // protocol path will reject with its own typed error.
            Ok(false) => Ok(None),
            // Link down, node frozen mid-read, peer revoked: the
            // protocol path owns rerouting and bounded retry.
            Err(e) if e.is_transient() => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Remote atomic on `width` bytes (1/2/4/8) at host `target`'s flat
    /// offset `heap_offset`. Returns the old value. Executed inside the
    /// target's service thread, serialized with every other AMO there.
    pub fn amo(
        &self,
        target: usize,
        op: AmoOp,
        heap_offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
    ) -> Result<u64> {
        self.amo_opts(target, op, heap_offset, width, operand, compare, 0)
    }

    /// [`amo`](Self::amo) with an absolute wire deadline (`0` = none);
    /// the bounded-time semantics match
    /// [`get_bytes_opts`](Self::get_bytes_opts).
    #[allow(clippy::too_many_arguments)] // mirrors the OpenSHMEM AMO surface plus the deadline
    pub fn amo_opts(
        &self,
        target: usize,
        op: AmoOp,
        heap_offset: u64,
        width: usize,
        operand: u64,
        compare: u64,
        deadline_us: u32,
    ) -> Result<u64> {
        assert_ne!(target, self.topo.me, "local atomics are handled by the SHMEM layer");
        assert!(matches!(width, 1 | 2 | 4 | 8), "AMO width must be 1/2/4/8");
        self.check_alive(target)?;
        // Validate the wire offset *before* registering the pending entry:
        // a `?` after `register` would leak the entry and leave the
        // AmoReqTx trace event unresolved (caught by the resolution lint).
        let wire_offset = offset32(heap_offset)?;
        let req_id = self.pending.register(8, target);
        self.obs.emit(EventKind::AmoReqTx, u64::from(req_id), [op as u64, heap_offset]);
        let mut payload = [0u8; 24];
        payload[0..8].copy_from_slice(&operand.to_le_bytes());
        payload[8..16].copy_from_slice(&compare.to_le_bytes());
        payload[16] = width as u8;
        let frame = Frame::amo_req(self.topo.me, target, op, wire_offset, req_id)
            .with_deadline_us(deadline_us);
        let send_req = |retransmit: bool| {
            let now = self.now_us();
            if deadline_us != 0 && now > deadline_us {
                return Err(NtbError::DeadlineExceeded);
            }
            self.check_alive(target)?;
            let ep = self.endpoint_for(target);
            let terminating = ep.neighbor == target;
            let area = self.layout.area_offset(terminating);
            let result = ep.tx.send(frame, |port| {
                self.push_payload(port, area, &payload, TransferMode::Dma)?;
                self.write_deadline_word(ep, deadline_us)
            });
            self.note_send_result(ep, &result);
            if result.is_ok() {
                self.metrics.bump_link(ep.link_idx, |l| &l.frames_tx);
                if deadline_us != 0 {
                    ep.obs.emit(
                        EventKind::DeadlineTx,
                        u64::from(req_id),
                        [u64::from(deadline_us), u64::from(now)],
                    );
                }
                if retransmit {
                    self.metrics.bump_link(ep.link_idx, |l| &l.retransmits);
                }
            }
            result
        };
        if let Err(e) = send_req(false) {
            if !(e.is_transient() || matches!(e, NtbError::LinkFailed { .. })) {
                self.pending.abandon(req_id);
                self.obs.emit(EventKind::AmoAbandon, u64::from(req_id), [0, 0]);
                return Err(e);
            }
        }
        // Retransmission is idempotent: the target caches the old value
        // per (origin, request id) and re-serves it without re-executing.
        let op_deadline =
            (deadline_us != 0).then(|| self.epoch + Duration::from_micros(u64::from(deadline_us)));
        let waited = self.pending.wait_with_retry_until(
            req_id,
            &self.model,
            &self.config.retry,
            op_deadline,
            |attempt| {
                NodeStats::bump(&self.stats.retransmits);
                self.obs.emit(EventKind::Retransmit, u64::from(req_id), [u64::from(attempt), 0]);
                send_req(true)
            },
        );
        let buf = match waited {
            Ok(buf) => buf,
            Err(e) => {
                self.obs.emit(EventKind::AmoAbandon, u64::from(req_id), [0, 0]);
                return Err(deadline_failure(e, deadline_us, self.now_us()));
            }
        };
        self.obs.emit(EventKind::AmoDone, u64::from(req_id), [op as u64, 0]);
        let bytes: [u8; 8] = buf
            .get(0..8)
            .and_then(|s| s.try_into().ok())
            .ok_or(NtbError::BadDescriptor { reason: "short AMO response" })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Block until every put chunk this host has issued is acknowledged
    /// by its destination or abandoned by the retry sweeper
    /// (`shmem_quiet`). The sweeper bounds how long a chunk can stay
    /// unacknowledged, so this returns in bounded time — with
    /// [`NtbError::LinkFailed`] if any chunk exhausted its retries.
    pub fn quiet(&self) -> Result<()> {
        // Anything still staged in a transmit ring must be published
        // before waiting on acknowledgements, or quiet would stall until
        // the sweeper's timeout retransmits the staged chunks.
        self.flush_all_rings();
        self.unacked.quiet()
    }

    /// Outstanding unacknowledged put chunks (diagnostics).
    pub fn outstanding_puts(&self) -> u64 {
        self.unacked.current() as u64
    }

    /// In-flight get/AMO requests still registered in the pending table
    /// (diagnostics). Zero once every requester wait has resolved — a
    /// non-zero count after all ops returned means a leaked entry.
    pub fn pending_in_flight(&self) -> usize {
        self.pending.in_flight()
    }

    /// Ring the barrier doorbell (`start` or end) on the neighbour in
    /// `dir` (paper Fig. 6 sends the sweep rightward).
    ///
    /// The barrier sweep is structural — it must travel this exact link —
    /// so a down link cannot be routed around; instead the ring is
    /// retried with backoff until the link recovers or the retry budget
    /// is spent (down windows are timed, so recovery is the common case).
    pub fn send_barrier(&self, dir: RouteDirection, start: bool) -> Result<()> {
        let bit = if start { DB_BARRIER_START } else { DB_BARRIER_END };
        let peer = self.endpoint(dir).neighbor;
        self.trace(TraceKind::BarrierSignal, self.topo.me, peer, 0);
        let policy = &self.config.retry;
        let mut attempt: u32 = 0;
        loop {
            match self.endpoint(dir).port.ring_peer(bit) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < policy.max_retries => {
                    attempt += 1;
                    NodeStats::bump(&self.stats.retransmits);
                    // DEADLINE-CLIPPED: barrier doorbells carry no op deadline;
                    // the backoff is bounded by the retry budget above.
                    std::thread::sleep(policy.backoff(attempt - 1).max(Duration::from_millis(1)));
                }
                Err(e) if e.is_transient() => {
                    // RESOLVES(none): doorbell rings are untracked — no
                    // pending-table entry exists for a barrier signal.
                    return Err(NtbError::LinkFailed { attempts: attempt + 1 });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Wait for a barrier doorbell from the neighbour in `from`
    /// direction; clears it on delivery. Returns `false` on timeout.
    pub fn wait_barrier(
        &self,
        from: RouteDirection,
        start: bool,
        timeout: Duration,
    ) -> Result<bool> {
        let bit = if start { DB_BARRIER_START } else { DB_BARRIER_END };
        // DEADLINE-CLIPPED: `timeout` is the caller's sweep quantum — the
        // barrier layer clips each sweep to its own deadline before calling.
        let fired = self.endpoint(from).port.doorbell().wait_and_clear(bit, Some(timeout))?;
        if fired {
            // The blocked PE is woken like any interrupt consumer.
            self.model.delay(self.model.interrupt_service_delay);
        }
        Ok(fired)
    }

    /// Raw single-hop window transfer (no frames, no service threads):
    /// the primitive the Fig. 8 link benchmark measures. Writes `len`
    /// bytes from `src` into the neighbour's window at `dst_off`.
    /// Only meaningful on an otherwise idle protocol (the bytes land in
    /// the window payload areas).
    pub fn raw_send(
        &self,
        dir: RouteDirection,
        src: &Region,
        src_off: u64,
        dst_off: u64,
        len: u64,
        mode: TransferMode,
    ) -> Result<()> {
        self.endpoint(dir).port.push_region(src, src_off, dst_off, len, mode)
    }

    /// Spawn the service and forwarder threads (one pair per endpoint).
    pub(crate) fn start(self: &Arc<Self>) {
        crate::lockdep_track!(&crate::lockdep::NET_ADMIN);
        let mut threads = self.threads.lock();
        for idx in 0..self.endpoints.len() {
            let peer = self.endpoints[idx].neighbor;
            let node = Arc::clone(self);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ntb-svc-h{}-to{}", self.topo.me, peer))
                    .spawn(move || crate::service::service_loop(&node, idx))
                    // lint: unwrap-ok(spawn fails only on resource exhaustion at bring-up)
                    .expect("spawn service thread"),
            );
            let node = Arc::clone(self);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ntb-fwd-h{}-to{}", self.topo.me, peer))
                    .spawn(move || crate::service::forwarder_loop(&node, idx))
                    // lint: unwrap-ok(spawn fails only on resource exhaustion at bring-up)
                    .expect("spawn forwarder thread"),
            );
        }
        if !self.endpoints.is_empty() {
            let node = Arc::clone(self);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ntb-rty-h{}", self.topo.me))
                    .spawn(move || crate::service::retry_sweeper_loop(&node))
                    // lint: unwrap-ok(spawn fails only on resource exhaustion at bring-up)
                    .expect("spawn retry sweeper thread"),
            );
        }
    }

    /// Stop this node's background threads. The network must be quiescent
    /// (no in-flight application traffic).
    pub(crate) fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for ep in &self.endpoints {
            ep.fwd.shutdown();
            // Wake the service thread blocked on its doorbell.
            let _ = ep.port.doorbell().ring(DB_SHUTDOWN);
        }
        crate::lockdep_track!(&crate::lockdep::NET_ADMIN);
        let mut threads = self.threads.lock();
        for h in threads.drain(..) {
            let _ = h.join();
        }
        for ep in &self.endpoints {
            ep.port.shutdown();
        }
    }

    /// Record a frame handled (service module helper).
    pub(crate) fn count_frame(&self) {
        NodeStats::bump(&self.stats.frames_rx);
    }

    /// Record a forward (service module helper).
    pub(crate) fn count_forward(&self) {
        NodeStats::bump(&self.stats.forwards);
    }

    /// Record a delivered put chunk.
    pub(crate) fn count_put_delivered(&self) {
        NodeStats::bump(&self.stats.puts_delivered);
    }

    /// Record a served get.
    pub(crate) fn count_get_served(&self) {
        NodeStats::bump(&self.stats.gets_served);
    }

    /// Record a received put ack.
    pub(crate) fn count_ack(&self) {
        NodeStats::bump(&self.stats.acks_received);
    }

    /// Record a served AMO.
    pub(crate) fn count_amo(&self) {
        NodeStats::bump(&self.stats.amos_served);
    }

    /// Record a retransmission.
    pub(crate) fn count_retransmit(&self) {
        NodeStats::bump(&self.stats.retransmits);
    }

    /// Record a checksum-rejected inbound frame.
    pub(crate) fn count_checksum_reject(&self) {
        NodeStats::bump(&self.stats.checksum_rejects);
    }

    /// Record a suppressed duplicate delivery.
    pub(crate) fn count_duplicate(&self) {
        NodeStats::bump(&self.stats.duplicates_suppressed);
    }

    /// Probe every `Down` endpoint with a one-byte write to the probe
    /// word of the peer's control slot; a successful write proves the
    /// path works again and snaps the endpoint back to `Up`.
    pub(crate) fn probe_down_links(&self) {
        for ep in &self.endpoints {
            if !ep.health.is_down() {
                continue;
            }
            NodeStats::bump(&self.stats.probes_sent);
            ep.obs.emit(EventKind::ProbeTx, 0, [0, 0]);
            if ep
                .port
                .outgoing()
                .write_bytes(self.layout.probe_off(), &[0xA5], TransferMode::Memcpy)
                .is_ok()
            {
                ep.health.record_success();
                ep.obs.emit(EventKind::LinkUp, 0, [0, 0]);
            }
        }
    }

    /// Ring membership as this node currently believes it (heartbeat
    /// failure detector + gossip).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// True while [`Self::restart`] runs its rejoin handshake.
    pub fn is_rejoining(&self) -> bool {
        self.rejoining.load(Ordering::SeqCst)
    }

    /// Typed fast-fail gate: error immediately when `pe` is already known
    /// dead instead of burning a retry budget against a corpse.
    pub(crate) fn check_alive(&self, pe: usize) -> Result<()> {
        let view = self.membership.view();
        if view.is_live(pe) {
            Ok(())
        } else {
            // RESOLVES(none): fast-fail gate before anything is registered;
            // entries for ops already in flight are swept by `fail_dest`.
            Err(NtbError::PeFailed { pe, epoch: view.epoch })
        }
    }

    /// The failure detector confirmed `pe` dead: record it, fail every
    /// in-flight operation aimed at it (puts abandon, get/AMO waiters
    /// wake with [`NtbError::PeFailed`]), and gossip the new view.
    pub(crate) fn confirm_death(&self, pe: usize) {
        let Some(view) = self.membership.mark_dead(pe) else {
            return; // already dead (e.g. the other neighbour confirmed first)
        };
        self.obs.emit(EventKind::PeDead, view.epoch, [pe as u64, 0]);
        self.emit_membership_update(view);
        self.fail_ops_to(pe, view.epoch);
        self.gossip_view(view);
    }

    /// Abandon unacked puts and fail pending gets/AMOs targeting `pe`.
    fn fail_ops_to(&self, pe: usize, epoch: u64) {
        for id in self.unacked.fail_dest(pe, epoch) {
            self.obs.emit(EventKind::PutAbandon, u64::from(id), [0, pe as u64]);
        }
        self.pending.fail_dest(pe, NtbError::PeFailed { pe, epoch });
    }

    pub(crate) fn emit_membership_update(&self, view: MembershipView) {
        self.obs.emit(
            EventKind::MembershipUpdate,
            view.epoch,
            [u64::from(view.live), u64::from(view.crash_flags)],
        );
    }

    /// Adopt a gossiped view (strictly newer epochs only) and react to
    /// every per-PE transition it carries: newly dead PEs fail their
    /// in-flight ops, rejoined PEs re-enter (purging this node's
    /// duplicate-suppression state for them iff the rejoin was a
    /// crash-restart — a thawed PE's state survived and a purge would
    /// double-apply its retransmitted AMOs). Returns whether the view was
    /// adopted.
    pub(crate) fn adopt_view(&self, remote: MembershipView) -> bool {
        let Some((old, new)) = self.membership.adopt(remote) else {
            return false;
        };
        self.emit_membership_update(new);
        for pe in 0..self.topo.n.min(32) {
            if pe == self.topo.me {
                continue;
            }
            let was = old.is_live(pe);
            let is = new.is_live(pe);
            let crash_rose = new.crash_flags & (1 << pe) != 0 && old.crash_flags & (1 << pe) == 0;
            if was && !is {
                self.obs.emit(EventKind::PeDead, new.epoch, [pe as u64, 0]);
                self.fail_ops_to(pe, new.epoch);
            } else if !was && is {
                let crashed = new.crash_flags & (1 << pe) != 0;
                self.obs.emit(EventKind::PeRejoin, new.epoch, [pe as u64, u64::from(crashed)]);
                if crashed {
                    self.purge_peer_state(pe);
                }
            } else if is && crash_rose {
                // Fast restart: the PE crashed and rejoined before this
                // node ever saw it dead. The purge still applies.
                self.obs.emit(EventKind::PeRejoin, new.epoch, [pe as u64, 1]);
                self.purge_peer_state(pe);
            }
        }
        true
    }

    /// Forget duplicate-suppression state for `pe` (crash-restart purge).
    pub(crate) fn purge_peer_state(&self, pe: usize) {
        self.seen_puts.lock().purge_origin(pe);
        self.amo_cache.lock().purge_origin(pe);
    }

    /// Publish `view` on every endpoint's heartbeat block and ring the
    /// gossip doorbell. Best effort: a dead or faulted link simply does
    /// not carry this round of gossip; the periodic beat republishes.
    pub(crate) fn gossip_view(&self, view: MembershipView) {
        for ep in &self.endpoints {
            let _ = self.publish_view(ep, view);
            let _ = ep.port.ring_peer(DB_GOSSIP);
        }
    }

    /// Write `view` into `ep`'s transmit half of the heartbeat block.
    /// Bitmaps first, epoch last — the epoch word doubles as the release
    /// publication (readers discard samples whose epoch moved mid-read).
    pub(crate) fn publish_view(&self, ep: &LinkEndpoint, view: MembershipView) -> Result<()> {
        let base = hb_tx_base(ep.port.outgoing().direction());
        ep.port.spad_write(base + HB_LIVE, view.live)?;
        ep.port.spad_write(base + HB_CRASH, view.crash_flags)?;
        ep.port.spad_write(base + HB_EPOCH, view.epoch as u32)
    }

    /// Stamp this node's liveness beat on `ep` (the rejoin flag bit is
    /// reserved and always cleared here).
    pub(crate) fn publish_beat(&self, ep: &LinkEndpoint, beat: u32) -> Result<()> {
        let base = hb_tx_base(ep.port.outgoing().direction());
        ep.port.spad_write(base + HB_BEAT, beat & !REJOIN_FLAG)
    }

    /// Read the neighbour's half of `ep`'s heartbeat block: the raw beat
    /// word plus its published membership view. `Ok(None)` means the
    /// epoch word changed mid-read (a torn sample) — skip and resample
    /// on the next tick.
    pub(crate) fn read_peer_hb(&self, ep: &LinkEndpoint) -> Result<Option<(u32, MembershipView)>> {
        let base = hb_rx_base(ep.port.outgoing().direction());
        let epoch = ep.port.spad_read(base + HB_EPOCH)?;
        let beat = ep.port.spad_read(base + HB_BEAT)?;
        let live = ep.port.spad_read(base + HB_LIVE)?;
        let crash = ep.port.spad_read(base + HB_CRASH)?;
        if ep.port.spad_read(base + HB_EPOCH)? != epoch {
            return Ok(None);
        }
        Ok(Some((beat, MembershipView { epoch: u64::from(epoch), live, crash_flags: crash })))
    }

    /// Crash this host: every port dies atomically (in-flight and future
    /// transactions fail with `NodeDead`, queued DMA aborts) and the
    /// service threads park until [`Self::restart`].
    pub fn crash(&self) {
        self.obs.emit(EventKind::NodeCrash, 0, [self.topo.me as u64, 0]);
        for ep in &self.endpoints {
            ep.port.kill();
        }
    }

    /// Freeze this host: port transactions stall (callers hang mid-
    /// protocol, exactly like a hung-but-not-crashed machine) until
    /// [`Self::thaw`].
    pub fn freeze(&self) {
        self.obs.emit(EventKind::NodeFreeze, 0, [self.topo.me as u64, 0]);
        for ep in &self.endpoints {
            ep.port.freeze();
        }
    }

    /// Release a freeze: stalled transactions resume where they hung, and
    /// the resuming beats rejoin this host without any state purge.
    pub fn thaw(&self) {
        for ep in &self.endpoints {
            ep.port.thaw();
        }
        self.obs.emit(EventKind::NodeThaw, 0, [self.topo.me as u64, 0]);
    }

    /// Bring a crashed node back into the ring: revive its ports, void
    /// the protocol state lost with the crash, publish a rejoin request
    /// to the neighbours, and wait (up to `timeout`) until a neighbour's
    /// gossiped view counts this host live again at the ring's current
    /// epoch. The service threads stay parked while this runs (they sleep
    /// while the node is dead or rejoining) and resume once it returns.
    pub fn restart(&self, timeout: Duration) -> Result<()> {
        self.rejoining.store(true, Ordering::SeqCst);
        for ep in &self.endpoints {
            ep.port.revive();
        }
        // Everything below died with the host: half-preserved dedup
        // windows would suppress the fresh ids the restarted protocol
        // reuses from zero, and nobody is left to wait on the old
        // in-flight entries.
        self.pending.reset();
        self.unacked.reset();
        *self.seen_puts.lock() = SeenPuts::default();
        *self.amo_cache.lock() = AmoCache::default();
        self.membership.reset();
        if !self.config.heartbeat.enabled || self.endpoints.is_empty() {
            // No detector, no membership protocol: a revive is all there
            // is to do.
            self.rejoining.store(false, Ordering::SeqCst);
            self.obs.emit(EventKind::NodeRestart, 0, [self.topo.me as u64, 0]);
            return Ok(());
        }
        let sig = REJOIN_FLAG | rejoin_signature(self.topo.me, self.topo.n);
        let deadline = Instant::now() + timeout;
        let view = 'wait: loop {
            for ep in &self.endpoints {
                let base = hb_tx_base(ep.port.outgoing().direction());
                let _ = ep.port.spad_write(base + HB_BEAT, sig);
                let _ = ep.port.ring_peer(DB_GOSSIP);
            }
            for ep in &self.endpoints {
                if let Ok(Some((_, view))) = self.read_peer_hb(ep) {
                    if view.epoch > 0 && view.is_live(self.topo.me) {
                        break 'wait view;
                    }
                }
            }
            if Instant::now() >= deadline {
                self.rejoining.store(false, Ordering::SeqCst);
                return Err(NtbError::NotConnected);
            }
            // DEADLINE-CLIPPED: 1 ms poll tick inside a loop whose deadline
            // is checked immediately above every iteration.
            std::thread::sleep(Duration::from_millis(1));
        };
        self.membership.adopt(view);
        // Resume normal beats: withdrawing the rejoin flag tells the
        // neighbours the handshake is over.
        for ep in &self.endpoints {
            let _ = self.publish_beat(ep, 1);
        }
        self.rejoining.store(false, Ordering::SeqCst);
        self.obs.emit(EventKind::NodeRestart, self.membership.epoch(), [self.topo.me as u64, 0]);
        Ok(())
    }

    /// Record a frame dropped by the forwarding path instead of being
    /// sent on: `reason` 1 = out-of-range src/dest in the header, 2 =
    /// destination PE is dead. Counted per link and emitted as a
    /// `RouterDrop` event.
    pub(crate) fn count_router_drop(&self, ep: &LinkEndpoint, op_id: u64, dest: u64, reason: u64) {
        self.metrics.bump_link(ep.link_idx, |l| &l.router_drops);
        ep.obs.emit(EventKind::RouterDrop, op_id, [dest, reason]);
    }
}

impl std::fmt::Debug for NtbNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NtbNode").field("host", &self.topo.me).field("hosts", &self.topo.n).finish()
    }
}
