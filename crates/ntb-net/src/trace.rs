//! Protocol event tracing.
//!
//! Debugging a distributed protocol from printouts is miserable; this
//! module records per-host protocol events (frames sent/handled,
//! forwards, deliveries, barrier doorbells) with microsecond timestamps
//! and exports them in the Chrome tracing format (`chrome://tracing`,
//! Perfetto) so a whole run can be inspected on a timeline.
//!
//! Tracing is off by default and costs one relaxed atomic load per hook
//! when disabled.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A frame left this host through a transmit mailbox.
    FrameSent,
    /// A frame was decoded by a service thread.
    FrameHandled,
    /// A frame was staged and re-queued for the next hop.
    Forwarded,
    /// A put chunk was copied into the local symmetric space.
    PutDelivered,
    /// A get request was served from the local symmetric space.
    GetServed,
    /// An atomic executed at this host.
    AmoServed,
    /// A put acknowledgement returned to this origin.
    AckReceived,
    /// A barrier doorbell was rung towards a neighbour.
    BarrierSignal,
}

impl TraceKind {
    /// Chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::FrameSent => "frame_sent",
            TraceKind::FrameHandled => "frame_handled",
            TraceKind::Forwarded => "forwarded",
            TraceKind::PutDelivered => "put_delivered",
            TraceKind::GetServed => "get_served",
            TraceKind::AmoServed => "amo_served",
            TraceKind::AckReceived => "ack_received",
            TraceKind::BarrierSignal => "barrier_signal",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Microseconds since the tracer was enabled.
    pub t_us: f64,
    /// Host the event occurred on.
    pub host: usize,
    /// Event kind.
    pub kind: TraceKind,
    /// Originating host of the frame involved (if any).
    pub src: usize,
    /// Destination host of the frame involved (if any).
    pub dest: usize,
    /// Payload length in bytes (0 for control traffic).
    pub len: u32,
}

/// A per-host event recorder.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    events: Mutex<Vec<TraceRecord>>,
    /// Hard cap so a runaway trace cannot eat the heap.
    capacity: usize,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(1 << 20)
    }
}

impl Tracer {
    /// A disabled tracer holding at most `capacity` events once enabled.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            capacity,
        }
    }

    /// Start recording (idempotent). Events are timestamped relative to
    /// the tracer's creation, so multi-host records share a clock.
    pub fn enable(&self) {
        // lint: relaxed-ok(advisory fast-path flag; a racing record may miss at most the
        // enabling edge, which tests bracket with barriers anyway)
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording.
    pub fn disable(&self) {
        // lint: relaxed-ok(advisory fast-path flag, see enable)
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        // lint: relaxed-ok(advisory fast-path flag, see enable)
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record an event (no-op while disabled or at capacity).
    pub fn record(&self, host: usize, kind: TraceKind, src: usize, dest: usize, len: u32) {
        if !self.is_enabled() {
            return;
        }
        let t_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let mut ev = self.events.lock();
        if ev.len() < self.capacity {
            ev.push(TraceRecord { t_us, host, kind, src, dest, len });
        }
    }

    /// Take all recorded events (clears the buffer).
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

/// Render records as a Chrome tracing JSON array (each record an instant
/// event; `pid` is the host, so each host gets its own track).
pub fn to_chrome_json(records: &[TraceRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            r#"{{"name":"{}","ph":"i","s":"p","ts":{:.3},"pid":{},"tid":0,"args":{{"src":{},"dest":{},"len":{}}}}}"#,
            r.kind.name(),
            r.t_us,
            r.host,
            r.src,
            r.dest,
            r.len
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::new(16);
        t.record(0, TraceKind::FrameSent, 0, 1, 100);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_records_in_order() {
        let t = Tracer::new(16);
        t.enable();
        t.record(0, TraceKind::FrameSent, 0, 1, 100);
        t.record(1, TraceKind::FrameHandled, 0, 1, 100);
        let ev = t.take();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].t_us <= ev[1].t_us);
        assert_eq!(ev[0].kind, TraceKind::FrameSent);
        assert!(t.is_empty(), "take clears");
    }

    #[test]
    fn capacity_caps_recording() {
        let t = Tracer::new(3);
        t.enable();
        for i in 0..10 {
            t.record(0, TraceKind::Forwarded, 0, 1, i);
        }
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn disable_stops_recording() {
        let t = Tracer::new(16);
        t.enable();
        t.record(0, TraceKind::FrameSent, 0, 1, 1);
        t.disable();
        t.record(0, TraceKind::FrameSent, 0, 1, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn chrome_json_shape() {
        let records = vec![
            TraceRecord {
                t_us: 1.5,
                host: 0,
                kind: TraceKind::FrameSent,
                src: 0,
                dest: 2,
                len: 64,
            },
            TraceRecord {
                t_us: 2.5,
                host: 1,
                kind: TraceKind::Forwarded,
                src: 0,
                dest: 2,
                len: 64,
            },
        ];
        let json = to_chrome_json(&records);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""name":"frame_sent""#));
        assert!(json.contains(r#""name":"forwarded""#));
        assert!(json.contains(r#""pid":1"#));
        assert_eq!(json.matches("{\"name\"").count(), 2);
        // Balanced braces (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_json_is_valid() {
        assert_eq!(to_chrome_json(&[]), "[]");
    }
}
