//! The per-host service threads: the paper's Fig. 5 state machine.
//!
//! Each link endpoint runs two background threads:
//!
//! * the **service loop** waits on the doorbell, decodes the arrived
//!   transfer-info frame, consumes (or stages) the payload, acknowledges
//!   the mailbox, and dispatches: deliver to the local symmetric space,
//!   serve a Get, execute an atomic, count an ack — or hand the frame to
//!   the opposite endpoint's forwarder if this host is not the final
//!   destination;
//! * the **forwarder loop** drains the endpoint's [`ForwardQueue`](crate::forwarder::ForwardQueue),
//!   re-transmitting staged frames towards their destination (the bypass
//!   data path of paper Fig. 4).
//!
//! The split is what makes the ring deadlock-free: the service loop never
//! blocks on an outbound mailbox.
//!
//! A third per-*node* thread, the **retry sweeper**, owns end-to-end
//! recovery: it retransmits put chunks whose acknowledgement is overdue
//! (exponential backoff, abandonment into `quiet` once the budget is
//! spent) and probes `Down` endpoints back into service.
//!
//! Lossy-link hardening in the receive path: the idle tick also polls the
//! mailbox (a dropped doorbell otherwise strands a frame in the slot),
//! every staged payload is CRC-checked against the window's control slot
//! (a corrupted payload is dropped and recovered by retransmission), and
//! deliveries are deduplicated so retransmissions stay idempotent.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ntb_sim::{DoorbellWaiter, EventKind, Result};

use crate::crc::crc32;
use crate::doorbells::{DB_DMAGET, DB_DMAPUT, DB_GOSSIP, DB_SHUTDOWN, SERVICE_INTEREST};
use crate::forwarder::ForwardJob;
use crate::frame::{Frame, FrameKind};
use crate::membership::{rejoin_signature, BeatMonitor, BeatVerdict, REJOIN_FLAG};
use crate::node::NtbNode;
use crate::pending::FillOutcome;
use crate::slots::{self, SlotRead};
use crate::trace::TraceKind;

/// How long the service loop sleeps between shutdown-flag checks when the
/// doorbell stays silent. Doubles as the lost-doorbell recovery latency:
/// the idle tick polls the mailbox even without an interrupt.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// Drain every frame currently in the endpoint's receive mailbox.
fn drain_mailbox(node: &Arc<NtbNode>, idx: usize) {
    let ep = &node.endpoints[idx];
    loop {
        match ep.rx.try_recv() {
            Ok(Some(frame)) => {
                if let Err(e) = handle_frame(node, idx, frame) {
                    node.record_error(e);
                    // Free the link even on a failed frame.
                    let _ = ep.rx.ack();
                }
            }
            Ok(None) => break,
            Err(e) => {
                node.record_error(e);
                break;
            }
        }
    }
}

/// Receive loop for endpoint `idx` (paper Fig. 5:
/// `Do_DMAPutInterruptService` / `Do_DMAGetInterruptService`).
pub(crate) fn service_loop(node: &Arc<NtbNode>, idx: usize) {
    let ep = &node.endpoints[idx];
    let hb = node.config().heartbeat;
    // With the detector on, the idle tick must keep up with the beat
    // period; a frozen *port* still stalls the thread inside the gated
    // scratchpad calls, which is exactly what a hung host looks like.
    let tick = if hb.enabled { IDLE_TICK.min(hb.period) } else { IDLE_TICK };
    let mut beat = HeartbeatState::default();
    loop {
        if node.is_shutdown() {
            return;
        }
        if ep.port().is_dead() || node.is_rejoining() {
            // A crashed host's threads do nothing until `restart()`
            // revives the ports — and while the rejoin handshake runs it
            // owns the heartbeat block, so the loop stays parked.
            // DEADLINE-CLIPPED: 1 ms park tick; the loop re-checks the
            // shutdown flag and port state every iteration.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let mut gossip = false;
        // DEADLINE-CLIPPED: `tick` is the idle-poll quantum of the service
        // loop — there is no op deadline here, only the lost-interrupt net.
        match ep.port().wait_doorbell(SERVICE_INTEREST, Some(tick)) {
            DoorbellWaiter::TimedOut => {
                // Lost-interrupt safety net: a dropped doorbell leaves a
                // frame stranded in the slot (or a batch in the transmit
                // ring) with no ring to announce it; the idle poll picks
                // it up within one tick.
                drain_mailbox(node, idx);
                drain_ring(node, idx);
            }
            DoorbellWaiter::Fired(bits) => {
                if bits & (1 << DB_SHUTDOWN) != 0 {
                    return;
                }
                // Acknowledge the interrupt before processing so a ring
                // for the *next* frame (sent after our mailbox ack) is
                // not lost.
                ep.port().clear_doorbell(
                    bits & ((1 << DB_DMAPUT) | (1 << DB_DMAGET) | (1 << DB_GOSSIP)),
                );
                gossip = bits & (1 << DB_GOSSIP) != 0;
                // ISR + wakeup + the prototype's sleep-and-wait loop.
                node.model().delay(node.model().interrupt_service_delay);
                drain_mailbox(node, idx);
                drain_ring(node, idx);
            }
        }
        if hb.enabled {
            heartbeat_tick(node, idx, &mut beat, gossip);
        }
    }
}

/// Per-service-thread heartbeat state: this endpoint's own beat counter
/// plus the detector watching the one neighbour behind this link.
#[derive(Default)]
struct HeartbeatState {
    my_beat: u32,
    last: Option<Instant>,
    monitor: BeatMonitor,
}

/// One heartbeat round on endpoint `idx`: stamp our beat (when the period
/// elapsed), publish our membership view, sample the neighbour's block,
/// and react — adopt newer gossiped views, admit rejoin requests, track
/// beat stalls through the failure detector, and confirm deaths.
///
/// `gossip` forces an immediate sample (the neighbour rang
/// [`DB_GOSSIP`]), so view changes propagate ring-wide in link-hops, not
/// in heartbeat periods.
fn heartbeat_tick(node: &Arc<NtbNode>, idx: usize, st: &mut HeartbeatState, gossip: bool) {
    let cfg = node.config().heartbeat;
    let due = st.last.is_none_or(|t| t.elapsed() >= cfg.period);
    if !due && !gossip {
        return;
    }
    let ep = &node.endpoints[idx];
    if due {
        st.last = Some(Instant::now());
        st.my_beat = (st.my_beat + 1) & !REJOIN_FLAG;
        if st.my_beat == 0 {
            st.my_beat = 1; // zero means "no beat yet"; skip it on wrap
        }
        // Failures here are link faults (or our own death racing the
        // crash injector); either way the beat simply doesn't land and
        // the neighbour's detector does its job.
        let _ = node.publish_beat(ep, st.my_beat);
    }
    let _ = node.publish_view(ep, node.membership().view());
    // Credit upkeep rides the heartbeat: re-advertise the grant total
    // (deferred advertisements from congested spells catch up here once
    // the queue drains) and absorb the peer's latest advertisement.
    node.advertise_credits(ep);
    node.refresh_credits(ep);
    let Ok(Some((raw, peer_view))) = node.read_peer_hb(ep) else {
        // A torn sample or a faulted link: neither says anything about
        // the *node* behind the link. Resample next tick.
        return;
    };
    let pe = ep.neighbor();
    if raw & REJOIN_FLAG != 0 {
        // A rejoin request: the restarted neighbour publishes a
        // config-derived signature instead of a counter. Validate it
        // (scratchpad garbage must not re-admit a dead PE), purge our
        // duplicate-suppression state for the PE (a crash lost *its*
        // tables, so its fresh ids would otherwise be suppressed), and
        // gossip it back in at a new epoch.
        if (raw & !REJOIN_FLAG) == rejoin_signature(pe, node.num_hosts()) {
            if let Some(view) = node.membership().mark_rejoined(pe) {
                ep.obs.emit(EventKind::PeRejoin, view.epoch, [pe as u64, 1]);
                node.emit_membership_update(view);
                node.purge_peer_state(pe);
                node.gossip_view(view);
            }
        }
        st.monitor.clear();
        return;
    }
    // Adopt a strictly newer gossiped view (the node reacts to every
    // transition it carries), then judge the neighbour's beat.
    node.adopt_view(peer_view);
    let view = node.membership().view();
    if !view.is_live(pe) {
        // The neighbour is dead in our view. Its beat advancing again
        // without a rejoin request is a *thaw*: the host was frozen, not
        // crashed, so its state survived and no purge happens.
        if raw != 0 && matches!(st.monitor.observe(raw, &cfg), BeatVerdict::Alive) {
            if let Some(v) = node.membership().mark_alive(pe, false) {
                ep.obs.emit(EventKind::PeRejoin, v.epoch, [pe as u64, 0]);
                node.emit_membership_update(v);
                node.gossip_view(v);
            }
        }
        return;
    }
    match st.monitor.observe(raw, &cfg) {
        BeatVerdict::Alive | BeatVerdict::Missed(_) | BeatVerdict::Suspect => {}
        BeatVerdict::NewlySuspect(missed) => {
            ep.obs.emit(EventKind::PeSuspect, view.epoch, [pe as u64, u64::from(missed)]);
        }
        BeatVerdict::ConfirmDue => {
            // Death-vs-link-down distinguisher: a doorbell ring reaches a
            // dead host's register block fine (nobody answers, but the
            // write lands), while a faulted cable refuses it. Only a
            // stall the probe cannot blame on the link becomes a death.
            match ep.port().ring_peer(DB_GOSSIP) {
                Err(_) => st.monitor.defer(),
                Ok(()) => {
                    node.confirm_death(pe);
                    st.monitor.clear();
                }
            }
        }
    }
}

/// Handle one decoded frame that arrived on endpoint `idx`.
fn handle_frame(node: &Arc<NtbNode>, idx: usize, frame: Frame) -> Result<()> {
    node.count_frame();
    node.trace(TraceKind::FrameHandled, frame.src, frame.dest, frame.len);
    {
        let ep = &node.endpoints[idx];
        ep.obs.emit(
            EventKind::FrameRx,
            u64::from(frame.aux),
            [frame.kind as u64, frame.src as u64],
        );
        node.metrics.bump_link(ep.link_idx, |l| &l.frames_rx);
    }
    // Per-link-direction frames carry a 16-bit sequence number; a gap or
    // repeat means the one-slot mailbox protocol was violated. (Sequence
    // numbers are assigned per transmission, so retransmitted frames do
    // not create gaps.)
    {
        use std::sync::atomic::Ordering;
        // lint: relaxed-ok(rx_seq is single-owner: only this endpoint's service thread loads
        // and stores it; the doorbell/ScratchPad handshake orders the frame itself)
        let expected = node.endpoints[idx].rx_seq.load(Ordering::Relaxed) as u16;
        if frame.seq != expected {
            node.record_error(ntb_sim::NtbError::BadDescriptor {
                reason: "frame sequence gap on link (mailbox protocol violation)",
            });
        }
        // lint: relaxed-ok(single-owner, see the load above)
        node.endpoints[idx].rx_seq.store(u32::from(frame.seq.wrapping_add(1)), Ordering::Relaxed);
    }
    let ep = &node.endpoints[idx];
    let me = node.host_id();
    let terminating = frame.dest == me;

    // Restore the wire deadline from the control slot (the four-word
    // scratchpad encode has no room for it). Must happen before the ack:
    // acking frees the sender to overwrite the word for its next frame.
    let frame = {
        let raw = ep.port().incoming().region().read_vec(node.layout.deadline_off(), 4)?;
        // lint: unwrap-ok(read_vec returned exactly the 4 requested bytes)
        frame.with_deadline_us(u32::from_le_bytes(raw.try_into().unwrap()))
    };

    // Stage the payload out of the window (direct area if it terminates
    // here, bypass area otherwise — mirroring where the sender placed it),
    // then acknowledge the mailbox so the link is free for the next frame.
    let payload: Option<Vec<u8>> = if frame.kind.has_payload() && frame.len > 0 {
        let area = node.layout.area_offset(terminating);
        let data = ep.port().incoming().region().read_vec(area, u64::from(frame.len))?;
        // Hop-by-hop integrity: on links with an armed fault plan the
        // sender published crc32(payload) in the control slot. A mismatch
        // means the window write was corrupted in flight — drop the frame
        // (the ack below frees the slot) and let the sender's
        // retransmission recover. Clean links skip the check; their
        // posted writes cannot corrupt.
        if ep.port().outgoing().faults().is_active() {
            let crc_bytes = ep.port().incoming().region().read_vec(node.layout.crc_off(), 4)?;
            let crc_arr: [u8; 4] = crc_bytes
                .try_into()
                .map_err(|_| ntb_sim::NtbError::BadDescriptor { reason: "short CRC slot read" })?;
            let expected_crc = u32::from_le_bytes(crc_arr);
            if crc32(&data) != expected_crc {
                node.count_checksum_reject();
                node.metrics.bump_link(ep.link_idx, |l| &l.crc_rejects);
                ep.obs.emit(
                    EventKind::CrcReject,
                    u64::from(frame.aux),
                    [frame.src as u64, frame.dest as u64],
                );
                node.trace(TraceKind::FrameHandled, frame.src, frame.dest, 0);
                ep.rx.ack()?;
                // The header decoded fine, so the source is known: the
                // neighbour's consumed credit is still re-granted — a
                // corrupted put must cost retransmission, not a credit.
                if frame.kind == FrameKind::Put && frame.src == ep.neighbor() {
                    node.grant_credits(ep, 1);
                }
                return Ok(());
            }
        }
        node.model().delay(node.model().window_copy_time(u64::from(frame.len)));
        Some(data)
    } else {
        None
    };
    ep.rx.ack()?;

    // Credit bookkeeping for the first hop (DESIGN.md §14): one arrived
    // put from the direct neighbour is exactly one credit its gate
    // consumed — grant it back. Acks from the direct neighbour may carry
    // a piggybacked cumulative grant total in their (otherwise unused)
    // offset field.
    if frame.kind == FrameKind::Put && frame.src == ep.neighbor() {
        node.grant_credits(ep, 1);
    }
    if frame.kind == FrameKind::PutAck && frame.src == ep.neighbor() && frame.offset != 0 {
        ep.credit.advertise(u64::from(frame.offset));
    }
    // Deadline propagation: every hop sheds expired work — a frame whose
    // deadline passed is dead weight whether it terminates here or has
    // half the ring left to cross.
    let now = node.now_us();
    if frame.deadline_expired(now) {
        node.metrics.bump_link(ep.link_idx(), |l| &l.deadline_sheds);
        ep.obs.emit(
            EventKind::DeadlineShed,
            u64::from(frame.aux),
            [u64::from(frame.deadline_us), u64::from(now)],
        );
        return Ok(());
    }

    if !terminating {
        forward_onward(node, idx, frame, payload);
        return Ok(());
    }
    dispatch_frame(node, frame, payload)
}

/// Hand a non-terminating frame to the onward forwarder (paper Fig. 5:
/// "Destination is my neighbor? / Bypass data via transfer buffer").
/// Split horizon: never back out the arrival endpoint `idx`.
fn forward_onward(node: &Arc<NtbNode>, idx: usize, frame: Frame, payload: Option<Vec<u8>>) {
    let ep = &node.endpoints[idx];
    node.trace(TraceKind::Forwarded, frame.src, frame.dest, frame.len);
    ep.obs.emit(EventKind::FrameFwd, u64::from(frame.aux), [frame.src as u64, frame.dest as u64]);
    let out = node.forward_endpoint(frame.dest, idx);
    // The bypass-buffer staging cost only applies to payloads that will
    // actually stage through the bypass window area (the mailbox path).
    // A payload that fits the outgoing slot lane is re-published straight
    // into the ring; its real costs — slot PIO writes, the coalesced
    // doorbell, the next hop's interrupt — are charged by the ring
    // machinery itself.
    let think = match &payload {
        Some(data) if !out.txring.as_ref().is_some_and(|r| r.fits(data.len())) => {
            node.model().bypass_forward_delay
        }
        _ => Duration::ZERO,
    };
    let (aux, deadline_us) = (u64::from(frame.aux), frame.deadline_us);
    let now = node.now_us();
    let outcome = out.fwd.push(ForwardJob { frame, payload, think, attempts: 0 }, now);
    if node.note_push(out, outcome, aux, deadline_us, now) {
        node.count_forward();
    }
}

/// Consume every published slot of endpoint `idx`'s receive-side transmit
/// ring. One coalesced doorbell (or one idle tick) drains the whole
/// batch.
///
/// Every pass scans *all* slots rather than walking a cursor: a
/// corrupted record is consumed without dispatch, and a cursor would
/// wedge on the hole it leaves while later slots hold live frames.
fn drain_ring(node: &Arc<NtbNode>, idx: usize) {
    if !node.layout.has_ring() {
        return;
    }
    let ep = &node.endpoints[idx];
    let region = ep.port().incoming().region();
    // The fault plan is per-link and symmetric: the peer arms its CRC
    // exactly when our outgoing half reports an active plan.
    let check_crc = ep.port().outgoing().faults().is_active();
    loop {
        let mut progressed = false;
        for slot in 0..node.layout.ring_slots {
            match slots::read_slot(region, &node.layout, slot, check_crc) {
                Ok(SlotRead::Empty) => {}
                Ok(SlotRead::Corrupt) => {
                    // Consume without dispatch (and without a SlotDrain
                    // event — a corrupted record's sequence number cannot
                    // be trusted to pair with any publish); the sender's
                    // end-to-end retransmission recovers the frame.
                    if let Err(e) = slots::consume_slot(region, &node.layout, slot) {
                        node.record_error(e);
                        return;
                    }
                    progressed = true;
                    node.count_checksum_reject();
                    node.metrics.bump_link(ep.link_idx(), |l| &l.crc_rejects);
                    ep.obs.emit(EventKind::CrcReject, 0, [ep.neighbor() as u64, u64::from(slot)]);
                }
                Ok(SlotRead::Frame(drained)) => {
                    // The record and payload are already copied out;
                    // zeroing the header frees the slot for the sender's
                    // next wraparound before dispatch work begins.
                    if let Err(e) = slots::consume_slot(region, &node.layout, slot) {
                        node.record_error(e);
                        return;
                    }
                    progressed = true;
                    let frame = drained.frame;
                    if frame.dest >= node.num_hosts() || frame.src >= node.num_hosts() {
                        // Out-of-world routing fields (possible on an
                        // unchecked link, where no CRC arms): drop instead
                        // of panicking the router — but *visibly*, as a
                        // counted router drop, not a silent discard.
                        node.count_router_drop(ep, u64::from(frame.aux), frame.dest as u64, 1);
                        continue;
                    }
                    ep.obs.emit(
                        EventKind::SlotDrain,
                        u64::from(drained.slot_seq),
                        [ep.neighbor() as u64, u64::from(drained.slot_idx)],
                    );
                    node.count_frame();
                    node.trace(TraceKind::FrameHandled, frame.src, frame.dest, frame.len);
                    ep.obs.emit(
                        EventKind::FrameRx,
                        u64::from(frame.aux),
                        [frame.kind as u64, frame.src as u64],
                    );
                    node.metrics.bump_link(ep.link_idx(), |l| &l.frames_rx);
                    // Same first-hop credit and deadline plumbing as the
                    // scratchpad path (the ring is just a batched lane
                    // over the same cable).
                    if frame.kind == FrameKind::Put && frame.src == ep.neighbor() {
                        node.grant_credits(ep, 1);
                    }
                    if frame.kind == FrameKind::PutAck
                        && frame.src == ep.neighbor()
                        && frame.offset != 0
                    {
                        ep.credit.advertise(u64::from(frame.offset));
                    }
                    let now = node.now_us();
                    if frame.deadline_expired(now) {
                        node.metrics.bump_link(ep.link_idx(), |l| &l.deadline_sheds);
                        ep.obs.emit(
                            EventKind::DeadlineShed,
                            u64::from(frame.aux),
                            [u64::from(frame.deadline_us), u64::from(now)],
                        );
                        continue;
                    }
                    if let Some(data) = &drained.payload {
                        node.model().delay(node.model().window_copy_time(data.len() as u64));
                    }
                    let result = if frame.dest == node.host_id() {
                        dispatch_frame(node, frame, drained.payload)
                    } else {
                        // Routed slot frames are the normal case on
                        // multi-hop shapes: small chunks ride the ring on
                        // every hop, and intermediate hosts route them
                        // onward exactly like mailbox frames.
                        forward_onward(node, idx, frame, drained.payload);
                        Ok(())
                    };
                    if let Err(e) = result {
                        node.record_error(e);
                    }
                }
                Err(e) => {
                    node.record_error(e);
                    return;
                }
            }
        }
        if !progressed {
            break;
        }
    }
}

/// Terminating per-kind frame logic, shared by the scratchpad mailbox
/// path ([`handle_frame`]) and the transmit-ring path ([`drain_ring`]).
fn dispatch_frame(node: &Arc<NtbNode>, frame: Frame, payload: Option<Vec<u8>>) -> Result<()> {
    let me = node.host_id();
    match frame.kind {
        FrameKind::Put => {
            // Duplicate suppression: a retransmitted chunk whose first
            // copy already landed must not be re-applied (the heap may
            // have been overwritten since), but is re-acknowledged —
            // the first ack evidently went missing. Put id 0 marks
            // untracked traffic and bypasses dedup.
            let fresh = frame.aux == 0 || node.seen_puts.lock().insert(frame.src, frame.aux);
            if fresh {
                let data = payload.unwrap_or_default();
                node.deliver()?.deliver_put(u64::from(frame.offset), &data)?;
                node.count_put_delivered();
                node.obs.emit(
                    EventKind::PutDeliver,
                    u64::from(frame.aux),
                    [frame.src as u64, u64::from(frame.offset)],
                );
                node.trace(TraceKind::PutDelivered, frame.src, frame.dest, frame.len);
            } else {
                node.count_duplicate();
                node.obs.emit(
                    EventKind::DupSuppressed,
                    u64::from(frame.aux),
                    [frame.src as u64, 0],
                );
            }
            // Route the delivery acknowledgement back to the origin —
            // unless the fault plan deliberately breaks the ack protocol
            // (the knob exists so the invariant checker can be shown a
            // genuinely ack-less put in negative tests).
            let out = node.endpoint_for(frame.src);
            if !out.port().outgoing().faults().should_drop_ack(out.port().outgoing().direction()) {
                // The ack inherits the put's deadline: an op that missed
                // its time budget must not look complete at the origin.
                let mut ack =
                    Frame::put_ack(me, frame.src, 1, frame.aux).with_deadline_us(frame.deadline_us);
                // Single-hop credit piggyback: when the ack's first hop
                // *is* the origin, carry this side's cumulative grant
                // total in the (otherwise unused) offset field — grants
                // then ride the ack stream instead of waiting for the
                // next heartbeat advertisement.
                if out.neighbor() == frame.src && !out.fwd.congested() {
                    ack.offset = u32::try_from(out.ledger.total()).unwrap_or(u32::MAX);
                }
                let now = node.now_us();
                let outcome = out.fwd.push(
                    ForwardJob { frame: ack, payload: None, think: Duration::ZERO, attempts: 0 },
                    now,
                );
                let _ = node.note_push(out, outcome, u64::from(frame.aux), frame.deadline_us, now);
            }
        }
        FrameKind::PutAck => {
            node.obs.emit(EventKind::AckRx, u64::from(frame.aux), [frame.src as u64, 0]);
            if node.unacked.ack(frame.aux) {
                node.count_ack();
                node.obs.emit(EventKind::PutAcked, u64::from(frame.aux), [frame.src as u64, 0]);
                node.trace(TraceKind::AckReceived, frame.src, frame.dest, 0);
            } else {
                // The put was already retired by an earlier copy of this
                // ack (retransmission raced the acknowledgement).
                node.count_duplicate();
                node.obs.emit(
                    EventKind::DupSuppressed,
                    u64::from(frame.aux),
                    [frame.src as u64, 1],
                );
            }
        }
        FrameKind::GetReq => {
            let mut data = vec![0u8; frame.len as usize];
            node.deliver()?.read_for_get(u64::from(frame.offset), &mut data)?;
            node.model().delay(node.model().local_copy_time(u64::from(frame.len)));
            node.count_get_served();
            node.trace(TraceKind::GetServed, frame.src, frame.dest, frame.len);
            if data.is_empty() {
                // A zero-length get completes at the requester without a
                // response (its pending entry was born complete).
                return Ok(());
            }
            let chunk = node.config().get_resp_chunk as usize;
            let mut off = 0usize;
            while off < data.len() {
                let n = chunk.min(data.len() - off);
                let resp =
                    Frame::get_resp(me, frame.src, n as u32, off as u32, frame.aux, frame.mode)
                        .with_deadline_us(frame.deadline_us);
                let out = node.endpoint_for(frame.src);
                let now = node.now_us();
                // The per-request service think is paid once, on the
                // first response chunk; the rest of the stream is pure
                // descriptor work. This is what makes the pipelined get
                // path amortize the responder: a window of sub-requests
                // charges one think per sub-request, not per chunk.
                let think = if off == 0 {
                    node.model().get_response_service_delay
                } else {
                    std::time::Duration::ZERO
                };
                let outcome = out.fwd.push(
                    ForwardJob {
                        frame: resp,
                        payload: Some(data[off..off + n].to_vec()),
                        think,
                        attempts: 0,
                    },
                    now,
                );
                let _ = node.note_push(out, outcome, u64::from(frame.aux), frame.deadline_us, now);
                off += n;
            }
        }
        FrameKind::GetResp => {
            let data = payload.unwrap_or_default();
            // Emission goes through the fill observer so the chunk event
            // is logged before the woken requester can log completion.
            let outcome =
                node.pending.fill_with(frame.aux, u64::from(frame.offset), &data, |outcome| {
                    match outcome {
                        FillOutcome::Filled => {
                            node.obs.emit(
                                EventKind::GetChunkRx,
                                u64::from(frame.aux),
                                [u64::from(frame.offset), data.len() as u64],
                            );
                        }
                        FillOutcome::Duplicate | FillOutcome::Stale => {
                            node.obs.emit(
                                EventKind::DupSuppressed,
                                u64::from(frame.aux),
                                [u64::from(frame.offset), 2],
                            );
                        }
                    }
                })?;
            if !matches!(outcome, FillOutcome::Filled) {
                node.count_duplicate();
            }
        }
        FrameKind::AmoReq => {
            // Idempotency: a retransmitted AMO request must not execute
            // twice; the cached old value of the first execution is
            // re-served. The lookup is bound to a plain value first: an
            // `if let` scrutinee would keep the cache guard alive for the
            // whole expression (2021 temporary-scope rules), pinning the
            // net-dedup lock across the forward below.
            let cached = node.amo_cache.lock().lookup(frame.src, frame.aux);
            if let Some(old) = cached {
                node.count_duplicate();
                node.obs.emit(EventKind::AmoReplay, u64::from(frame.aux), [frame.src as u64, 0]);
                let resp =
                    Frame::amo_resp(me, frame.src, frame.aux).with_deadline_us(frame.deadline_us);
                let out = node.endpoint_for(frame.src);
                let now = node.now_us();
                let outcome = out.fwd.push(
                    ForwardJob {
                        frame: resp,
                        payload: Some(old.to_le_bytes().to_vec()),
                        think: Duration::ZERO,
                        attempts: 0,
                    },
                    now,
                );
                let _ = node.note_push(out, outcome, u64::from(frame.aux), frame.deadline_us, now);
                return Ok(());
            }
            let p = payload.unwrap_or_default();
            if p.len() < 17 {
                return Err(ntb_sim::NtbError::BadDescriptor { reason: "short AMO payload" });
            }
            let operand =
                u64::from_le_bytes(p[0..8].try_into().map_err(|_| {
                    ntb_sim::NtbError::BadDescriptor { reason: "short AMO payload" }
                })?);
            let compare =
                u64::from_le_bytes(p[8..16].try_into().map_err(|_| {
                    ntb_sim::NtbError::BadDescriptor { reason: "short AMO payload" }
                })?);
            let width = p[16] as usize;
            let op = frame
                .amo_op
                .ok_or(ntb_sim::NtbError::BadDescriptor { reason: "AMO frame without opcode" })?;
            let old = node.deliver()?.deliver_atomic(
                op,
                u64::from(frame.offset),
                width,
                operand,
                compare,
            )?;
            node.amo_cache.lock().insert(frame.src, frame.aux, old);
            node.count_amo();
            node.obs.emit(EventKind::AmoApply, u64::from(frame.aux), [frame.src as u64, old]);
            node.trace(TraceKind::AmoServed, frame.src, frame.dest, frame.len);
            let resp =
                Frame::amo_resp(me, frame.src, frame.aux).with_deadline_us(frame.deadline_us);
            let out = node.endpoint_for(frame.src);
            let now = node.now_us();
            let outcome = out.fwd.push(
                ForwardJob {
                    frame: resp,
                    payload: Some(old.to_le_bytes().to_vec()),
                    think: Duration::ZERO,
                    attempts: 0,
                },
                now,
            );
            let _ = node.note_push(out, outcome, u64::from(frame.aux), frame.deadline_us, now);
        }
        FrameKind::AmoResp => {
            let data = payload.unwrap_or_default();
            if data.len() < 8 {
                return Err(ntb_sim::NtbError::BadDescriptor { reason: "short AMO response" });
            }
            match node.pending.fill(frame.aux, 0, &data[0..8])? {
                FillOutcome::Filled => {}
                FillOutcome::Duplicate | FillOutcome::Stale => node.count_duplicate(),
            }
        }
    }
    Ok(())
}

/// Transmit loop for endpoint `idx`: drains the forward queue. A
/// transiently failed transmission is re-dispatched (possibly through the
/// other endpoint once rerouting kicks in) up to the retry budget; after
/// that the frame is dropped and the origin's end-to-end retransmission
/// recovers.
pub(crate) fn forwarder_loop(node: &Arc<NtbNode>, idx: usize) {
    let ep = &node.endpoints[idx];
    let policy = node.config().retry;
    while let Some(mut job) = ep.fwd.pop() {
        if ep.port().is_dead() {
            // This host crashed: its queued traffic dies with it. The
            // senders recover end-to-end once the ring heals around us.
            continue;
        }
        if !node.membership().is_live(job.frame.dest) {
            // The destination PE is confirmed dead — transmitting at it
            // only burns the retry budget of a frame nobody will ack.
            node.count_router_drop(ep, u64::from(job.frame.aux), job.frame.dest as u64, 2);
            continue;
        }
        node.model().delay(job.think);
        // Transmit-time deadline check — sampled after the think delay
        // and immediately before the send, so the pair certifies
        // invariant 10 (no hop transmits an already-expired frame).
        let now = node.now_us();
        if job.frame.deadline_expired(now) {
            node.metrics.bump_link(ep.link_idx, |l| &l.deadline_sheds);
            ep.obs.emit(
                EventKind::DeadlineShed,
                u64::from(job.frame.aux),
                [u64::from(job.frame.deadline_us), u64::from(now)],
            );
            continue;
        }
        let terminating = ep.neighbor() == job.frame.dest;
        let mode = job.frame.mode;
        // Data frames that fit a slot lane (put chunks at any hop, the
        // returning acknowledgement stream, and get response chunks) ride
        // the coalescing ring: back-to-back jobs batch behind one
        // doorbell, so a round of small routed frames crossing the same
        // link shares one interrupt instead of serializing one mailbox
        // handshake each.
        let ring = ep.txring.as_ref().filter(|r| {
            matches!(job.frame.kind, FrameKind::Put | FrameKind::PutAck | FrameKind::GetResp)
                && r.fits(job.payload.as_ref().map_or(0, |p| p.len()))
        });
        let result = match ring {
            Some(ring) => ring.publish(job.frame, job.payload.as_deref()),
            None => {
                let area = node.layout.area_offset(terminating);
                match &job.payload {
                    Some(data) => ep.tx.send(job.frame, |port| {
                        node.push_payload(port, area, data, mode)?;
                        node.write_deadline_word(ep, job.frame.deadline_us)
                    }),
                    None => ep.tx.send(job.frame, |_port| {
                        node.write_deadline_word(ep, job.frame.deadline_us)
                    }),
                }
            }
        };
        node.note_send_result(ep, &result);
        if result.is_ok() {
            node.metrics.bump_link(ep.link_idx, |l| &l.frames_tx);
            if job.frame.deadline_us != 0 {
                ep.obs.emit(
                    EventKind::DeadlineTx,
                    u64::from(job.frame.aux),
                    [u64::from(job.frame.deadline_us), u64::from(now)],
                );
            }
        }
        // Ring the coalesced doorbell once the queue goes momentarily
        // idle; while more jobs are waiting, the batch keeps growing (the
        // ring auto-flushes at its batch cap). A flush failure is not
        // re-queued: staged puts are recovered by their origin's
        // retransmission and a lost ack is re-served on the duplicate.
        if ep.fwd.depth() == 0 {
            if let Some(ring) = &ep.txring {
                if ring.staged() > 0 {
                    node.flush_ring(ep);
                }
            }
        }
        if let Err(e) = result {
            if node.is_shutdown() {
                return;
            }
            let transient = e.is_transient() || matches!(e, ntb_sim::NtbError::LinkFailed { .. });
            if transient && job.attempts < policy.max_retries {
                // Retry budget: retries are the classic congestion
                // amplifier, so each link meters them through a token
                // bucket. A dry bucket sheds the retransmission — typed
                // and counted, never silent — and the origin's end-to-end
                // recovery (or the op's deadline) takes it from here.
                if !ep.retry_budget.try_spend() {
                    node.metrics.bump_link(ep.link_idx, |l| &l.retry_sheds);
                    ep.obs.emit(
                        EventKind::RetryShed,
                        u64::from(job.frame.aux),
                        [u64::from(job.attempts + 1), 0],
                    );
                    continue;
                }
                job.attempts += 1;
                job.think = policy.backoff(job.attempts - 1).max(Duration::from_millis(1));
                node.count_retransmit();
                node.metrics.bump_link(ep.link_idx, |l| &l.retransmits);
                ep.obs.emit(
                    EventKind::Retransmit,
                    u64::from(job.frame.aux),
                    [u64::from(job.attempts), 0],
                );
                // Re-dispatch through whatever endpoint routing now
                // prefers — the health tracker may have failed this one
                // over in the meantime.
                let (aux, deadline_us) = (u64::from(job.frame.aux), job.frame.deadline_us);
                let out = node.endpoint_for(job.frame.dest);
                let renow = node.now_us();
                let outcome = out.fwd.push(job, renow);
                let _ = node.note_push(out, outcome, aux, deadline_us, renow);
            } else {
                node.record_error(e);
            }
        }
    }
}

/// Per-node recovery thread: retransmits overdue put chunks (bounded by
/// the retry policy, with exponential backoff) and probes `Down`
/// endpoints at the configured interval so rerouted traffic can return
/// to the short path once a link recovers.
pub(crate) fn retry_sweeper_loop(node: &Arc<NtbNode>) {
    let policy = node.config().retry;
    let tick = (policy.ack_timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    let mut last_probe = Instant::now();
    loop {
        // DEADLINE-CLIPPED: sweeper cadence (ack_timeout / 4); shutdown is
        // checked right after every tick.
        std::thread::sleep(tick);
        if node.is_shutdown() {
            return;
        }
        if node.is_rejoining() || node.endpoints.iter().any(|e| e.port().is_dead()) {
            // Parked while the host is crashed or mid-rejoin; `restart()`
            // voids the retry ledger this loop would otherwise sweep.
            continue;
        }
        let now = Instant::now();
        for (id, put) in node.unacked.overdue(now) {
            // Operation deadline expired: abandon typed. The next quiet
            // reports `DeadlineExceeded` instead of `LinkFailed` — the
            // caller set a time budget and it was missed.
            let now_us = node.now_us();
            if put.deadline_us != 0 && now_us > put.deadline_us {
                if node.unacked.fail_expired(id) {
                    let ep = node.endpoint_for(put.dest);
                    node.metrics.bump_link(ep.link_idx(), |l| &l.deadline_sheds);
                    node.obs.emit(
                        EventKind::DeadlineShed,
                        u64::from(id),
                        [u64::from(put.deadline_us), u64::from(now_us)],
                    );
                    // The shed *is* this put's one resolution — record it
                    // for invariant 1 (put-resolution) like every other
                    // abandon path.
                    node.obs.emit(
                        EventKind::PutAbandon,
                        u64::from(id),
                        [u64::from(put.attempts), put.dest as u64],
                    );
                }
                continue;
            }
            if put.attempts > policy.max_retries {
                // Budget spent: abandon. The failure surfaces as
                // `LinkFailed` from the next `quiet`. An ack may have
                // landed since the overdue snapshot — then fail() is a
                // no-op and the put already resolved as acked, so no
                // abandon is recorded or emitted.
                if node.unacked.fail(id) {
                    node.obs.emit(
                        EventKind::PutAbandon,
                        u64::from(id),
                        [u64::from(put.attempts), put.dest as u64],
                    );
                }
                continue;
            }
            let next = Instant::now() + policy.ack_timeout + policy.backoff(put.attempts - 1);
            if node.unacked.note_attempt(id, next).is_none() {
                continue; // acked while we looked
            }
            // Retry budget: when the link's bucket is dry the wire
            // transmission is shed, but the attempt above still counted —
            // abandonment stays bounded and quiet still terminates even
            // on a link whose budget never refills.
            let ep = node.endpoint_for(put.dest);
            if !ep.retry_budget.try_spend() {
                node.metrics.bump_link(ep.link_idx(), |l| &l.retry_sheds);
                ep.obs.emit(EventKind::RetryShed, u64::from(id), [u64::from(put.attempts), 0]);
                continue;
            }
            node.count_retransmit();
            node.obs.emit(EventKind::Retransmit, u64::from(id), [u64::from(put.attempts), 0]);
            // Retransmissions flush immediately: the chunk is already
            // overdue, so trading the doorbell batching for latency is
            // the right call.
            let _ = node.transmit_put(
                id,
                put.dest,
                put.heap_offset,
                &put.data,
                put.mode,
                true,
                false,
                put.deadline_us,
            );
        }
        if now.duration_since(last_probe) >= policy.probe_interval {
            last_probe = now;
            node.probe_down_links();
        }
    }
}
