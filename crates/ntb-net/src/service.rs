//! The per-host service threads: the paper's Fig. 5 state machine.
//!
//! Each link endpoint runs two background threads:
//!
//! * the **service loop** waits on the doorbell, decodes the arrived
//!   transfer-info frame, consumes (or stages) the payload, acknowledges
//!   the mailbox, and dispatches: deliver to the local symmetric space,
//!   serve a Get, execute an atomic, count an ack — or hand the frame to
//!   the opposite endpoint's forwarder if this host is not the final
//!   destination;
//! * the **forwarder loop** drains the endpoint's [`ForwardQueue`](crate::forwarder::ForwardQueue),
//!   re-transmitting staged frames towards their destination (the bypass
//!   data path of paper Fig. 4).
//!
//! The split is what makes the ring deadlock-free: the service loop never
//! blocks on an outbound mailbox.

use std::sync::Arc;
use std::time::Duration;

use ntb_sim::{DoorbellWaiter, Result};

use crate::doorbells::{DB_DMAGET, DB_DMAPUT, DB_SHUTDOWN, SERVICE_INTEREST};
use crate::forwarder::ForwardJob;
use crate::frame::{Frame, FrameKind};
use crate::node::NtbNode;
use crate::trace::TraceKind;

/// How long the service loop sleeps between shutdown-flag checks when the
/// doorbell stays silent.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// Receive loop for endpoint `idx` (paper Fig. 5:
/// `Do_DMAPutInterruptService` / `Do_DMAGetInterruptService`).
pub(crate) fn service_loop(node: &Arc<NtbNode>, idx: usize) {
    let ep = &node.endpoints[idx];
    loop {
        if node.is_shutdown() {
            return;
        }
        match ep.port().wait_doorbell(SERVICE_INTEREST, Some(IDLE_TICK)) {
            DoorbellWaiter::TimedOut => continue,
            DoorbellWaiter::Fired(bits) => {
                if bits & (1 << DB_SHUTDOWN) != 0 {
                    return;
                }
                // Acknowledge the interrupt before processing so a ring
                // for the *next* frame (sent after our mailbox ack) is
                // not lost.
                ep.port().doorbell().clear(bits & ((1 << DB_DMAPUT) | (1 << DB_DMAGET)));
                // ISR + wakeup + the prototype's sleep-and-wait loop.
                node.model().delay(node.model().interrupt_service_delay);
                loop {
                    match ep.rx.try_recv() {
                        Ok(Some(frame)) => {
                            if let Err(e) = handle_frame(node, idx, frame) {
                                node.record_error(e);
                                // Free the link even on a failed frame.
                                let _ = ep.rx.ack();
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            node.record_error(e);
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Handle one decoded frame that arrived on endpoint `idx`.
fn handle_frame(node: &Arc<NtbNode>, idx: usize, frame: Frame) -> Result<()> {
    node.count_frame();
    node.trace(TraceKind::FrameHandled, frame.src, frame.dest, frame.len);
    // Per-link-direction frames carry a 16-bit sequence number; a gap or
    // repeat means the one-slot mailbox protocol was violated.
    {
        use std::sync::atomic::Ordering;
        let expected = node.endpoints[idx].rx_seq.load(Ordering::Relaxed) as u16;
        if frame.seq != expected {
            node.record_error(ntb_sim::NtbError::BadDescriptor {
                reason: "frame sequence gap on link (mailbox protocol violation)",
            });
        }
        node.endpoints[idx]
            .rx_seq
            .store(u32::from(frame.seq.wrapping_add(1)), Ordering::Relaxed);
    }
    let ep = &node.endpoints[idx];
    let me = node.host_id();
    let terminating = frame.dest == me;

    // Stage the payload out of the window (direct area if it terminates
    // here, bypass area otherwise — mirroring where the sender placed it),
    // then acknowledge the mailbox so the link is free for the next frame.
    let payload: Option<Vec<u8>> = if frame.kind.has_payload() && frame.len > 0 {
        let area = node.layout.area_offset(terminating);
        let data = ep.port().incoming().region().read_vec(area, u64::from(frame.len))?;
        node.model().delay(node.model().window_copy_time(u64::from(frame.len)));
        Some(data)
    } else {
        None
    };
    ep.rx.ack()?;

    if !terminating {
        // Paper Fig. 5: "Destination is my neighbor? / Bypass data via
        // transfer buffer" — either way the frame continues around the
        // ring through the forwarder.
        let think = if payload.is_some() {
            node.model().bypass_forward_delay
        } else {
            Duration::ZERO
        };
        node.trace(TraceKind::Forwarded, frame.src, frame.dest, frame.len);
        node.endpoint_for(frame.dest).fwd.push(ForwardJob { frame, payload, think });
        node.count_forward();
        return Ok(());
    }

    match frame.kind {
        FrameKind::Put => {
            let data = payload.unwrap_or_default();
            node.deliver()?.deliver_put(u64::from(frame.offset), &data)?;
            node.count_put_delivered();
            node.trace(TraceKind::PutDelivered, frame.src, frame.dest, frame.len);
            // Route the delivery acknowledgement back to the origin.
            let ack = Frame::put_ack(me, frame.src, 1);
            node.endpoint_for(frame.src).fwd.push(ForwardJob {
                frame: ack,
                payload: None,
                think: Duration::ZERO,
            });
        }
        FrameKind::PutAck => {
            node.outstanding.ack(u64::from(frame.len));
            node.count_ack();
            node.trace(TraceKind::AckReceived, frame.src, frame.dest, 0);
        }
        FrameKind::GetReq => {
            let mut data = vec![0u8; frame.len as usize];
            node.deliver()?.read_for_get(u64::from(frame.offset), &mut data)?;
            node.model().delay(node.model().local_copy_time(u64::from(frame.len)));
            node.count_get_served();
            node.trace(TraceKind::GetServed, frame.src, frame.dest, frame.len);
            if data.is_empty() {
                // A zero-length get completes at the requester without a
                // response (its pending entry was born complete).
                return Ok(());
            }
            let chunk = node.config().get_resp_chunk as usize;
            let mut off = 0usize;
            while off < data.len() {
                let n = chunk.min(data.len() - off);
                let resp =
                    Frame::get_resp(me, frame.src, n as u32, off as u32, frame.aux, frame.mode);
                node.endpoint_for(frame.src).fwd.push(ForwardJob {
                    frame: resp,
                    payload: Some(data[off..off + n].to_vec()),
                    // The serving host's thread paces response chunks
                    // through its sleep loop.
                    think: node.model().get_response_service_delay,
                });
                off += n;
            }
        }
        FrameKind::GetResp => {
            let data = payload.unwrap_or_default();
            node.pending.fill(frame.aux, u64::from(frame.offset), &data)?;
        }
        FrameKind::AmoReq => {
            let p = payload.unwrap_or_default();
            if p.len() < 17 {
                return Err(ntb_sim::NtbError::BadDescriptor { reason: "short AMO payload" });
            }
            let operand = u64::from_le_bytes(p[0..8].try_into().expect("8 bytes"));
            let compare = u64::from_le_bytes(p[8..16].try_into().expect("8 bytes"));
            let width = p[16] as usize;
            let op = frame
                .amo_op
                .ok_or(ntb_sim::NtbError::BadDescriptor { reason: "AMO frame without opcode" })?;
            let old =
                node.deliver()?.deliver_atomic(op, u64::from(frame.offset), width, operand, compare)?;
            node.count_amo();
            node.trace(TraceKind::AmoServed, frame.src, frame.dest, frame.len);
            let resp = Frame::amo_resp(me, frame.src, frame.aux);
            node.endpoint_for(frame.src).fwd.push(ForwardJob {
                frame: resp,
                payload: Some(old.to_le_bytes().to_vec()),
                think: Duration::ZERO,
            });
        }
        FrameKind::AmoResp => {
            let data = payload.unwrap_or_default();
            if data.len() < 8 {
                return Err(ntb_sim::NtbError::BadDescriptor { reason: "short AMO response" });
            }
            node.pending.fill(frame.aux, 0, &data[0..8])?;
        }
    }
    Ok(())
}

/// Transmit loop for endpoint `idx`: drains the forward queue.
pub(crate) fn forwarder_loop(node: &Arc<NtbNode>, idx: usize) {
    let ep = &node.endpoints[idx];
    while let Some(job) = ep.fwd.pop() {
        node.model().delay(job.think);
        let terminating = ep.neighbor() == job.frame.dest;
        let area = node.layout.area_offset(terminating);
        let mode = job.frame.mode;
        let result = match &job.payload {
            Some(data) => ep.tx.send(job.frame, |port| node.push_payload(port, area, data, mode)),
            None => ep.tx.send_control(job.frame),
        };
        if let Err(e) = result {
            if node.is_shutdown() {
                return;
            }
            node.record_error(e);
        }
    }
}
