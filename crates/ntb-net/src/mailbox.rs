//! One-slot scratchpad mailboxes: frame hand-off over a link.
//!
//! Each link direction owns four of the link's eight scratchpad registers.
//! The sender waits until the header register reads zero (the previous
//! frame was consumed), places the payload in the window, writes the body
//! registers, writes the header **last**, and rings the kind's doorbell.
//! The receiver decodes the frame, finishes with the payload, and zeroes
//! the header as the acknowledgement.
//!
//! The initiator side of a link (the port whose outgoing direction is
//! `Upstream`) transmits in registers 0–3; the responder transmits in 4–7,
//! so the two directions never collide.
//!
//! Lossy-link recovery: the slot-free wait is *bounded*. A doorbell the
//! fault model swallowed leaves the receiver asleep and the slot full
//! forever; after [`TxMailbox::set_retry`]'s timeout the sender re-rings
//! the doorbell of the frame still occupying the slot (a second interrupt
//! for the same frame is harmless — the service loop drains by polling)
//! and eventually gives up with [`NtbError::LinkFailed`] so no send can
//! block unboundedly.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntb_sim::{EventKind, LinkDirection, NtbError, NtbPort, Result};
use parking_lot::Mutex;

use crate::frame::Frame;

/// Sentinel for "no doorbell rung yet" in `last_doorbell`.
const NO_DOORBELL: u32 = u32::MAX;

/// Scratchpad base register for a port's transmit mailbox.
fn tx_base(port: &NtbPort) -> usize {
    match port.outgoing().direction() {
        LinkDirection::Upstream => 0,
        LinkDirection::Downstream => 4,
    }
}

/// The sending side of one link direction's mailbox. Serializes local
/// senders (the PE thread and the forwarder thread contend for the same
/// link) with an internal lock.
pub struct TxMailbox {
    port: Arc<NtbPort>,
    base: usize,
    seq: Mutex<u16>,
    abort: Option<Arc<std::sync::atomic::AtomicBool>>,
    /// Doorbell bit of the most recent published frame (`NO_DOORBELL`
    /// before the first send); re-rung when the slot stays full past the
    /// timeout.
    last_doorbell: AtomicU32,
    /// `(timeout, max re-rings)` once [`Self::set_retry`] installs them;
    /// `None` keeps the historical unbounded wait (unit tests).
    retry: Option<(Duration, u32)>,
    rerings: AtomicU64,
}

impl TxMailbox {
    /// Transmit mailbox of `port`.
    pub fn new(port: Arc<NtbPort>) -> Self {
        let base = tx_base(&port);
        TxMailbox {
            port,
            base,
            seq: Mutex::new(0),
            abort: None,
            last_doorbell: AtomicU32::new(NO_DOORBELL),
            retry: None,
            rerings: AtomicU64::new(0),
        }
    }

    /// Install an abort flag: a send blocked on a full slot fails with
    /// `DmaShutdown` once the flag is raised (network teardown).
    pub fn set_abort(&mut self, flag: Arc<std::sync::atomic::AtomicBool>) {
        self.abort = Some(flag);
    }

    /// Bound the slot-free wait: after `timeout` the last doorbell is
    /// re-rung (recovering a dropped interrupt), and after `max_rerings`
    /// such rounds the send fails with [`NtbError::LinkFailed`].
    pub fn set_retry(&mut self, timeout: Duration, max_rerings: u32) {
        self.retry = Some((timeout, max_rerings));
    }

    /// The port this mailbox transmits through.
    pub fn port(&self) -> &Arc<NtbPort> {
        &self.port
    }

    /// Doorbell re-rings performed to recover dropped interrupts.
    pub fn rerings(&self) -> u64 {
        // lint: relaxed-ok(monotonic diagnostic counter)
        self.rerings.load(Ordering::Relaxed)
    }

    fn wait_empty(&self) -> Result<()> {
        let mut spins: u32 = 0;
        let mut round_start = Instant::now();
        let mut rounds: u32 = 0;
        while self.port.spad_read(self.base)? != 0 {
            spins = spins.wrapping_add(1);
            std::thread::yield_now();
            if spins.is_multiple_of(64) {
                if self.abort.as_ref().is_some_and(|f| f.load(std::sync::atomic::Ordering::SeqCst))
                {
                    return Err(NtbError::DmaShutdown);
                }
                if let Some((timeout, max_rerings)) = self.retry {
                    if round_start.elapsed() >= timeout {
                        if rounds >= max_rerings {
                            // RESOLVES(none): mailbox send has no pending entry —
                            // the frame never left this PE; caller owns retries.
                            return Err(NtbError::LinkFailed { attempts: rounds + 1 });
                        }
                        rounds += 1;
                        round_start = Instant::now();
                        // The peer likely never saw the interrupt for the
                        // frame occupying the slot; ring it again. A down
                        // link rejects the ring — keep waiting, the retry
                        // budget bounds us.
                        // lint: relaxed-ok(last_doorbell is only touched by the sender
                        // thread under the seq lock; single-owner state)
                        let bit = self.last_doorbell.load(Ordering::Relaxed);
                        if bit != NO_DOORBELL && self.port.ring_peer(bit).is_ok() {
                            // lint: relaxed-ok(monotonic diagnostic counter)
                            self.rerings.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        Ok(())
    }

    /// Send `frame`. `push_payload` runs after the slot is free and before
    /// the frame is published — it must place the payload bytes in the
    /// peer's window through `port`.
    pub fn send(
        &self,
        mut frame: Frame,
        push_payload: impl FnOnce(&NtbPort) -> Result<()>,
    ) -> Result<()> {
        crate::lockdep_track!(&crate::lockdep::NET_MAILBOX);
        let mut seq = self.seq.lock();
        self.wait_empty()?;
        push_payload(&self.port)?;
        frame.seq = *seq;
        *seq = seq.wrapping_add(1);
        let words = frame.encode();
        self.port.spad_write(self.base + 1, words[1])?;
        self.port.spad_write(self.base + 2, words[2])?;
        self.port.spad_write(self.base + 3, words[3])?;
        // Header last: publishing the frame releases the body registers
        // and the payload (PCIe posted-write ordering).
        self.port.spad_write(self.base, words[0])?;
        // lint: relaxed-ok(single-owner: written by the sender thread under the seq lock,
        // read back only by the same thread in wait_empty)
        self.last_doorbell.store(frame.kind.doorbell(), Ordering::Relaxed);
        self.port.ring_peer(frame.kind.doorbell())?;
        // Informational only: emitted before the caller's health-tracker
        // bookkeeping, so the checker's down-link invariant is keyed on
        // `PutChunkTx` (emitted after), not on this event.
        self.port.obs().emit(
            EventKind::FrameTx,
            u64::from(frame.aux),
            [frame.kind as u64, frame.dest as u64],
        );
        Ok(())
    }

    /// Send a payload-free frame.
    pub fn send_control(&self, frame: Frame) -> Result<()> {
        self.send(frame, |_| Ok(()))
    }
}

/// The receiving side of one link direction's mailbox.
pub struct RxMailbox {
    port: Arc<NtbPort>,
    base: usize,
}

impl RxMailbox {
    /// Receive mailbox of `port` (reads the *peer's* transmit registers).
    pub fn new(port: Arc<NtbPort>) -> Self {
        // Our receive registers are the peer's transmit registers: the
        // other half of the bank.
        let base = match tx_base(&port) {
            0 => 4,
            _ => 0,
        };
        RxMailbox { port, base }
    }

    /// The port this mailbox receives on.
    pub fn port(&self) -> &Arc<NtbPort> {
        &self.port
    }

    /// Poll for a frame; `None` if the slot is empty (or holds garbage,
    /// which is dropped and acked so the link does not wedge).
    pub fn try_recv(&self) -> Result<Option<Frame>> {
        let header = self.port.spad_read(self.base)?;
        if header == 0 {
            return Ok(None);
        }
        let words = [
            header,
            self.port.spad_read(self.base + 1)?,
            self.port.spad_read(self.base + 2)?,
            self.port.spad_read(self.base + 3)?,
        ];
        match Frame::decode(words) {
            Some(frame) => Ok(Some(frame)),
            None => {
                // Malformed header: acknowledge to free the link.
                self.ack()?;
                Ok(None)
            }
        }
    }

    /// Acknowledge the current frame: frees the sender's slot. Call only
    /// after the payload has been fully consumed from the window.
    pub fn ack(&self) -> Result<()> {
        self.port.spad_write(self.base, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntb_sim::{connect_ports, HostMemory, PortConfig, TimeModel};

    fn pair() -> (Arc<NtbPort>, Arc<NtbPort>) {
        let ma = HostMemory::new(0, 64 << 20);
        let mb = HostMemory::new(1, 64 << 20);
        connect_ports(
            PortConfig::new(0, 1),
            PortConfig::new(1, 0),
            &ma,
            &mb,
            Arc::new(TimeModel::zero()),
        )
        .unwrap()
    }

    #[test]
    fn frame_crosses_link() {
        let (a, b) = pair();
        let tx = TxMailbox::new(a);
        let rx = RxMailbox::new(b);
        assert!(rx.try_recv().unwrap().is_none());
        tx.send_control(Frame::put_ack(0, 1, 2, 0)).unwrap();
        let f = rx.try_recv().unwrap().unwrap();
        assert_eq!(f.kind, crate::frame::FrameKind::PutAck);
        assert_eq!(f.src, 0);
        assert_eq!(f.dest, 1);
        assert_eq!(f.len, 2);
    }

    #[test]
    fn payload_lands_before_frame_visible() {
        let (a, b) = pair();
        let tx = TxMailbox::new(Arc::clone(&a));
        let rx = RxMailbox::new(Arc::clone(&b));
        tx.send(Frame::put(0, 1, 5, 0, 1, ntb_sim::TransferMode::Memcpy), |port| {
            port.pio_write(0, b"hello")
        })
        .unwrap();
        let f = rx.try_recv().unwrap().unwrap();
        assert_eq!(f.len, 5);
        assert_eq!(b.incoming().region().read_vec(0, 5).unwrap(), b"hello");
        rx.ack().unwrap();
    }

    #[test]
    fn slot_blocks_until_acked() {
        let (a, b) = pair();
        let tx = Arc::new(TxMailbox::new(a));
        let rx = RxMailbox::new(b);
        tx.send_control(Frame::put_ack(0, 1, 1, 0)).unwrap();
        // Second send must block until rx acks; do it from a thread.
        let tx2 = Arc::clone(&tx);
        let h = std::thread::spawn(move || {
            tx2.send_control(Frame::put_ack(0, 1, 2, 0)).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!h.is_finished(), "second send must wait for ack");
        let f1 = rx.try_recv().unwrap().unwrap();
        assert_eq!(f1.len, 1);
        rx.ack().unwrap();
        h.join().unwrap();
        let f2 = rx.try_recv().unwrap().unwrap();
        assert_eq!(f2.len, 2);
        assert_eq!(f2.seq, f1.seq.wrapping_add(1), "sequence increments");
    }

    #[test]
    fn directions_use_disjoint_registers() {
        let (a, b) = pair();
        let tx_ab = TxMailbox::new(Arc::clone(&a));
        let tx_ba = TxMailbox::new(Arc::clone(&b));
        let rx_at_b = RxMailbox::new(b);
        let rx_at_a = RxMailbox::new(a);
        tx_ab.send_control(Frame::put_ack(0, 1, 11, 0)).unwrap();
        tx_ba.send_control(Frame::put_ack(1, 0, 22, 0)).unwrap();
        assert_eq!(rx_at_b.try_recv().unwrap().unwrap().len, 11);
        assert_eq!(rx_at_a.try_recv().unwrap().unwrap().len, 22);
    }

    #[test]
    fn full_slot_wait_is_bounded_and_rerings() {
        let (a, b) = pair();
        let mut tx = TxMailbox::new(a);
        tx.set_retry(std::time::Duration::from_millis(5), 2);
        let _rx = RxMailbox::new(b);
        tx.send_control(Frame::put_ack(0, 1, 1, 0)).unwrap();
        // Nobody acks: the second send must re-ring the stuck frame's
        // doorbell and then fail in bounded time instead of hanging.
        let t0 = std::time::Instant::now();
        let err = tx.send_control(Frame::put_ack(0, 1, 2, 0)).unwrap_err();
        assert_eq!(err, NtbError::LinkFailed { attempts: 3 });
        assert_eq!(tx.rerings(), 2);
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn bounded_wait_still_succeeds_on_late_ack() {
        let (a, b) = pair();
        let mut tx = TxMailbox::new(a);
        tx.set_retry(std::time::Duration::from_millis(5), 1000);
        let tx = Arc::new(tx);
        let rx = RxMailbox::new(b);
        tx.send_control(Frame::put_ack(0, 1, 1, 0)).unwrap();
        let tx2 = Arc::clone(&tx);
        let h = std::thread::spawn(move || tx2.send_control(Frame::put_ack(0, 1, 2, 0)));
        std::thread::sleep(std::time::Duration::from_millis(30));
        rx.try_recv().unwrap().unwrap();
        rx.ack().unwrap();
        h.join().unwrap().unwrap();
        assert!(tx.rerings() >= 1, "timeout rounds re-rang the doorbell");
    }

    #[test]
    fn abort_flag_fails_send_blocked_on_full_slot() {
        use std::sync::atomic::AtomicBool;
        let (a, b) = pair();
        let mut tx = TxMailbox::new(a);
        let abort = Arc::new(AtomicBool::new(false));
        tx.set_abort(Arc::clone(&abort));
        let tx = Arc::new(tx);
        let _rx = RxMailbox::new(b);
        // Fill the slot; nobody will ever ack it.
        tx.send_control(Frame::put_ack(0, 1, 1, 0)).unwrap();
        let tx2 = Arc::clone(&tx);
        let h = std::thread::spawn(move || tx2.send_control(Frame::put_ack(0, 1, 2, 0)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!h.is_finished(), "send must be parked on the full slot");
        abort.store(true, Ordering::SeqCst);
        // The typed shutdown error — never a hang, never a generic failure.
        assert_eq!(h.join().unwrap().unwrap_err(), NtbError::DmaShutdown);
    }

    #[test]
    fn concurrent_senders_serialize() {
        let (a, b) = pair();
        let tx = Arc::new(TxMailbox::new(a));
        let rx = RxMailbox::new(b);
        let n = 32;
        let mut handles = vec![];
        for i in 0..n {
            let tx = Arc::clone(&tx);
            handles.push(std::thread::spawn(move || {
                tx.send_control(Frame::put_ack(0, 1, i, 0)).unwrap();
            }));
        }
        // Drain from this thread.
        let mut seen = vec![];
        while seen.len() < n as usize {
            if let Some(f) = rx.try_recv().unwrap() {
                seen.push(f.len);
                rx.ack().unwrap();
            } else {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }
}
