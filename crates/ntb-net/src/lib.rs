//! # ntb-net — the switchless PCIe NTB ring interconnect
//!
//! This crate implements the paper's data-sharing protocol (§III-A) on top
//! of the `ntb-sim` hardware model:
//!
//! * Hosts form a **ring**: each host carries two NTB adapters, cabled to
//!   the left and right neighbours ([`network::RingNetwork`]).
//! * A transfer pushes its payload into the neighbour's **memory window**
//!   (direct area if the neighbour is the final destination, **bypass
//!   area** otherwise), publishes a **transfer-info frame** through the
//!   link's ScratchPad registers ([`frame`], [`mailbox`]) and rings a
//!   **doorbell**.
//! * Each host runs **service threads** (paper Fig. 5): they deliver
//!   payloads destined for this host into the symmetric heap (through the
//!   [`delivery::DeliveryTarget`] installed by the OpenSHMEM layer) and
//!   forward everything else around the ring through the bypass buffer.
//! * Get requests travel as payload-free frames to the data's host, which
//!   streams response chunks back ([`node::NtbNode::get_bytes`]).
//! * Remote atomic operations ride the same frame protocol
//!   ([`delivery::AmoOp`]).
//!
//! The crate knows nothing about OpenSHMEM semantics; it moves bytes
//! between flat symmetric-address offsets. `shmem-core` layers the PGAS
//! model on top.

pub mod checker;
pub mod config;
pub mod crc;
pub mod credit;
pub mod delivery;
pub mod forwarder;
pub mod frame;
pub mod handshake;
pub mod layout;
pub mod lockdep;
pub mod mailbox;
pub mod membership;
pub mod network;
pub mod node;
pub mod pending;
pub mod service;
pub mod slots;
pub mod topology;
pub mod trace;

pub use checker::{check, check_log, CheckReport, Violation};
pub use config::{NetConfig, OverloadConfig, RetryPolicy};
pub use crc::crc32;
pub use credit::{CreditGate, CreditLedger, RetryBudget};
pub use delivery::{AmoOp, DeliveryTarget};
pub use forwarder::{ForwardJob, ForwardQueue, PushOutcome};
pub use frame::{Frame, FrameKind};
pub use handshake::{exchange_link_info, PeerInfo};
pub use layout::WindowLayout;
pub use membership::{BeatMonitor, BeatVerdict, HeartbeatConfig, Membership, MembershipView};
pub use network::RingNetwork;
pub use node::{NodeStats, NtbNode};
pub use pending::FillOutcome;
pub use topology::{
    hop_count, route, RingTopology, RouteDirection, Shape, TopoGraph, Topology, MAX_TOPO_NODES,
};
pub use trace::{to_chrome_json, TraceKind, TraceRecord, Tracer};

/// Doorbell bit assignments (paper §III-B1 defines the four interrupt
/// sources; bit 15 is the model's shutdown signal for service threads).
pub mod doorbells {
    /// Interrupt source for DMA Put (data frames: Put, GetResp, PutAck,
    /// AmoResp).
    pub const DB_DMAPUT: u32 = 0;
    /// Interrupt source for DMA Get (request frames: GetReq, AmoReq).
    pub const DB_DMAGET: u32 = 1;
    /// Barrier start sweep signal.
    pub const DB_BARRIER_START: u32 = 2;
    /// Barrier end sweep signal.
    pub const DB_BARRIER_END: u32 = 3;
    /// Membership gossip: "I updated my heartbeat block — read it now"
    /// (rejoin requests and epoch bumps propagate faster than a beat
    /// period this way; it is also the failure detector's confirmation
    /// probe, because ringing it succeeds against a dead host but fails
    /// with `LinkDown` against a faulted cable).
    pub const DB_GOSSIP: u32 = 4;
    /// Internal: wake service threads for shutdown.
    pub const DB_SHUTDOWN: u32 = 15;

    /// Mask of the bits the service threads listen on.
    pub const SERVICE_INTEREST: u32 =
        (1 << DB_DMAPUT) | (1 << DB_DMAGET) | (1 << DB_GOSSIP) | (1 << DB_SHUTDOWN);
    /// Mask of the bits the barrier algorithm listens on.
    pub const BARRIER_INTEREST: u32 = (1 << DB_BARRIER_START) | (1 << DB_BARRIER_END);
}
