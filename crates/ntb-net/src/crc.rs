//! CRC-32 (IEEE 802.3) payload checksums.
//!
//! The NTB window is ordinary PCIe posted-write territory: the paper's
//! hardware protects TLPs with LCRC hop by hop, but a switchless ring
//! forwards payloads through intermediate hosts' memory, where a software
//! end-to-end check is the only integrity story. Every payload-carrying
//! frame writes `crc32(payload)` into the window's control slot
//! ([`WindowLayout::ctrl_off`](crate::layout::WindowLayout)) before the
//! doorbell; every receiving hop recomputes and compares before staging
//! or delivering. A mismatch drops the frame (acking the mailbox slot so
//! the link keeps moving) and relies on the sender's retransmission to
//! recover.
//!
//! Table-driven, one table built at first use; the polynomial is the
//! reflected IEEE one (0xEDB88320) so results match zlib/`cksum -o 3`.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE, reflected, init/final-xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut buf = vec![0xA5u8; 4096];
        let clean = crc32(&buf);
        buf[1234] ^= 0x10;
        assert_ne!(crc32(&buf), clean);
    }

    #[test]
    fn crc_is_pure() {
        let buf = vec![7u8; 100];
        assert_eq!(crc32(&buf), crc32(&buf));
    }
}
