//! The link bring-up handshake (paper §III-B1, first init step).
//!
//! "The host Id is exchanged with other hosts connected via NTB port;
//! this is done by writing its own Id to ScratchPad register and reading
//! its neighbor Id from the corresponding ScratchPad register. The BAR
//! address region is also exchanged ... to complete the setup of
//! translation register."
//!
//! The handshake runs over the same split register bank the mailboxes use
//! later (initiator side publishes in registers 0–3, responder in 4–7):
//!
//! | register | content |
//! |----------|---------|
//! | `base+0` | magic+state word: `MAGIC | phase` |
//! | `base+1` | host id |
//! | `base+2` | window size low 32 bits |
//! | `base+3` | direct/bypass split (the window layout) |
//!
//! Both sides publish, spin for the peer's publication, validate the
//! geometry (both ends must agree on buffer layout or the transfer
//! protocol would corrupt), and acknowledge. After the handshake the
//! registers are zeroed for mailbox use.

use std::time::{Duration, Instant};

use ntb_sim::{LinkDirection, NtbError, NtbPort, Result};

/// Magic pattern marking a handshake word (top 12 bits).
const MAGIC: u32 = 0x57B; // "NTB", squinting

/// Phase values in the state word.
const PHASE_PUBLISH: u32 = 1;
const PHASE_ACK: u32 = 2;

/// What the peer reported during bring-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    /// The peer's host id.
    pub host_id: usize,
    /// The peer's incoming window size (bytes, low 32 bits).
    pub window_size: u32,
    /// The peer's direct-buffer length (the layout split).
    pub direct_len: u32,
}

fn bases(port: &NtbPort) -> (usize, usize) {
    match port.outgoing().direction() {
        LinkDirection::Upstream => (0, 4),
        LinkDirection::Downstream => (4, 0),
    }
}

fn state_word(phase: u32) -> u32 {
    (MAGIC << 20) | phase
}

fn parse_state(word: u32) -> Option<u32> {
    (word >> 20 == MAGIC).then_some(word & 0xFFFFF)
}

/// Run the bring-up handshake on one side of a link. Both sides must call
/// it (concurrently is fine); returns the peer's identity and geometry.
///
/// Fails with [`NtbError::NotConnected`] if the peer stays silent past
/// `timeout`, and with [`NtbError::BadDescriptor`] if the two sides
/// disagree on the window layout.
pub fn exchange_link_info(
    port: &NtbPort,
    my_host_id: usize,
    window_size: u32,
    direct_len: u32,
    timeout: Duration,
) -> Result<PeerInfo> {
    let (tx, rx) = bases(port);
    // Publish body first, state word last (same release discipline as the
    // mailbox protocol).
    port.spad_write(tx + 1, my_host_id as u32)?;
    port.spad_write(tx + 2, window_size)?;
    port.spad_write(tx + 3, direct_len)?;
    port.spad_write(tx, state_word(PHASE_PUBLISH))?;

    // Wait for the peer's publication.
    let deadline = Instant::now() + timeout;
    let peer = loop {
        let word = port.spad_read(rx)?;
        match parse_state(word) {
            Some(phase) if phase == PHASE_PUBLISH || phase == PHASE_ACK => {
                break PeerInfo {
                    host_id: port.spad_read(rx + 1)? as usize,
                    window_size: port.spad_read(rx + 2)?,
                    direct_len: port.spad_read(rx + 3)?,
                };
            }
            _ => {
                if Instant::now() >= deadline {
                    return Err(NtbError::NotConnected);
                }
                std::thread::yield_now();
            }
        }
    };

    // Geometry must agree end to end: the sender-side placement rule and
    // the receiver-side staging rule read the same offsets.
    if peer.direct_len != direct_len {
        return Err(NtbError::BadDescriptor {
            reason: "window layout mismatch across the link (direct buffer split)",
        });
    }

    // Acknowledge, wait for the peer's ack, then clear our registers so
    // the mailbox protocol starts from a clean bank.
    port.spad_write(tx, state_word(PHASE_ACK))?;
    let deadline = Instant::now() + timeout;
    loop {
        match parse_state(port.spad_read(rx)?) {
            Some(PHASE_ACK) | None => break, // peer acked (or already cleared)
            _ => {
                if Instant::now() >= deadline {
                    return Err(NtbError::NotConnected);
                }
                std::thread::yield_now();
            }
        }
    }
    for i in 0..4 {
        port.spad_write(tx + i, 0)?;
    }
    // Wait until the peer cleared too (our RX side reads zero), so no
    // stale handshake word can be mistaken for a mailbox header.
    let deadline = Instant::now() + timeout;
    while port.spad_read(rx)? != 0 {
        if Instant::now() >= deadline {
            return Err(NtbError::NotConnected);
        }
        std::thread::yield_now();
    }
    Ok(peer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntb_sim::{connect_ports, HostMemory, PortConfig, TimeModel};
    use std::sync::Arc;

    fn pair() -> (Arc<NtbPort>, Arc<NtbPort>) {
        let ma = HostMemory::new(0, 64 << 20);
        let mb = HostMemory::new(7, 64 << 20);
        connect_ports(
            PortConfig::new(0, 1),
            PortConfig::new(7, 0),
            &ma,
            &mb,
            Arc::new(TimeModel::zero()),
        )
        .unwrap()
    }

    #[test]
    fn both_sides_learn_each_other() {
        let (a, b) = pair();
        let ha = std::thread::spawn(move || {
            exchange_link_info(&a, 0, 4 << 20, 256 << 10, Duration::from_secs(2)).unwrap()
        });
        let hb = std::thread::spawn(move || {
            exchange_link_info(&b, 7, 4 << 20, 256 << 10, Duration::from_secs(2)).unwrap()
        });
        let pa = ha.join().unwrap();
        let pb = hb.join().unwrap();
        assert_eq!(pa.host_id, 7);
        assert_eq!(pb.host_id, 0);
        assert_eq!(pa.window_size, 4 << 20);
        assert_eq!(pa.direct_len, 256 << 10);
    }

    #[test]
    fn registers_clean_after_handshake() {
        let (a, b) = pair();
        let a2 = Arc::clone(&a);
        let h = std::thread::spawn(move || {
            exchange_link_info(&a2, 0, 1 << 20, 1 << 10, Duration::from_secs(2)).unwrap()
        });
        exchange_link_info(&b, 7, 1 << 20, 1 << 10, Duration::from_secs(2)).unwrap();
        h.join().unwrap();
        for i in 0..8 {
            assert_eq!(a.spad_read(i).unwrap(), 0, "register {i} must be clean for mailboxes");
        }
    }

    #[test]
    fn silent_peer_times_out() {
        let (a, _b) = pair();
        let err =
            exchange_link_info(&a, 0, 1 << 20, 1 << 10, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, NtbError::NotConnected);
    }

    #[test]
    fn layout_mismatch_detected() {
        let (a, b) = pair();
        let h = std::thread::spawn(move || {
            exchange_link_info(&a, 0, 1 << 20, 64 << 10, Duration::from_secs(2))
        });
        let rb = exchange_link_info(&b, 7, 1 << 20, 128 << 10, Duration::from_secs(2));
        let ra = h.join().unwrap();
        assert!(
            matches!(ra, Err(NtbError::BadDescriptor { .. }))
                && matches!(rb, Err(NtbError::BadDescriptor { .. })),
            "both sides must reject a split-brain layout: {ra:?} / {rb:?}"
        );
    }

    #[test]
    fn state_word_roundtrip() {
        assert_eq!(parse_state(state_word(PHASE_PUBLISH)), Some(PHASE_PUBLISH));
        assert_eq!(parse_state(state_word(PHASE_ACK)), Some(PHASE_ACK));
        assert_eq!(parse_state(0), None);
        assert_eq!(parse_state(0xDEAD_BEEF), None);
    }
}
