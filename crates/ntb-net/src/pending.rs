//! Requester-side completion tracking.
//!
//! A Get (or remote atomic) leaves a pending entry at the requesting host;
//! the service thread fills it chunk by chunk as responses arrive and the
//! requester blocks until complete. The paper's prototype discovers
//! completion through a sleep-and-check loop, so under an enabled time
//! model the wait is quantized to
//! [`TimeModel::get_poll_interval`](ntb_sim::TimeModel) — the dominant
//! term of its Fig. 9(b) Get latencies.
//!
//! [`OutstandingPuts`] counts put chunks that have left this host but whose
//! delivery acknowledgement has not returned; `shmem_quiet` (and therefore
//! the barrier) drains it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use ntb_sim::{spin_for, NtbError, Result, TimeModel};
use parking_lot::{Condvar, Mutex};

#[derive(Debug)]
struct Entry {
    buf: Vec<u8>,
    received: u64,
    done: bool,
}

/// Table of in-flight request-response operations (Gets and AMOs).
#[derive(Debug, Default)]
pub struct PendingOps {
    inner: Mutex<HashMap<u32, Entry>>,
    cond: Condvar,
    next_id: AtomicU32,
}

impl PendingOps {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new operation expecting `total` response bytes; returns
    /// its request id.
    pub fn register(&self, total: u64) -> u32 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Entry { buf: vec![0u8; total as usize], received: 0, done: total == 0 };
        self.inner.lock().insert(id, entry);
        id
    }

    /// Service-thread side: deposit a response chunk at `offset`. Marks
    /// the entry done once all bytes arrived and wakes the requester.
    pub fn fill(&self, req_id: u32, offset: u64, data: &[u8]) -> Result<()> {
        let mut map = self.inner.lock();
        let entry = map
            .get_mut(&req_id)
            .ok_or(NtbError::BadDescriptor { reason: "response for unknown request id" })?;
        let end = offset as usize + data.len();
        if end > entry.buf.len() {
            return Err(NtbError::BadDescriptor { reason: "response chunk overflows request buffer" });
        }
        entry.buf[offset as usize..end].copy_from_slice(data);
        entry.received += data.len() as u64;
        if entry.received >= entry.buf.len() as u64 {
            entry.done = true;
            self.cond.notify_all();
        }
        Ok(())
    }

    /// Requester side: block until the operation completes and take its
    /// buffer. With an enabled time model the wait polls at the model's
    /// get-poll interval (no wake-up notification — reproducing the
    /// prototype's sleep loop); otherwise it waits on the condvar.
    pub fn wait(&self, req_id: u32, model: &TimeModel) -> Result<Vec<u8>> {
        if model.enabled() {
            let interval = model.scaled_duration(model.get_poll_interval).max(Duration::from_micros(1));
            loop {
                {
                    let mut map = self.inner.lock();
                    if map.get(&req_id).is_none() {
                        return Err(NtbError::BadDescriptor { reason: "unknown request id" });
                    }
                    if map.get(&req_id).is_some_and(|e| e.done) {
                        let entry = map.remove(&req_id).expect("checked above");
                        return Ok(entry.buf);
                    }
                }
                spin_for(interval);
            }
        } else {
            let mut map = self.inner.lock();
            loop {
                match map.get(&req_id) {
                    None => return Err(NtbError::BadDescriptor { reason: "unknown request id" }),
                    Some(e) if e.done => {
                        let entry = map.remove(&req_id).expect("checked above");
                        return Ok(entry.buf);
                    }
                    Some(_) => self.cond.wait(&mut map),
                }
            }
        }
    }

    /// Number of in-flight operations (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.inner.lock().len()
    }
}

/// Count of put chunks awaiting their delivery acknowledgement.
#[derive(Debug, Default)]
pub struct OutstandingPuts {
    count: Mutex<u64>,
    cond: Condvar,
}

impl OutstandingPuts {
    /// Zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` chunks leaving this host.
    pub fn add(&self, n: u64) {
        *self.count.lock() += n;
    }

    /// Record `n` chunks acknowledged by their destination.
    pub fn ack(&self, n: u64) {
        let mut c = self.count.lock();
        *c = c.saturating_sub(n);
        if *c == 0 {
            self.cond.notify_all();
        }
    }

    /// Current outstanding count.
    pub fn current(&self) -> u64 {
        *self.count.lock()
    }

    /// Block until every outstanding chunk is acknowledged
    /// (`shmem_quiet`).
    pub fn wait_zero(&self) {
        let mut c = self.count.lock();
        while *c != 0 {
            self.cond.wait(&mut c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_fill_wait() {
        let p = PendingOps::new();
        let id = p.register(8);
        p.fill(id, 0, &[1, 2, 3, 4]).unwrap();
        p.fill(id, 4, &[5, 6, 7, 8]).unwrap();
        let buf = p.wait(id, &TimeModel::zero()).unwrap();
        assert_eq!(buf, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn zero_length_completes_immediately() {
        let p = PendingOps::new();
        let id = p.register(0);
        assert_eq!(p.wait(id, &TimeModel::zero()).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn unknown_id_errors() {
        let p = PendingOps::new();
        assert!(p.fill(99, 0, &[1]).is_err());
        assert!(p.wait(99, &TimeModel::zero()).is_err());
    }

    #[test]
    fn overflow_chunk_rejected() {
        let p = PendingOps::new();
        let id = p.register(4);
        assert!(p.fill(id, 2, &[0u8; 4]).is_err());
    }

    #[test]
    fn wait_blocks_until_fill_from_other_thread() {
        let p = Arc::new(PendingOps::new());
        let id = p.register(3);
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            p2.fill(id, 0, b"abc").unwrap();
        });
        let buf = p.wait(id, &TimeModel::zero()).unwrap();
        assert_eq!(buf, b"abc");
        h.join().unwrap();
    }

    #[test]
    fn polled_wait_quantizes_latency() {
        // With an enabled model and a 5ms poll interval, even an instant
        // completion takes at least one interval to be observed if it
        // lands after the first check.
        let mut model = TimeModel::paper();
        model.get_poll_interval = Duration::from_millis(5);
        let p = Arc::new(PendingOps::new());
        let id = p.register(1);
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            p2.fill(id, 0, &[9]).unwrap();
        });
        let t0 = std::time::Instant::now();
        let buf = p.wait(id, &model).unwrap();
        assert_eq!(buf, vec![9]);
        assert!(t0.elapsed() >= Duration::from_millis(5), "quantized to poll interval");
        h.join().unwrap();
    }

    #[test]
    fn ids_unique() {
        let p = PendingOps::new();
        let a = p.register(1);
        let b = p.register(1);
        assert_ne!(a, b);
    }

    #[test]
    fn outstanding_puts_flow() {
        let o = OutstandingPuts::new();
        o.add(3);
        assert_eq!(o.current(), 3);
        o.ack(1);
        assert_eq!(o.current(), 2);
        o.ack(2);
        assert_eq!(o.current(), 0);
        o.wait_zero(); // returns immediately
    }

    #[test]
    fn wait_zero_blocks_until_acked() {
        let o = Arc::new(OutstandingPuts::new());
        o.add(1);
        let o2 = Arc::clone(&o);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            o2.ack(1);
        });
        o.wait_zero();
        assert_eq!(o.current(), 0);
        h.join().unwrap();
    }

    #[test]
    fn over_ack_saturates() {
        let o = OutstandingPuts::new();
        o.add(1);
        o.ack(5);
        assert_eq!(o.current(), 0);
    }
}
