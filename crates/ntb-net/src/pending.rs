//! Requester-side completion tracking.
//!
//! A Get (or remote atomic) leaves a pending entry at the requesting host;
//! the service thread fills it chunk by chunk as responses arrive and the
//! requester blocks until complete. The paper's prototype discovers
//! completion through a sleep-and-check loop, so under an enabled time
//! model the wait is quantized to
//! [`TimeModel::get_poll_interval`](ntb_sim::TimeModel) — the dominant
//! term of its Fig. 9(b) Get latencies.
//!
//! On a lossy link the response (or the request itself) can vanish, so the
//! wait is *bounded*: [`PendingOps::wait_with_retry`] re-issues the request
//! after each acknowledgement timeout (same request id, so a duplicated
//! response is filtered by the per-entry chunk-offset set) and surfaces
//! [`NtbError::LinkFailed`] once the [`RetryPolicy`] is exhausted — the
//! caller gets a typed error in bounded time instead of a hang.
//!
//! [`UnackedPuts`] tracks put chunks that have left this host but whose
//! delivery acknowledgement has not returned, keyed by put id so the
//! retry sweeper can retransmit exactly the overdue ones; `shmem_quiet`
//! (and therefore the barrier) drains it.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use ntb_sim::{spin_for, NtbError, Result, TimeModel, TransferMode};
use parking_lot::{Condvar, Mutex};

use crate::config::RetryPolicy;

#[derive(Debug)]
struct Entry {
    buf: Vec<u8>,
    received: u64,
    done: bool,
    /// Chunk offsets already deposited — duplicate responses (from request
    /// retransmission) must not double-count `received`.
    filled: HashSet<u64>,
    /// PE this request targets; [`PendingOps::fail_dest`] fails every
    /// entry aimed at a PE the failure detector declared dead.
    dest: usize,
    /// Set when the target PE died: the waiter returns this error instead
    /// of burning its whole retry budget against a corpse.
    failed: Option<NtbError>,
}

/// What became of a response chunk handed to [`PendingOps::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// Fresh chunk, deposited.
    Filled,
    /// A chunk at this offset was already deposited (retransmitted
    /// request → duplicated response); ignored.
    Duplicate,
    /// No such request id — the operation already completed or was
    /// abandoned; a late response straggler. Ignored.
    Stale,
}

/// Lock shards per completion table. Ids map to shards by `id %
/// SHARD_COUNT`, so the service threads of different links and the
/// requesting PE threads rarely contend on the same mutex; a batch of
/// coalesced acknowledgements drains across all shards instead of
/// serializing on one. Shards are never nested with each other (every
/// operation touches exactly the one shard its id hashes to), so a
/// single lockdep class per table stays cycle-free.
const SHARD_COUNT: usize = 8;

/// One lock shard of [`PendingOps`].
#[derive(Debug, Default)]
struct PendingShard {
    inner: Mutex<HashMap<u32, Entry>>,
    cond: Condvar,
}

/// Table of in-flight request-response operations (Gets and AMOs),
/// sharded by request id.
#[derive(Debug)]
pub struct PendingOps {
    shards: [PendingShard; SHARD_COUNT],
    next_id: AtomicU32,
}

impl Default for PendingOps {
    fn default() -> Self {
        Self::new()
    }
}

impl PendingOps {
    /// Empty table.
    pub fn new() -> Self {
        PendingOps {
            shards: std::array::from_fn(|_| PendingShard::default()),
            next_id: AtomicU32::new(0),
        }
    }

    /// The shard holding `id`'s entry.
    fn shard(&self, id: u32) -> &PendingShard {
        &self.shards[id as usize % SHARD_COUNT]
    }

    /// Reserve a fresh request id without creating a completion entry.
    /// Used by fast paths that complete synchronously (the aperture read)
    /// but still need a unique id so their trace events pair up under the
    /// same invariants as protocol-path requests.
    pub fn allocate_id(&self) -> u32 {
        // lint: relaxed-ok(unique id allocation; uniqueness needs atomicity, not ordering)
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a new operation expecting `total` response bytes from
    /// `dest`; returns its request id.
    pub fn register(&self, total: u64, dest: usize) -> u32 {
        let id = self.allocate_id();
        let entry = Entry {
            buf: vec![0u8; total as usize],
            received: 0,
            done: total == 0,
            filled: HashSet::new(),
            dest,
            failed: None,
        };
        crate::lockdep_track!(&crate::lockdep::NET_PENDING_SHARD);
        self.shard(id).inner.lock().insert(id, entry);
        id
    }

    /// Service-thread side: deposit a response chunk at `offset`. Marks
    /// the entry done once all bytes arrived and wakes the requester.
    /// Late (stale) and duplicated chunks are tolerated and reported in
    /// the outcome — both are expected under retransmission.
    pub fn fill(&self, req_id: u32, offset: u64, data: &[u8]) -> Result<FillOutcome> {
        self.fill_with(req_id, offset, data, |_| {})
    }

    /// [`Self::fill`] with an observer invoked *before* the completion
    /// becomes visible to the waiting requester (the entry lock is still
    /// held). Trace emission must go through this hook: emitting after
    /// `fill` returns races the woken requester, which can log its
    /// completion event — or even have the whole trace drained — before
    /// the service thread logs the chunk arrival that caused it.
    pub fn fill_with<F>(
        &self,
        req_id: u32,
        offset: u64,
        data: &[u8],
        observe: F,
    ) -> Result<FillOutcome>
    where
        F: FnOnce(FillOutcome),
    {
        let shard = self.shard(req_id);
        crate::lockdep_track!(&crate::lockdep::NET_PENDING_SHARD);
        let mut map = shard.inner.lock();
        let Some(entry) = map.get_mut(&req_id) else {
            observe(FillOutcome::Stale);
            return Ok(FillOutcome::Stale);
        };
        let end = offset as usize + data.len();
        if end > entry.buf.len() {
            return Err(NtbError::BadDescriptor {
                reason: "response chunk overflows request buffer",
            });
        }
        if !entry.filled.insert(offset) {
            observe(FillOutcome::Duplicate);
            return Ok(FillOutcome::Duplicate);
        }
        entry.buf[offset as usize..end].copy_from_slice(data);
        entry.received += data.len() as u64;
        observe(FillOutcome::Filled);
        if entry.received >= entry.buf.len() as u64 {
            entry.done = true;
            shard.cond.notify_all();
        }
        Ok(FillOutcome::Filled)
    }

    /// Abandon an operation (e.g. the request could not be sent); the
    /// entry is removed and late responses become [`FillOutcome::Stale`].
    pub fn abandon(&self, req_id: u32) {
        crate::lockdep_track!(&crate::lockdep::NET_PENDING_SHARD);
        self.shard(req_id).inner.lock().remove(&req_id);
    }

    /// Requester side: block until the operation completes and take its
    /// buffer. With an enabled time model the wait polls at the model's
    /// get-poll interval (no wake-up notification — reproducing the
    /// prototype's sleep loop); otherwise it waits on the condvar.
    ///
    /// Unbounded: on a lossy link use [`Self::wait_with_retry`].
    pub fn wait(&self, req_id: u32, model: &TimeModel) -> Result<Vec<u8>> {
        // DEADLINE-CLIPPED: unbounded by contract (see doc above); callers
        // on lossy links use `wait_with_retry*`, which derives a deadline.
        match self.wait_until(req_id, model, None)? {
            Some(buf) => Ok(buf),
            None => unreachable!("deadline-free wait cannot time out"),
        }
    }

    /// Bounded requester wait with retransmission: waits up to the
    /// policy's ack timeout per attempt, calling `resend` (which should
    /// re-issue the request under the *same* request id) between
    /// attempts, and failing with [`NtbError::LinkFailed`] once
    /// `max_retries` retransmissions did not complete the operation.
    /// Transient resend errors (link down) do not abort early — the link
    /// may recover within the retry budget; non-transient ones do.
    pub fn wait_with_retry<F>(
        &self,
        req_id: u32,
        model: &TimeModel,
        policy: &RetryPolicy,
        resend: F,
    ) -> Result<Vec<u8>>
    where
        F: FnMut(u32) -> Result<()>,
    {
        self.wait_with_retry_until(req_id, model, policy, None, resend)
    }

    /// [`Self::wait_with_retry`] additionally bounded by the operation's
    /// absolute deadline: each per-attempt wait window is clipped to
    /// `op_deadline`, and once the deadline passes the entry is abandoned
    /// and [`NtbError::DeadlineExceeded`] surfaces *promptly* — the
    /// caller set a time budget, so it must not sit out the rest of the
    /// link-failure retry schedule first.
    pub fn wait_with_retry_until<F>(
        &self,
        req_id: u32,
        model: &TimeModel,
        policy: &RetryPolicy,
        op_deadline: Option<Instant>,
        mut resend: F,
    ) -> Result<Vec<u8>>
    where
        F: FnMut(u32) -> Result<()>,
    {
        let mut attempt: u32 = 0;
        loop {
            let window = policy.ack_timeout
                + if attempt == 0 { Duration::ZERO } else { policy.backoff(attempt - 1) };
            let mut until = Instant::now() + window;
            if let Some(d) = op_deadline {
                until = until.min(d);
            }
            if let Some(buf) = self.wait_until(req_id, model, Some(until))? {
                return Ok(buf);
            }
            if op_deadline.is_some_and(|d| Instant::now() >= d) {
                self.abandon(req_id);
                return Err(NtbError::DeadlineExceeded);
            }
            if attempt >= policy.max_retries {
                self.abandon(req_id);
                return Err(NtbError::LinkFailed { attempts: attempt + 1 });
            }
            attempt += 1;
            if let Err(e) = resend(attempt) {
                if !e.is_transient() {
                    self.abandon(req_id);
                    return Err(e);
                }
            }
        }
    }

    /// Wait until done or `deadline`; `Ok(None)` means timed out with the
    /// entry still pending.
    fn wait_until(
        &self,
        req_id: u32,
        model: &TimeModel,
        deadline: Option<Instant>,
    ) -> Result<Option<Vec<u8>>> {
        let shard = self.shard(req_id);
        if model.enabled() {
            let interval =
                model.scaled_duration(model.get_poll_interval).max(Duration::from_micros(1));
            loop {
                {
                    crate::lockdep_track!(&crate::lockdep::NET_PENDING_SHARD);
                    let mut map = shard.inner.lock();
                    match map.get(&req_id) {
                        None => {
                            return Err(NtbError::BadDescriptor { reason: "unknown request id" })
                        }
                        Some(e) if e.done => {
                            let entry = map.remove(&req_id).ok_or(NtbError::BadDescriptor {
                                reason: "completion entry vanished under its lock",
                            })?;
                            return Ok(Some(entry.buf));
                        }
                        Some(e) if e.failed.is_some() => {
                            let entry = map.remove(&req_id).ok_or(NtbError::BadDescriptor {
                                reason: "completion entry vanished under its lock",
                            })?;
                            return Err(entry.failed.unwrap_or(NtbError::LinkDown));
                        }
                        Some(_) => {}
                    }
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Ok(None);
                }
                // DEADLINE-CLIPPED: `interval` is the model's get-poll
                // quantum; the deadline is checked just above every poll.
                spin_for(interval);
            }
        } else {
            crate::lockdep_track!(&crate::lockdep::NET_PENDING_SHARD);
            let mut map = shard.inner.lock();
            loop {
                match map.get(&req_id) {
                    None => return Err(NtbError::BadDescriptor { reason: "unknown request id" }),
                    Some(e) if e.done => {
                        let entry = map.remove(&req_id).ok_or(NtbError::BadDescriptor {
                            reason: "completion entry vanished under its lock",
                        })?;
                        return Ok(Some(entry.buf));
                    }
                    Some(e) if e.failed.is_some() => {
                        let entry = map.remove(&req_id).ok_or(NtbError::BadDescriptor {
                            reason: "completion entry vanished under its lock",
                        })?;
                        return Err(entry.failed.unwrap_or(NtbError::LinkDown));
                    }
                    Some(_) => match deadline {
                        Some(wake_deadline) => {
                            if shard.cond.wait_until(&mut map, wake_deadline).timed_out() {
                                // Re-check once: completion may have raced
                                // the timeout.
                                if map.get(&req_id).is_some_and(|e| e.done) {
                                    let entry =
                                        map.remove(&req_id).ok_or(NtbError::BadDescriptor {
                                            reason: "completion entry vanished under its lock",
                                        })?;
                                    return Ok(Some(entry.buf));
                                }
                                return Ok(None);
                            }
                        }
                        None => shard.cond.wait(&mut map),
                    },
                }
            }
        }
    }

    /// Number of in-flight operations (diagnostics).
    pub fn in_flight(&self) -> usize {
        crate::lockdep_track!(&crate::lockdep::NET_PENDING_SHARD);
        self.shards.iter().map(|s| s.inner.lock().len()).sum()
    }

    /// Fail every incomplete operation targeting `pe` with `err` and wake
    /// its waiter. Called when the failure detector confirms `pe` dead:
    /// the waiter surfaces the typed error immediately instead of burning
    /// the retry budget against a host that will never respond. Returns
    /// how many operations were failed.
    pub fn fail_dest(&self, pe: usize, err: NtbError) -> usize {
        let mut failed = 0;
        for shard in &self.shards {
            crate::lockdep_track!(&crate::lockdep::NET_PENDING_SHARD);
            let mut map = shard.inner.lock();
            for entry in map.values_mut() {
                if entry.dest == pe && !entry.done && entry.failed.is_none() {
                    entry.failed = Some(err.clone());
                    failed += 1;
                }
            }
            if failed > 0 {
                shard.cond.notify_all();
            }
        }
        failed
    }

    /// Drop every entry (a restarting node's in-flight state is void; its
    /// requester threads were lost with the crash).
    pub fn reset(&self) {
        for shard in &self.shards {
            crate::lockdep_track!(&crate::lockdep::NET_PENDING_SHARD);
            shard.inner.lock().clear();
            shard.cond.notify_all();
        }
    }
}

/// One put chunk awaiting its delivery acknowledgement.
#[derive(Debug, Clone)]
pub struct UnackedPut {
    /// Final destination host.
    pub dest: usize,
    /// Symmetric-heap offset the chunk lands at.
    pub heap_offset: u32,
    /// The chunk bytes (kept for retransmission).
    pub data: Vec<u8>,
    /// Wire mode of the transfer.
    pub mode: TransferMode,
    /// Transmissions so far (1 after the initial send).
    pub attempts: u32,
    /// When the chunk becomes overdue for retransmission.
    pub deadline: Instant,
    /// The *operation's* absolute deadline in microseconds since the
    /// network epoch (0 = none). Distinct from the retransmission
    /// `deadline` above: once this expires the sweeper stops
    /// retransmitting entirely and fails the put as
    /// [`NtbError::DeadlineExceeded`].
    pub deadline_us: u32,
}

#[derive(Debug, Default)]
struct PutState {
    map: HashMap<u32, UnackedPut>,
    /// Attempt counts of puts abandoned since the last `quiet`; non-empty
    /// means the next quiet must report `LinkFailed`.
    failed: Vec<u32>,
    /// Set when a put was failed because its operation deadline expired;
    /// the next `quiet` reports `DeadlineExceeded` (outranking plain
    /// `LinkFailed` — the caller set a time budget and it was missed).
    expired: bool,
    /// Set when puts were abandoned because their destination PE died:
    /// `(pe, membership epoch)`. Outranks plain `LinkFailed` in the next
    /// `quiet` — "the host is dead" is strictly more information than
    /// "the link gave up".
    dead: Option<(usize, u64)>,
}

/// One lock shard of [`UnackedPuts`].
#[derive(Debug, Default)]
struct PutShard {
    state: Mutex<PutState>,
    cond: Condvar,
}

/// Put chunks awaiting their delivery acknowledgement, keyed by put id
/// and sharded by id (acks arriving in a coalesced batch drain across
/// shards instead of serializing against the issuing PE).
///
/// Replaces a bare counter so the retry sweeper can see *which* puts are
/// overdue, retransmit exactly those, and abandon them individually once
/// the retry budget is spent — at which point `quiet` reports the failure
/// instead of hanging forever on a count that will never reach zero.
#[derive(Debug)]
pub struct UnackedPuts {
    shards: [PutShard; SHARD_COUNT],
    next_id: AtomicU32,
}

impl Default for UnackedPuts {
    fn default() -> Self {
        Self::new()
    }
}

impl UnackedPuts {
    /// Empty table.
    pub fn new() -> Self {
        UnackedPuts {
            shards: std::array::from_fn(|_| PutShard::default()),
            // Start at 1: put id 0 is reserved for payload-free traffic.
            next_id: AtomicU32::new(1),
        }
    }

    /// The shard holding `id`'s entry.
    fn shard(&self, id: u32) -> &PutShard {
        &self.shards[id as usize % SHARD_COUNT]
    }

    /// Record a chunk leaving this host; returns its put id.
    pub fn register(
        &self,
        dest: usize,
        heap_offset: u32,
        data: Vec<u8>,
        mode: TransferMode,
        deadline: Instant,
        deadline_us: u32,
    ) -> u32 {
        // lint: relaxed-ok(unique id allocation; uniqueness needs atomicity, not ordering)
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let put = UnackedPut { dest, heap_offset, data, mode, attempts: 1, deadline, deadline_us };
        crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
        self.shard(id).state.lock().map.insert(id, put);
        id
    }

    /// Retire a chunk on acknowledgement; `false` if the id was unknown
    /// (a duplicated ack from a retransmission — harmless).
    pub fn ack(&self, id: u32) -> bool {
        let shard = self.shard(id);
        crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
        let mut st = shard.state.lock();
        let known = st.map.remove(&id).is_some();
        if st.map.is_empty() {
            shard.cond.notify_all();
        }
        known
    }

    /// Snapshot the entries whose deadline has passed (for the sweeper).
    pub fn overdue(&self, now: Instant) -> Vec<(u32, UnackedPut)> {
        crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
        self.shards
            .iter()
            .flat_map(|shard| {
                shard
                    .state
                    .lock()
                    .map
                    .iter()
                    .filter(|(_, p)| p.deadline <= now)
                    .map(|(&id, p)| (id, p.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Record a retransmission attempt; returns the new attempt count
    /// (`None` if the entry was acked in the meantime).
    pub fn note_attempt(&self, id: u32, new_deadline: Instant) -> Option<u32> {
        let shard = self.shard(id);
        crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
        let mut st = shard.state.lock();
        let put = st.map.get_mut(&id)?;
        put.attempts += 1;
        put.deadline = new_deadline;
        Some(put.attempts)
    }

    /// Abandon a chunk whose retry budget is spent. The failure is
    /// remembered and reported by the next [`Self::quiet`]. Returns
    /// `false` — recording nothing — when the chunk is no longer in the
    /// table: an ack can race the sweeper between its overdue snapshot
    /// and this call, and an acked put must not be reported as failed
    /// (nor abandoned twice in the trace).
    pub fn fail(&self, id: u32) -> bool {
        let shard = self.shard(id);
        crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
        let mut st = shard.state.lock();
        let known = match st.map.remove(&id) {
            Some(put) => {
                st.failed.push(put.attempts);
                true
            }
            None => false,
        };
        if st.map.is_empty() {
            shard.cond.notify_all();
        }
        known
    }

    /// Abandon a chunk whose *operation deadline* expired. Like
    /// [`Self::fail`] but records a deadline failure, so the next
    /// [`Self::quiet`] reports [`NtbError::DeadlineExceeded`] instead of
    /// `LinkFailed`. Returns `false` when the put was already retired
    /// (an ack raced the sweeper).
    pub fn fail_expired(&self, id: u32) -> bool {
        let shard = self.shard(id);
        crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
        let mut st = shard.state.lock();
        let known = st.map.remove(&id).is_some();
        if known {
            st.expired = true;
        }
        if st.map.is_empty() {
            shard.cond.notify_all();
        }
        known
    }

    /// Current unacknowledged chunk count.
    pub fn current(&self) -> usize {
        crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
        self.shards.iter().map(|s| s.state.lock().map.len()).sum()
    }

    /// Block until every outstanding chunk is acknowledged or abandoned
    /// (`shmem_quiet`). Reports [`NtbError::LinkFailed`] — with the worst
    /// attempt count — if any chunk was abandoned since the last call,
    /// clearing the failure record.
    ///
    /// Shards are drained sequentially: quiet only promises completion of
    /// operations issued before it was called, and each of those lives in
    /// exactly one shard.
    pub fn quiet(&self) -> Result<()> {
        let mut worst: Option<u32> = None;
        let mut dead: Option<(usize, u64)> = None;
        let mut expired = false;
        for shard in &self.shards {
            crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
            let mut st = shard.state.lock();
            // BOUNDED-BY: the retry sweeper retires every unacked entry
            // (ack, expiry after the retry budget, or dest-failure sweep),
            // and each retirement signals this condvar.
            while !st.map.is_empty() {
                shard.cond.wait(&mut st);
            }
            if let Some(m) = st.failed.drain(..).max() {
                worst = Some(worst.map_or(m, |w| w.max(m)));
            }
            if st.expired {
                expired = true;
                st.expired = false;
            }
            if let Some(d) = st.dead.take() {
                dead = Some(dead.map_or(d, |w: (usize, u64)| if d.1 > w.1 { d } else { w }));
            }
        }
        // Precedence: "the host is dead" > "your time budget expired" >
        // "the link gave up" — each outranks strictly less specific news.
        match (dead, expired, worst) {
            (Some((pe, epoch)), _, _) => Err(NtbError::PeFailed { pe, epoch }),
            (None, true, _) => Err(NtbError::DeadlineExceeded),
            (None, false, Some(attempts)) => Err(NtbError::LinkFailed { attempts }),
            (None, false, None) => Ok(()),
        }
    }

    /// Abandon every unacked put destined for `pe` — the failure detector
    /// confirmed it dead at `epoch`, so no ack will ever come. Returns the
    /// abandoned put ids (for `PutAbandon` trace emission). The next
    /// [`Self::quiet`] reports [`NtbError::PeFailed`].
    pub fn fail_dest(&self, pe: usize, epoch: u64) -> Vec<u32> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
            let mut st = shard.state.lock();
            let doomed: Vec<u32> =
                st.map.iter().filter(|(_, p)| p.dest == pe).map(|(&id, _)| id).collect();
            if doomed.is_empty() {
                continue;
            }
            for id in &doomed {
                st.map.remove(id);
            }
            st.dead = Some((pe, epoch));
            if st.map.is_empty() {
                shard.cond.notify_all();
            }
            ids.extend(doomed);
        }
        ids
    }

    /// Drop every entry and failure record (a restarting node starts with
    /// a clean ledger).
    pub fn reset(&self) {
        for shard in &self.shards {
            crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
            let mut st = shard.state.lock();
            st.map.clear();
            st.failed.clear();
            st.expired = false;
            st.dead = None;
            shard.cond.notify_all();
        }
    }

    /// Whether any puts have been abandoned and not yet reported.
    pub fn has_failures(&self) -> bool {
        crate::lockdep_track!(&crate::lockdep::NET_UNACKED_SHARD);
        self.shards.iter().any(|s| {
            let st = s.state.lock();
            !st.failed.is_empty() || st.expired || st.dead.is_some()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_fill_wait() {
        let p = PendingOps::new();
        let id = p.register(8, 1);
        assert_eq!(p.fill(id, 0, &[1, 2, 3, 4]).unwrap(), FillOutcome::Filled);
        assert_eq!(p.fill(id, 4, &[5, 6, 7, 8]).unwrap(), FillOutcome::Filled);
        let buf = p.wait(id, &TimeModel::zero()).unwrap();
        assert_eq!(buf, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn zero_length_completes_immediately() {
        let p = PendingOps::new();
        let id = p.register(0, 1);
        assert_eq!(p.wait(id, &TimeModel::zero()).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn stale_fill_ignored_unknown_wait_errors() {
        let p = PendingOps::new();
        assert_eq!(p.fill(99, 0, &[1]).unwrap(), FillOutcome::Stale);
        assert!(p.wait(99, &TimeModel::zero()).is_err());
    }

    #[test]
    fn duplicate_chunk_suppressed() {
        let p = PendingOps::new();
        let id = p.register(8, 1);
        assert_eq!(p.fill(id, 0, &[1, 2, 3, 4]).unwrap(), FillOutcome::Filled);
        // Retransmitted response redelivers the same chunk with different
        // bytes; the first deposit wins and `received` is not double
        // counted (a double count would mark the entry done early).
        assert_eq!(p.fill(id, 0, &[9, 9, 9, 9]).unwrap(), FillOutcome::Duplicate);
        assert_eq!(p.in_flight(), 1);
        assert_eq!(p.fill(id, 4, &[5, 6, 7, 8]).unwrap(), FillOutcome::Filled);
        let buf = p.wait(id, &TimeModel::zero()).unwrap();
        assert_eq!(buf, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn overflow_chunk_rejected() {
        let p = PendingOps::new();
        let id = p.register(4, 1);
        assert!(p.fill(id, 2, &[0u8; 4]).is_err());
    }

    #[test]
    fn wait_blocks_until_fill_from_other_thread() {
        let p = Arc::new(PendingOps::new());
        let id = p.register(3, 1);
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            p2.fill(id, 0, b"abc").unwrap();
        });
        let buf = p.wait(id, &TimeModel::zero()).unwrap();
        assert_eq!(buf, b"abc");
        h.join().unwrap();
    }

    #[test]
    fn polled_wait_quantizes_latency() {
        // With an enabled model and a 5ms poll interval, even an instant
        // completion takes at least one interval to be observed if it
        // lands after the first check.
        let mut model = TimeModel::paper();
        model.get_poll_interval = Duration::from_millis(5);
        let p = Arc::new(PendingOps::new());
        let id = p.register(1, 1);
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            p2.fill(id, 0, &[9]).unwrap();
        });
        let t0 = std::time::Instant::now();
        let buf = p.wait(id, &model).unwrap();
        assert_eq!(buf, vec![9]);
        assert!(t0.elapsed() >= Duration::from_millis(5), "quantized to poll interval");
        h.join().unwrap();
    }

    #[test]
    fn ids_unique() {
        let p = PendingOps::new();
        let a = p.register(1, 1);
        let b = p.register(1, 2);
        assert_ne!(a, b);
    }

    fn tight_policy() -> RetryPolicy {
        RetryPolicy {
            ack_timeout: Duration::from_millis(10),
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn wait_with_retry_resends_then_completes() {
        let p = Arc::new(PendingOps::new());
        let id = p.register(2, 1);
        let resent = Arc::new(AtomicU32::new(0));
        let (p2, r2) = (Arc::clone(&p), Arc::clone(&resent));
        // "Network": completes the operation only after the first
        // retransmission arrives.
        let buf = p.wait_with_retry(id, &TimeModel::zero(), &tight_policy(), |attempt| {
            r2.fetch_add(1, Ordering::Relaxed);
            assert!(attempt >= 1);
            p2.fill(id, 0, b"ok").map(|_| ())
        });
        assert_eq!(buf.unwrap(), b"ok");
        assert_eq!(resent.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn wait_with_retry_bounded_failure() {
        let p = PendingOps::new();
        let id = p.register(4, 1);
        let policy = tight_policy();
        let t0 = std::time::Instant::now();
        let err = p.wait_with_retry(id, &TimeModel::zero(), &policy, |_| Ok(())).unwrap_err();
        assert_eq!(err, NtbError::LinkFailed { attempts: 3 });
        assert!(t0.elapsed() <= policy.worst_case() + Duration::from_secs(1));
        // The entry is gone; stragglers become stale.
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.fill(id, 0, &[0u8; 4]).unwrap(), FillOutcome::Stale);
    }

    #[test]
    fn wait_with_retry_transient_resend_errors_tolerated() {
        let p = Arc::new(PendingOps::new());
        let id = p.register(1, 1);
        let p2 = Arc::clone(&p);
        let buf = p.wait_with_retry(id, &TimeModel::zero(), &tight_policy(), |attempt| {
            if attempt == 1 {
                Err(NtbError::LinkDown)
            } else {
                p2.fill(id, 0, &[7]).map(|_| ())
            }
        });
        assert_eq!(buf.unwrap(), vec![7]);
    }

    #[test]
    fn wait_with_retry_until_surfaces_deadline_promptly() {
        // An op deadline far shorter than the retry schedule must clip
        // the wait: the caller gets DeadlineExceeded in roughly the
        // deadline, not after burning the full link-retry budget.
        let p = PendingOps::new();
        let id = p.register(4, 1);
        let policy = RetryPolicy {
            ack_timeout: Duration::from_millis(200),
            max_retries: 5,
            ..RetryPolicy::default()
        };
        let t0 = std::time::Instant::now();
        let err = p
            .wait_with_retry_until(
                id,
                &TimeModel::zero(),
                &policy,
                Some(std::time::Instant::now() + Duration::from_millis(20)),
                |_| Ok(()),
            )
            .unwrap_err();
        assert_eq!(err, NtbError::DeadlineExceeded);
        assert!(
            t0.elapsed() < policy.ack_timeout,
            "deadline must clip the first retry window, got {:?}",
            t0.elapsed()
        );
        // The entry is abandoned; stragglers become stale.
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.fill(id, 0, &[0u8; 4]).unwrap(), FillOutcome::Stale);
    }

    #[test]
    fn wait_with_retry_until_completion_beats_deadline() {
        let p = Arc::new(PendingOps::new());
        let id = p.register(2, 1);
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            p2.fill(id, 0, b"ok").unwrap();
        });
        let buf = p.wait_with_retry_until(
            id,
            &TimeModel::zero(),
            &tight_policy(),
            Some(std::time::Instant::now() + Duration::from_secs(5)),
            |_| Ok(()),
        );
        assert_eq!(buf.unwrap(), b"ok");
        h.join().unwrap();
    }

    #[test]
    fn allocate_id_never_collides_with_registered_ids() {
        let p = PendingOps::new();
        let a = p.allocate_id();
        let b = p.register(1, 1);
        let c = p.allocate_id();
        assert!(a != b && b != c && a != c);
        // The bare id has no entry: fills against it are stale.
        assert_eq!(p.fill(a, 0, &[1]).unwrap(), FillOutcome::Stale);
    }

    fn put_entry(u: &UnackedPuts, deadline: Instant) -> u32 {
        u.register(1, 0, vec![1, 2, 3], TransferMode::Dma, deadline, 0)
    }

    #[test]
    fn unacked_puts_flow() {
        let u = UnackedPuts::new();
        let far = Instant::now() + Duration::from_secs(60);
        let a = put_entry(&u, far);
        let b = put_entry(&u, far);
        assert_ne!(a, b);
        assert_eq!(u.current(), 2);
        assert!(u.ack(a));
        assert!(!u.ack(a), "duplicate ack is harmless");
        assert!(u.ack(b));
        assert_eq!(u.current(), 0);
        u.quiet().unwrap();
    }

    #[test]
    fn quiet_blocks_until_acked() {
        let u = Arc::new(UnackedPuts::new());
        let id = put_entry(&u, Instant::now() + Duration::from_secs(60));
        let u2 = Arc::clone(&u);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            u2.ack(id);
        });
        u.quiet().unwrap();
        assert_eq!(u.current(), 0);
        h.join().unwrap();
    }

    #[test]
    fn overdue_and_attempts() {
        let u = UnackedPuts::new();
        let now = Instant::now();
        let late = put_entry(&u, now - Duration::from_millis(1));
        let _fresh = put_entry(&u, now + Duration::from_secs(60));
        let overdue = u.overdue(now);
        assert_eq!(overdue.len(), 1);
        assert_eq!(overdue[0].0, late);
        assert_eq!(overdue[0].1.attempts, 1);
        assert_eq!(u.note_attempt(late, now + Duration::from_secs(60)), Some(2));
        assert!(u.overdue(Instant::now()).is_empty());
        assert_eq!(u.note_attempt(9999, now), None);
    }

    #[test]
    fn failed_put_reported_by_quiet_then_cleared() {
        let u = UnackedPuts::new();
        let id = put_entry(&u, Instant::now());
        u.note_attempt(id, Instant::now());
        assert!(u.fail(id));
        assert!(u.has_failures());
        assert_eq!(u.quiet().unwrap_err(), NtbError::LinkFailed { attempts: 2 });
        u.quiet().expect("failure record cleared by the reporting quiet");
    }

    #[test]
    fn expired_put_reported_by_quiet_then_cleared() {
        let u = UnackedPuts::new();
        let id = put_entry(&u, Instant::now());
        assert!(u.fail_expired(id));
        assert!(!u.fail_expired(id), "already retired");
        assert!(u.has_failures());
        assert_eq!(u.quiet().unwrap_err(), NtbError::DeadlineExceeded);
        u.quiet().expect("expiry record cleared by the reporting quiet");
    }

    #[test]
    fn deadline_expiry_outranks_link_failure_in_quiet() {
        let u = UnackedPuts::new();
        let linky = put_entry(&u, Instant::now());
        let late = put_entry(&u, Instant::now());
        assert!(u.fail(linky));
        assert!(u.fail_expired(late));
        assert_eq!(u.quiet().unwrap_err(), NtbError::DeadlineExceeded);
        // Failure record is consumed; the next quiet is clean.
        u.quiet().unwrap();
    }

    #[test]
    fn pending_fail_dest_wakes_waiter_with_typed_error() {
        let p = Arc::new(PendingOps::new());
        let id = p.register(4, 2);
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(p2.fail_dest(2, NtbError::PeFailed { pe: 2, epoch: 3 }), 1);
        });
        let err = p.wait(id, &TimeModel::zero()).unwrap_err();
        assert_eq!(err, NtbError::PeFailed { pe: 2, epoch: 3 });
        h.join().unwrap();
        assert_eq!(p.in_flight(), 0, "failed entry removed on observation");
        // Entries aimed at other PEs are untouched.
        let live = p.register(1, 3);
        assert_eq!(p.fail_dest(2, NtbError::PeFailed { pe: 2, epoch: 3 }), 0);
        p.fill(live, 0, &[1]).unwrap();
        assert_eq!(p.wait(live, &TimeModel::zero()).unwrap(), vec![1]);
    }

    #[test]
    fn unacked_fail_dest_reports_pe_failed_over_link_failed() {
        let u = UnackedPuts::new();
        let now = Instant::now();
        let doomed = u.register(2, 0, vec![9], TransferMode::Dma, now, 0);
        let other = put_entry(&u, now); // dest 1
        assert!(u.fail(other), "plain link-budget abandonment");
        assert_eq!(u.fail_dest(2, 5), vec![doomed]);
        assert_eq!(u.current(), 0);
        // Node death outranks the link failure in the combined report.
        assert_eq!(u.quiet().unwrap_err(), NtbError::PeFailed { pe: 2, epoch: 5 });
        u.quiet().expect("failure records consumed");
    }

    #[test]
    fn reset_clears_tables_and_failure_records() {
        let p = PendingOps::new();
        p.register(4, 1);
        p.reset();
        assert_eq!(p.in_flight(), 0);
        let u = UnackedPuts::new();
        let id = put_entry(&u, Instant::now());
        assert!(u.fail(id));
        u.fail_dest(1, 1);
        u.reset();
        assert_eq!(u.current(), 0);
        assert!(!u.has_failures());
        u.quiet().unwrap();
    }

    #[test]
    fn fail_after_ack_records_nothing() {
        // The sweeper's overdue snapshot can race a landing ack: once the
        // put is acked, the late fail() must be a no-op — no failure
        // record, no LinkFailed from a quiet of puts that all completed.
        let u = UnackedPuts::new();
        let id = put_entry(&u, Instant::now());
        assert!(u.ack(id));
        assert!(!u.fail(id), "acked put must not be failable");
        assert!(!u.has_failures());
        u.quiet().expect("all puts acked; no stale failure record");
    }
}
