//! Store-and-forward queues: the bypass-buffer transmit path.
//!
//! A service thread must never block on an outbound mailbox while its own
//! inbound mailbox is full — with every host doing that, a loaded ring
//! deadlocks (the classic wormhole cycle). The paper's design avoids this
//! with its per-host **bypass buffer**: forwarded payloads are staged out
//! of the window into host memory and re-transmitted asynchronously. The
//! model mirrors that exactly: each link endpoint owns a [`ForwardQueue`]
//! consumed by a dedicated forwarder thread, so inbound frames are always
//! drained promptly and acknowledgements keep flowing.
//!
//! The queue is **bounded** (DESIGN.md §14): staging memory is part of
//! the bypass buffer's budget, and an unbounded queue just converts
//! overload into an out-of-memory kill some minutes later. A push against
//! a full queue is *shed* with a typed [`PushOutcome`], never silently
//! absorbed, and jobs whose deadline has already expired are shed at both
//! ends of the queue — there is no point paying wire time for a result
//! nobody is waiting for. High/low occupancy watermarks drive a
//! congestion bit the credit advertiser reads: above the high mark the
//! endpoint stops granting new credits to its peer sender, and grants
//! resume once the drain falls below the low mark (hysteresis keeps the
//! bit from flapping).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::frame::Frame;

/// One queued transmission.
#[derive(Debug)]
pub struct ForwardJob {
    /// Frame to send (seq is reassigned by the mailbox).
    pub frame: Frame,
    /// Staged payload bytes (the bypass-buffer copy), if the kind carries
    /// payload.
    pub payload: Option<Vec<u8>>,
    /// Modelled think time charged before transmitting (bypass forwarding
    /// delay, get-response pacing, retry backoff).
    pub think: Duration,
    /// Transmission attempts so far; a transiently failed send is
    /// re-dispatched until this reaches the retry budget, after which the
    /// frame is dropped (the origin's end-to-end retransmission recovers).
    pub attempts: u32,
}

/// What happened to a pushed job. Every non-`Queued` outcome means the
/// job was dropped — typed so the caller can count and trace the shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued; `depth` is the occupancy including this job.
    Queued {
        /// Queue depth right after the enqueue.
        depth: usize,
        /// The capacity bound in force at the enqueue (paired with
        /// `depth` so trace consumers see a consistent snapshot even if
        /// a resource fault shrinks the bound a microsecond later).
        capacity: usize,
    },
    /// The queue is at capacity: load shedding.
    ShedOverload {
        /// Occupancy at the time of the rejection.
        occupancy: usize,
        /// The advertised capacity that was hit.
        capacity: usize,
    },
    /// The job's deadline had already expired at `now_us`.
    ShedExpired,
    /// The network is shutting down.
    ShedShutdown,
}

impl PushOutcome {
    /// True when the job made it into the queue.
    pub fn queued(&self) -> bool {
        matches!(self, PushOutcome::Queued { .. })
    }
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<ForwardJob>,
    shutdown: bool,
}

/// A bounded MPSC queue feeding one forwarder thread.
#[derive(Debug)]
pub struct ForwardQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    /// Capacity bound; atomic so a resource fault can shrink it mid-run.
    capacity: AtomicUsize,
    /// Occupancy at/above which the congestion bit is raised.
    high_watermark: AtomicUsize,
    /// Occupancy at/below which the congestion bit clears.
    low_watermark: AtomicUsize,
    congested: AtomicBool,
}

impl ForwardQueue {
    /// Bounded queue; the watermarks default to 3/4 (high) and 1/2 (low)
    /// of `capacity`. Every transmit-path queue MUST carry a bound — the
    /// assert is the overload model's backstop against a future unbounded
    /// re-introduction.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_watermarks(capacity, capacity * 3 / 4, capacity / 2)
    }

    /// Bounded queue with explicit congestion watermarks.
    pub fn with_watermarks(capacity: usize, high: usize, low: usize) -> Self {
        assert!(capacity > 0, "every transmit-path queue must be bounded (capacity >= 1)");
        let high = high.clamp(1, capacity);
        let low = low.min(high);
        ForwardQueue {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            capacity: AtomicUsize::new(capacity),
            high_watermark: AtomicUsize::new(high),
            low_watermark: AtomicUsize::new(low),
            congested: AtomicBool::new(false),
        }
    }

    /// Enqueue a job; wakes the forwarder. `now_us` is the current time
    /// in microseconds since the network epoch, used to shed work whose
    /// deadline already passed (0 disables the check for callers outside
    /// a network context).
    #[must_use = "a shed job must be counted, not ignored"]
    pub fn push(&self, job: ForwardJob, now_us: u32) -> PushOutcome {
        crate::lockdep_track!(&crate::lockdep::NET_FORWARD);
        if job.frame.deadline_expired(now_us) {
            return PushOutcome::ShedExpired;
        }
        let mut st = self.state.lock();
        if st.shutdown {
            return PushOutcome::ShedShutdown;
        }
        let capacity = self.capacity();
        if st.jobs.len() >= capacity {
            return PushOutcome::ShedOverload { occupancy: st.jobs.len(), capacity };
        }
        st.jobs.push_back(job);
        let depth = st.jobs.len();
        // lint: relaxed-ok(congestion hint computed under the queue lock; readers tolerate staleness)
        if depth >= self.high_watermark.load(Ordering::Relaxed) {
            // lint: relaxed-ok(advisory hint; the credit path re-checks before granting)
            self.congested.store(true, Ordering::Relaxed);
        }
        self.cond.notify_one();
        PushOutcome::Queued { depth, capacity }
    }

    /// Dequeue the next job; `None` once shut down *and* drained.
    pub fn pop(&self) -> Option<ForwardJob> {
        crate::lockdep_track!(&crate::lockdep::NET_FORWARD);
        let mut st = self.state.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                // lint: relaxed-ok(congestion hint computed under the queue lock; readers tolerate staleness)
                if st.jobs.len() <= self.low_watermark.load(Ordering::Relaxed) {
                    // lint: relaxed-ok(advisory hint; the credit path re-checks before granting)
                    self.congested.store(false, Ordering::Relaxed);
                }
                return Some(job);
            }
            if st.shutdown {
                return None;
            }
            self.cond.wait(&mut st);
        }
    }

    /// Begin shutdown: queued jobs still drain, new pushes are shed.
    pub fn shutdown(&self) {
        crate::lockdep_track!(&crate::lockdep::NET_FORWARD);
        let mut st = self.state.lock();
        st.shutdown = true;
        self.cond.notify_all();
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().jobs.len()
    }

    /// The current capacity bound.
    pub fn capacity(&self) -> usize {
        // lint: relaxed-ok(single counter read; push validates under the queue lock)
        self.capacity.load(Ordering::Relaxed)
    }

    /// Shrink (or grow) the bound mid-run — the `ShrinkForwardQueue`
    /// resource fault. Watermarks are re-derived from the new capacity;
    /// jobs already queued above the new bound stay and drain normally,
    /// but no new job is admitted until occupancy falls below it.
    pub fn set_capacity(&self, capacity: usize) {
        assert!(capacity > 0, "every transmit-path queue must be bounded (capacity >= 1)");
        // Take the lock so a concurrent push sees a consistent
        // capacity/watermark set.
        let st = self.state.lock();
        // lint: relaxed-ok(written under the queue lock; lone readers tolerate staleness)
        self.capacity.store(capacity, Ordering::Relaxed);
        // lint: relaxed-ok(written under the queue lock; lone readers tolerate staleness)
        self.high_watermark.store((capacity * 3 / 4).max(1), Ordering::Relaxed);
        // lint: relaxed-ok(written under the queue lock; lone readers tolerate staleness)
        self.low_watermark.store(capacity / 2, Ordering::Relaxed);
        if st.jobs.len() >= (capacity * 3 / 4).max(1) {
            // lint: relaxed-ok(advisory hint; the credit path re-checks before granting)
            self.congested.store(true, Ordering::Relaxed);
        }
    }

    /// True while occupancy sits above the high watermark (hysteresis:
    /// clears only once the drain reaches the low watermark). The credit
    /// advertiser withholds new grants while this is set.
    pub fn congested(&self) -> bool {
        // lint: relaxed-ok(advisory hint; the credit path re-checks before granting)
        self.congested.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntb_sim::TransferMode;
    use std::sync::Arc;

    fn job(n: u32) -> ForwardJob {
        ForwardJob {
            frame: Frame::put(0, 1, n, 0, 0, TransferMode::Dma),
            payload: Some(vec![0u8; n as usize]),
            think: Duration::ZERO,
            attempts: 0,
        }
    }

    fn expired_job(n: u32, deadline_us: u32) -> ForwardJob {
        ForwardJob {
            frame: Frame::put(0, 1, n, 0, 0, TransferMode::Dma).with_deadline_us(deadline_us),
            payload: None,
            think: Duration::ZERO,
            attempts: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let q = ForwardQueue::bounded(8);
        assert!(q.push(job(1), 0).queued());
        assert!(q.push(job(2), 0).queued());
        assert!(q.push(job(3), 0).queued());
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop().unwrap().frame.len, 1);
        assert_eq!(q.pop().unwrap().frame.len, 2);
        assert_eq!(q.pop().unwrap().frame.len, 3);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(ForwardQueue::bounded(8));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().unwrap().frame.len);
        std::thread::sleep(Duration::from_millis(10));
        assert!(q.push(job(42), 0).queued());
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = ForwardQueue::bounded(8);
        assert!(q.push(job(7), 0).queued());
        q.shutdown();
        assert_eq!(q.pop().unwrap().frame.len, 7);
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_after_shutdown_shed() {
        let q = ForwardQueue::bounded(8);
        q.shutdown();
        assert_eq!(q.push(job(1), 0), PushOutcome::ShedShutdown);
        assert_eq!(q.depth(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn shutdown_wakes_blocked_pop() {
        let q = Arc::new(ForwardQueue::bounded(8));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().is_none());
        std::thread::sleep(Duration::from_millis(10));
        q.shutdown();
        assert!(h.join().unwrap());
    }

    #[test]
    fn full_queue_sheds_with_typed_outcome() {
        let q = ForwardQueue::bounded(2);
        assert!(q.push(job(1), 0).queued());
        assert!(q.push(job(2), 0).queued());
        assert_eq!(q.push(job(3), 0), PushOutcome::ShedOverload { occupancy: 2, capacity: 2 });
        assert_eq!(q.depth(), 2);
        // Draining one makes room again.
        q.pop().unwrap();
        assert!(q.push(job(3), 0).queued());
    }

    #[test]
    fn expired_job_shed_at_push() {
        let q = ForwardQueue::bounded(4);
        assert_eq!(q.push(expired_job(1, 100), 200), PushOutcome::ShedExpired);
        // Same deadline still in the future: admitted.
        assert!(q.push(expired_job(1, 100), 50).queued());
        // No deadline (0): never sheds regardless of the clock.
        assert!(q.push(job(2), u32::MAX).queued());
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn watermarks_drive_congestion_hysteresis() {
        let q = ForwardQueue::with_watermarks(4, 3, 1);
        assert!(!q.congested());
        assert!(q.push(job(1), 0).queued());
        assert!(q.push(job(2), 0).queued());
        assert!(!q.congested());
        assert!(q.push(job(3), 0).queued()); // depth 3 = high mark
        assert!(q.congested());
        q.pop().unwrap(); // depth 2: still above low mark
        assert!(q.congested());
        q.pop().unwrap(); // depth 1 = low mark: clears
        assert!(!q.congested());
    }

    #[test]
    fn capacity_shrink_applies_to_future_pushes() {
        let q = ForwardQueue::bounded(8);
        for i in 0..4 {
            assert!(q.push(job(i), 0).queued());
        }
        q.set_capacity(2);
        assert_eq!(q.capacity(), 2);
        // Over the new bound: shed, but the queued backlog survives.
        assert_eq!(q.push(job(9), 0), PushOutcome::ShedOverload { occupancy: 4, capacity: 2 });
        assert_eq!(q.depth(), 4);
        for _ in 0..3 {
            q.pop().unwrap();
        }
        assert!(q.push(job(9), 0).queued());
    }

    #[test]
    #[should_panic(expected = "must be bounded")]
    fn zero_capacity_rejected() {
        let _ = ForwardQueue::bounded(0);
    }
}
