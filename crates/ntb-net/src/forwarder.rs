//! Store-and-forward queues: the bypass-buffer transmit path.
//!
//! A service thread must never block on an outbound mailbox while its own
//! inbound mailbox is full — with every host doing that, a loaded ring
//! deadlocks (the classic wormhole cycle). The paper's design avoids this
//! with its per-host **bypass buffer**: forwarded payloads are staged out
//! of the window into host memory and re-transmitted asynchronously. The
//! model mirrors that exactly: each link endpoint owns a [`ForwardQueue`]
//! consumed by a dedicated forwarder thread, so inbound frames are always
//! drained promptly and acknowledgements keep flowing.

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::frame::Frame;

/// One queued transmission.
#[derive(Debug)]
pub struct ForwardJob {
    /// Frame to send (seq is reassigned by the mailbox).
    pub frame: Frame,
    /// Staged payload bytes (the bypass-buffer copy), if the kind carries
    /// payload.
    pub payload: Option<Vec<u8>>,
    /// Modelled think time charged before transmitting (bypass forwarding
    /// delay, get-response pacing, retry backoff).
    pub think: Duration,
    /// Transmission attempts so far; a transiently failed send is
    /// re-dispatched until this reaches the retry budget, after which the
    /// frame is dropped (the origin's end-to-end retransmission recovers).
    pub attempts: u32,
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<ForwardJob>,
    shutdown: bool,
}

/// An unbounded MPSC queue feeding one forwarder thread.
#[derive(Debug, Default)]
pub struct ForwardQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
}

impl ForwardQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a job; wakes the forwarder.
    pub fn push(&self, job: ForwardJob) {
        crate::lockdep_track!(&crate::lockdep::NET_FORWARD);
        let mut st = self.state.lock();
        if st.shutdown {
            return; // network is going down; drop silently
        }
        st.jobs.push_back(job);
        self.cond.notify_one();
    }

    /// Dequeue the next job; `None` once shut down *and* drained.
    pub fn pop(&self) -> Option<ForwardJob> {
        crate::lockdep_track!(&crate::lockdep::NET_FORWARD);
        let mut st = self.state.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.shutdown {
                return None;
            }
            self.cond.wait(&mut st);
        }
    }

    /// Begin shutdown: queued jobs still drain, new pushes are dropped.
    pub fn shutdown(&self) {
        crate::lockdep_track!(&crate::lockdep::NET_FORWARD);
        let mut st = self.state.lock();
        st.shutdown = true;
        self.cond.notify_all();
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntb_sim::TransferMode;
    use std::sync::Arc;

    fn job(n: u32) -> ForwardJob {
        ForwardJob {
            frame: Frame::put(0, 1, n, 0, 0, TransferMode::Dma),
            payload: Some(vec![0u8; n as usize]),
            think: Duration::ZERO,
            attempts: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let q = ForwardQueue::new();
        q.push(job(1));
        q.push(job(2));
        q.push(job(3));
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop().unwrap().frame.len, 1);
        assert_eq!(q.pop().unwrap().frame.len, 2);
        assert_eq!(q.pop().unwrap().frame.len, 3);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(ForwardQueue::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().unwrap().frame.len);
        std::thread::sleep(Duration::from_millis(10));
        q.push(job(42));
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = ForwardQueue::new();
        q.push(job(7));
        q.shutdown();
        assert_eq!(q.pop().unwrap().frame.len, 7);
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_after_shutdown_dropped() {
        let q = ForwardQueue::new();
        q.shutdown();
        q.push(job(1));
        assert_eq!(q.depth(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn shutdown_wakes_blocked_pop() {
        let q = Arc::new(ForwardQueue::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().is_none());
        std::thread::sleep(Duration::from_millis(10));
        q.shutdown();
        assert!(h.join().unwrap());
    }
}
