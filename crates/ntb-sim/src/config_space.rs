//! PCIe configuration space: the enumeration surface of the NTB adapter.
//!
//! Before any window is programmed, the host's PCI subsystem discovers
//! the adapter by walking its Type-0 configuration header: vendor/device
//! IDs (the paper's adapters are PLX PEX 8733/8749), the command/status
//! registers, and the six Base Address Registers with their sizing
//! protocol (write all-ones, read back the size mask). The model
//! implements that protocol faithfully so the `connect_ports` setup is
//! the same "probe, size, assign, enable" sequence a real NTB driver
//! performs.

use parking_lot::Mutex;

use crate::bar::{BarConfig, BarKind};
use crate::error::{NtbError, Result};

/// PLX Technology's PCI vendor id.
pub const VENDOR_PLX: u16 = 0x10B5;
/// PEX 8749 device id (the 48-lane multi-root switch of the paper).
pub const DEVICE_PEX8749: u16 = 0x8749;
/// PEX 8733 device id (the 32-lane part).
pub const DEVICE_PEX8733: u16 = 0x8733;
/// Class code for "bridge device, other" — how NTB functions enumerate.
pub const CLASS_BRIDGE_OTHER: u32 = 0x068000;

/// Register byte offsets in the Type-0 header.
mod regs {
    pub const VENDOR_DEVICE: usize = 0x00;
    pub const COMMAND_STATUS: usize = 0x04;
    pub const CLASS_REVISION: usize = 0x08;
    pub const BAR0: usize = 0x10;
}

/// Command-register bits.
pub mod command {
    /// Memory-space decoding enabled.
    pub const MEMORY_SPACE: u16 = 1 << 1;
    /// Bus-mastering (DMA) enabled.
    pub const BUS_MASTER: u16 = 1 << 2;
}

const BAR_COUNT: usize = 6;
/// Bit 2 of a memory BAR: 64-bit decoder (consumes the next BAR slot).
const BAR_TYPE_64: u32 = 0b100;

#[derive(Debug, Clone, Copy, Default)]
struct BarSlot {
    /// Size in bytes (0 = unimplemented slot).
    size: u64,
    /// True if this slot is the low half of a 64-bit BAR.
    is_64: bool,
    /// True if this slot is the *upper* half of the previous 64-bit BAR.
    upper_half: bool,
    /// Value last written by software (address assignment / sizing probe).
    written: u32,
}

/// A Type-0 configuration header with the BAR sizing protocol.
#[derive(Debug)]
pub struct ConfigSpace {
    device_id: u16,
    command: Mutex<u16>,
    bars: Mutex<[BarSlot; BAR_COUNT]>,
}

impl ConfigSpace {
    /// Build the header of an adapter exposing the given windows.
    pub fn new(device_id: u16, windows: &[BarConfig]) -> Result<ConfigSpace> {
        let mut bars = [BarSlot::default(); BAR_COUNT];
        for w in windows {
            w.validate()?;
            let idx = w.index as usize;
            let is_64 = w.kind == BarKind::Bar64;
            if bars[idx].size != 0 || (is_64 && bars[idx + 1].size != 0) {
                return Err(NtbError::BadDescriptor { reason: "overlapping BAR slots" });
            }
            bars[idx] = BarSlot { size: w.size, is_64, upper_half: false, written: 0 };
            if is_64 {
                bars[idx + 1] = BarSlot { size: w.size, is_64: true, upper_half: true, written: 0 };
            }
        }
        Ok(ConfigSpace { device_id, command: Mutex::new(0), bars: Mutex::new(bars) })
    }

    /// Read a 32-bit register at byte offset `offset` (must be aligned).
    pub fn read_dword(&self, offset: usize) -> Result<u32> {
        if !offset.is_multiple_of(4) || offset >= 0x40 {
            return Err(NtbError::BadDescriptor {
                reason: "misaligned or out-of-range config read",
            });
        }
        Ok(match offset {
            regs::VENDOR_DEVICE => (u32::from(self.device_id) << 16) | u32::from(VENDOR_PLX),
            regs::COMMAND_STATUS => u32::from(*self.command.lock()),
            regs::CLASS_REVISION => CLASS_BRIDGE_OTHER << 8, // revision 0
            off if (regs::BAR0..regs::BAR0 + 4 * BAR_COUNT).contains(&off) => {
                let idx = (off - regs::BAR0) / 4;
                self.read_bar(idx)
            }
            _ => 0,
        })
    }

    /// Write a 32-bit register (command register and BARs are writable;
    /// everything else is read-only and silently ignores writes, like
    /// hardware).
    pub fn write_dword(&self, offset: usize, value: u32) -> Result<()> {
        if !offset.is_multiple_of(4) || offset >= 0x40 {
            return Err(NtbError::BadDescriptor {
                reason: "misaligned or out-of-range config write",
            });
        }
        match offset {
            regs::COMMAND_STATUS => *self.command.lock() = value as u16,
            off if (regs::BAR0..regs::BAR0 + 4 * BAR_COUNT).contains(&off) => {
                let idx = (off - regs::BAR0) / 4;
                self.bars.lock()[idx].written = value;
            }
            _ => {}
        }
        Ok(())
    }

    fn read_bar(&self, idx: usize) -> u32 {
        let bars = self.bars.lock();
        let slot = bars[idx];
        if slot.size == 0 {
            return 0; // unimplemented BAR reads as zero
        }
        if slot.upper_half {
            // Upper half of a 64-bit BAR: sizing probe returns the high
            // size mask, otherwise the written high address bits.
            let low_written = bars[idx - 1].written;
            if low_written == u32::MAX && slot.written == u32::MAX {
                return (!(slot.size - 1) >> 32) as u32;
            }
            return slot.written;
        }
        let type_bits = if slot.is_64 { BAR_TYPE_64 } else { 0 };
        if slot.written == u32::MAX {
            // Sizing probe: size mask in the address bits, type bits kept.
            let mask = !(slot.size - 1) as u32;
            return (mask & !0xF) | type_bits;
        }
        (slot.written & !0xF & !(slot.size as u32).wrapping_sub(1)) | type_bits
    }

    /// The standard driver sizing walk: probe every BAR and return the
    /// discovered `(index, size, is_64bit)` triples.
    pub fn enumerate_bars(&self) -> Vec<(u8, u64, bool)> {
        let mut found = Vec::new();
        let mut idx = 0usize;
        while idx < BAR_COUNT {
            let off = regs::BAR0 + 4 * idx;
            let original = self.read_dword(off).expect("aligned");
            self.write_dword(off, u32::MAX).expect("probe");
            let probed = self.read_dword(off).expect("aligned");
            self.write_dword(off, original).expect("restore");
            if probed == 0 {
                idx += 1;
                continue;
            }
            let is_64 = probed & BAR_TYPE_64 != 0;
            let mut size_mask = u64::from(probed & !0xF);
            if is_64 {
                let off_hi = off + 4;
                let orig_hi = self.read_dword(off_hi).expect("aligned");
                self.write_dword(off, u32::MAX).expect("probe lo");
                self.write_dword(off_hi, u32::MAX).expect("probe hi");
                let hi = self.read_dword(off_hi).expect("aligned");
                self.write_dword(off, original).expect("restore lo");
                self.write_dword(off_hi, orig_hi).expect("restore hi");
                size_mask |= u64::from(hi) << 32;
                size_mask |= 0xFFFF_FFFF_0000_0000 & if hi == 0 { 0 } else { u64::MAX };
            } else {
                size_mask |= 0xFFFF_FFFF_0000_0000;
            }
            let size = !(size_mask) + 1;
            found.push((idx as u8, size, is_64));
            idx += if is_64 { 2 } else { 1 };
        }
        found
    }

    /// Enable memory decoding and bus mastering (what the driver does
    /// after address assignment).
    pub fn enable(&self) {
        let mut cmd = self.command.lock();
        *cmd |= command::MEMORY_SPACE | command::BUS_MASTER;
    }

    /// True once memory decoding and DMA are enabled.
    pub fn is_enabled(&self) -> bool {
        let cmd = *self.command.lock();
        cmd & (command::MEMORY_SPACE | command::BUS_MASTER)
            == (command::MEMORY_SPACE | command::BUS_MASTER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::new(
            DEVICE_PEX8749,
            &[BarConfig { index: 2, kind: BarKind::Bar64, size: 4 << 20, translation_base: 0 }],
        )
        .unwrap()
    }

    #[test]
    fn vendor_and_device_ids() {
        let cs = space();
        let vd = cs.read_dword(0x00).unwrap();
        assert_eq!(vd & 0xFFFF, u32::from(VENDOR_PLX));
        assert_eq!(vd >> 16, u32::from(DEVICE_PEX8749));
    }

    #[test]
    fn class_code_is_bridge() {
        let cs = space();
        assert_eq!(cs.read_dword(0x08).unwrap() >> 8, CLASS_BRIDGE_OTHER);
    }

    #[test]
    fn unimplemented_bars_read_zero() {
        let cs = space();
        assert_eq!(cs.read_dword(0x10).unwrap(), 0, "BAR0 empty");
        assert_eq!(cs.read_dword(0x14).unwrap(), 0, "BAR1 empty");
    }

    #[test]
    fn bar_sizing_protocol() {
        let cs = space();
        // Probe BAR2 (low half).
        cs.write_dword(0x18, u32::MAX).unwrap();
        let low = cs.read_dword(0x18).unwrap();
        assert_eq!(low & BAR_TYPE_64, BAR_TYPE_64, "64-bit type bits");
        assert_eq!(u64::from(low & !0xFu32), (!(4u64 << 20) + 1) & 0xFFFF_FFF0, "low size mask");
        // Probe the upper half.
        cs.write_dword(0x1C, u32::MAX).unwrap();
        let high = cs.read_dword(0x1C).unwrap();
        assert_eq!(high, ((!(4u64 << 20) + 1) >> 32) as u32, "high size mask");
    }

    #[test]
    fn enumerate_discovers_configured_windows() {
        let cs = ConfigSpace::new(
            DEVICE_PEX8733,
            &[
                BarConfig { index: 0, kind: BarKind::Bar32, size: 64 << 10, translation_base: 0 },
                BarConfig { index: 2, kind: BarKind::Bar64, size: 4 << 20, translation_base: 0 },
            ],
        )
        .unwrap();
        let bars = cs.enumerate_bars();
        assert_eq!(bars, vec![(0, 64 << 10, false), (2, 4 << 20, true)]);
    }

    #[test]
    fn address_assignment_masks_low_bits() {
        let cs = space();
        cs.write_dword(0x18, 0xFE00_0123).unwrap(); // unaligned address bits
        let v = cs.read_dword(0x18).unwrap();
        assert_eq!(v & 0xF, BAR_TYPE_64, "type bits preserved, flags area clean");
        assert_eq!(v & !0xF, 0xFE00_0000 & !((4u32 << 20) - 1), "address aligned to size");
    }

    #[test]
    fn command_register_and_enable() {
        let cs = space();
        assert!(!cs.is_enabled());
        cs.enable();
        assert!(cs.is_enabled());
        let cmd = cs.read_dword(0x04).unwrap() as u16;
        assert_eq!(cmd & command::MEMORY_SPACE, command::MEMORY_SPACE);
        assert_eq!(cmd & command::BUS_MASTER, command::BUS_MASTER);
    }

    #[test]
    fn read_only_registers_ignore_writes() {
        let cs = space();
        cs.write_dword(0x00, 0xDEAD_BEEF).unwrap();
        let vd = cs.read_dword(0x00).unwrap();
        assert_eq!(vd & 0xFFFF, u32::from(VENDOR_PLX), "vendor id immutable");
    }

    #[test]
    fn misaligned_access_rejected() {
        let cs = space();
        assert!(cs.read_dword(0x02).is_err());
        assert!(cs.write_dword(0x13, 0).is_err());
        assert!(cs.read_dword(0x40).is_err());
    }

    #[test]
    fn overlapping_bars_rejected() {
        let r = ConfigSpace::new(
            DEVICE_PEX8749,
            &[
                BarConfig { index: 2, kind: BarKind::Bar64, size: 1 << 20, translation_base: 0 },
                BarConfig { index: 3, kind: BarKind::Bar32, size: 1 << 20, translation_base: 0 },
            ],
        );
        assert!(r.is_err(), "BAR3 is the upper half of the 64-bit BAR2");
    }
}
