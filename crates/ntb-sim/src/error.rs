//! Error types for the NTB hardware model.
//!
//! Real NTB transactions fail in observable ways: a TLP that falls outside
//! the BAR limit is dropped (and typically raises an AER error), a requester
//! ID missing from the LUT is rejected, DMA descriptors referencing unmapped
//! memory abort the channel. The model surfaces each of these as a typed
//! error instead of silently corrupting memory, so the upper layers (and the
//! failure-injection tests) can observe them.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NtbError>;

/// Everything that can go wrong inside the NTB model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NtbError {
    /// An access through a translation window fell outside the BAR limit
    /// (paper Fig. 1: accesses are only translated between BAR address and
    /// BAR limit).
    WindowLimitExceeded {
        /// Offset at which the access started.
        offset: u64,
        /// Length of the access in bytes.
        len: u64,
        /// Size of the window in bytes.
        window_size: u64,
    },
    /// An access to a [`Region`](crate::memory::Region) fell outside its
    /// bounds.
    RegionOutOfBounds {
        /// Offset at which the access started.
        offset: u64,
        /// Length of the access in bytes.
        len: u64,
        /// Size of the region in bytes.
        region_size: u64,
    },
    /// The requester ID of a transaction is not present (or not enabled) in
    /// the LUT of the receiving port.
    LutMiss {
        /// Requester id that was looked up.
        requester_id: u16,
    },
    /// A scratchpad register index outside `0..SCRATCHPAD_COUNT`.
    BadScratchpadIndex {
        /// The out-of-range index.
        index: usize,
    },
    /// A doorbell bit outside `0..DOORBELL_BITS`.
    BadDoorbellBit {
        /// The out-of-range bit.
        bit: u32,
    },
    /// The DMA engine was shut down while requests were outstanding.
    DmaShutdown,
    /// A DMA descriptor was malformed (zero length, overlapping source and
    /// destination in the same region, ...).
    BadDescriptor {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The port is not connected to a peer (cable unplugged).
    NotConnected,
    /// Host memory arena exhausted.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// The link is (currently) down: writes, doorbells and DMA through it
    /// are rejected until it comes back. Transient — retry may succeed.
    LinkDown,
    /// A DMA descriptor completed with an error (injected fault or
    /// modelled transfer abort). Transient — the descriptor can be
    /// reissued.
    DmaFault,
    /// Recovery gave up: the operation was retried `attempts` times and
    /// the link never accepted it. Terminal — surfaced to the application
    /// instead of hanging.
    LinkFailed {
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// This node's own hardware is dead (crashed or powered off): its
    /// ports, DMA engine and service threads refuse every operation until
    /// the node is revived. Terminal — distinct from [`LinkDown`],
    /// which is a property of one cable, not of the host.
    ///
    /// [`LinkDown`]: NtbError::LinkDown
    NodeDead,
    /// A *remote* PE was confirmed dead by the failure detector at the
    /// given membership epoch. Terminal — operations addressed to it fail
    /// fast instead of burning the retry budget.
    PeFailed {
        /// The dead PE.
        pe: usize,
        /// Membership epoch at which its death was recorded.
        epoch: u64,
    },
    /// A bounded resource (queue, credit window, retry budget) rejected
    /// new work under load. Terminal for the rejected operation — the
    /// shed is the backpressure signal; blindly retrying would amplify
    /// the very overload that caused it.
    Overloaded {
        /// Which bounded resource shed the work.
        queue: &'static str,
    },
    /// The operation's absolute deadline expired before it completed; the
    /// remaining work was shed instead of being carried stale through the
    /// ring. Terminal — the deadline was the caller's time budget.
    DeadlineExceeded,
}

impl NtbError {
    /// Whether a retry of the failed operation can reasonably succeed.
    /// The recovery layer retries transient errors and propagates the
    /// rest.
    pub fn is_transient(&self) -> bool {
        matches!(self, NtbError::LinkDown | NtbError::DmaFault)
    }
}

impl fmt::Display for NtbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtbError::WindowLimitExceeded { offset, len, window_size } => write!(
                f,
                "window limit exceeded: access [{offset:#x}, {:#x}) outside window of {window_size:#x} bytes",
                offset + len
            ),
            NtbError::RegionOutOfBounds { offset, len, region_size } => write!(
                f,
                "region access out of bounds: [{offset:#x}, {:#x}) outside region of {region_size:#x} bytes",
                offset + len
            ),
            NtbError::LutMiss { requester_id } => {
                write!(f, "LUT miss for requester id {requester_id:#x}")
            }
            NtbError::BadScratchpadIndex { index } => {
                write!(f, "scratchpad index {index} out of range")
            }
            NtbError::BadDoorbellBit { bit } => write!(f, "doorbell bit {bit} out of range"),
            NtbError::DmaShutdown => write!(f, "DMA engine shut down"),
            NtbError::BadDescriptor { reason } => write!(f, "bad DMA descriptor: {reason}"),
            NtbError::NotConnected => write!(f, "NTB port not connected to a peer"),
            NtbError::OutOfMemory { requested, available } => write!(
                f,
                "host memory exhausted: requested {requested} bytes, {available} available"
            ),
            NtbError::LinkDown => write!(f, "NTB link is down"),
            NtbError::DmaFault => write!(f, "DMA descriptor completed with an error"),
            NtbError::LinkFailed { attempts } => {
                write!(f, "link failed: operation abandoned after {attempts} attempts")
            }
            NtbError::NodeDead => write!(f, "node is dead (crashed or powered off)"),
            NtbError::PeFailed { pe, epoch } => {
                write!(f, "PE {pe} confirmed dead at membership epoch {epoch}")
            }
            NtbError::Overloaded { queue } => {
                write!(f, "overloaded: {queue} shed the operation under load")
            }
            NtbError::DeadlineExceeded => {
                write!(f, "operation deadline expired before completion")
            }
        }
    }
}

impl std::error::Error for NtbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_window_limit() {
        let e = NtbError::WindowLimitExceeded { offset: 0x10, len: 0x20, window_size: 0x18 };
        let s = e.to_string();
        assert!(s.contains("window limit exceeded"), "{s}");
        assert!(s.contains("0x30"), "{s}");
    }

    #[test]
    fn display_lut_miss() {
        let e = NtbError::LutMiss { requester_id: 0xab };
        assert!(e.to_string().contains("0xab"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NtbError::DmaShutdown, NtbError::DmaShutdown);
        assert_ne!(NtbError::DmaShutdown, NtbError::NotConnected);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(NtbError::NotConnected);
        assert!(e.to_string().contains("not connected"));
    }

    #[test]
    fn transience_classification() {
        assert!(NtbError::LinkDown.is_transient());
        assert!(NtbError::DmaFault.is_transient());
        assert!(!NtbError::LinkFailed { attempts: 5 }.is_transient());
        assert!(!NtbError::DmaShutdown.is_transient());
        assert!(!NtbError::NotConnected.is_transient());
        // Node-death errors are terminal: retrying against a dead host (or
        // toward a confirmed-dead peer) cannot succeed until a rejoin.
        assert!(!NtbError::NodeDead.is_transient());
        assert!(!NtbError::PeFailed { pe: 2, epoch: 3 }.is_transient());
        // Overload sheds are terminal by design: retrying into a shedding
        // queue amplifies the overload, and an expired deadline cannot
        // un-expire.
        assert!(!NtbError::Overloaded { queue: "forward queue" }.is_transient());
        assert!(!NtbError::DeadlineExceeded.is_transient());
    }

    #[test]
    fn display_fault_variants() {
        assert!(NtbError::LinkDown.to_string().contains("down"));
        assert!(NtbError::LinkFailed { attempts: 7 }.to_string().contains('7'));
        assert!(NtbError::NodeDead.to_string().contains("dead"));
        let pf = NtbError::PeFailed { pe: 4, epoch: 9 }.to_string();
        assert!(pf.contains('4') && pf.contains('9'), "{pf}");
    }

    #[test]
    fn display_overload_variants() {
        let ov = NtbError::Overloaded { queue: "forward queue" }.to_string();
        assert!(ov.contains("overloaded") && ov.contains("forward queue"), "{ov}");
        assert!(NtbError::DeadlineExceeded.to_string().contains("deadline"));
    }
}
