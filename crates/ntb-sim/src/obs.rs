//! Unified event-trace observability: per-PE ring-buffered event logs
//! and a metrics registry shared by every layer of the stack.
//!
//! The simulator, the interconnect protocol (`ntb-net`) and the
//! OpenSHMEM runtime (`shmem-core`) all emit [`TraceEvent`]s into one
//! [`EventLog`] per network. Each PE owns a fixed-capacity ring, so a
//! hot emitter can never grow memory without bound; a single global
//! atomic sequence number gives the merged trace a total order that the
//! protocol invariant checker (`ntb_net::checker`) replays offline.
//!
//! Cost discipline: when tracing is off (the default), every emission
//! site reduces to one relaxed atomic load — the same gating pattern the
//! fault injector uses — so the layer can stay compiled in without
//! shifting the latency figures.
//!
//! The [`MetricsRegistry`] half is always on: per-op-kind latency
//! histograms (log2 buckets) and per-link counters, exportable as JSON
//! and rendered by `shmem-bench` reports.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// `link` value for events not scoped to a single link.
pub const NO_LINK: u16 = u16::MAX;

/// Add to a monotonic event counter.
fn bump(counter: &AtomicU64, n: u64) {
    // lint: relaxed-ok(monotonic counters; readers only need eventual totals)
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Read a monotonic event counter.
fn get(counter: &AtomicU64) -> u64 {
    // lint: relaxed-ok(monotonic counters; snapshots are advisory)
    counter.load(Ordering::Relaxed)
}

/// What happened. One flat namespace across the three layers so a merged
/// trace reads as a single timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    // --- ntb-sim: hardware-ish events -------------------------------
    /// A doorbell bit was rung toward the peer (`op_id` = bit;
    /// `payload[0]` = 1 if the injector dropped it).
    DoorbellSet,
    /// Doorbell bits were cleared at the receiver (`op_id` = mask).
    DoorbellClear,
    /// A scratchpad register was published (`op_id` = register index,
    /// `payload[0]` = value).
    SpadWrite,
    /// A DMA descriptor was queued (`op_id` = job id, `payload` =
    /// [dst_offset, len]).
    DmaSubmit,
    /// A DMA job copied its payload (`op_id` = job id).
    DmaComplete,
    /// A DMA job failed (`op_id` = job id).
    DmaFail,
    /// The emitting PE marked this link endpoint Down.
    LinkDown,
    /// The emitting PE restored this link endpoint to Up.
    LinkUp,
    /// A probe write toward a Down endpoint.
    ProbeTx,
    /// A PE's hardware was killed by fault injection (`op_id` = PE).
    NodeCrash,
    /// A PE's hardware was frozen (`op_id` = PE, `payload[0]` = hold µs).
    NodeFreeze,
    /// A frozen PE was released (`op_id` = PE).
    NodeThaw,
    /// A crashed PE was restarted and begins its rejoin (`op_id` = PE).
    NodeRestart,
    /// A link entered or left a gray-failure slow window (`op_id` =
    /// link, `payload[0]` = wire-time factor in permille; 1000 =
    /// recovered).
    PortSlow,
    /// A resource capacity was shrunk mid-run by the fault plan
    /// (`op_id` = target PE, `payload` = [new capacity, resource code:
    /// 0 = forward queue entries, 1 = host memory bytes]).
    CapacityShrink,

    // --- ntb-net: protocol events -----------------------------------
    /// A frame was published into the peer mailbox (`op_id` = frame aux,
    /// `payload` = [frame kind code, dest]).
    FrameTx,
    /// A frame was dispatched by the service loop (`op_id` = frame aux,
    /// `payload` = [frame kind code, src]).
    FrameRx,
    /// A terminating hop forwarded a frame onward (`op_id` = aux).
    FrameFwd,
    /// Payload checksum mismatch; frame dropped (`op_id` = aux).
    CrcReject,
    /// A put chunk was registered in the unacked table (`op_id` =
    /// put id, `payload` = [dest, len]).
    PutIssue,
    /// A put chunk send succeeded on `link` (`op_id` = put id).
    PutChunkTx,
    /// A put chunk was written into the target heap (`op_id` = put id,
    /// `payload` = [src, offset]).
    PutDeliver,
    /// The origin removed the put from the unacked table — the
    /// exactly-once resolution point (`op_id` = put id).
    PutAcked,
    /// The origin abandoned the put after exhausting retries (`op_id` =
    /// put id, `payload[0]` = attempts).
    PutAbandon,
    /// A PutAck frame arrived (`op_id` = put id). Duplicates appear
    /// here but not as `PutAcked`.
    AckRx,
    /// The sweeper or a wait loop re-sent something (`op_id` = put/req
    /// id, `payload[0]` = attempt number).
    Retransmit,
    /// Traffic steered away from a Down preferred endpoint (`link` =
    /// the Down link avoided, `payload` = [chosen link, dest]).
    Reroute,
    /// A duplicate delivery/ack was suppressed (`op_id` = id).
    DupSuppressed,
    /// A frame was staged into a transmit-ring slot without ringing the
    /// doorbell yet (`op_id` = slot sequence number, `payload` =
    /// [payload len, slot index]).
    SlotPublish,
    /// The service loop consumed one transmit-ring slot (`op_id` = slot
    /// sequence number, `payload` = [sender pe, slot index]).
    SlotDrain,
    /// One coalesced doorbell covering a whole published batch (`op_id`
    /// = first slot sequence in the batch, `payload[0]` = slot count).
    DoorbellCoalesce,
    /// A get request was issued (`op_id` = req id, `payload` =
    /// [offset, len]).
    GetReqTx,
    /// A fresh get-response chunk filled part of the request (`op_id` =
    /// req id, `payload` = [chunk offset, chunk len]).
    GetChunkRx,
    /// The get completed (`op_id` = req id).
    GetDone,
    /// The get was abandoned (`op_id` = req id).
    GetAbandon,
    /// An AMO request was issued (`op_id` = req id, `payload` =
    /// [opcode, offset]).
    AmoReqTx,
    /// The target applied an AMO for the first time (`op_id` = req id,
    /// `payload` = [origin pe, old value]).
    AmoApply,
    /// The target replayed a cached AMO response (`op_id` = req id,
    /// `payload[0]` = origin pe).
    AmoReplay,
    /// The AMO completed at the origin (`op_id` = req id).
    AmoDone,
    /// The AMO was abandoned at the origin (`op_id` = req id).
    AmoAbandon,
    /// The failure detector began suspecting a peer (`op_id` = current
    /// membership epoch, `payload` = [suspect pe, missed beats]).
    PeSuspect,
    /// A peer was confirmed dead (`op_id` = new membership epoch,
    /// `payload[0]` = dead pe).
    PeDead,
    /// A peer rejoined the membership (`op_id` = new membership epoch,
    /// `payload` = [rejoined pe, 1 if crash-restart else 0]).
    PeRejoin,
    /// The emitting PE adopted or originated a membership view (`op_id`
    /// = epoch, `payload[0]` = live bitmap).
    MembershipUpdate,
    /// A router/forwarder dropped a frame — destined to a known-dead PE
    /// or carrying an out-of-range src/dest (`op_id` = frame aux,
    /// `payload` = [dest, reason code]).
    RouterDrop,
    /// A forward job was admitted into a bounded queue (`op_id` = frame
    /// aux, `payload` = [occupancy after the push, capacity]). The
    /// checker's invariant 9 replays these: occupancy must never exceed
    /// the advertised capacity.
    QueueEnqueue,
    /// Work was shed at admission — queue full or credits exhausted
    /// (`op_id` = frame aux, `payload` = [occupancy, capacity]).
    OverloadShed,
    /// Already-expired work was dropped at a hop instead of being
    /// forwarded (`op_id` = frame aux, `payload` = [deadline µs,
    /// now µs]).
    DeadlineShed,
    /// A hop transmitted a deadline-carrying frame (`op_id` = frame
    /// aux, `payload` = [deadline µs, now µs]). The checker's
    /// invariant 10 replays these: now must not exceed the deadline.
    DeadlineTx,
    /// A retransmission was shed because the per-link retry budget ran
    /// dry (`op_id` = put/req id, `payload` = [attempt, 0]).
    RetryShed,
    /// The receiver advertised cumulative flow-control credits on this
    /// link (`payload` = [granted total, 0]).
    CreditGrant,
    /// The sender consumed one flow-control credit (`payload` =
    /// [consumed total, granted total at consume time]). Invariant 9's
    /// conservation half: consumed must never exceed granted.
    CreditConsume,

    // --- shmem-core: API-level events -------------------------------
    /// `shmem_put` entered (`op_id` = per-PE op counter, `payload` =
    /// [dest pe, len]).
    ApiPutIssue,
    /// `shmem_put` returned locally complete (`op_id` matches issue).
    ApiPutComplete,
    /// `shmem_get` entered (`op_id` = op counter, `payload` =
    /// [src pe, len]).
    ApiGetIssue,
    /// `shmem_get` returned with data (`op_id` matches issue).
    ApiGetComplete,
    /// An atomic entered (`op_id` = op counter, `payload` = [target
    /// pe, opcode]).
    ApiAmoIssue,
    /// The atomic returned (`op_id` matches issue).
    ApiAmoComplete,
    /// A PE entered `barrier_all` (`op_id` = per-PE barrier epoch).
    BarrierStart,
    /// One dissemination round finished (`op_id` = epoch,
    /// `payload[0]` = round).
    BarrierRound,
    /// A PE left `barrier_all` (`op_id` = epoch).
    BarrierEnd,
    /// A barrier wait ran out of budget (`op_id` = epoch, `payload` =
    /// [neighbour PE waited on, phase code]).
    BarrierStall,
    /// `shmem_quiet` entered (`op_id` = op counter).
    QuietStart,
    /// `shmem_quiet` returned (`op_id` matches, `payload[0]` = 1 on
    /// error).
    QuietEnd,
    /// `shmem_fence` was called (delegates to quiet).
    Fence,
}

impl EventKind {
    /// Stable lowercase name for dumps and JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::DoorbellSet => "doorbell_set",
            EventKind::DoorbellClear => "doorbell_clear",
            EventKind::SpadWrite => "spad_write",
            EventKind::DmaSubmit => "dma_submit",
            EventKind::DmaComplete => "dma_complete",
            EventKind::DmaFail => "dma_fail",
            EventKind::LinkDown => "link_down",
            EventKind::LinkUp => "link_up",
            EventKind::ProbeTx => "probe_tx",
            EventKind::NodeCrash => "node_crash",
            EventKind::NodeFreeze => "node_freeze",
            EventKind::NodeThaw => "node_thaw",
            EventKind::NodeRestart => "node_restart",
            EventKind::PortSlow => "port_slow",
            EventKind::CapacityShrink => "capacity_shrink",
            EventKind::FrameTx => "frame_tx",
            EventKind::FrameRx => "frame_rx",
            EventKind::FrameFwd => "frame_fwd",
            EventKind::CrcReject => "crc_reject",
            EventKind::PutIssue => "put_issue",
            EventKind::PutChunkTx => "put_chunk_tx",
            EventKind::PutDeliver => "put_deliver",
            EventKind::PutAcked => "put_acked",
            EventKind::PutAbandon => "put_abandon",
            EventKind::AckRx => "ack_rx",
            EventKind::Retransmit => "retransmit",
            EventKind::Reroute => "reroute",
            EventKind::DupSuppressed => "dup_suppressed",
            EventKind::SlotPublish => "slot_publish",
            EventKind::SlotDrain => "slot_drain",
            EventKind::DoorbellCoalesce => "doorbell_coalesce",
            EventKind::GetReqTx => "get_req_tx",
            EventKind::GetChunkRx => "get_chunk_rx",
            EventKind::GetDone => "get_done",
            EventKind::GetAbandon => "get_abandon",
            EventKind::AmoReqTx => "amo_req_tx",
            EventKind::AmoApply => "amo_apply",
            EventKind::AmoReplay => "amo_replay",
            EventKind::AmoDone => "amo_done",
            EventKind::AmoAbandon => "amo_abandon",
            EventKind::PeSuspect => "pe_suspect",
            EventKind::PeDead => "pe_dead",
            EventKind::PeRejoin => "pe_rejoin",
            EventKind::MembershipUpdate => "membership_update",
            EventKind::RouterDrop => "router_drop",
            EventKind::QueueEnqueue => "queue_enqueue",
            EventKind::OverloadShed => "overload_shed",
            EventKind::DeadlineShed => "deadline_shed",
            EventKind::DeadlineTx => "deadline_tx",
            EventKind::RetryShed => "retry_shed",
            EventKind::CreditGrant => "credit_grant",
            EventKind::CreditConsume => "credit_consume",
            EventKind::ApiPutIssue => "api_put_issue",
            EventKind::ApiPutComplete => "api_put_complete",
            EventKind::ApiGetIssue => "api_get_issue",
            EventKind::ApiGetComplete => "api_get_complete",
            EventKind::ApiAmoIssue => "api_amo_issue",
            EventKind::ApiAmoComplete => "api_amo_complete",
            EventKind::BarrierStart => "barrier_start",
            EventKind::BarrierRound => "barrier_round",
            EventKind::BarrierEnd => "barrier_end",
            EventKind::BarrierStall => "barrier_stall",
            EventKind::QuietStart => "quiet_start",
            EventKind::QuietEnd => "quiet_end",
            EventKind::Fence => "fence",
        }
    }
}

/// One entry of the merged trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the global total order (dense only per log).
    pub seq: u64,
    /// Microseconds since the log was created.
    pub t_us: u64,
    /// Emitting PE.
    pub pe: u16,
    /// Link index the event refers to, or [`NO_LINK`].
    pub link: u16,
    /// What happened.
    pub kind: EventKind,
    /// Protocol-level correlation id (put id, req id, epoch, ...); 0
    /// when not applicable.
    pub op_id: u64,
    /// Two kind-specific payload words (see [`EventKind`] docs).
    pub payload: [u64; 2],
}

impl TraceEvent {
    /// One-line human-readable rendering, used by trace dumps.
    pub fn render(&self) -> String {
        let link = if self.link == NO_LINK { "-".to_string() } else { self.link.to_string() };
        format!(
            "#{:<8} {:>10}us pe{:<3} link {:<3} {:<16} op {:<8} [{:#x}, {:#x}]",
            self.seq,
            self.t_us,
            self.pe,
            link,
            self.kind.name(),
            self.op_id,
            self.payload[0],
            self.payload[1],
        )
    }
}

struct PeRing {
    buf: VecDeque<TraceEvent>,
}

/// Shared, per-PE ring-buffered event log. Cheap to keep around
/// disabled; bounded when enabled.
pub struct EventLog {
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    rings: Vec<Mutex<PeRing>>,
    capacity: usize,
}

/// Default per-PE ring capacity (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

impl EventLog {
    /// A log for `pes` PEs with `capacity` events buffered per PE.
    pub fn new(pes: usize, capacity: usize) -> Arc<EventLog> {
        let capacity = capacity.max(16);
        Arc::new(EventLog {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            rings: (0..pes.max(1))
                .map(|_| Mutex::new(PeRing { buf: VecDeque::with_capacity(16) }))
                .collect(),
            capacity,
        })
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (already-buffered events stay).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether emissions are currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        // lint: relaxed-ok(advisory fast-path flag: a racing emit may miss the enabling
        // edge only; tests bracket enable/disable with barriers)
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one event. A no-op (one relaxed load) while disabled.
    #[inline]
    pub fn emit(&self, pe: u16, link: u16, kind: EventKind, op_id: u64, payload: [u64; 2]) {
        if !self.is_enabled() {
            return;
        }
        self.emit_slow(pe, link, kind, op_id, payload);
    }

    #[cold]
    fn emit_slow(&self, pe: u16, link: u16, kind: EventKind, op_id: u64, payload: [u64; 2]) {
        let Some(ring) = self.rings.get(pe as usize) else {
            bump(&self.dropped, 1);
            return;
        };
        // lint: relaxed-ok(global sequence allocation; the merged trace orders by the
        // allocated value, not by this RMW's visibility)
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            seq,
            t_us: self.epoch.elapsed().as_micros() as u64,
            pe,
            link,
            kind,
            op_id,
            payload,
        };
        let mut ring = ring.lock();
        if ring.buf.len() >= self.capacity {
            ring.buf.pop_front();
            bump(&self.dropped, 1);
        }
        ring.buf.push_back(ev);
    }

    /// Events evicted (ring overflow) or unattributable, so a checker
    /// can refuse to certify a truncated trace.
    pub fn dropped(&self) -> u64 {
        get(&self.dropped)
    }

    /// Copy out the merged trace, sorted by global sequence number.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for ring in &self.rings {
            all.extend(ring.lock().buf.iter().copied());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Drain the merged trace, leaving every ring empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for ring in &self.rings {
            all.extend(ring.lock().buf.drain(..));
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Buffered event count for one PE.
    pub fn pe_len(&self, pe: usize) -> usize {
        self.rings.get(pe).map_or(0, |r| r.lock().buf.len())
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("enabled", &self.is_enabled())
            .field("pes", &self.rings.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Render a trace window as text, one event per line.
pub fn render_events(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.render());
        out.push('\n');
    }
    out
}

/// Serialize a trace window as a JSON array (no external dependencies,
/// hence hand-rolled; every field is numeric or a fixed identifier).
pub fn events_to_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"seq\":{},\"t_us\":{},\"pe\":{},\"link\":{},\"kind\":\"{}\",\"op_id\":{},\"payload\":[{},{}]}}",
            ev.seq,
            ev.t_us,
            ev.pe,
            if ev.link == NO_LINK { -1i64 } else { ev.link as i64 },
            ev.kind.name(),
            ev.op_id,
            ev.payload[0],
            ev.payload[1],
        );
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// A cheap, cloneable emission handle: an optional log plus the fixed
/// (pe, link) coordinates of the component holding it. `Obs::off()` is
/// the default everywhere, so standalone ports and tests pay only an
/// `Option` check per site.
#[derive(Clone, Default)]
pub struct Obs {
    log: Option<Arc<EventLog>>,
    pe: u16,
    link: u16,
}

impl Obs {
    /// A handle that never records.
    pub fn off() -> Obs {
        Obs { log: None, pe: 0, link: NO_LINK }
    }

    /// A recording handle bound to `pe` and `link`.
    pub fn new(log: Arc<EventLog>, pe: usize, link: usize) -> Obs {
        Obs { log: Some(log), pe: pe as u16, link: link as u16 }
    }

    /// The same log bound to a different link.
    pub fn with_link(&self, link: usize) -> Obs {
        Obs { log: self.log.clone(), pe: self.pe, link: link as u16 }
    }

    /// The same log with no link scope.
    pub fn unlinked(&self) -> Obs {
        Obs { log: self.log.clone(), pe: self.pe, link: NO_LINK }
    }

    /// The underlying log, if any.
    pub fn log(&self) -> Option<&Arc<EventLog>> {
        self.log.as_ref()
    }

    /// Whether an emission right now would be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.log.as_ref().is_some_and(|l| l.is_enabled())
    }

    /// Emit at this handle's (pe, link).
    #[inline]
    pub fn emit(&self, kind: EventKind, op_id: u64, payload: [u64; 2]) {
        if let Some(log) = &self.log {
            log.emit(self.pe, self.link, kind, op_id, payload);
        }
    }

    /// Emit at this handle's pe with an explicit link.
    #[inline]
    pub fn emit_link(&self, link: u16, kind: EventKind, op_id: u64, payload: [u64; 2]) {
        if let Some(log) = &self.log {
            log.emit(self.pe, link, kind, op_id, payload);
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("attached", &self.log.is_some())
            .field("pe", &self.pe)
            .field("link", &self.link)
            .finish()
    }
}

// ---------------------------------------------------------------------
// Metrics registry: always-on counters and latency histograms.
// ---------------------------------------------------------------------

/// Histogram bucket count: bucket `i` covers `[2^i, 2^(i+1))` µs.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Lock-free log2-bucketed latency histogram (microseconds).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_index(us: u64) -> usize {
        (63 - us.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one sample in microseconds.
    pub fn record(&self, us: u64) {
        bump(&self.buckets[Self::bucket_index(us)], 1);
        bump(&self.count, 1);
        bump(&self.sum_us, us);
        // lint: relaxed-ok(monotonic running maximum; readers tolerate staleness)
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        get(&self.count)
    }

    /// Sum of all samples (µs).
    pub fn sum_us(&self) -> u64 {
        get(&self.sum_us)
    }

    /// Largest sample (µs).
    pub fn max_us(&self) -> u64 {
        get(&self.max_us)
    }

    /// Mean sample (µs), 0.0 when empty.
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// Bucket upper bound (exclusive, µs) for quantile `q` in [0, 1]:
    /// the resolution is the log2 bucketing, good enough for reports.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += get(b);
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_us()
    }

    /// JSON object for this histogram.
    pub fn to_json(&self) -> String {
        let nonzero: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = get(b);
                (v > 0).then(|| format!("[{i},{v}]"))
            })
            .collect();
        format!(
            "{{\"count\":{},\"sum_us\":{},\"mean_us\":{:.1},\"max_us\":{},\"p50_le_us\":{},\"p99_le_us\":{},\"log2_buckets\":[{}]}}",
            self.count(),
            self.sum_us(),
            self.mean_us(),
            self.max_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            nonzero.join(",")
        )
    }
}

/// The operation classes the registry keeps histograms for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// `shmem_put` family.
    Put,
    /// `shmem_get` family.
    Get,
    /// Remote atomics.
    Amo,
    /// `shmem_barrier_all`.
    Barrier,
    /// `shmem_quiet` / `shmem_fence`.
    Quiet,
}

impl OpClass {
    /// Every class, in JSON/report order.
    pub const ALL: [OpClass; 5] =
        [OpClass::Put, OpClass::Get, OpClass::Amo, OpClass::Barrier, OpClass::Quiet];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Put => "put",
            OpClass::Get => "get",
            OpClass::Amo => "amo",
            OpClass::Barrier => "barrier",
            OpClass::Quiet => "quiet",
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::Put => 0,
            OpClass::Get => 1,
            OpClass::Amo => 2,
            OpClass::Barrier => 3,
            OpClass::Quiet => 4,
        }
    }
}

/// Per-link traffic counters.
#[derive(Debug, Default)]
pub struct LinkMetrics {
    /// Frames published toward the peer.
    pub frames_tx: AtomicU64,
    /// Frames dispatched from the peer.
    pub frames_rx: AtomicU64,
    /// Retransmissions driven over this link.
    pub retransmits: AtomicU64,
    /// Times traffic was steered away from this (Down) link.
    pub reroutes: AtomicU64,
    /// Frames rejected by the CRC check on this link.
    pub crc_rejects: AtomicU64,
    /// Frames the router discarded: out-of-range src/dest, or destined
    /// to a PE known to be dead.
    pub router_drops: AtomicU64,
    /// Work dropped at a hop because its deadline had already expired.
    pub deadline_sheds: AtomicU64,
    /// Work rejected at admission: bounded queue full or flow-control
    /// credits exhausted.
    pub overload_sheds: AtomicU64,
    /// Retransmissions shed because the per-link retry budget ran dry.
    pub retry_sheds: AtomicU64,
}

impl LinkMetrics {
    fn to_json(&self) -> String {
        format!(
            "{{\"frames_tx\":{},\"frames_rx\":{},\"retransmits\":{},\"reroutes\":{},\"crc_rejects\":{},\"router_drops\":{},\"deadline_sheds\":{},\"overload_sheds\":{},\"retry_sheds\":{}}}",
            get(&self.frames_tx),
            get(&self.frames_rx),
            get(&self.retransmits),
            get(&self.reroutes),
            get(&self.crc_rejects),
            get(&self.router_drops),
            get(&self.deadline_sheds),
            get(&self.overload_sheds),
            get(&self.retry_sheds),
        )
    }
}

/// One PE's metrics: a latency histogram per [`OpClass`] and counters
/// per link endpoint. Always on; recording is a handful of relaxed
/// atomic adds.
#[derive(Debug)]
pub struct MetricsRegistry {
    ops: [LatencyHistogram; 5],
    links: Vec<LinkMetrics>,
}

impl MetricsRegistry {
    /// A registry for a PE with `links` link endpoints.
    pub fn new(links: usize) -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry {
            ops: std::array::from_fn(|_| LatencyHistogram::default()),
            links: (0..links).map(|_| LinkMetrics::default()).collect(),
        })
    }

    /// The histogram for one op class.
    pub fn op(&self, class: OpClass) -> &LatencyHistogram {
        &self.ops[class.index()]
    }

    /// Record one op latency sample.
    pub fn record_op(&self, class: OpClass, us: u64) {
        self.op(class).record(us);
    }

    /// Counters for one link endpoint, if in range.
    pub fn link(&self, idx: usize) -> Option<&LinkMetrics> {
        self.links.get(idx)
    }

    /// Number of link endpoints tracked.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Bump a per-link counter, tolerant of out-of-range indices.
    pub fn bump_link(&self, idx: usize, f: impl Fn(&LinkMetrics) -> &AtomicU64) {
        if let Some(l) = self.links.get(idx) {
            bump(f(l), 1);
        }
    }

    /// JSON object: `{"ops":{...},"links":[...]}`.
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = OpClass::ALL
            .iter()
            .map(|c| format!("\"{}\":{}", c.name(), self.op(*c).to_json()))
            .collect();
        let links: Vec<String> = self.links.iter().map(|l| l.to_json()).collect();
        format!("{{\"ops\":{{{}}},\"links\":[{}]}}", ops.join(","), links.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::new(2, 64);
        log.emit(0, 0, EventKind::DoorbellSet, 1, [0, 0]);
        assert!(log.merged().is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn merged_trace_is_seq_sorted_across_pes() {
        let log = EventLog::new(3, 64);
        log.enable();
        for i in 0..30u64 {
            log.emit((i % 3) as u16, NO_LINK, EventKind::FrameTx, i, [i, 0]);
        }
        let all = log.merged();
        assert_eq!(all.len(), 30);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        // Per-PE rings hold only their own events.
        assert_eq!(log.pe_len(0), 10);
        // take() drains.
        assert_eq!(log.take().len(), 30);
        assert!(log.merged().is_empty());
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts() {
        let log = EventLog::new(1, 16);
        log.enable();
        for i in 0..40u64 {
            log.emit(0, NO_LINK, EventKind::SpadWrite, i, [0, 0]);
        }
        let all = log.merged();
        assert_eq!(all.len(), 16);
        assert_eq!(log.dropped(), 24);
        assert_eq!(all.first().unwrap().op_id, 24, "oldest evicted first");
    }

    #[test]
    fn out_of_range_pe_is_dropped_not_panicked() {
        let log = EventLog::new(1, 16);
        log.enable();
        log.emit(7, NO_LINK, EventKind::FrameRx, 0, [0, 0]);
        assert!(log.merged().is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn obs_handles_emit_at_their_coordinates() {
        let log = EventLog::new(2, 64);
        log.enable();
        let obs = Obs::new(Arc::clone(&log), 1, 0);
        obs.emit(EventKind::DoorbellSet, 5, [1, 2]);
        obs.with_link(9).emit(EventKind::FrameTx, 6, [0, 0]);
        obs.unlinked().emit(EventKind::QuietStart, 7, [0, 0]);
        obs.emit_link(3, EventKind::FrameFwd, 8, [0, 0]);
        let all = log.merged();
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|e| e.pe == 1));
        assert_eq!(all[0].link, 0);
        assert_eq!(all[1].link, 9);
        assert_eq!(all[2].link, NO_LINK);
        assert_eq!(all[3].link, 3);
        // Off handles stay silent and cheap.
        let off = Obs::off();
        assert!(!off.is_enabled());
        off.emit(EventKind::FrameTx, 0, [0, 0]);
        assert_eq!(log.merged().len(), 4);
    }

    #[test]
    fn render_and_json_cover_fields() {
        let log = EventLog::new(1, 16);
        log.enable();
        log.emit(0, 1, EventKind::PutAcked, 42, [7, 8]);
        log.emit(0, NO_LINK, EventKind::QuietEnd, 3, [0, 0]);
        let all = log.merged();
        let text = render_events(&all);
        assert!(text.contains("put_acked"), "{text}");
        assert!(text.contains("quiet_end"), "{text}");
        let json = events_to_json(&all);
        assert!(json.contains("\"kind\":\"put_acked\""), "{json}");
        assert!(json.contains("\"link\":-1"), "{json}");
        assert!(json.contains("\"op_id\":42"), "{json}");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 1, 1, 1, 100, 100, 100, 10_000, 10_000, 1_000_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max_us(), 1_000_000);
        assert!((h.mean_us() - 102_030.3).abs() < 1.0);
        // p50 falls in the 100µs bucket [64, 128) -> upper bound 128.
        assert_eq!(h.quantile_us(0.5), 128);
        assert!(h.quantile_us(0.99) >= 1 << 19);
        let json = h.to_json();
        assert!(json.contains("\"count\":10"), "{json}");
        assert!(json.contains("log2_buckets"), "{json}");
    }

    #[test]
    fn zero_latency_sample_lands_in_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(1.0), 2);
    }

    #[test]
    fn registry_json_shape() {
        let m = MetricsRegistry::new(2);
        m.record_op(OpClass::Put, 50);
        m.bump_link(0, |l| &l.frames_tx);
        m.bump_link(1, |l| &l.frames_rx);
        m.bump_link(9, |l| &l.frames_tx); // out of range: ignored
        m.bump_link(0, |l| &l.overload_sheds);
        let json = m.to_json();
        assert!(json.contains("\"put\":{\"count\":1"), "{json}");
        assert!(json.contains("\"links\":[{\"frames_tx\":1"), "{json}");
        assert!(json.contains("\"deadline_sheds\":0"), "{json}");
        assert!(json.contains("\"overload_sheds\":1"), "{json}");
        assert!(json.contains("\"retry_sheds\":0"), "{json}");
        assert_eq!(m.link(0).unwrap().frames_tx.load(Ordering::Relaxed), 1);
        assert_eq!(m.link_count(), 2);
    }
}
