//! The NTB DMA engine.
//!
//! The PEX 8749 integrates a multi-channel descriptor DMA engine; the
//! paper's `shmem_init` maps a DMA channel per NTB device and the Put/Get
//! paths move payloads with it (the alternative being CPU `memcpy`, which
//! Fig. 9 compares against). The model runs one worker thread per channel
//! consuming a descriptor queue: submission is asynchronous (returns a
//! [`DmaHandle`]), the data move itself goes through the outgoing window
//! (paying wire time and link serialization), and completion is observable
//! by blocking on the handle — which is how the upper layers implement
//! locally-blocking Put and `shmem_quiet`.

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::error::{NtbError, Result};
use crate::fault::DmaFaultOutcome;
use crate::memory::Region;
use crate::timing::TransferMode;
use crate::window::OutgoingWindow;

/// One DMA descriptor: move `len` bytes from a local region into the
/// outgoing window.
#[derive(Debug, Clone)]
pub struct DmaRequest {
    /// Local source memory.
    pub src: Region,
    /// Offset within `src`.
    pub src_offset: u64,
    /// Destination offset within the outgoing window.
    pub dst_offset: u64,
    /// Bytes to move.
    pub len: u64,
}

#[derive(Debug)]
struct CompletionState {
    result: Option<Result<()>>,
}

#[derive(Debug)]
struct Completion {
    state: Mutex<CompletionState>,
    cond: Condvar,
}

impl Completion {
    fn new() -> Arc<Self> {
        Arc::new(Completion {
            state: Mutex::new(CompletionState { result: None }),
            cond: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<()>) {
        let mut st = self.state.lock();
        st.result = Some(result);
        self.cond.notify_all();
    }
}

/// Handle to an in-flight DMA descriptor.
#[derive(Debug, Clone)]
pub struct DmaHandle {
    completion: Arc<Completion>,
}

impl DmaHandle {
    /// Block until the descriptor completes; returns its result.
    pub fn wait(&self) -> Result<()> {
        let mut st = self.completion.state.lock();
        // BOUNDED-BY: the engine thread posts a result for every submitted
        // descriptor — success, error, or shutdown — and notifies here.
        while st.result.is_none() {
            self.completion.cond.wait(&mut st);
        }
        st.result.clone().expect("result present")
    }

    /// Non-blocking poll: `None` while in flight.
    pub fn try_result(&self) -> Option<Result<()>> {
        self.completion.state.lock().result.clone()
    }

    /// True once the descriptor has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        self.try_result().is_some()
    }
}

struct Job {
    window: Arc<OutgoingWindow>,
    /// The descriptors of one submission. A plain `submit` carries one
    /// descriptor; `submit_chain` carries the whole chain, executed in
    /// order with a single completion at the end (the PEX engine's
    /// linked-descriptor mode: one interrupt per chain, not per element).
    reqs: Vec<DmaRequest>,
    completion: Arc<Completion>,
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
    /// A halted engine (node crash) refuses submissions but keeps its
    /// workers alive so [`DmaEngine::resume`] can revive it — unlike
    /// `shutdown`, which joins them for good.
    halted: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cond: Condvar,
}

/// The descriptor DMA engine of one port: `channels` worker threads
/// consuming a shared descriptor queue in FIFO order.
pub struct DmaEngine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for DmaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmaEngine").field("workers", &self.workers.lock().len()).finish()
    }
}

impl DmaEngine {
    /// Spawn an engine with `channels` worker threads (PEX 8749 exposes
    /// four channels; the paper maps one per NTB device).
    pub fn new(channels: usize) -> Arc<Self> {
        let shared = Arc::new(Shared { queue: Mutex::new(Queue::default()), cond: Condvar::new() });
        let mut workers = Vec::with_capacity(channels);
        for ch in 0..channels.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ntb-dma-ch{ch}"))
                    .spawn(move || Self::worker(&shared))
                    .expect("spawn DMA worker"),
            );
        }
        Arc::new(DmaEngine { shared, workers: Mutex::new(workers) })
    }

    fn worker(shared: &Shared) {
        loop {
            let job = {
                let mut q = shared.queue.lock();
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    shared.cond.wait(&mut q);
                }
            };
            // Execute the chain in order; the first faulting or failing
            // descriptor aborts the rest and the chain completes with its
            // error (the hardware raises one status per chain).
            let mut result = Ok(());
            for req in &job.reqs {
                // Consult the fault model before touching the wire: a
                // failed descriptor completes with an error without moving
                // data, a stalled one holds its channel for the stall time.
                match job.window.dma_fault_outcome() {
                    DmaFaultOutcome::Fail => {
                        result = Err(NtbError::DmaFault);
                        break;
                    }
                    DmaFaultOutcome::Stall(d) => std::thread::sleep(d),
                    DmaFaultOutcome::None => {}
                }
                result = job.window.write_from_region(
                    &req.src,
                    req.src_offset,
                    req.dst_offset,
                    req.len,
                    TransferMode::Dma,
                );
                if result.is_err() {
                    break;
                }
            }
            job.completion.complete(result);
        }
    }

    fn validate(req: &DmaRequest) -> Result<()> {
        if req.len == 0 {
            return Err(NtbError::BadDescriptor { reason: "zero-length DMA descriptor" });
        }
        Ok(())
    }

    /// Queue a descriptor moving data through `window`. Returns a handle
    /// immediately; the data moves asynchronously.
    pub fn submit(&self, window: Arc<OutgoingWindow>, req: DmaRequest) -> Result<DmaHandle> {
        self.submit_chain(window, vec![req])
    }

    /// Queue a descriptor *chain*: the elements execute sequentially on
    /// one channel and the returned handle completes once, when the last
    /// descriptor lands (or with the first error, which aborts the rest).
    /// This is the batching primitive the coalesced transmit path uses —
    /// one completion (one "interrupt") per drained batch instead of one
    /// per payload.
    pub fn submit_chain(
        &self,
        window: Arc<OutgoingWindow>,
        reqs: Vec<DmaRequest>,
    ) -> Result<DmaHandle> {
        if reqs.is_empty() {
            return Err(NtbError::BadDescriptor { reason: "empty DMA descriptor chain" });
        }
        for req in &reqs {
            Self::validate(req)?;
        }
        let completion = Completion::new();
        let handle = DmaHandle { completion: Arc::clone(&completion) };
        {
            let mut q = self.shared.queue.lock();
            if q.shutdown {
                return Err(NtbError::DmaShutdown);
            }
            if q.halted {
                return Err(NtbError::NodeDead);
            }
            q.jobs.push_back(Job { window, reqs, completion });
        }
        self.shared.cond.notify_one();
        Ok(handle)
    }

    /// Convenience: submit and block for completion.
    pub fn transfer(&self, window: Arc<OutgoingWindow>, req: DmaRequest) -> Result<()> {
        self.submit(window, req)?.wait()
    }

    /// Number of descriptors waiting in the queue (in-flight ones not
    /// counted).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().jobs.len()
    }

    /// Halt the engine as a node crash would: queued descriptors complete
    /// immediately with [`NtbError::NodeDead`] and new submissions are
    /// refused, but the worker threads stay parked so [`resume`](Self::resume)
    /// can bring the engine back. A descriptor already executing on a
    /// channel finishes — the crash is atomic at the queue, not mid-TLP.
    pub fn halt(&self) {
        let drained: Vec<Job> = {
            let mut q = self.shared.queue.lock();
            q.halted = true;
            q.jobs.drain(..).collect()
        };
        for job in drained {
            job.completion.complete(Err(NtbError::NodeDead));
        }
    }

    /// Reverse a [`halt`](Self::halt): the engine accepts descriptors
    /// again. No-op on an engine that was never halted (or was shut down).
    pub fn resume(&self) {
        self.shared.queue.lock().halted = false;
    }

    /// Stop accepting descriptors, finish the queued ones, and join the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        let mut workers = self.workers.lock();
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DmaEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bar::{BarConfig, BarKind, LutTable};
    use crate::stats::PortStats;
    use crate::timing::{LinkDirection, LinkTimer, TimeModel};

    fn window(size: u64) -> (Arc<OutgoingWindow>, Region) {
        let remote = Region::anonymous(size);
        let lut = Arc::new(LutTable::new());
        lut.insert(1);
        let w = OutgoingWindow::new(
            BarConfig { index: 0, kind: BarKind::Bar64, size, translation_base: 0 },
            remote.clone(),
            LinkTimer::new(),
            LinkDirection::Upstream,
            Arc::new(TimeModel::zero()),
            lut,
            1,
            Arc::new(PortStats::new()),
            Arc::new(PortStats::new()),
            crate::timing::HostActivity::new(),
            crate::timing::HostActivity::new(),
        )
        .unwrap();
        (w, remote)
    }

    #[test]
    fn dma_moves_data() {
        let engine = DmaEngine::new(2);
        let (w, remote) = window(4096);
        let src = Region::anonymous(256);
        src.write(0, &[9u8; 256]).unwrap();
        engine.transfer(w, DmaRequest { src, src_offset: 0, dst_offset: 512, len: 256 }).unwrap();
        assert_eq!(remote.read_vec(512, 256).unwrap(), vec![9u8; 256]);
    }

    #[test]
    fn async_submit_completes() {
        let engine = DmaEngine::new(1);
        let (w, _remote) = window(4096);
        let src = Region::anonymous(64);
        let h =
            engine.submit(w, DmaRequest { src, src_offset: 0, dst_offset: 0, len: 64 }).unwrap();
        h.wait().unwrap();
        assert!(h.is_done());
        assert_eq!(h.try_result(), Some(Ok(())));
    }

    #[test]
    fn zero_length_rejected() {
        let engine = DmaEngine::new(1);
        let (w, _) = window(4096);
        let src = Region::anonymous(64);
        let err =
            engine.submit(w, DmaRequest { src, src_offset: 0, dst_offset: 0, len: 0 }).unwrap_err();
        assert!(matches!(err, NtbError::BadDescriptor { .. }));
    }

    #[test]
    fn out_of_window_descriptor_fails_at_completion() {
        let engine = DmaEngine::new(1);
        let (w, _) = window(1024);
        let src = Region::anonymous(4096);
        let h = engine
            .submit(w, DmaRequest { src, src_offset: 0, dst_offset: 1000, len: 100 })
            .unwrap();
        let err = h.wait().unwrap_err();
        assert!(matches!(err, NtbError::WindowLimitExceeded { .. }));
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let engine = DmaEngine::new(1);
        engine.shutdown();
        let (w, _) = window(1024);
        let src = Region::anonymous(64);
        let err = engine
            .submit(w, DmaRequest { src, src_offset: 0, dst_offset: 0, len: 64 })
            .unwrap_err();
        assert_eq!(err, NtbError::DmaShutdown);
    }

    #[test]
    fn queued_jobs_finish_before_shutdown() {
        let engine = DmaEngine::new(1);
        let (w, remote) = window(1 << 16);
        let mut handles = vec![];
        for i in 0..16u64 {
            let src = Region::anonymous(128);
            src.fill(0, 128, i as u8 + 1).unwrap();
            handles.push(
                engine
                    .submit(
                        Arc::clone(&w),
                        DmaRequest { src, src_offset: 0, dst_offset: i * 128, len: 128 },
                    )
                    .unwrap(),
            );
        }
        engine.shutdown();
        for (i, h) in handles.iter().enumerate() {
            h.wait().unwrap();
            assert_eq!(remote.read_vec(i as u64 * 128, 1).unwrap(), vec![i as u8 + 1]);
        }
    }

    #[test]
    fn many_concurrent_descriptors() {
        let engine = DmaEngine::new(4);
        let (w, remote) = window(1 << 20);
        let handles: Vec<_> = (0..64u64)
            .map(|i| {
                let src = Region::anonymous(1024);
                src.fill(0, 1024, (i % 251) as u8).unwrap();
                engine
                    .submit(
                        Arc::clone(&w),
                        DmaRequest { src, src_offset: 0, dst_offset: i * 1024, len: 1024 },
                    )
                    .unwrap()
            })
            .collect();
        for h in &handles {
            h.wait().unwrap();
        }
        for i in 0..64u64 {
            assert_eq!(remote.read_vec(i * 1024, 1).unwrap(), vec![(i % 251) as u8]);
        }
    }

    #[test]
    fn queue_depth_visible() {
        let engine = DmaEngine::new(1);
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn halt_fails_fast_and_resume_revives() {
        let engine = DmaEngine::new(1);
        let (w, remote) = window(4096);
        engine.halt();
        let src = Region::anonymous(64);
        let err = engine
            .submit(
                Arc::clone(&w),
                DmaRequest { src: src.clone(), src_offset: 0, dst_offset: 0, len: 64 },
            )
            .unwrap_err();
        assert_eq!(err, NtbError::NodeDead);
        engine.resume();
        src.fill(0, 64, 5).unwrap();
        engine.transfer(w, DmaRequest { src, src_offset: 0, dst_offset: 0, len: 64 }).unwrap();
        assert_eq!(remote.read_vec(0, 64).unwrap(), vec![5u8; 64]);
    }

    #[test]
    fn chain_moves_all_descriptors_with_one_completion() {
        let engine = DmaEngine::new(1);
        let (w, remote) = window(1 << 16);
        let reqs: Vec<DmaRequest> = (0..8u64)
            .map(|i| {
                let src = Region::anonymous(256);
                src.fill(0, 256, i as u8 + 1).unwrap();
                DmaRequest { src, src_offset: 0, dst_offset: i * 256, len: 256 }
            })
            .collect();
        let h = engine.submit_chain(w, reqs).unwrap();
        h.wait().unwrap();
        for i in 0..8u64 {
            assert_eq!(remote.read_vec(i * 256, 256).unwrap(), vec![i as u8 + 1; 256]);
        }
    }

    #[test]
    fn chain_first_error_aborts_remaining_descriptors() {
        let engine = DmaEngine::new(1);
        let (w, remote) = window(1024);
        let ok_src = Region::anonymous(64);
        ok_src.fill(0, 64, 7).unwrap();
        let bad_src = Region::anonymous(64);
        let tail_src = Region::anonymous(64);
        tail_src.fill(0, 64, 9).unwrap();
        let h = engine
            .submit_chain(
                w,
                vec![
                    DmaRequest { src: ok_src, src_offset: 0, dst_offset: 0, len: 64 },
                    // Past the 1 KiB window: this descriptor errors.
                    DmaRequest { src: bad_src, src_offset: 0, dst_offset: 2048, len: 64 },
                    DmaRequest { src: tail_src, src_offset: 0, dst_offset: 128, len: 64 },
                ],
            )
            .unwrap();
        let err = h.wait().unwrap_err();
        assert!(matches!(err, NtbError::WindowLimitExceeded { .. }));
        // First descriptor landed, the one after the error never ran.
        assert_eq!(remote.read_vec(0, 64).unwrap(), vec![7u8; 64]);
        assert_eq!(remote.read_vec(128, 64).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn empty_chain_rejected() {
        let engine = DmaEngine::new(1);
        let (w, _) = window(1024);
        let err = engine.submit_chain(w, vec![]).unwrap_err();
        assert!(matches!(err, NtbError::BadDescriptor { .. }));
    }
}
