//! # ntb-sim — a software model of a PCIe Non-Transparent Bridge port
//!
//! This crate is the hardware substrate for the OpenSHMEM-over-NTB
//! reproduction. The paper's prototype uses PLX PEX 8733/8749 chipset NTB
//! host adapters cabled into a switchless ring; this crate models the parts
//! of that hardware the software stack can observe:
//!
//! * **Memory windows with address translation** ([`bar`], [`window`]) — a
//!   write into an outgoing window lands, after the translation configured in
//!   the BAR registers, in the *peer host's* physical memory (paper Fig. 1).
//! * **ScratchPad registers** ([`scratchpad`]) — eight 32-bit registers per
//!   link, readable and writable from both sides, used as a mailbox for
//!   transfer metadata.
//! * **Doorbell registers** ([`doorbell`]) — sixteen interrupt bits per port
//!   with set / clear / mask semantics; the peer rings them to raise an
//!   interrupt.
//! * **A descriptor-based DMA engine** ([`dma`]) and the slower CPU-`memcpy`
//!   (PIO) path through the mapped window.
//! * **Link timing** ([`timing`]) — PCIe generation / lane-count bandwidth,
//!   per-transfer setup cost, per-link serialization and duplex contention.
//!   All latencies are injected wall-clock delays calibrated against the
//!   paper's measured curves; a zero [`timing::TimeModel`] turns
//!   the model into a pure functional simulator for fast tests.
//!
//! The crate deliberately mirrors the *driver-visible* surface of the real
//! adapter (what Linux's `ntb_hw_plx` / `ntb_transport` would expose), so the
//! layers above (`ntb-net`, `shmem-core`) are written exactly as they would
//! be against real hardware.

pub mod aperture;
pub mod bar;
pub mod config_space;
pub mod dma;
pub mod doorbell;
pub mod error;
pub mod fault;
pub mod link;
pub mod memory;
pub mod obs;
pub mod port;
pub mod scratchpad;
pub mod stats;
pub mod timing;
pub mod window;

pub use aperture::{ApertureCell, ReadAperture};
pub use bar::{BarConfig, BarKind, LutEntry, LutTable};
pub use config_space::{ConfigSpace, DEVICE_PEX8733, DEVICE_PEX8749, VENDOR_PLX};
pub use dma::{DmaEngine, DmaHandle, DmaRequest};
pub use doorbell::{Doorbell, DoorbellWaiter, DOORBELL_BITS};
pub use error::{NtbError, Result};
pub use fault::{
    DmaFaultOutcome, FaultAction, FaultInjector, FaultPlan, LinkDownWindow, NodeFault,
    NodeFaultAction, ResourceFault, ResourceFaultAction, ScriptedFault, DATA_DOORBELL_MASK,
};
pub use link::{LaneCount, LinkHealth, LinkHealthTracker, LinkSpec, PcieGen};
pub use memory::{HostMemory, Region};
pub use obs::{
    events_to_json, render_events, EventKind, EventLog, LatencyHistogram, LinkMetrics,
    MetricsRegistry, Obs, OpClass, TraceEvent, DEFAULT_TRACE_CAPACITY, NO_LINK,
};
pub use port::{
    connect_ports, connect_ports_observed, connect_ports_with_faults, NtbPort, PortConfig, PortId,
};
pub use scratchpad::{ScratchpadBank, SCRATCHPAD_COUNT};
pub use stats::{FaultStats, FaultStatsSnapshot, LinkStats, PortStats, PortStatsSnapshot};
pub use timing::{spin_for, spin_until, LinkDirection, LinkTimer, TimeModel, TransferMode};
pub use window::{IncomingWindow, OutgoingWindow};
