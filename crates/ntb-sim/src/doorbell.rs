//! Doorbell registers: cross-host interrupt signalling.
//!
//! Each NTB port carries sixteen doorbell interrupt bits that the *peer*
//! sets to raise an interrupt on this side (paper §II-A). Bits can be set,
//! cleared and masked; a masked bit still latches in the pending register
//! but does not raise an interrupt until unmasked — which is exactly the
//! semantics the model implements, including the interrupt replay on
//! unmask.
//!
//! The paper's protocol dedicates four vectors (§III-B1):
//! `DMAPUT`, `DMAGET`, `BARRIER_START`, `BARRIER_END`; those constants live
//! in `ntb-net`, this module only models the register.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{NtbError, Result};
use crate::timing::TimeModel;

/// Number of doorbell interrupt bits per port.
pub const DOORBELL_BITS: u32 = 16;

#[derive(Debug, Default)]
struct DoorbellState {
    /// Latched pending bits (set by the peer, cleared by the owner).
    pending: u32,
    /// Masked bits: latched but not delivered.
    mask: u32,
}

impl DoorbellState {
    fn deliverable(&self) -> u32 {
        self.pending & !self.mask
    }
}

/// The doorbell register file of one port. The owner waits on it and clears
/// bits; the peer rings bits through a cloned handle (hardware: a write to
/// the peer's `DB_SET` register crossing the bridge).
#[derive(Debug)]
pub struct Doorbell {
    state: Mutex<DoorbellState>,
    cond: Condvar,
    model: Arc<TimeModel>,
}

/// What a wait returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoorbellWaiter {
    /// Bits that were pending and unmasked when the wait completed.
    Fired(u32),
    /// The wait timed out with no deliverable bits.
    TimedOut,
}

impl Doorbell {
    /// New doorbell with no pending bits and nothing masked.
    pub fn new(model: Arc<TimeModel>) -> Arc<Self> {
        Arc::new(Doorbell {
            state: Mutex::new(DoorbellState::default()),
            cond: Condvar::new(),
            model,
        })
    }

    fn check_bit(bit: u32) -> Result<()> {
        if bit >= DOORBELL_BITS {
            return Err(NtbError::BadDoorbellBit { bit });
        }
        Ok(())
    }

    /// Peer side: ring doorbell `bit`. Charges the doorbell delivery
    /// latency, latches the bit and wakes waiters if it is unmasked.
    pub fn ring(&self, bit: u32) -> Result<()> {
        Self::check_bit(bit)?;
        self.model.delay(self.model.doorbell_latency);
        let mut st = self.state.lock();
        st.pending |= 1 << bit;
        if st.deliverable() != 0 {
            self.cond.notify_all();
        }
        Ok(())
    }

    /// Owner side: currently pending bits (masked ones included, as in the
    /// hardware pending register).
    pub fn pending(&self) -> u32 {
        self.state.lock().pending
    }

    /// Owner side: clear the given pending bits (write-1-to-clear).
    pub fn clear(&self, bits: u32) {
        let mut st = self.state.lock();
        st.pending &= !bits;
    }

    /// Owner side: mask the given bits (latch but do not deliver).
    pub fn mask(&self, bits: u32) {
        let mut st = self.state.lock();
        st.mask |= bits;
    }

    /// Owner side: unmask bits; if any of them were latched while masked,
    /// the interrupt fires now (hardware replays the MSI on unmask).
    pub fn unmask(&self, bits: u32) {
        let mut st = self.state.lock();
        st.mask &= !bits;
        if st.deliverable() != 0 {
            self.cond.notify_all();
        }
    }

    /// Current mask register.
    pub fn mask_bits(&self) -> u32 {
        self.state.lock().mask
    }

    /// Owner side: block until any of `interest` is pending and unmasked,
    /// or until `timeout` elapses (if given). Returns the deliverable
    /// subset *without clearing it* — the handler clears explicitly, as a
    /// real ISR acknowledges the hardware.
    pub fn wait(&self, interest: u32, timeout: Option<Duration>) -> DoorbellWaiter {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut st = self.state.lock();
        loop {
            let hits = st.deliverable() & interest;
            if hits != 0 {
                return DoorbellWaiter::Fired(hits);
            }
            match deadline {
                Some(d) => {
                    if self.cond.wait_until(&mut st, d).timed_out() {
                        let hits = st.deliverable() & interest;
                        return if hits != 0 {
                            DoorbellWaiter::Fired(hits)
                        } else {
                            DoorbellWaiter::TimedOut
                        };
                    }
                }
                None => self.cond.wait(&mut st),
            }
        }
    }

    /// Convenience: wait for a single bit and clear it on delivery.
    pub fn wait_and_clear(&self, bit: u32, timeout: Option<Duration>) -> Result<bool> {
        Self::check_bit(bit)?;
        match self.wait(1 << bit, timeout) {
            DoorbellWaiter::Fired(_) => {
                self.clear(1 << bit);
                Ok(true)
            }
            DoorbellWaiter::TimedOut => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn db() -> Arc<Doorbell> {
        Doorbell::new(Arc::new(TimeModel::zero()))
    }

    #[test]
    fn ring_sets_pending() {
        let d = db();
        d.ring(3).unwrap();
        assert_eq!(d.pending(), 1 << 3);
    }

    #[test]
    fn bad_bit_rejected() {
        let d = db();
        assert!(d.ring(DOORBELL_BITS).is_err());
        assert!(d.ring(DOORBELL_BITS - 1).is_ok());
    }

    #[test]
    fn clear_is_write_one_to_clear() {
        let d = db();
        d.ring(0).unwrap();
        d.ring(5).unwrap();
        d.clear(1 << 0);
        assert_eq!(d.pending(), 1 << 5);
    }

    #[test]
    fn wait_returns_immediately_if_pending() {
        let d = db();
        d.ring(2).unwrap();
        assert_eq!(d.wait(0xFFFF, None), DoorbellWaiter::Fired(1 << 2));
        // Not cleared by wait.
        assert_eq!(d.pending(), 1 << 2);
    }

    #[test]
    fn wait_times_out() {
        let d = db();
        let t0 = Instant::now();
        let r = d.wait(0xFFFF, Some(Duration::from_millis(20)));
        assert_eq!(r, DoorbellWaiter::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn wait_wakes_on_ring_from_other_thread() {
        let d = db();
        let d2 = Arc::clone(&d);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            d2.ring(7).unwrap();
        });
        let r = d.wait(1 << 7, Some(Duration::from_secs(5)));
        assert_eq!(r, DoorbellWaiter::Fired(1 << 7));
        h.join().unwrap();
    }

    #[test]
    fn masked_bit_latches_but_does_not_deliver() {
        let d = db();
        d.mask(1 << 4);
        d.ring(4).unwrap();
        assert_eq!(d.pending(), 1 << 4, "latched");
        let r = d.wait(1 << 4, Some(Duration::from_millis(10)));
        assert_eq!(r, DoorbellWaiter::TimedOut, "not delivered while masked");
    }

    #[test]
    fn unmask_replays_latched_interrupt() {
        let d = db();
        d.mask(1 << 4);
        d.ring(4).unwrap();
        let d2 = Arc::clone(&d);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            d2.unmask(1 << 4);
        });
        let r = d.wait(1 << 4, Some(Duration::from_secs(5)));
        assert_eq!(r, DoorbellWaiter::Fired(1 << 4));
        h.join().unwrap();
        assert_eq!(d.mask_bits(), 0);
    }

    #[test]
    fn wait_filters_by_interest() {
        let d = db();
        d.ring(1).unwrap();
        // Waiting on bit 2 only: bit 1 pending must not satisfy it.
        let r = d.wait(1 << 2, Some(Duration::from_millis(10)));
        assert_eq!(r, DoorbellWaiter::TimedOut);
        // But a combined wait sees bit 1.
        assert_eq!(d.wait((1 << 1) | (1 << 2), None), DoorbellWaiter::Fired(1 << 1));
    }

    #[test]
    fn wait_and_clear_clears() {
        let d = db();
        d.ring(9).unwrap();
        assert!(d.wait_and_clear(9, Some(Duration::from_millis(100))).unwrap());
        assert_eq!(d.pending(), 0);
        assert!(!d.wait_and_clear(9, Some(Duration::from_millis(5))).unwrap());
    }

    #[test]
    fn multiple_bits_delivered_together() {
        let d = db();
        d.ring(0).unwrap();
        d.ring(1).unwrap();
        match d.wait(0b11, None) {
            DoorbellWaiter::Fired(bits) => assert_eq!(bits, 0b11),
            other => panic!("unexpected {other:?}"),
        }
    }
}
