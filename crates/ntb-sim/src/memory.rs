//! Simulated host physical memory.
//!
//! Each simulated host owns a [`HostMemory`] arena from which it allocates
//! [`Region`]s: the symmetric heap chunks, incoming window buffers, bypass
//! buffers and DMA staging areas all live in regions. A region is the
//! model's stand-in for pinned, DMA-able physical memory obtained through
//! the NTB driver (`mmap` of the BAR / `dma_alloc_coherent` in the real
//! stack).
//!
//! # Safety contract
//!
//! Like the real hardware, the model allows two hosts to access the same
//! physical page concurrently: the NTB translates a remote write straight
//! into local RAM with no locks. `Region` therefore uses interior
//! mutability (`UnsafeCell`) with raw-pointer copies, and inherits the SHMEM
//! contract: *concurrent overlapping access to the same bytes without an
//! intervening synchronization (doorbell handshake, barrier, lock) is a
//! program error*. The protocol layers in `ntb-net`/`shmem-core` always
//! bracket region traffic with acquire/release edges (scratchpad mailboxes
//! and doorbells are `SeqCst` atomics), which is what makes the writes
//! visible to the peer thread in practice, exactly as the PCIe ordering
//! rules make posted writes visible before the doorbell TLP.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{NtbError, Result};

struct RegionInner {
    buf: UnsafeCell<Box<[u8]>>,
}

// SAFETY: access discipline is delegated to the SHMEM-style contract
// documented on the module; all protocol-level accesses are ordered by
// SeqCst operations on scratchpads/doorbells.
unsafe impl Send for RegionInner {}
// SAFETY: same contract as Send above — concurrent shared access goes
// through read/write windows whose cross-host ordering is established by
// SeqCst scratchpad/doorbell operations, mirroring real NTB hardware.
unsafe impl Sync for RegionInner {}

/// A contiguous range of simulated physical memory, cheaply cloneable and
/// shareable across host threads (like a pinned DMA buffer both sides have
/// mapped).
#[derive(Clone)]
pub struct Region {
    inner: Arc<RegionInner>,
    base: u64,
    len: u64,
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Region").field("base", &self.base).field("len", &self.len).finish()
    }
}

impl Region {
    /// Allocate a standalone zeroed region of `len` bytes (not accounted to
    /// any host arena — used by tests and internal scratch space).
    pub fn anonymous(len: u64) -> Region {
        let buf = vec![0u8; len as usize].into_boxed_slice();
        Region { inner: Arc::new(RegionInner { buf: UnsafeCell::new(buf) }), base: 0, len }
    }

    /// Length of the region in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-window of this region sharing the same backing memory.
    /// Used to carve the incoming window into direct / bypass / control
    /// areas.
    pub fn slice(&self, offset: u64, len: u64) -> Result<Region> {
        self.check(offset, len)?;
        Ok(Region { inner: Arc::clone(&self.inner), base: self.base + offset, len })
    }

    fn check(&self, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(NtbError::RegionOutOfBounds { offset, len, region_size: self.len });
        }
        Ok(())
    }

    fn ptr(&self, offset: u64) -> *mut u8 {
        // SAFETY: bounds were checked by the caller via `check`.
        unsafe { (*self.inner.buf.get()).as_mut_ptr().add((self.base + offset) as usize) }
    }

    /// Copy `data` into the region at `offset`.
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.check(offset, data.len() as u64)?;
        // Release everything written so far before the bytes land; paired
        // with the Acquire fence in `read`.
        fence(Ordering::Release);
        // SAFETY: bounds checked; concurrent overlap excluded by contract.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr(offset), data.len());
        }
        fence(Ordering::Release);
        Ok(())
    }

    /// Copy `buf.len()` bytes from the region at `offset` into `buf`.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check(offset, buf.len() as u64)?;
        fence(Ordering::Acquire);
        // SAFETY: bounds checked; concurrent overlap excluded by contract.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr(offset), buf.as_mut_ptr(), buf.len());
        }
        fence(Ordering::Acquire);
        Ok(())
    }

    /// Read `len` bytes at `offset` into a fresh vector.
    pub fn read_vec(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len as usize];
        self.read(offset, &mut v)?;
        Ok(v)
    }

    /// Region-to-region copy (the DMA engine's data move).
    pub fn copy_to(&self, src_offset: u64, dst: &Region, dst_offset: u64, len: u64) -> Result<()> {
        self.check(src_offset, len)?;
        dst.check(dst_offset, len)?;
        fence(Ordering::Acquire);
        // SAFETY: both ranges bounds-checked. The two regions may share
        // backing memory (slices of one arena); use `copy` (memmove
        // semantics) to stay defined on overlap.
        unsafe {
            std::ptr::copy(self.ptr(src_offset), dst.ptr(dst_offset), len as usize);
        }
        fence(Ordering::Release);
        Ok(())
    }

    /// Fill `len` bytes at `offset` with `byte`.
    pub fn fill(&self, offset: u64, len: u64, byte: u8) -> Result<()> {
        self.check(offset, len)?;
        fence(Ordering::Release);
        // SAFETY: bounds checked.
        unsafe {
            std::ptr::write_bytes(self.ptr(offset), byte, len as usize);
        }
        fence(Ordering::Release);
        Ok(())
    }

    /// Write a little-endian `u64` at `offset` (control words in window
    /// headers).
    pub fn write_u64(&self, offset: u64, value: u64) -> Result<()> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Read a little-endian `u64` at `offset`.
    pub fn read_u64(&self, offset: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// True if both handles view the same backing allocation (regardless of
    /// base/len).
    pub fn same_allocation(&self, other: &Region) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// A host's simulated physical memory arena with capacity accounting.
///
/// Regions allocated here are what the NTB windows translate into; the
/// arena exists so tests can assert on memory budgets and so exhaustion is
/// an observable error rather than an OOM.
#[derive(Debug)]
pub struct HostMemory {
    host_id: usize,
    /// Atomic so a resource-fault plan can shrink it mid-run; existing
    /// allocations survive a shrink, new ones see the reduced budget.
    capacity: AtomicU64,
    allocated: AtomicU64,
    regions: AtomicU64,
    activity: Arc<crate::timing::HostActivity>,
}

impl HostMemory {
    /// Create an arena of `capacity` bytes for host `host_id`.
    pub fn new(host_id: usize, capacity: u64) -> Arc<Self> {
        Arc::new(HostMemory {
            host_id,
            capacity: AtomicU64::new(capacity),
            allocated: AtomicU64::new(0),
            regions: AtomicU64::new(0),
            activity: crate::timing::HostActivity::new(),
        })
    }

    /// This host's transmit-activity tracker (shared by both of its NTB
    /// adapters; models root-complex contention).
    pub fn activity(&self) -> &Arc<crate::timing::HostActivity> {
        &self.activity
    }

    /// The owning host's id.
    pub fn host_id(&self) -> usize {
        self.host_id
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        // lint: relaxed-ok(capacity snapshot; admission re-reads under the alloc CAS loop)
        self.capacity.load(Ordering::Relaxed)
    }

    /// Shrink (or grow) the arena to `capacity` bytes mid-run — the
    /// resource-fault hook ("a neighbour stole the pinned pages").
    /// Regions already allocated are untouched even if the arena now
    /// overcommits; only future allocations see the new budget.
    pub fn set_capacity(&self, capacity: u64) {
        // lint: relaxed-ok(capacity knob; alloc_region tolerates a stale read by one fault window)
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        // lint: relaxed-ok(accounting snapshot for reporting; precision under races not needed)
        self.allocated.load(Ordering::Relaxed)
    }

    /// Number of live region allocations made from this arena.
    /// (Regions are not returned to the arena on drop; the model treats
    /// them as boot-time pinned allocations, as the NTB driver does.)
    pub fn region_count(&self) -> u64 {
        // lint: relaxed-ok(accounting snapshot for reporting; precision under races not needed)
        self.regions.load(Ordering::Relaxed)
    }

    /// Allocate a zeroed region of `len` bytes, charging the arena.
    pub fn alloc_region(&self, len: u64) -> Result<Region> {
        // lint: relaxed-ok(seed value for the CAS loop below; the CAS re-reads on conflict)
        let mut current = self.allocated.load(Ordering::Relaxed);
        loop {
            let capacity = self.capacity();
            let new = current.checked_add(len).ok_or(NtbError::OutOfMemory {
                requested: len,
                available: capacity.saturating_sub(current),
            })?;
            if new > capacity {
                return Err(NtbError::OutOfMemory {
                    requested: len,
                    available: capacity.saturating_sub(current),
                });
            }
            match self.allocated.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed, // lint: relaxed-ok(pure byte accounting; guards no memory)
                Ordering::Relaxed, // lint: relaxed-ok(failure path only re-reads the counter)
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        // lint: relaxed-ok(allocation counting needs atomicity, not ordering)
        self.regions.fetch_add(1, Ordering::Relaxed);
        Ok(Region::anonymous(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let r = Region::anonymous(64);
        r.write(10, &[1, 2, 3, 4]).unwrap();
        assert_eq!(r.read_vec(10, 4).unwrap(), vec![1, 2, 3, 4]);
        // Untouched bytes stay zero.
        assert_eq!(r.read_vec(0, 10).unwrap(), vec![0; 10]);
    }

    #[test]
    fn out_of_bounds_write_rejected() {
        let r = Region::anonymous(16);
        let err = r.write(10, &[0u8; 10]).unwrap_err();
        assert!(matches!(err, NtbError::RegionOutOfBounds { .. }));
        // Boundary case: exactly to the end is fine.
        r.write(6, &[0u8; 10]).unwrap();
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let r = Region::anonymous(16);
        let mut buf = [0u8; 8];
        assert!(r.read(12, &mut buf).is_err());
        assert!(r.read(8, &mut buf).is_ok());
    }

    #[test]
    fn offset_overflow_rejected() {
        let r = Region::anonymous(16);
        let err = r.write(u64::MAX - 2, &[0u8; 8]).unwrap_err();
        assert!(matches!(err, NtbError::RegionOutOfBounds { .. }));
    }

    #[test]
    fn slice_views_same_memory() {
        let r = Region::anonymous(64);
        let s = r.slice(16, 16).unwrap();
        assert!(s.same_allocation(&r));
        s.write(0, &[0xAA; 4]).unwrap();
        assert_eq!(r.read_vec(16, 4).unwrap(), vec![0xAA; 4]);
    }

    #[test]
    fn slice_bounds_enforced() {
        let r = Region::anonymous(64);
        assert!(r.slice(60, 8).is_err());
        let s = r.slice(32, 32).unwrap();
        assert_eq!(s.len(), 32);
        assert!(s.write(28, &[0u8; 8]).is_err());
    }

    #[test]
    fn nested_slices() {
        let r = Region::anonymous(100);
        let a = r.slice(10, 80).unwrap();
        let b = a.slice(10, 60).unwrap();
        b.write(0, &[7; 2]).unwrap();
        assert_eq!(r.read_vec(20, 2).unwrap(), vec![7, 7]);
    }

    #[test]
    fn copy_between_regions() {
        let a = Region::anonymous(32);
        let b = Region::anonymous(32);
        a.write(0, b"hello ntb").unwrap();
        a.copy_to(0, &b, 8, 9).unwrap();
        assert_eq!(b.read_vec(8, 9).unwrap(), b"hello ntb");
    }

    #[test]
    fn copy_overlapping_within_same_region() {
        let a = Region::anonymous(32);
        a.write(0, b"abcdefgh").unwrap();
        // Overlapping forward copy must behave like memmove.
        a.copy_to(0, &a, 2, 8).unwrap();
        assert_eq!(a.read_vec(2, 8).unwrap(), b"abcdefgh");
    }

    #[test]
    fn fill_and_u64_helpers() {
        let r = Region::anonymous(32);
        r.fill(0, 32, 0xFF).unwrap();
        assert_eq!(r.read_vec(31, 1).unwrap(), vec![0xFF]);
        r.write_u64(8, 0xDEAD_BEEF_0BAD_F00D).unwrap();
        assert_eq!(r.read_u64(8).unwrap(), 0xDEAD_BEEF_0BAD_F00D);
    }

    #[test]
    fn host_memory_accounting() {
        let hm = HostMemory::new(3, 1024);
        assert_eq!(hm.host_id(), 3);
        let _a = hm.alloc_region(512).unwrap();
        let _b = hm.alloc_region(256).unwrap();
        assert_eq!(hm.allocated(), 768);
        assert_eq!(hm.region_count(), 2);
        let err = hm.alloc_region(512).unwrap_err();
        assert_eq!(err, NtbError::OutOfMemory { requested: 512, available: 256 });
        // Exactly filling the arena works.
        let _c = hm.alloc_region(256).unwrap();
        assert_eq!(hm.allocated(), 1024);
    }

    #[test]
    fn capacity_shrink_starves_future_allocations_only() {
        let hm = HostMemory::new(1, 4096);
        let _held = hm.alloc_region(1024).unwrap();
        hm.set_capacity(512);
        assert_eq!(hm.capacity(), 512);
        // The arena is now overcommitted: the held region survives, but
        // no new allocation fits.
        assert_eq!(hm.allocated(), 1024);
        let err = hm.alloc_region(64).unwrap_err();
        assert!(matches!(err, NtbError::OutOfMemory { .. }));
        // Growing back re-admits allocations.
        hm.set_capacity(4096);
        assert!(hm.alloc_region(64).is_ok());
    }

    #[test]
    fn regions_zero_initialized() {
        let hm = HostMemory::new(0, 4096);
        let r = hm.alloc_region(128).unwrap();
        assert_eq!(r.read_vec(0, 128).unwrap(), vec![0; 128]);
    }

    #[test]
    fn cross_thread_visibility_with_handshake() {
        // Writer thread writes payload then sets a flag (SeqCst atomic);
        // reader sees the payload after observing the flag — the pattern
        // every protocol layer uses.
        use std::sync::atomic::AtomicBool;
        let r = Region::anonymous(1024);
        let flag = Arc::new(AtomicBool::new(false));
        let r2 = r.clone();
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            r2.write(0, &[42u8; 1024]).unwrap();
            f2.store(true, Ordering::SeqCst);
        });
        while !flag.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        assert_eq!(r.read_vec(0, 1024).unwrap(), vec![42u8; 1024]);
        h.join().unwrap();
    }
}
