//! BAR (Base Address Register) setup and the requester-ID LUT.
//!
//! An NTB port exposes up to six BARs in its PCIe Type-0 header; each BAR
//! (or pair of consecutive BARs for 64-bit) opens a *memory window*:
//! accesses between the BAR address and the BAR limit are translated by the
//! translation register into the peer hierarchy's address space (paper
//! Fig. 1). The PEX 87xx parts additionally require the requester ID of the
//! sender to be present in a Look-Up Table (LUT) on the receiving side —
//! the paper's `shmem_init` explicitly programs "write/read ID setup for
//! LUT entry mapping for NTB device identification".

use parking_lot::RwLock;

use crate::error::{NtbError, Result};

/// 32-bit or 64-bit BAR. 64-bit windows consume two consecutive BAR slots,
/// as in the PCIe spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarKind {
    /// One 32-bit BAR slot.
    Bar32,
    /// Two consecutive BAR slots forming a 64-bit window.
    Bar64,
}

impl BarKind {
    /// Number of BAR slots this kind consumes.
    pub fn slots(self) -> u8 {
        match self {
            BarKind::Bar32 => 1,
            BarKind::Bar64 => 2,
        }
    }
}

/// Configuration of one translation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarConfig {
    /// First BAR slot used (0..6).
    pub index: u8,
    /// 32- or 64-bit window.
    pub kind: BarKind,
    /// Window size in bytes; PCIe requires a power of two.
    pub size: u64,
    /// Translation base: where in the peer's address space offset 0 of the
    /// window lands.
    pub translation_base: u64,
}

impl BarConfig {
    /// Validate PCIe constraints: size must be a nonzero power of two, the
    /// window must fit in the BAR slots available, and a 32-bit BAR cannot
    /// address beyond 4 GiB.
    pub fn validate(&self) -> Result<()> {
        if self.size == 0 || !self.size.is_power_of_two() {
            return Err(NtbError::BadDescriptor {
                reason: "BAR size must be a nonzero power of two",
            });
        }
        if self.index as u32 + self.kind.slots() as u32 > 6 {
            return Err(NtbError::BadDescriptor { reason: "BAR slots exceed the six available" });
        }
        if self.kind == BarKind::Bar32
            && self
                .translation_base
                .checked_add(self.size)
                .is_none_or(|end| end > u64::from(u32::MAX))
        {
            return Err(NtbError::BadDescriptor {
                reason: "32-bit BAR cannot translate beyond 4 GiB",
            });
        }
        Ok(())
    }

    /// Check that an access `[offset, offset+len)` stays inside the window
    /// (paper Fig. 1: translation happens only up to the BAR limit).
    pub fn check_access(&self, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(NtbError::WindowLimitExceeded { offset, len, window_size: self.size });
        }
        Ok(())
    }

    /// Translate a window offset into a peer address.
    pub fn translate(&self, offset: u64) -> u64 {
        self.translation_base + offset
    }
}

/// One LUT entry: a requester ID allowed to access this port's windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutEntry {
    /// PCIe requester id (bus/dev/fn) of the permitted sender.
    pub requester_id: u16,
    /// Entries can be parked disabled.
    pub enabled: bool,
}

/// The requester-ID look-up table of one port.
#[derive(Debug, Default)]
pub struct LutTable {
    entries: RwLock<Vec<LutEntry>>,
}

impl LutTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or re-enable) a requester id.
    pub fn insert(&self, requester_id: u16) {
        let mut e = self.entries.write();
        if let Some(existing) = e.iter_mut().find(|x| x.requester_id == requester_id) {
            existing.enabled = true;
        } else {
            e.push(LutEntry { requester_id, enabled: true });
        }
    }

    /// Disable a requester id (it stays in the table).
    pub fn disable(&self, requester_id: u16) {
        let mut e = self.entries.write();
        if let Some(existing) = e.iter_mut().find(|x| x.requester_id == requester_id) {
            existing.enabled = false;
        }
    }

    /// Remove a requester id entirely.
    pub fn remove(&self, requester_id: u16) {
        self.entries.write().retain(|x| x.requester_id != requester_id);
    }

    /// Check a transaction from `requester_id`; errors with
    /// [`NtbError::LutMiss`] if absent or disabled.
    pub fn check(&self, requester_id: u16) -> Result<()> {
        let e = self.entries.read();
        match e.iter().find(|x| x.requester_id == requester_id) {
            Some(entry) if entry.enabled => Ok(()),
            _ => Err(NtbError::LutMiss { requester_id }),
        }
    }

    /// Number of (enabled or disabled) entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar(size: u64) -> BarConfig {
        BarConfig { index: 2, kind: BarKind::Bar64, size, translation_base: 0x4000_0000 }
    }

    #[test]
    fn validate_accepts_power_of_two() {
        assert!(bar(1 << 20).validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        assert!(bar(3 << 20).validate().is_err());
        assert!(bar(0).validate().is_err());
    }

    #[test]
    fn validate_rejects_slot_overflow() {
        let b = BarConfig { index: 5, kind: BarKind::Bar64, size: 1 << 20, translation_base: 0 };
        assert!(b.validate().is_err());
        let b32 = BarConfig { index: 5, kind: BarKind::Bar32, size: 1 << 20, translation_base: 0 };
        assert!(b32.validate().is_ok());
    }

    #[test]
    fn validate_rejects_32bit_overflow() {
        let b = BarConfig {
            index: 0,
            kind: BarKind::Bar32,
            size: 1 << 20,
            translation_base: u64::from(u32::MAX),
        };
        assert!(b.validate().is_err());
    }

    #[test]
    fn access_limit_checked() {
        let b = bar(4096);
        assert!(b.check_access(0, 4096).is_ok());
        assert!(b.check_access(4095, 1).is_ok());
        let err = b.check_access(4095, 2).unwrap_err();
        assert!(matches!(err, NtbError::WindowLimitExceeded { .. }));
        assert!(b.check_access(u64::MAX, 2).is_err(), "overflow must be caught");
    }

    #[test]
    fn translation_adds_base() {
        let b = bar(4096);
        assert_eq!(b.translate(0x10), 0x4000_0010);
    }

    #[test]
    fn lut_insert_and_check() {
        let lut = LutTable::new();
        assert!(lut.check(7).is_err());
        lut.insert(7);
        assert!(lut.check(7).is_ok());
        assert_eq!(lut.len(), 1);
    }

    #[test]
    fn lut_disable_keeps_entry_but_blocks() {
        let lut = LutTable::new();
        lut.insert(7);
        lut.disable(7);
        assert_eq!(lut.len(), 1);
        assert_eq!(lut.check(7).unwrap_err(), NtbError::LutMiss { requester_id: 7 });
        lut.insert(7); // re-enable
        assert!(lut.check(7).is_ok());
    }

    #[test]
    fn lut_remove() {
        let lut = LutTable::new();
        lut.insert(1);
        lut.insert(2);
        lut.remove(1);
        assert!(lut.check(1).is_err());
        assert!(lut.check(2).is_ok());
        assert_eq!(lut.len(), 1);
    }

    #[test]
    fn lut_duplicate_insert_is_idempotent() {
        let lut = LutTable::new();
        lut.insert(9);
        lut.insert(9);
        assert_eq!(lut.len(), 1);
    }

    #[test]
    fn bar_kind_slots() {
        assert_eq!(BarKind::Bar32.slots(), 1);
        assert_eq!(BarKind::Bar64.slots(), 2);
    }
}
