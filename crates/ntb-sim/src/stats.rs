//! Observability counters for ports and links.
//!
//! The benchmark harness reads these to compute per-link and total network
//! transfer rates (Fig. 8d sums per-connection rates), and the tests use
//! them to assert that traffic actually flowed where the protocol says it
//! should.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Add to a monotonic event counter.
fn bump(counter: &AtomicU64, n: u64) {
    // lint: relaxed-ok(monotonic counters; readers only need eventual totals)
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Read a monotonic event counter.
fn get(counter: &AtomicU64) -> u64 {
    // lint: relaxed-ok(monotonic counters; snapshots are advisory)
    counter.load(Ordering::Relaxed)
}

/// Counters of one NTB port. All methods are lock-free and callable from
/// any thread.
#[derive(Debug, Default)]
pub struct PortStats {
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    dma_ops: AtomicU64,
    pio_ops: AtomicU64,
    doorbells_rung: AtomicU64,
    doorbells_received: AtomicU64,
    scratchpad_accesses: AtomicU64,
    lut_rejects: AtomicU64,
    window_violations: AtomicU64,
}

impl PortStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` bytes transmitted through the outgoing window.
    pub fn add_tx(&self, n: u64) {
        bump(&self.bytes_tx, n);
    }

    /// Record `n` bytes received into the incoming window.
    pub fn add_rx(&self, n: u64) {
        bump(&self.bytes_rx, n);
    }

    /// Record one DMA descriptor completion.
    pub fn add_dma_op(&self) {
        bump(&self.dma_ops, 1);
    }

    /// Record one PIO transfer.
    pub fn add_pio_op(&self) {
        bump(&self.pio_ops, 1);
    }

    /// Record ringing the peer's doorbell.
    pub fn add_doorbell_rung(&self) {
        bump(&self.doorbells_rung, 1);
    }

    /// Record receiving a doorbell interrupt.
    pub fn add_doorbell_received(&self) {
        bump(&self.doorbells_received, 1);
    }

    /// Record one scratchpad register access.
    pub fn add_scratchpad_access(&self) {
        bump(&self.scratchpad_accesses, 1);
    }

    /// Record a transaction rejected by the LUT.
    pub fn add_lut_reject(&self) {
        bump(&self.lut_rejects, 1);
    }

    /// Record an access beyond the window limit.
    pub fn add_window_violation(&self) {
        bump(&self.window_violations, 1);
    }

    /// Bytes transmitted.
    pub fn bytes_tx(&self) -> u64 {
        get(&self.bytes_tx)
    }

    /// Bytes received.
    pub fn bytes_rx(&self) -> u64 {
        get(&self.bytes_rx)
    }

    /// DMA descriptor count.
    pub fn dma_ops(&self) -> u64 {
        get(&self.dma_ops)
    }

    /// PIO transfer count.
    pub fn pio_ops(&self) -> u64 {
        get(&self.pio_ops)
    }

    /// Doorbells rung towards the peer.
    pub fn doorbells_rung(&self) -> u64 {
        get(&self.doorbells_rung)
    }

    /// Doorbell interrupts received.
    pub fn doorbells_received(&self) -> u64 {
        get(&self.doorbells_received)
    }

    /// Scratchpad accesses.
    pub fn scratchpad_accesses(&self) -> u64 {
        get(&self.scratchpad_accesses)
    }

    /// LUT rejections observed.
    pub fn lut_rejects(&self) -> u64 {
        get(&self.lut_rejects)
    }

    /// Window-limit violations observed.
    pub fn window_violations(&self) -> u64 {
        get(&self.window_violations)
    }

    /// Snapshot every counter (for report printing).
    pub fn snapshot(&self) -> PortStatsSnapshot {
        PortStatsSnapshot {
            bytes_tx: self.bytes_tx(),
            bytes_rx: self.bytes_rx(),
            dma_ops: self.dma_ops(),
            pio_ops: self.pio_ops(),
            doorbells_rung: self.doorbells_rung(),
            doorbells_received: self.doorbells_received(),
            scratchpad_accesses: self.scratchpad_accesses(),
            lut_rejects: self.lut_rejects(),
            window_violations: self.window_violations(),
        }
    }
}

/// A point-in-time copy of [`PortStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStatsSnapshot {
    /// Bytes transmitted through the outgoing window.
    pub bytes_tx: u64,
    /// Bytes received into the incoming window.
    pub bytes_rx: u64,
    /// DMA descriptors completed.
    pub dma_ops: u64,
    /// PIO transfers performed.
    pub pio_ops: u64,
    /// Doorbells rung towards the peer.
    pub doorbells_rung: u64,
    /// Doorbell interrupts received.
    pub doorbells_received: u64,
    /// Scratchpad register accesses.
    pub scratchpad_accesses: u64,
    /// LUT rejections.
    pub lut_rejects: u64,
    /// Window-limit violations.
    pub window_violations: u64,
}

impl fmt::Display for PortStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tx={}B rx={}B dma={} pio={} db_out={} db_in={} spad={} lut_rej={} win_viol={}",
            self.bytes_tx,
            self.bytes_rx,
            self.dma_ops,
            self.pio_ops,
            self.doorbells_rung,
            self.doorbells_received,
            self.scratchpad_accesses,
            self.lut_rejects,
            self.window_violations
        )
    }
}

/// Counters of faults injected into one link by a
/// [`FaultInjector`](crate::fault::FaultInjector). Separate from
/// [`PortStats`] because they describe what the *fault model* did, not
/// what the traffic did — chaos tests assert these are reproducible for a
/// given seed.
#[derive(Debug, Default)]
pub struct FaultStats {
    doorbells_dropped: AtomicU64,
    payloads_corrupted: AtomicU64,
    dma_failures: AtomicU64,
    dma_stalls: AtomicU64,
    link_down_windows: AtomicU64,
    acks_suppressed: AtomicU64,
}

impl FaultStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a silently discarded doorbell ring.
    pub fn add_doorbell_dropped(&self) {
        bump(&self.doorbells_dropped, 1);
    }

    /// Record a flipped payload byte.
    pub fn add_payload_corrupted(&self) {
        bump(&self.payloads_corrupted, 1);
    }

    /// Record a DMA descriptor completed with an error.
    pub fn add_dma_failure(&self) {
        bump(&self.dma_failures, 1);
    }

    /// Record a stalled DMA descriptor.
    pub fn add_dma_stall(&self) {
        bump(&self.dma_stalls, 1);
    }

    /// Record a link-down window being armed.
    pub fn add_link_down_window(&self) {
        bump(&self.link_down_windows, 1);
    }

    /// Record a put acknowledgement suppressed at the receiver.
    pub fn add_ack_suppressed(&self) {
        bump(&self.acks_suppressed, 1);
    }

    /// Doorbell rings discarded.
    pub fn doorbells_dropped(&self) -> u64 {
        get(&self.doorbells_dropped)
    }

    /// Payload writes corrupted.
    pub fn payloads_corrupted(&self) -> u64 {
        get(&self.payloads_corrupted)
    }

    /// DMA descriptors failed.
    pub fn dma_failures(&self) -> u64 {
        get(&self.dma_failures)
    }

    /// DMA descriptors stalled.
    pub fn dma_stalls(&self) -> u64 {
        get(&self.dma_stalls)
    }

    /// Link-down windows armed.
    pub fn link_down_windows(&self) -> u64 {
        get(&self.link_down_windows)
    }

    /// Put acknowledgements suppressed.
    pub fn acks_suppressed(&self) -> u64 {
        get(&self.acks_suppressed)
    }

    /// Snapshot every counter.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            doorbells_dropped: self.doorbells_dropped(),
            payloads_corrupted: self.payloads_corrupted(),
            dma_failures: self.dma_failures(),
            dma_stalls: self.dma_stalls(),
            link_down_windows: self.link_down_windows(),
            acks_suppressed: self.acks_suppressed(),
        }
    }
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Doorbell rings silently discarded.
    pub doorbells_dropped: u64,
    /// Payload writes with a flipped byte.
    pub payloads_corrupted: u64,
    /// DMA descriptors completed with an error.
    pub dma_failures: u64,
    /// DMA descriptors stalled.
    pub dma_stalls: u64,
    /// Link-down windows armed.
    pub link_down_windows: u64,
    /// Put acknowledgements suppressed at the receiver.
    pub acks_suppressed: u64,
}

impl FaultStatsSnapshot {
    /// Total injected events of any kind.
    pub fn total(&self) -> u64 {
        self.doorbells_dropped
            + self.payloads_corrupted
            + self.dma_failures
            + self.dma_stalls
            + self.link_down_windows
            + self.acks_suppressed
    }
}

impl fmt::Display for FaultStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "db_dropped={} corrupted={} dma_fail={} dma_stall={} down_windows={} acks_suppressed={}",
            self.doorbells_dropped,
            self.payloads_corrupted,
            self.dma_failures,
            self.dma_stalls,
            self.link_down_windows,
            self.acks_suppressed
        )
    }
}

/// Aggregated counters over one link (both ports).
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Total bytes moved in either direction.
    pub total_bytes: u64,
    /// Total DMA operations.
    pub total_dma_ops: u64,
    /// Total PIO operations.
    pub total_pio_ops: u64,
}

impl LinkStats {
    /// Combine the two port snapshots of a link. Bytes are counted once
    /// (tx side).
    pub fn from_ports(a: &PortStatsSnapshot, b: &PortStatsSnapshot) -> Self {
        LinkStats {
            total_bytes: a.bytes_tx + b.bytes_tx,
            total_dma_ops: a.dma_ops + b.dma_ops,
            total_pio_ops: a.pio_ops + b.pio_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = PortStats::new();
        s.add_tx(100);
        s.add_tx(50);
        s.add_rx(10);
        s.add_dma_op();
        s.add_pio_op();
        s.add_doorbell_rung();
        s.add_doorbell_received();
        s.add_scratchpad_access();
        s.add_lut_reject();
        s.add_window_violation();
        let snap = s.snapshot();
        assert_eq!(snap.bytes_tx, 150);
        assert_eq!(snap.bytes_rx, 10);
        assert_eq!(snap.dma_ops, 1);
        assert_eq!(snap.pio_ops, 1);
        assert_eq!(snap.doorbells_rung, 1);
        assert_eq!(snap.doorbells_received, 1);
        assert_eq!(snap.scratchpad_accesses, 1);
        assert_eq!(snap.lut_rejects, 1);
        assert_eq!(snap.window_violations, 1);
    }

    #[test]
    fn snapshot_display_contains_fields() {
        let s = PortStats::new();
        s.add_tx(42);
        let out = s.snapshot().to_string();
        assert!(out.contains("tx=42B"), "{out}");
    }

    #[test]
    fn link_stats_sum_tx_sides() {
        let a = PortStatsSnapshot { bytes_tx: 100, dma_ops: 2, ..Default::default() };
        let b = PortStatsSnapshot { bytes_tx: 50, pio_ops: 3, ..Default::default() };
        let l = LinkStats::from_ports(&a, &b);
        assert_eq!(l.total_bytes, 150);
        assert_eq!(l.total_dma_ops, 2);
        assert_eq!(l.total_pio_ops, 3);
    }

    #[test]
    fn fault_stats_accumulate_and_display() {
        let s = FaultStats::new();
        s.add_doorbell_dropped();
        s.add_doorbell_dropped();
        s.add_payload_corrupted();
        s.add_dma_failure();
        s.add_dma_stall();
        s.add_link_down_window();
        let snap = s.snapshot();
        assert_eq!(snap.doorbells_dropped, 2);
        assert_eq!(snap.total(), 6);
        let out = snap.to_string();
        assert!(out.contains("db_dropped=2"), "{out}");
    }

    #[test]
    fn concurrent_updates() {
        use std::sync::Arc;
        let s = Arc::new(PortStats::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.add_tx(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.bytes_tx(), 4000);
    }
}
