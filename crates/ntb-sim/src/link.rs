//! PCIe link parameters: generation, lane count, encoding efficiency.
//!
//! The paper's testbed connects hosts with PCIe Gen3 x8 fabric cables driven
//! by PLX PEX 8733/8749 NTB chips and measures 20–30 Gbps of effective DMA
//! bandwidth per connection. This module captures the *physical-layer* math:
//! per-lane signalling rate, 8b/10b vs 128b/130b encoding, and a protocol
//! efficiency factor that accounts for TLP/DLLP framing, flow-control
//! credits, and chipset limits. [`LinkSpec::effective_bandwidth`] is what the
//! timing model uses to charge transfer time.

use std::fmt;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// PCIe generation of a link. Determines the per-lane signalling rate and
/// the line encoding (Gen1/2 use 8b/10b, Gen3 uses 128b/130b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PcieGen {
    /// 2.5 GT/s per lane, 8b/10b.
    Gen1,
    /// 5.0 GT/s per lane, 8b/10b.
    Gen2,
    /// 8.0 GT/s per lane, 128b/130b.
    Gen3,
}

impl PcieGen {
    /// Raw signalling rate per lane in transfers (bits) per second.
    pub fn raw_gigatransfers(self) -> f64 {
        match self {
            PcieGen::Gen1 => 2.5e9,
            PcieGen::Gen2 => 5.0e9,
            PcieGen::Gen3 => 8.0e9,
        }
    }

    /// Fraction of raw bits that carry payload after line encoding.
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            // 8b/10b: 8 payload bits per 10 line bits.
            PcieGen::Gen1 | PcieGen::Gen2 => 8.0 / 10.0,
            // 128b/130b.
            PcieGen::Gen3 => 128.0 / 130.0,
        }
    }

    /// Usable bytes per second per lane after line encoding (before protocol
    /// overhead).
    pub fn lane_bytes_per_sec(self) -> f64 {
        self.raw_gigatransfers() * self.encoding_efficiency() / 8.0
    }
}

impl fmt::Display for PcieGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcieGen::Gen1 => write!(f, "Gen1"),
            PcieGen::Gen2 => write!(f, "Gen2"),
            PcieGen::Gen3 => write!(f, "Gen3"),
        }
    }
}

/// Number of lanes in a link. The PEX 87xx adapters in the paper support x4,
/// x8 and x16 configurations; the testbed cables are x8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneCount {
    /// Four lanes.
    X4,
    /// Eight lanes (the paper's configuration).
    X8,
    /// Sixteen lanes.
    X16,
}

impl LaneCount {
    /// Lane count as an integer.
    pub fn lanes(self) -> u32 {
        match self {
            LaneCount::X4 => 4,
            LaneCount::X8 => 8,
            LaneCount::X16 => 16,
        }
    }
}

impl fmt::Display for LaneCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.lanes())
    }
}

/// Full physical description of one NTB link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// PCIe generation.
    pub gen: PcieGen,
    /// Lane count.
    pub lanes: LaneCount,
    /// Fraction of post-encoding bandwidth that survives TLP/DLLP framing,
    /// flow control and chipset overheads. The paper's measured 20–30 Gbps
    /// on a Gen3 x8 link (62.9 Gbps post-encoding) corresponds to roughly
    /// 0.35–0.45; the default 0.40 reproduces the middle of that band.
    pub protocol_efficiency: f64,
}

impl LinkSpec {
    /// The paper's testbed link: Gen3 x8 with the efficiency measured for
    /// the PEX 8733/8749 pair.
    pub fn paper_testbed() -> Self {
        LinkSpec { gen: PcieGen::Gen3, lanes: LaneCount::X8, protocol_efficiency: 0.40 }
    }

    /// Post-encoding bandwidth in bytes/second (no protocol overhead).
    pub fn encoded_bandwidth(&self) -> f64 {
        self.gen.lane_bytes_per_sec() * f64::from(self.lanes.lanes())
    }

    /// Effective payload bandwidth in bytes/second, the number the timing
    /// model charges DMA transfers against.
    pub fn effective_bandwidth(&self) -> f64 {
        self.encoded_bandwidth() * self.protocol_efficiency
    }

    /// Time on the wire for `bytes` of payload at effective bandwidth.
    pub fn wire_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.effective_bandwidth())
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PCIe {} {} ({:.1} GB/s effective)",
            self.gen,
            self.lanes,
            self.effective_bandwidth() / 1e9
        )
    }
}

/// Observed health of one link endpoint, as tracked by the layer driving
/// traffic through it.
///
/// This is *observed* state, distinct from the fault model's ground truth
/// (a [`FaultInjector`](crate::fault::FaultInjector) down-window): the
/// driver only learns the link is bad by watching its own operations
/// fail, exactly as on real hardware where a surprise link-down
/// manifests as failed TLPs before the AER interrupt arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkHealth {
    /// Operating normally.
    Up,
    /// Some recent operations failed; still in use but suspect.
    Degraded,
    /// Enough consecutive failures that traffic should route around it
    /// until a probe succeeds.
    Down,
}

impl fmt::Display for LinkHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkHealth::Up => write!(f, "up"),
            LinkHealth::Degraded => write!(f, "degraded"),
            LinkHealth::Down => write!(f, "down"),
        }
    }
}

/// Consecutive-failure state machine: `Up` → (first failure) `Degraded` →
/// (`threshold` consecutive failures) `Down`; any success returns to
/// `Up`. Lock-free; callable from service, forwarder and sweeper threads.
#[derive(Debug)]
pub struct LinkHealthTracker {
    /// Encoded [`LinkHealth`]: 0 = Up, 1 = Degraded, 2 = Down.
    state: std::sync::atomic::AtomicU8,
    consecutive_failures: std::sync::atomic::AtomicU32,
    threshold: u32,
}

impl LinkHealthTracker {
    /// Track health with the given consecutive-failure threshold
    /// (minimum 1: the first failure of a 1-threshold tracker goes
    /// straight to `Down`).
    pub fn new(threshold: u32) -> Self {
        LinkHealthTracker {
            state: std::sync::atomic::AtomicU8::new(0),
            consecutive_failures: std::sync::atomic::AtomicU32::new(0),
            threshold: threshold.max(1),
        }
    }

    /// Current observed health.
    pub fn health(&self) -> LinkHealth {
        // lint: relaxed-ok(advisory health snapshot; routing tolerates a stale read)
        match self.state.load(Ordering::Relaxed) {
            0 => LinkHealth::Up,
            1 => LinkHealth::Degraded,
            _ => LinkHealth::Down,
        }
    }

    /// Whether traffic should avoid this endpoint.
    pub fn is_down(&self) -> bool {
        // lint: relaxed-ok(advisory health snapshot; a stale read only delays failover)
        self.state.load(Ordering::Relaxed) == 2
    }

    /// Record a successful operation; resets to `Up`. Returns the new
    /// health.
    pub fn record_success(&self) -> LinkHealth {
        // lint: relaxed-ok(health state is advisory; observers tolerate reordered updates)
        self.consecutive_failures.store(0, Ordering::Relaxed);
        // lint: relaxed-ok(health state is advisory; observers tolerate reordered updates)
        self.state.store(0, Ordering::Relaxed);
        LinkHealth::Up
    }

    /// Record a failed (transient) operation. Returns the new health, so
    /// the caller can count an `Up`/`Degraded` → `Down` transition.
    pub fn record_failure(&self) -> LinkHealth {
        // lint: relaxed-ok(failure streak counting needs atomicity, not ordering)
        let fails = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let new = if fails >= self.threshold { 2 } else { 1 };
        // lint: relaxed-ok(health state is advisory; observers tolerate a stale read)
        self.state.store(new, Ordering::Relaxed);
        if new == 2 {
            LinkHealth::Down
        } else {
            LinkHealth::Degraded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_rates_ascend() {
        assert!(PcieGen::Gen1.raw_gigatransfers() < PcieGen::Gen2.raw_gigatransfers());
        assert!(PcieGen::Gen2.raw_gigatransfers() < PcieGen::Gen3.raw_gigatransfers());
    }

    #[test]
    fn encoding_efficiency_matches_spec() {
        assert!((PcieGen::Gen1.encoding_efficiency() - 0.8).abs() < 1e-12);
        assert!((PcieGen::Gen3.encoding_efficiency() - 128.0 / 130.0).abs() < 1e-12);
    }

    #[test]
    fn gen3_x8_encoded_bandwidth() {
        // 8 GT/s * 128/130 / 8 bits = ~0.985 GB/s per lane; x8 = ~7.88 GB/s.
        let spec = LinkSpec { gen: PcieGen::Gen3, lanes: LaneCount::X8, protocol_efficiency: 1.0 };
        let gbps = spec.encoded_bandwidth() / 1e9;
        assert!((gbps - 7.88).abs() < 0.02, "got {gbps}");
    }

    #[test]
    fn paper_testbed_lands_in_measured_band() {
        // Paper: 20-30 Gbps effective => 2.5-3.75 GB/s.
        let bw = LinkSpec::paper_testbed().effective_bandwidth();
        assert!(bw > 2.5e9 && bw < 3.75e9, "effective bandwidth {bw} outside the paper's band");
    }

    #[test]
    fn wire_time_scales_linearly() {
        let spec = LinkSpec::paper_testbed();
        let t1 = spec.wire_time(1 << 20);
        let t2 = spec.wire_time(2 << 20);
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let s = LinkSpec::paper_testbed().to_string();
        assert!(s.contains("Gen3") && s.contains("x8"), "{s}");
    }

    #[test]
    fn lane_counts() {
        assert_eq!(LaneCount::X4.lanes(), 4);
        assert_eq!(LaneCount::X8.lanes(), 8);
        assert_eq!(LaneCount::X16.lanes(), 16);
    }

    #[test]
    fn health_tracker_state_machine() {
        let t = LinkHealthTracker::new(3);
        assert_eq!(t.health(), LinkHealth::Up);
        assert!(!t.is_down());
        assert_eq!(t.record_failure(), LinkHealth::Degraded);
        assert_eq!(t.record_failure(), LinkHealth::Degraded);
        assert_eq!(t.record_failure(), LinkHealth::Down);
        assert!(t.is_down());
        // Any success snaps back to Up.
        assert_eq!(t.record_success(), LinkHealth::Up);
        assert_eq!(t.health(), LinkHealth::Up);
        // Failure streak must be consecutive to reach Down again.
        t.record_failure();
        t.record_failure();
        t.record_success();
        t.record_failure();
        assert_eq!(t.health(), LinkHealth::Degraded);
    }

    #[test]
    fn health_tracker_threshold_clamped_to_one() {
        let t = LinkHealthTracker::new(0);
        assert_eq!(t.record_failure(), LinkHealth::Down);
    }

    #[test]
    fn health_display() {
        assert_eq!(LinkHealth::Up.to_string(), "up");
        assert_eq!(LinkHealth::Degraded.to_string(), "degraded");
        assert_eq!(LinkHealth::Down.to_string(), "down");
    }
}
