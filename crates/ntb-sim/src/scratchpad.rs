//! ScratchPad registers.
//!
//! Each NTB link exposes a bank of 32-bit ScratchPad registers that both
//! connected ports can read and write directly (paper §II-A). The paper's
//! protocol uses them as a mailbox for transfer metadata (`SrcId`, `DestId`,
//! symmetric-heap index, offset, size, send/receive flag) published just
//! before a doorbell ring, and for the host-id / BAR-region exchange during
//! `shmem_init`. The upper half of the bank carries the liveness
//! heartbeat and gossiped membership view of the failure detector.
//!
//! Each access is a 32-bit non-posted PCIe transaction, so the model charges
//! [`TimeModel::scratchpad_latency`] per register read or write.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::error::{NtbError, Result};
use crate::timing::TimeModel;

/// Number of scratchpad registers per link. The PEX 87xx exposes eight
/// per port pair; the model doubles the bank so registers 0–7 stay the
/// paper's mailbox/handshake block while 8–15 host the heartbeat and
/// membership-gossip block of the failure detector.
pub const SCRATCHPAD_COUNT: usize = 16;

/// The shared register file of one link. Both ports of a connected pair
/// hold handles to the same bank, exactly like the hardware registers are
/// visible from both PCIe hierarchies.
#[derive(Debug)]
pub struct ScratchpadBank {
    regs: [AtomicU32; SCRATCHPAD_COUNT],
    model: Arc<TimeModel>,
}

impl ScratchpadBank {
    /// Fresh zeroed bank charging latencies against `model`.
    pub fn new(model: Arc<TimeModel>) -> Arc<Self> {
        Arc::new(ScratchpadBank { regs: Default::default(), model })
    }

    fn check(index: usize) -> Result<()> {
        if index >= SCRATCHPAD_COUNT {
            return Err(NtbError::BadScratchpadIndex { index });
        }
        Ok(())
    }

    /// Write one register (one non-posted 32-bit transaction).
    pub fn write(&self, index: usize, value: u32) -> Result<()> {
        Self::check(index)?;
        self.model.delay(self.model.scratchpad_latency);
        self.regs[index].store(value, Ordering::SeqCst);
        Ok(())
    }

    /// Read one register.
    pub fn read(&self, index: usize) -> Result<u32> {
        Self::check(index)?;
        self.model.delay(self.model.scratchpad_latency);
        Ok(self.regs[index].load(Ordering::SeqCst))
    }

    /// Write `values` into consecutive registers starting at `start`.
    pub fn write_block(&self, start: usize, values: &[u32]) -> Result<()> {
        if start + values.len() > SCRATCHPAD_COUNT {
            return Err(NtbError::BadScratchpadIndex { index: start + values.len() - 1 });
        }
        for (i, v) in values.iter().enumerate() {
            self.write(start + i, *v)?;
        }
        Ok(())
    }

    /// Read `len` consecutive registers starting at `start`.
    pub fn read_block(&self, start: usize, len: usize) -> Result<Vec<u32>> {
        if start + len > SCRATCHPAD_COUNT {
            return Err(NtbError::BadScratchpadIndex { index: start + len - 1 });
        }
        (start..start + len).map(|i| self.read(i)).collect()
    }

    /// Atomic compare-exchange on one register. The PEX chips don't offer
    /// this in hardware; the driver layer emulates it with a
    /// read-check-write under the link's setup serialization, and the model
    /// grants it atomically (used only during `shmem_init` id exchange and
    /// by tests).
    pub fn compare_exchange(&self, index: usize, current: u32, new: u32) -> Result<bool> {
        Self::check(index)?;
        self.model.delay(self.model.scratchpad_latency);
        Ok(self.regs[index]
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Arc<ScratchpadBank> {
        ScratchpadBank::new(Arc::new(TimeModel::zero()))
    }

    #[test]
    fn write_read_single() {
        let b = bank();
        b.write(0, 0xCAFE_BABE).unwrap();
        assert_eq!(b.read(0).unwrap(), 0xCAFE_BABE);
        assert_eq!(b.read(1).unwrap(), 0);
    }

    #[test]
    fn index_bounds() {
        let b = bank();
        assert!(b.write(SCRATCHPAD_COUNT, 1).is_err());
        assert!(b.read(SCRATCHPAD_COUNT).is_err());
        assert!(b.write(SCRATCHPAD_COUNT - 1, 1).is_ok());
    }

    #[test]
    fn block_roundtrip() {
        let b = bank();
        b.write_block(2, &[10, 20, 30]).unwrap();
        assert_eq!(b.read_block(2, 3).unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn block_bounds() {
        let b = bank();
        assert!(b.write_block(SCRATCHPAD_COUNT - 2, &[1, 2, 3]).is_err());
        assert!(b.read_block(SCRATCHPAD_COUNT - 1, 2).is_err());
        assert!(b.write_block(SCRATCHPAD_COUNT - 3, &[1, 2, 3]).is_ok());
    }

    #[test]
    fn compare_exchange_works() {
        let b = bank();
        b.write(3, 7).unwrap();
        assert!(!b.compare_exchange(3, 0, 9).unwrap());
        assert_eq!(b.read(3).unwrap(), 7);
        assert!(b.compare_exchange(3, 7, 9).unwrap());
        assert_eq!(b.read(3).unwrap(), 9);
    }

    #[test]
    fn visible_from_both_sides() {
        // Two "ports" hold clones of the same bank.
        let b = bank();
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            b2.write(5, 1234).unwrap();
        });
        h.join().unwrap();
        assert_eq!(b.read(5).unwrap(), 1234);
    }

    #[test]
    fn charged_latency_respects_scale() {
        use std::time::{Duration, Instant};
        let model = Arc::new(TimeModel { scale: 1.0, ..TimeModel::paper() });
        let lat = model.scratchpad_latency;
        let b = ScratchpadBank::new(model);
        let t0 = Instant::now();
        for _ in 0..10 {
            b.write(0, 1).unwrap();
        }
        assert!(t0.elapsed() >= lat * 10 - Duration::from_micros(1));
    }
}
