//! The NTB port: composition of windows, scratchpads, doorbells and DMA.
//!
//! A [`NtbPort`] models one NTB host adapter as seen by its driver. Two
//! ports are cabled together with [`connect_ports`], which mirrors the
//! paper's setup step: allocate the incoming window memory on each side,
//! program the BAR translation so each side's outgoing window lands in the
//! other's incoming region, share the scratchpad bank, cross-wire the
//! doorbells, and program each side's requester ID into the peer's LUT.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::aperture::{ApertureCell, ReadAperture};
use crate::bar::{BarConfig, BarKind, LutTable};
use crate::config_space::{ConfigSpace, DEVICE_PEX8749};
use crate::dma::{DmaEngine, DmaHandle, DmaRequest};
use crate::doorbell::{Doorbell, DoorbellWaiter};
use crate::error::{NtbError, Result};
use crate::fault::FaultInjector;
use crate::memory::{HostMemory, Region};
use crate::obs::{EventKind, Obs};
use crate::scratchpad::ScratchpadBank;
use crate::stats::PortStats;
use crate::timing::{LinkDirection, LinkTimer, TimeModel, TransferMode};
use crate::window::{IncomingWindow, OutgoingWindow};

/// Identity of a port: which host it is installed in and which of the
/// host's adapter slots it occupies (the paper installs two adapters per
/// host: "left" and "right").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId {
    /// Host id.
    pub host: usize,
    /// Adapter slot within the host (0 = left, 1 = right by convention).
    pub slot: usize,
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}.ntb{}", self.host, self.slot)
    }
}

/// Configuration for one side of a connection.
#[derive(Debug, Clone)]
pub struct PortConfig {
    /// Port identity.
    pub id: PortId,
    /// Size of the incoming window to allocate (power of two).
    pub window_size: u64,
    /// PCIe requester id of this adapter (programmed into the peer's LUT).
    pub requester_id: u16,
    /// DMA channels to spawn.
    pub dma_channels: usize,
}

impl PortConfig {
    /// Reasonable defaults: 4 MiB window, one DMA channel.
    pub fn new(host: usize, slot: usize) -> Self {
        PortConfig {
            id: PortId { host, slot },
            window_size: 4 << 20,
            requester_id: (host as u16) << 4 | slot as u16,
            dma_channels: 1,
        }
    }

    /// Override the incoming window size.
    pub fn with_window_size(mut self, size: u64) -> Self {
        self.window_size = size;
        self
    }
}

/// One side of a connected NTB link.
pub struct NtbPort {
    id: PortId,
    config_space: ConfigSpace,
    model: Arc<TimeModel>,
    scratchpads: Arc<ScratchpadBank>,
    doorbell: Arc<Doorbell>,
    peer_doorbell: Arc<Doorbell>,
    outgoing: Arc<OutgoingWindow>,
    incoming: IncomingWindow,
    dma: Arc<DmaEngine>,
    lut: Arc<LutTable>,
    stats: Arc<PortStats>,
    link: Arc<LinkTimer>,
    obs: Obs,
    dma_seq: AtomicU64,
    /// Node vitals: a dead port refuses every transaction with
    /// [`NtbError::NodeDead`]; a frozen port stalls callers until thawed
    /// (or killed), modelling a hung-but-not-crashed host.
    dead: AtomicBool,
    frozen: AtomicBool,
    /// What this host exposes to the peer for direct reads (revoked while
    /// this port is dead or frozen).
    local_aperture: Arc<ApertureCell>,
    /// The peer's published aperture (this side reads through it).
    peer_aperture: Arc<ApertureCell>,
}

impl fmt::Debug for NtbPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NtbPort").field("id", &self.id).finish()
    }
}

impl NtbPort {
    /// This port's identity.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// Vitals gate applied at the top of every transaction path. A dead
    /// port fails fast; a frozen one stalls its caller — exactly what a
    /// hung host does to a PCIe initiator — until thawed or killed.
    fn gate(&self) -> Result<()> {
        loop {
            if self.dead.load(Ordering::SeqCst) {
                return Err(NtbError::NodeDead);
            }
            if !self.frozen.load(Ordering::SeqCst) {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Kill this port: all subsequent transactions fail with
    /// [`NtbError::NodeDead`], queued DMA jobs are aborted, and the
    /// published read aperture is revoked (a dead host completes no peer
    /// reads).
    pub fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        self.frozen.store(false, Ordering::SeqCst);
        self.local_aperture.revoke();
        self.dma.halt();
    }

    /// Freeze this port: transactions stall until [`thaw`](Self::thaw)
    /// (or [`kill`](Self::kill)). The read aperture is revoked for the
    /// duration — peers fall back to the protocol path (and its timeouts)
    /// instead of reading a hung host's memory instantly.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::SeqCst);
        self.local_aperture.revoke();
    }

    /// Release a freeze; stalled callers resume and the aperture is
    /// re-exposed (unless the port was killed while frozen).
    pub fn thaw(&self) {
        self.frozen.store(false, Ordering::SeqCst);
        if !self.dead.load(Ordering::SeqCst) {
            self.local_aperture.restore();
        }
    }

    /// Bring a killed port back: clears both vitals flags, resumes the
    /// DMA engine and restores the published aperture. The layers above
    /// re-run their handshakes.
    pub fn revive(&self) {
        self.dead.store(false, Ordering::SeqCst);
        self.frozen.store(false, Ordering::SeqCst);
        self.local_aperture.restore();
        self.dma.resume();
    }

    /// Whether this port has been killed (and not yet revived).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Whether this port is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::SeqCst)
    }

    /// The adapter's PCIe configuration header (enumeration surface: the
    /// IDs and sized BARs a probing driver sees; enabled by
    /// `connect_ports` after "address assignment").
    pub fn config_space(&self) -> &ConfigSpace {
        &self.config_space
    }

    /// The shared timing model.
    pub fn model(&self) -> &Arc<TimeModel> {
        &self.model
    }

    /// The link's shared scratchpad bank.
    pub fn scratchpads(&self) -> &Arc<ScratchpadBank> {
        &self.scratchpads
    }

    /// Write one scratchpad register (stats-accounted).
    pub fn spad_write(&self, index: usize, value: u32) -> Result<()> {
        self.gate()?;
        self.stats.add_scratchpad_access();
        self.obs.emit(EventKind::SpadWrite, index as u64, [value as u64, 0]);
        self.scratchpads.write(index, value)
    }

    /// Read one scratchpad register (stats-accounted).
    pub fn spad_read(&self, index: usize) -> Result<u32> {
        self.gate()?;
        self.stats.add_scratchpad_access();
        self.scratchpads.read(index)
    }

    /// Ring doorbell `bit` on the peer.
    ///
    /// Subject to the link's fault model: fails with
    /// [`NtbError::LinkDown`] while the link is in a down window, and may
    /// silently *succeed without delivering* if the injector drops the
    /// posted write — exactly the failure mode a lossy fabric produces,
    /// which the recovery layer above must detect by timeout.
    pub fn ring_peer(&self, bit: u32) -> Result<()> {
        self.gate()?;
        let faults = self.outgoing.faults();
        if faults.link_is_down() {
            return Err(NtbError::LinkDown);
        }
        self.stats.add_doorbell_rung();
        let dropped = faults.should_drop_doorbell(self.outgoing.direction(), bit);
        self.obs.emit(EventKind::DoorbellSet, bit as u64, [dropped as u64, 0]);
        if dropped {
            return Ok(());
        }
        self.peer_doorbell.ring(bit)
    }

    /// Block until one of `interest`'s doorbell bits is delivered (or the
    /// timeout passes). Does not clear.
    pub fn wait_doorbell(&self, interest: u32, timeout: Option<Duration>) -> DoorbellWaiter {
        let r = self.doorbell.wait(interest, timeout);
        if matches!(r, DoorbellWaiter::Fired(_)) {
            self.stats.add_doorbell_received();
        }
        r
    }

    /// This port's incoming doorbell register (for mask/pending/clear).
    pub fn doorbell(&self) -> &Arc<Doorbell> {
        &self.doorbell
    }

    /// Clear pending doorbell bits at this port — the service loop's
    /// interrupt acknowledge, recorded in the event trace.
    pub fn clear_doorbell(&self, bits: u32) {
        self.obs.emit(EventKind::DoorbellClear, bits as u64, [0, 0]);
        self.doorbell.clear(bits);
    }

    /// This port's observability handle (off unless connected through
    /// [`connect_ports_observed`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The outgoing (translated) window into the peer's memory.
    pub fn outgoing(&self) -> &Arc<OutgoingWindow> {
        &self.outgoing
    }

    /// This port's incoming window (local memory the peer writes into).
    pub fn incoming(&self) -> &IncomingWindow {
        &self.incoming
    }

    /// This port's requester-ID LUT (admission control for the peer).
    pub fn lut(&self) -> &Arc<LutTable> {
        &self.lut
    }

    /// Port counters.
    pub fn stats(&self) -> &Arc<PortStats> {
        &self.stats
    }

    /// The underlying link timer (shared with the peer port).
    pub fn link(&self) -> &Arc<LinkTimer> {
        &self.link
    }

    /// The link's fault injector (shared with the peer port; the lossless
    /// injector unless connected with [`connect_ports_with_faults`]).
    pub fn faults(&self) -> &Arc<FaultInjector> {
        self.outgoing.faults()
    }

    /// Submit an asynchronous DMA descriptor through the outgoing window.
    pub fn dma_submit(&self, req: DmaRequest) -> Result<DmaHandle> {
        self.gate()?;
        // lint: relaxed-ok(unique job-id allocation; uniqueness needs atomicity, not ordering)
        let job = self.dma_seq.fetch_add(1, Ordering::Relaxed);
        self.obs.emit(EventKind::DmaSubmit, job, [req.dst_offset, req.len]);
        self.dma.submit(Arc::clone(&self.outgoing), req)
    }

    /// Synchronous DMA transfer through the outgoing window.
    pub fn dma_transfer(&self, req: DmaRequest) -> Result<()> {
        self.gate()?;
        // lint: relaxed-ok(unique job-id allocation; uniqueness needs atomicity, not ordering)
        let job = self.dma_seq.fetch_add(1, Ordering::Relaxed);
        self.obs.emit(EventKind::DmaSubmit, job, [req.dst_offset, req.len]);
        let res = self.dma.submit(Arc::clone(&self.outgoing), req).and_then(|h| h.wait());
        match &res {
            Ok(()) => self.obs.emit(EventKind::DmaComplete, job, [0, 0]),
            Err(_) => self.obs.emit(EventKind::DmaFail, job, [0, 0]),
        }
        res
    }

    /// Synchronous DMA transfer of a whole descriptor chain: one engine
    /// submission, one completion for the entire batch.
    pub fn dma_transfer_chain(&self, reqs: Vec<DmaRequest>) -> Result<()> {
        self.gate()?;
        // lint: relaxed-ok(unique job-id allocation; uniqueness needs atomicity, not ordering)
        let job = self.dma_seq.fetch_add(1, Ordering::Relaxed);
        let total: u64 = reqs.iter().map(|r| r.len).sum();
        self.obs.emit(EventKind::DmaSubmit, job, [reqs.len() as u64, total]);
        let res = self.dma.submit_chain(Arc::clone(&self.outgoing), reqs).and_then(|h| h.wait());
        match &res {
            Ok(()) => self.obs.emit(EventKind::DmaComplete, job, [0, 0]),
            Err(_) => self.obs.emit(EventKind::DmaFail, job, [0, 0]),
        }
        res
    }

    /// CPU-`memcpy` (PIO) write through the window.
    pub fn pio_write(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.gate()?;
        self.outgoing.write_bytes(offset, data, TransferMode::Memcpy)
    }

    /// CPU (PIO) read through the window. Slow: non-posted reads.
    pub fn pio_read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.gate()?;
        self.outgoing.read_bytes(offset, buf, TransferMode::Memcpy)
    }

    /// Publish `target` as this host's read aperture: the peer's
    /// [`aperture_read`](Self::aperture_read) can then pull bytes from it
    /// directly. Survives kill/revive cycles (revocation is a flag, not a
    /// drop).
    pub fn publish_aperture(&self, target: Arc<dyn ReadAperture>) {
        self.local_aperture.publish(target);
    }

    /// Withdraw this host's published read aperture (teardown).
    pub fn clear_aperture(&self) {
        self.local_aperture.clear();
    }

    /// Direct non-posted read of the *peer's* published aperture at
    /// `offset`. Pays the PIO read wire time and the usual link admission
    /// (down-link, LUT) without involving the peer's CPU. Returns
    /// `Ok(false)` — nothing read — when the peer has no readable
    /// aperture (unpublished, or revoked while dead/frozen: checked
    /// before any wire time is charged) or when the range falls outside
    /// the exposed mapping; the caller falls back to the
    /// request/response protocol.
    pub fn aperture_read(&self, offset: u64, buf: &mut [u8]) -> Result<bool> {
        self.gate()?;
        let Some(target) = self.peer_aperture.get() else {
            return Ok(false);
        };
        self.outgoing.charge_pio_read(buf.len() as u64)?;
        target.read(offset, buf)
    }

    /// Push from a local region through the window under `mode`,
    /// synchronously. The building block `ntb-net` uses for both paths.
    pub fn push_region(
        &self,
        src: &Region,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
        mode: TransferMode,
    ) -> Result<()> {
        self.gate()?;
        match mode {
            TransferMode::Dma => {
                self.dma_transfer(DmaRequest { src: src.clone(), src_offset, dst_offset, len })
            }
            TransferMode::Memcpy => self.outgoing.write_from_region(
                src,
                src_offset,
                dst_offset,
                len,
                TransferMode::Memcpy,
            ),
        }
    }

    /// Shut down this port's DMA engine (joins its workers).
    pub fn shutdown(&self) {
        self.dma.shutdown();
    }
}

/// Cable two NTB adapters together.
///
/// Allocates each side's incoming window from its host arena, shares one
/// scratchpad bank and one link timer, cross-wires the doorbells, programs
/// the LUTs, and returns the two connected ports. `a` transmits
/// [`LinkDirection::Upstream`], `b` transmits `Downstream`.
pub fn connect_ports(
    cfg_a: PortConfig,
    cfg_b: PortConfig,
    mem_a: &HostMemory,
    mem_b: &HostMemory,
    model: Arc<TimeModel>,
) -> Result<(Arc<NtbPort>, Arc<NtbPort>)> {
    connect_ports_with_faults(cfg_a, cfg_b, mem_a, mem_b, model, FaultInjector::none())
}

/// [`connect_ports`] with a link fault injector: both directions of the
/// link consult the same injector, mirroring a single lossy cable.
pub fn connect_ports_with_faults(
    cfg_a: PortConfig,
    cfg_b: PortConfig,
    mem_a: &HostMemory,
    mem_b: &HostMemory,
    model: Arc<TimeModel>,
    faults: Arc<FaultInjector>,
) -> Result<(Arc<NtbPort>, Arc<NtbPort>)> {
    connect_ports_observed(cfg_a, cfg_b, mem_a, mem_b, model, faults, Obs::off(), Obs::off())
}

/// [`connect_ports_with_faults`] with per-side observability handles, so
/// doorbell/scratchpad/DMA events land in a shared
/// [`EventLog`](crate::obs::EventLog) attributed to each port's PE.
#[allow(clippy::too_many_arguments)]
pub fn connect_ports_observed(
    cfg_a: PortConfig,
    cfg_b: PortConfig,
    mem_a: &HostMemory,
    mem_b: &HostMemory,
    model: Arc<TimeModel>,
    faults: Arc<FaultInjector>,
    obs_a: Obs,
    obs_b: Obs,
) -> Result<(Arc<NtbPort>, Arc<NtbPort>)> {
    let win_a = mem_a.alloc_region(cfg_a.window_size)?; // A's incoming (B writes here)
    let win_b = mem_b.alloc_region(cfg_b.window_size)?; // B's incoming (A writes here)

    let spads = ScratchpadBank::new(Arc::clone(&model));
    let link = LinkTimer::new();

    // Read apertures are cross-wired like the doorbells: each side's
    // publication cell is the other side's read target.
    let ap_a = Arc::new(ApertureCell::default());
    let ap_b = Arc::new(ApertureCell::default());

    let db_a = Doorbell::new(Arc::clone(&model));
    let db_b = Doorbell::new(Arc::clone(&model));

    let lut_a = Arc::new(LutTable::new());
    let lut_b = Arc::new(LutTable::new());
    lut_a.insert(cfg_b.requester_id);
    lut_b.insert(cfg_a.requester_id);

    let stats_a = Arc::new(PortStats::new());
    let stats_b = Arc::new(PortStats::new());

    let bar_a =
        BarConfig { index: 2, kind: BarKind::Bar64, size: cfg_b.window_size, translation_base: 0 };
    let bar_b =
        BarConfig { index: 2, kind: BarKind::Bar64, size: cfg_a.window_size, translation_base: 0 };

    // A's outgoing window lands in B's incoming region; admission is
    // checked against B's LUT with A's requester id.
    let out_a = OutgoingWindow::with_faults(
        bar_a,
        win_b.clone(),
        Arc::clone(&link),
        LinkDirection::Upstream,
        Arc::clone(&model),
        Arc::clone(&lut_b),
        cfg_a.requester_id,
        Arc::clone(&stats_a),
        Arc::clone(&stats_b),
        Arc::clone(mem_a.activity()),
        Arc::clone(mem_b.activity()),
        Arc::clone(&faults),
    )?;
    let out_b = OutgoingWindow::with_faults(
        bar_b,
        win_a.clone(),
        Arc::clone(&link),
        LinkDirection::Downstream,
        Arc::clone(&model),
        Arc::clone(&lut_a),
        cfg_b.requester_id,
        Arc::clone(&stats_b),
        Arc::clone(&stats_a),
        Arc::clone(mem_b.activity()),
        Arc::clone(mem_a.activity()),
        faults,
    )?;

    let in_a = IncomingWindow::new(
        BarConfig { index: 2, kind: BarKind::Bar64, size: cfg_a.window_size, translation_base: 0 },
        win_a,
    )?;
    let in_b = IncomingWindow::new(
        BarConfig { index: 2, kind: BarKind::Bar64, size: cfg_b.window_size, translation_base: 0 },
        win_b,
    )?;

    let cs_a = ConfigSpace::new(DEVICE_PEX8749, &[bar_a])?;
    cs_a.enable();
    let cs_b = ConfigSpace::new(DEVICE_PEX8749, &[bar_b])?;
    cs_b.enable();

    let port_a = Arc::new(NtbPort {
        id: cfg_a.id,
        config_space: cs_a,
        model: Arc::clone(&model),
        scratchpads: Arc::clone(&spads),
        doorbell: Arc::clone(&db_a),
        peer_doorbell: Arc::clone(&db_b),
        outgoing: out_a,
        incoming: in_a,
        dma: DmaEngine::new(cfg_a.dma_channels),
        lut: lut_a,
        stats: stats_a,
        link: Arc::clone(&link),
        obs: obs_a,
        dma_seq: AtomicU64::new(0),
        dead: AtomicBool::new(false),
        frozen: AtomicBool::new(false),
        local_aperture: Arc::clone(&ap_a),
        peer_aperture: Arc::clone(&ap_b),
    });
    let port_b = Arc::new(NtbPort {
        id: cfg_b.id,
        config_space: cs_b,
        model,
        scratchpads: spads,
        doorbell: db_b,
        peer_doorbell: db_a,
        outgoing: out_b,
        incoming: in_b,
        dma: DmaEngine::new(cfg_b.dma_channels),
        lut: lut_b,
        stats: stats_b,
        link,
        obs: obs_b,
        dma_seq: AtomicU64::new(0),
        dead: AtomicBool::new(false),
        frozen: AtomicBool::new(false),
        local_aperture: ap_b,
        peer_aperture: ap_a,
    });
    Ok((port_a, port_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doorbell::DoorbellWaiter;

    fn pair() -> (Arc<NtbPort>, Arc<NtbPort>) {
        let mem_a = HostMemory::new(0, 64 << 20);
        let mem_b = HostMemory::new(1, 64 << 20);
        connect_ports(
            PortConfig::new(0, 1),
            PortConfig::new(1, 0),
            &mem_a,
            &mem_b,
            Arc::new(TimeModel::zero()),
        )
        .unwrap()
    }

    #[test]
    fn pio_write_visible_at_peer() {
        let (a, b) = pair();
        a.pio_write(64, b"over the bridge").unwrap();
        assert_eq!(b.incoming().region().read_vec(64, 15).unwrap(), b"over the bridge");
    }

    #[test]
    fn both_directions_work() {
        let (a, b) = pair();
        a.pio_write(0, b"a->b").unwrap();
        b.pio_write(0, b"b->a").unwrap();
        assert_eq!(b.incoming().region().read_vec(0, 4).unwrap(), b"a->b");
        assert_eq!(a.incoming().region().read_vec(0, 4).unwrap(), b"b->a");
    }

    #[test]
    fn dma_transfer_visible_at_peer() {
        let (a, b) = pair();
        let src = Region::anonymous(1024);
        src.fill(0, 1024, 0x5A).unwrap();
        a.dma_transfer(DmaRequest { src, src_offset: 0, dst_offset: 2048, len: 1024 }).unwrap();
        assert_eq!(b.incoming().region().read_vec(2048, 1024).unwrap(), vec![0x5A; 1024]);
    }

    #[test]
    fn doorbell_crosses_link() {
        let (a, b) = pair();
        a.ring_peer(3).unwrap();
        assert_eq!(
            b.wait_doorbell(1 << 3, Some(Duration::from_secs(1))),
            DoorbellWaiter::Fired(1 << 3)
        );
        // A's own doorbell untouched.
        assert_eq!(a.doorbell().pending(), 0);
    }

    #[test]
    fn scratchpads_shared_between_sides() {
        let (a, b) = pair();
        a.spad_write(2, 777).unwrap();
        assert_eq!(b.spad_read(2).unwrap(), 777);
        b.spad_write(2, 888).unwrap();
        assert_eq!(a.spad_read(2).unwrap(), 888);
    }

    #[test]
    fn lut_removal_blocks_peer_traffic() {
        let (a, b) = pair();
        // Remove A's requester id from B's admission table (held by b.lut()).
        b.lut().remove(a.outgoing().bar().index as u16); // wrong id: no effect
        a.pio_write(0, b"ok").unwrap();
        let a_reqid = PortConfig::new(0, 1).requester_id;
        b.lut().remove(a_reqid);
        assert!(a.pio_write(0, b"blocked").is_err());
        assert_eq!(b.stats().lut_rejects(), 1);
    }

    #[test]
    fn window_memory_charged_to_host_arena() {
        let mem_a = HostMemory::new(0, 64 << 20);
        let mem_b = HostMemory::new(1, 64 << 20);
        let _ = connect_ports(
            PortConfig::new(0, 1).with_window_size(1 << 20),
            PortConfig::new(1, 0).with_window_size(2 << 20),
            &mem_a,
            &mem_b,
            Arc::new(TimeModel::zero()),
        )
        .unwrap();
        assert_eq!(mem_a.allocated(), 1 << 20);
        assert_eq!(mem_b.allocated(), 2 << 20);
    }

    #[test]
    fn stats_flow_matches_traffic() {
        let (a, b) = pair();
        a.pio_write(0, &[0u8; 100]).unwrap();
        a.ring_peer(0).unwrap();
        assert_eq!(a.stats().bytes_tx(), 100);
        assert_eq!(b.stats().bytes_rx(), 100);
        assert_eq!(a.stats().doorbells_rung(), 1);
    }

    #[test]
    fn pio_read_pulls_remote_window() {
        let (a, b) = pair();
        b.incoming().region().write(32, b"readable").unwrap();
        let mut buf = [0u8; 8];
        a.pio_read(32, &mut buf).unwrap();
        assert_eq!(&buf, b"readable");
    }

    #[test]
    fn config_space_reflects_window() {
        let (a, b) = pair();
        for port in [&a, &b] {
            let cs = port.config_space();
            assert!(cs.is_enabled(), "connect enables decoding + DMA");
            let bars = cs.enumerate_bars();
            assert_eq!(bars.len(), 1);
            let (idx, size, is_64) = bars[0];
            assert_eq!(idx, 2);
            assert_eq!(size, port.outgoing().size());
            assert!(is_64);
        }
    }

    #[test]
    fn port_id_display() {
        assert_eq!(PortId { host: 2, slot: 1 }.to_string(), "host2.ntb1");
    }

    #[test]
    fn faulty_pair_drops_scripted_doorbell() {
        use crate::fault::{FaultAction, FaultPlan};
        let mem_a = HostMemory::new(0, 64 << 20);
        let mem_b = HostMemory::new(1, 64 << 20);
        let inj = crate::fault::FaultInjector::new(
            FaultPlan::none().with_scripted(0, FaultAction::DropDoorbell, 2),
            0,
        );
        let (a, b) = connect_ports_with_faults(
            PortConfig::new(0, 1),
            PortConfig::new(1, 0),
            &mem_a,
            &mem_b,
            Arc::new(TimeModel::zero()),
            Arc::clone(&inj),
        )
        .unwrap();
        a.ring_peer(0).unwrap(); // delivered
        a.ring_peer(0).unwrap(); // dropped (scripted 2nd)
        a.ring_peer(1).unwrap(); // delivered
        assert_eq!(b.doorbell().pending(), 0b11);
        assert_eq!(inj.stats().doorbells_dropped(), 1);
        // Sender-side stats still count the ring: the write left the CPU.
        assert_eq!(a.stats().doorbells_rung(), 3);
    }

    #[test]
    fn down_window_rejects_traffic_then_recovers() {
        use crate::fault::FaultPlan;
        let mem_a = HostMemory::new(0, 64 << 20);
        let mem_b = HostMemory::new(1, 64 << 20);
        let inj = crate::fault::FaultInjector::new(
            FaultPlan::none().with_link_down(0, 1, Duration::from_millis(50)),
            0,
        );
        let (a, _b) = connect_ports_with_faults(
            PortConfig::new(0, 1),
            PortConfig::new(1, 0),
            &mem_a,
            &mem_b,
            Arc::new(TimeModel::zero()),
            inj,
        )
        .unwrap();
        a.ring_peer(0).unwrap(); // arms the trigger
        assert_eq!(a.ring_peer(0).unwrap_err(), crate::error::NtbError::LinkDown);
        assert_eq!(a.pio_write(0, b"blocked").unwrap_err(), crate::error::NtbError::LinkDown);
        std::thread::sleep(Duration::from_millis(60));
        a.ring_peer(0).unwrap();
        a.pio_write(0, b"flows").unwrap();
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        use crate::fault::{FaultAction, FaultPlan};
        let mem_a = HostMemory::new(0, 64 << 20);
        let mem_b = HostMemory::new(1, 64 << 20);
        let inj = crate::fault::FaultInjector::new(
            FaultPlan::none().with_scripted(0, FaultAction::CorruptPayload, 1),
            0,
        );
        let (a, b) = connect_ports_with_faults(
            PortConfig::new(0, 1),
            PortConfig::new(1, 0),
            &mem_a,
            &mem_b,
            Arc::new(TimeModel::zero()),
            Arc::clone(&inj),
        )
        .unwrap();
        let payload = vec![0xAAu8; 256];
        a.pio_write(0, &payload).unwrap();
        let landed = b.incoming().region().read_vec(0, 256).unwrap();
        let flipped = landed.iter().zip(&payload).filter(|(l, p)| l != p).count();
        assert_eq!(flipped, 1, "exactly one corrupted byte");
        assert_eq!(inj.stats().payloads_corrupted(), 1);
        // Next write is clean.
        a.pio_write(0, &payload).unwrap();
        assert_eq!(b.incoming().region().read_vec(0, 256).unwrap(), payload);
    }

    #[test]
    fn scripted_dma_failure_surfaces_at_completion() {
        use crate::fault::{FaultAction, FaultPlan};
        let mem_a = HostMemory::new(0, 64 << 20);
        let mem_b = HostMemory::new(1, 64 << 20);
        let inj = crate::fault::FaultInjector::new(
            FaultPlan::none().with_scripted(0, FaultAction::FailDma, 1),
            0,
        );
        let (a, b) = connect_ports_with_faults(
            PortConfig::new(0, 1),
            PortConfig::new(1, 0),
            &mem_a,
            &mem_b,
            Arc::new(TimeModel::zero()),
            inj,
        )
        .unwrap();
        let src = Region::anonymous(128);
        src.fill(0, 128, 0x77).unwrap();
        let err = a
            .dma_transfer(DmaRequest { src: src.clone(), src_offset: 0, dst_offset: 0, len: 128 })
            .unwrap_err();
        assert_eq!(err, crate::error::NtbError::DmaFault);
        assert!(err.is_transient());
        // Nothing landed; the retried descriptor goes through.
        assert_eq!(b.incoming().region().read_vec(0, 1).unwrap(), vec![0]);
        a.dma_transfer(DmaRequest { src, src_offset: 0, dst_offset: 0, len: 128 }).unwrap();
        assert_eq!(b.incoming().region().read_vec(0, 128).unwrap(), vec![0x77; 128]);
    }

    #[test]
    fn killed_port_refuses_everything_until_revived() {
        let (a, b) = pair();
        a.kill();
        assert!(a.is_dead());
        assert_eq!(a.spad_write(0, 1).unwrap_err(), NtbError::NodeDead);
        assert_eq!(a.spad_read(0).unwrap_err(), NtbError::NodeDead);
        assert_eq!(a.ring_peer(0).unwrap_err(), NtbError::NodeDead);
        assert_eq!(a.pio_write(0, b"x").unwrap_err(), NtbError::NodeDead);
        let src = Region::anonymous(16);
        assert_eq!(
            a.dma_transfer(DmaRequest { src: src.clone(), src_offset: 0, dst_offset: 0, len: 16 })
                .unwrap_err(),
            NtbError::NodeDead
        );
        assert!(!NtbError::NodeDead.is_transient());
        a.revive();
        assert!(!a.is_dead());
        a.pio_write(0, b"back").unwrap();
        a.dma_transfer(DmaRequest { src, src_offset: 0, dst_offset: 64, len: 16 }).unwrap();
        assert_eq!(b.incoming().region().read_vec(0, 4).unwrap(), b"back");
    }

    #[test]
    fn frozen_port_stalls_until_thawed() {
        let (a, b) = pair();
        a.freeze();
        assert!(a.is_frozen());
        let a2 = Arc::clone(&a);
        let h = std::thread::spawn(move || a2.pio_write(0, b"thawed"));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished(), "frozen port must stall its caller");
        a.thaw();
        h.join().unwrap().unwrap();
        assert_eq!(b.incoming().region().read_vec(0, 6).unwrap(), b"thawed");
    }

    #[test]
    fn kill_while_frozen_fails_stalled_caller() {
        let (a, _b) = pair();
        a.freeze();
        let a2 = Arc::clone(&a);
        let h = std::thread::spawn(move || a2.spad_read(0));
        std::thread::sleep(Duration::from_millis(20));
        a.kill();
        assert_eq!(h.join().unwrap().unwrap_err(), NtbError::NodeDead);
        assert!(!a.is_frozen(), "kill supersedes freeze");
    }

    struct HeapStub(Region);

    impl crate::aperture::ReadAperture for HeapStub {
        fn read(&self, offset: u64, buf: &mut [u8]) -> Result<bool> {
            if offset + buf.len() as u64 > self.0.len() {
                return Ok(false);
            }
            self.0.read(offset, buf)?;
            Ok(true)
        }
    }

    #[test]
    fn aperture_read_pulls_peer_heap_without_peer_cpu() {
        let (a, b) = pair();
        let heap = Region::anonymous(4096);
        heap.write(128, b"direct read").unwrap();
        b.publish_aperture(Arc::new(HeapStub(heap)));
        let mut buf = [0u8; 11];
        assert!(a.aperture_read(128, &mut buf).unwrap());
        assert_eq!(&buf, b"direct read");
        // Out-of-aperture ranges report false, not an error.
        assert!(!a.aperture_read(4090, &mut buf).unwrap());
        // Nothing published in the other direction.
        assert!(!b.aperture_read(0, &mut buf).unwrap());
        // Stats: the read is accounted as a PIO op on the requester.
        assert!(a.stats().pio_ops() >= 1);
    }

    #[test]
    fn aperture_revoked_while_peer_dead_or_frozen() {
        let (a, b) = pair();
        let heap = Region::anonymous(64);
        b.publish_aperture(Arc::new(HeapStub(heap)));
        let mut buf = [0u8; 4];
        assert!(a.aperture_read(0, &mut buf).unwrap());
        b.freeze();
        assert!(!a.aperture_read(0, &mut buf).unwrap(), "frozen peer must not serve reads");
        b.thaw();
        assert!(a.aperture_read(0, &mut buf).unwrap());
        b.kill();
        assert!(!a.aperture_read(0, &mut buf).unwrap(), "dead peer must not serve reads");
        b.revive();
        assert!(a.aperture_read(0, &mut buf).unwrap(), "revive restores without republishing");
        b.clear_aperture();
        assert!(!a.aperture_read(0, &mut buf).unwrap());
    }

    #[test]
    fn shutdown_is_clean() {
        let (a, _b) = pair();
        a.shutdown();
        let src = Region::anonymous(16);
        assert!(a.dma_submit(DmaRequest { src, src_offset: 0, dst_offset: 0, len: 16 }).is_err());
    }
}
