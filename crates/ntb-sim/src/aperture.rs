//! The read aperture: a second translated mapping exposing a host's
//! symmetric heap to its link neighbour for zero-copy PIO reads.
//!
//! The paper's prototype services every Get through the responder's CPU:
//! the requester posts a transfer-info frame, the responder's service
//! thread copies heap bytes into the window and streams response chunks
//! back. That request/response round trip (interrupt service, response
//! think time, completion polling) is the whole of the Fig. 9(b) latency
//! cliff for small reads. Real PLX adapters can do better: a second BAR
//! can be translated onto an arbitrary physical range of the peer, so a
//! *small* read can be a plain non-posted PCIe read — no responder
//! software in the loop at all.
//!
//! This module models that mapping. A host *publishes* a
//! [`ReadAperture`] (the layer above points it at the symmetric heap);
//! the cell is cross-wired between the two ports of a link at connect
//! time exactly like the doorbells, so the peer's
//! [`NtbPort::aperture_read`](crate::NtbPort::aperture_read) can pull
//! bytes directly. Reads through the aperture still pay the non-posted
//! wire cost ([`TimeModel::pio_read_time`](crate::TimeModel)) and all
//! link admission checks; they are a *timing* shortcut past the remote
//! CPU, not past the wire.
//!
//! Vitals integration: killing or freezing a port **revokes** its
//! published aperture (a dead or hung host must not complete peer reads);
//! thawing or reviving restores it. Revocation flips a flag rather than
//! dropping the published target, so a crash → restart cycle re-exposes
//! the same heap without the upper layers re-publishing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;

/// A range of host memory a node exposes to its neighbours for direct
/// non-posted reads (the symmetric heap, in the OpenSHMEM stack above).
pub trait ReadAperture: Send + Sync {
    /// Read `buf.len()` bytes at `offset` into `buf`. Returns `Ok(false)`
    /// — with `buf` untouched — when the range is not readable through
    /// the aperture (out of bounds of the exposed mapping); the caller
    /// falls back to the request/response protocol.
    fn read(&self, offset: u64, buf: &mut [u8]) -> Result<bool>;
}

/// The publication slot for one host's aperture, shared with the peer
/// port at connect time (like the doorbell cross-wiring).
#[derive(Default)]
pub struct ApertureCell {
    target: Mutex<Option<Arc<dyn ReadAperture>>>,
    revoked: AtomicBool,
}

impl ApertureCell {
    /// Expose `target` to the peer. Replaces any previous publication.
    pub fn publish(&self, target: Arc<dyn ReadAperture>) {
        *self.target.lock() = Some(target);
    }

    /// Withdraw the publication entirely (teardown).
    pub fn clear(&self) {
        *self.target.lock() = None;
    }

    /// Temporarily disable peer reads (host died or hung) without
    /// dropping the published target.
    pub fn revoke(&self) {
        self.revoked.store(true, Ordering::SeqCst);
    }

    /// Re-enable peer reads after [`revoke`](Self::revoke).
    pub fn restore(&self) {
        self.revoked.store(false, Ordering::SeqCst);
    }

    /// The currently readable target, if published and not revoked.
    pub fn get(&self) -> Option<Arc<dyn ReadAperture>> {
        if self.revoked.load(Ordering::SeqCst) {
            return None;
        }
        self.target.lock().clone()
    }
}

impl std::fmt::Debug for ApertureCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApertureCell")
            .field("published", &self.target.lock().is_some())
            .field("revoked", &self.revoked.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<u8>);

    impl ReadAperture for Fixed {
        fn read(&self, offset: u64, buf: &mut [u8]) -> Result<bool> {
            let off = offset as usize;
            let Some(end) = off.checked_add(buf.len()) else { return Ok(false) };
            if end > self.0.len() {
                return Ok(false);
            }
            buf.copy_from_slice(&self.0[off..end]);
            Ok(true)
        }
    }

    #[test]
    fn publish_read_revoke_restore() {
        let cell = ApertureCell::default();
        assert!(cell.get().is_none());
        cell.publish(Arc::new(Fixed(vec![1, 2, 3, 4])));
        let ap = cell.get().expect("published");
        let mut buf = [0u8; 2];
        assert!(ap.read(1, &mut buf).unwrap());
        assert_eq!(buf, [2, 3]);
        assert!(!ap.read(3, &mut buf).unwrap(), "out of range reads report false");
        cell.revoke();
        assert!(cell.get().is_none(), "revoked cell hides the target");
        cell.restore();
        assert!(cell.get().is_some(), "restore re-exposes without republish");
        cell.clear();
        assert!(cell.get().is_none());
    }
}
