//! The timing model: where simulated nanoseconds come from.
//!
//! The reproduction substitutes software for the PLX NTB adapters, so all
//! latency and bandwidth behaviour is *modelled*: every hardware action
//! charges wall-clock time through [`TimeModel`], and every transfer must
//! reserve its link through [`LinkTimer`], which serializes concurrent
//! transfers on the same link direction and applies a duplex penalty when a
//! port sends and receives at once. Because delays are real wall-clock
//! delays, the benchmark harness measures them exactly like the paper
//! measured its prototype — and contention effects (Fig. 8's ring vs
//! independent gap) *emerge* from the reservation discipline instead of
//! being hard-coded.
//!
//! Setting [`TimeModel::scale`] to `0.0` disables every injected delay,
//! turning the stack into a fast functional simulator for the test suite.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::link::LinkSpec;

/// How a payload crosses the NTB: through the descriptor DMA engine or by
/// the CPU storing/loading through the mapped window (PIO `memcpy`). The
/// paper's Fig. 9 compares exactly these two paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferMode {
    /// Descriptor-based DMA (the NTB adapter's engine moves the data).
    Dma,
    /// CPU `memcpy` through the mapped window (PIO).
    Memcpy,
}

impl TransferMode {
    /// Short label used in reports ("DMA" / "memcpy"), matching the paper's
    /// legends.
    pub fn label(self) -> &'static str {
        match self {
            TransferMode::Dma => "DMA",
            TransferMode::Memcpy => "memcpy",
        }
    }
}

/// Direction of travel on one NTB link. `Upstream` is from the port that
/// initiated the connection towards its peer; the names only need to be
/// consistent, not meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDirection {
    /// From connect-initiator to peer.
    Upstream,
    /// From peer to connect-initiator.
    Downstream,
}

impl LinkDirection {
    /// The opposite direction.
    pub fn opposite(self) -> LinkDirection {
        match self {
            LinkDirection::Upstream => LinkDirection::Downstream,
            LinkDirection::Downstream => LinkDirection::Upstream,
        }
    }

    /// 0 for Upstream, 1 for Downstream — stable array index for
    /// per-direction state (timer slots, fault-injection streams).
    pub fn index(self) -> usize {
        match self {
            LinkDirection::Upstream => 0,
            LinkDirection::Downstream => 1,
        }
    }
}

/// All calibrated timing constants of the hardware model.
///
/// The defaults are calibrated so that the benchmark harness reproduces the
/// *shape and magnitude band* of the paper's Figs. 8–10 (see
/// `EXPERIMENTS.md` for the calibration notes). They are deliberately public
/// fields: the ablation benches sweep them.
#[derive(Debug, Clone)]
pub struct TimeModel {
    /// Physical link description (generation, lanes, protocol efficiency).
    pub link: LinkSpec,
    /// Global multiplier applied to every injected delay. `1.0` = paper
    /// scale, `0.0` = no delays (fast tests), values in between shrink all
    /// latencies proportionally so benches can run quickly while keeping
    /// relative shapes.
    pub scale: f64,
    /// Fixed cost of kicking one DMA descriptor: fetch, engine start,
    /// completion write-back.
    pub dma_setup: Duration,
    /// Effective bandwidth of CPU stores through the mapped window
    /// (write-combined posted writes). Slower than DMA on PEX 87xx.
    pub pio_write_bandwidth: f64,
    /// Effective bandwidth of CPU loads through the mapped window
    /// (non-posted reads; each read round-trips the link, so this is far
    /// slower than writes).
    pub pio_read_bandwidth: f64,
    /// One scratchpad register access over the link (32-bit non-posted).
    pub scratchpad_latency: Duration,
    /// Doorbell ring to interrupt delivery at the peer.
    pub doorbell_latency: Duration,
    /// Time from interrupt delivery until the service thread is running its
    /// handler. This models the ISR + kernel wakeup + the paper's
    /// "Sleep & Wait" loop in the service thread (Fig. 5) and is the main
    /// contributor to small-message Put latency.
    pub interrupt_service_delay: Duration,
    /// Bandwidth of the service thread's copy from the incoming window
    /// buffer to the symmetric heap (window memory is mapped uncacheable,
    /// so this is well below normal memcpy speed).
    pub window_copy_bandwidth: f64,
    /// Bandwidth of an ordinary local memcpy (staging user data).
    pub local_memcpy_bandwidth: f64,
    /// Time from "completion flag set" until a blocked requester thread has
    /// woken up and observed it (scheduler latency). Dominates small Get
    /// latency together with the per-hop service delays.
    pub requester_wake_delay: Duration,
    /// Multiplier (> 1) applied to a transfer's wire time when the same
    /// link is simultaneously carrying traffic in the opposite direction.
    /// Models the "connection overheads on both sides of the NTB ports" the
    /// paper blames for the ring-vs-independent throughput gap (Fig. 8).
    pub duplex_penalty: f64,
    /// Polling granularity of a requester blocked in `shmem_get`: the
    /// paper's prototype discovers Get completion through a sleep-and-check
    /// loop, which quantizes Get latency to this interval and is the main
    /// reason its Fig. 9(b) latencies are in the tens of milliseconds.
    pub get_poll_interval: Duration,
    /// Per-response-chunk think time at the host *serving* a Get: the
    /// service thread wakes from its sleep loop, stages the chunk and
    /// re-enters the loop between chunks.
    pub get_response_service_delay: Duration,
    /// Extra per-chunk delay when a payload is forwarded through an
    /// intermediate host's bypass buffer (the hop cost visible in the
    /// paper's 2-hop Get curves).
    pub bypass_forward_delay: Duration,
    /// Wait strategy for injected delays. `false` (default) spins the
    /// sub-120 µs tail for microsecond precision — right for the paper's
    /// ≤ 5-host worlds, where only a handful of threads delay at once.
    /// `true` plainly sleeps the whole delay: each wait cedes the core,
    /// so hundreds of concurrently-delaying threads (a 64-PE world runs
    /// ~9 threads per host) overlap their modelled time instead of
    /// serializing on the spin tails. Costs sleep-overshoot precision
    /// (tens of µs per wait); big worlds enable it automatically.
    pub coarse_waits: bool,
}

impl TimeModel {
    /// The calibrated paper-scale model (Gen3 x8, PEX 8733/8749 band).
    pub fn paper() -> Self {
        TimeModel {
            link: LinkSpec::paper_testbed(),
            scale: 1.0,
            dma_setup: Duration::from_micros(8),
            pio_write_bandwidth: 0.125e9,
            pio_read_bandwidth: 0.025e9,
            scratchpad_latency: Duration::from_nanos(600),
            doorbell_latency: Duration::from_micros(3),
            interrupt_service_delay: Duration::from_micros(150),
            window_copy_bandwidth: 0.6e9,
            local_memcpy_bandwidth: 6.0e9,
            requester_wake_delay: Duration::from_micros(25),
            duplex_penalty: 1.18,
            get_poll_interval: Duration::from_millis(1),
            get_response_service_delay: Duration::from_micros(800),
            bypass_forward_delay: Duration::from_micros(500),
            coarse_waits: false,
        }
    }

    /// Switch the wait strategy (see [`TimeModel::coarse_waits`]).
    pub fn with_coarse_waits(mut self, coarse: bool) -> Self {
        self.coarse_waits = coarse;
        self
    }

    /// A model with every injected delay disabled: pure functional
    /// simulation for unit / property / integration tests.
    pub fn zero() -> Self {
        TimeModel { scale: 0.0, ..TimeModel::paper() }
    }

    /// Paper-scale model shrunk by `factor` (e.g. `0.1` makes every latency
    /// 10x smaller so sweeps finish quickly while preserving shapes).
    pub fn scaled(factor: f64) -> Self {
        TimeModel { scale: factor, ..TimeModel::paper() }
    }

    /// Whether any delay is injected at all.
    pub fn enabled(&self) -> bool {
        self.scale > 0.0
    }

    /// Scale a duration by the global factor.
    pub fn scaled_duration(&self, d: Duration) -> Duration {
        if self.scale == 1.0 {
            d
        } else {
            d.mul_f64(self.scale)
        }
    }

    /// Busy-wait for `d` (after scaling). The calibrated delays are mostly
    /// in the 1 µs – 1 ms band, where OS sleep granularity is too coarse, so
    /// we spin with a sleep for the coarse part.
    pub fn delay(&self, d: Duration) {
        if !self.enabled() || d.is_zero() {
            return;
        }
        let d = self.scaled_duration(d);
        if self.coarse_waits {
            std::thread::sleep(d);
        } else {
            spin_for(d);
        }
    }

    /// Block until `deadline` using the model's wait strategy: precise
    /// (spin tail) by default, a plain sleep under
    /// [`coarse_waits`](TimeModel::coarse_waits).
    pub fn wait_until(&self, deadline: Instant) {
        if self.coarse_waits {
            let now = Instant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
        } else {
            spin_until(deadline);
        }
    }

    /// Wire time for `bytes` under `mode`, *excluding* fixed setup costs.
    pub fn wire_time(&self, bytes: u64, mode: TransferMode) -> Duration {
        let bw = match mode {
            TransferMode::Dma => self.link.effective_bandwidth(),
            TransferMode::Memcpy => self.pio_write_bandwidth,
        };
        Duration::from_secs_f64(bytes as f64 / bw)
    }

    /// Full time to move `bytes` across the link under `mode`, including the
    /// fixed setup cost (DMA descriptor kick; PIO has no setup).
    pub fn transfer_time(&self, bytes: u64, mode: TransferMode) -> Duration {
        let setup = match mode {
            TransferMode::Dma => self.dma_setup,
            TransferMode::Memcpy => Duration::ZERO,
        };
        setup + self.wire_time(bytes, mode)
    }

    /// Time for a PIO *read* of `bytes` through the window.
    pub fn pio_read_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.pio_read_bandwidth)
    }

    /// Time for the service thread to copy `bytes` from an incoming window
    /// buffer into the symmetric heap.
    pub fn window_copy_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.window_copy_bandwidth)
    }

    /// Time for an ordinary local memcpy of `bytes`.
    pub fn local_copy_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.local_memcpy_bandwidth)
    }
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel::paper()
    }
}

/// Wait until `deadline` without monopolizing a core.
///
/// Modelled delays frequently overlap across threads (three hosts
/// transmitting at once is the whole point of Fig. 8), and the harness
/// must also run on small machines — busy-spinning would serialize the
/// simulation on a single-core box and corrupt every concurrent
/// measurement. Long waits sleep (high-resolution timers overshoot by a
/// few tens of microseconds at worst); the tail yields, which polls at
/// scheduler granularity while still ceding the core to runnable peers.
pub fn spin_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(120) {
            // Leave margin for sleep overshoot, then poll.
            std::thread::sleep(remaining - Duration::from_micros(60));
        } else if remaining > Duration::from_micros(3) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Spin for a duration from now.
pub fn spin_for(d: Duration) {
    spin_until(Instant::now() + d);
}

/// Per-host transmit-activity tracker.
///
/// The paper's hosts carry *two* NTB adapters sharing one root complex and
/// memory subsystem; when both move data at once the "connection overheads
/// on both sides of the NTB ports" shave throughput (the Fig. 8
/// ring-vs-independent gap). A transfer marks its sender host busy until
/// its completion deadline; a transfer whose *receiving* host is
/// concurrently transmitting pays the duplex penalty.
#[derive(Debug, Default)]
pub struct HostActivity {
    tx_busy_until: Mutex<Option<Instant>>,
}

impl HostActivity {
    /// Fresh idle tracker.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record that this host transmits until `deadline`.
    pub fn mark_tx(&self, deadline: Instant) {
        let mut b = self.tx_busy_until.lock();
        if b.is_none_or(|t| t < deadline) {
            *b = Some(deadline);
        }
    }

    /// True if the host is transmitting right now.
    pub fn is_tx_busy(&self) -> bool {
        let now = Instant::now();
        self.tx_busy_until.lock().is_some_and(|t| t > now)
    }
}

#[derive(Debug, Default)]
struct LinkTimerInner {
    /// Per-direction time at which the link becomes free.
    busy_until: [Option<Instant>; 2],
}

/// Reservation-based serialization of one NTB link.
///
/// Every transfer asks the timer for a completion deadline: the transfer
/// occupies its direction of the link for its wire time, starting no earlier
/// than the previous reservation's end. If the opposite direction is busy at
/// reservation time, the wire time is stretched by the duplex penalty. The
/// caller copies the payload immediately (the bytes must be visible when the
/// completion deadline passes) and then waits out the deadline.
#[derive(Debug, Default)]
pub struct LinkTimer {
    inner: Mutex<LinkTimerInner>,
}

impl LinkTimer {
    /// New idle link timer.
    pub fn new() -> Arc<Self> {
        Arc::new(LinkTimer { inner: Mutex::new(LinkTimerInner::default()) })
    }

    /// Reserve the link in `dir` for a transfer whose unloaded duration is
    /// `wire_time`. Returns the completion deadline the caller must wait
    /// for. `duplex_penalty` stretches the duration if the opposite
    /// direction is active at reservation time, or if the caller reports
    /// external contention (`contended`, e.g. the receiving host's other
    /// adapter is transmitting).
    pub fn reserve(
        &self,
        dir: LinkDirection,
        wire_time: Duration,
        duplex_penalty: f64,
        contended: bool,
    ) -> Instant {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        let other_busy = inner.busy_until[dir.opposite().index()].is_some_and(|t| t > now);
        let duration = if (other_busy || contended) && duplex_penalty > 1.0 {
            wire_time.mul_f64(duplex_penalty)
        } else {
            wire_time
        };
        let start = match inner.busy_until[dir.index()] {
            Some(t) if t > now => t,
            _ => now,
        };
        let completion = start + duration;
        inner.busy_until[dir.index()] = Some(completion);
        completion
    }

    /// True if the given direction has an unfinished reservation.
    pub fn is_busy(&self, dir: LinkDirection) -> bool {
        let now = Instant::now();
        self.inner.lock().busy_until[dir.index()].is_some_and(|t| t > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_injects_nothing() {
        let m = TimeModel::zero();
        assert!(!m.enabled());
        let t0 = Instant::now();
        m.delay(Duration::from_millis(50));
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn scaled_duration_scales() {
        let m = TimeModel::scaled(0.5);
        assert_eq!(m.scaled_duration(Duration::from_micros(100)), Duration::from_micros(50));
    }

    #[test]
    fn dma_beats_memcpy_on_wire_time() {
        let m = TimeModel::paper();
        let n = 512 * 1024;
        assert!(m.wire_time(n, TransferMode::Dma) < m.wire_time(n, TransferMode::Memcpy));
    }

    #[test]
    fn memcpy_has_no_setup() {
        let m = TimeModel::paper();
        assert_eq!(m.transfer_time(0, TransferMode::Memcpy), Duration::ZERO);
        assert_eq!(m.transfer_time(0, TransferMode::Dma), m.dma_setup);
    }

    #[test]
    fn pio_read_much_slower_than_write() {
        let m = TimeModel::paper();
        assert!(m.pio_read_time(1 << 20) > m.wire_time(1 << 20, TransferMode::Memcpy) * 4);
    }

    #[test]
    fn spin_until_reaches_deadline() {
        let d = Duration::from_micros(500);
        let t0 = Instant::now();
        spin_for(d);
        assert!(t0.elapsed() >= d);
    }

    #[test]
    fn link_timer_serializes_same_direction() {
        let lt = LinkTimer::new();
        let w = Duration::from_millis(10);
        let c1 = lt.reserve(LinkDirection::Upstream, w, 1.0, false);
        let c2 = lt.reserve(LinkDirection::Upstream, w, 1.0, false);
        // Second reservation starts where the first one ends.
        assert!(c2 >= c1 + w - Duration::from_micros(100), "c2 must queue behind c1");
    }

    #[test]
    fn link_timer_directions_independent() {
        let lt = LinkTimer::new();
        let w = Duration::from_millis(10);
        let t0 = Instant::now();
        let _c1 = lt.reserve(LinkDirection::Upstream, w, 1.0, false);
        let c2 = lt.reserve(LinkDirection::Downstream, w, 1.0, false);
        // Downstream does not queue behind upstream (though it may be
        // stretched by the duplex penalty if one was requested — here 1.0).
        assert!(c2 < t0 + w + Duration::from_millis(5));
    }

    #[test]
    fn duplex_penalty_stretches_when_other_direction_busy() {
        let lt = LinkTimer::new();
        let w = Duration::from_millis(20);
        let t0 = Instant::now();
        let _up = lt.reserve(LinkDirection::Upstream, w, 1.5, false);
        let down = lt.reserve(LinkDirection::Downstream, w, 1.5, false);
        let stretched = down.duration_since(t0);
        assert!(stretched >= w.mul_f64(1.45), "expected ~1.5x stretch, got {stretched:?} vs {w:?}");
    }

    #[test]
    fn is_busy_reflects_reservations() {
        let lt = LinkTimer::new();
        assert!(!lt.is_busy(LinkDirection::Upstream));
        lt.reserve(LinkDirection::Upstream, Duration::from_millis(50), 1.0, false);
        assert!(lt.is_busy(LinkDirection::Upstream));
        assert!(!lt.is_busy(LinkDirection::Downstream));
    }

    #[test]
    fn host_activity_tracks_transmissions() {
        let a = HostActivity::new();
        assert!(!a.is_tx_busy());
        a.mark_tx(Instant::now() + Duration::from_millis(50));
        assert!(a.is_tx_busy());
        // An earlier deadline must not shrink the busy window.
        a.mark_tx(Instant::now() + Duration::from_millis(1));
        assert!(a.is_tx_busy());
    }

    #[test]
    fn host_activity_expires() {
        let a = HostActivity::new();
        a.mark_tx(Instant::now() + Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        assert!(!a.is_tx_busy());
    }

    #[test]
    fn reserve_with_external_contention_stretches() {
        let lt = LinkTimer::new();
        let w = Duration::from_millis(20);
        let t0 = Instant::now();
        let c = lt.reserve(LinkDirection::Upstream, w, 1.5, true);
        assert!(c.duration_since(t0) >= w.mul_f64(1.45));
    }

    #[test]
    fn transfer_mode_labels() {
        assert_eq!(TransferMode::Dma.label(), "DMA");
        assert_eq!(TransferMode::Memcpy.label(), "memcpy");
    }

    #[test]
    fn opposite_direction() {
        assert_eq!(LinkDirection::Upstream.opposite(), LinkDirection::Downstream);
        assert_eq!(LinkDirection::Downstream.opposite(), LinkDirection::Upstream);
    }
}
