//! Deterministic fault injection for the NTB link model.
//!
//! The paper's prototype assumes a lossless PCIe fabric; §V flags exactly
//! this as the operational risk of a switchless interconnect. This module
//! lets tests and chaos harnesses inject the faults such a fabric can
//! produce — lost doorbell writes, flipped payload bits, failed or stalled
//! DMA completions, and whole-link outages — while staying *deterministic*
//! for a given seed, so a failing run can be replayed exactly.
//!
//! Determinism model: every injection decision is a pure hash of
//! `(plan.seed, link index, event stream, event index)`. Event indices are
//! per-stream atomic counters (one stream per link direction per fault
//! class), so the decision sequence does not depend on thread interleaving
//! between streams. As long as the workload drives a deterministic number
//! of events down each stream, the injected-event *counts* are reproducible
//! run-to-run for the same seed.
//!
//! A [`FaultPlan`] describes *what* to inject (probabilistic rates, plus
//! scripted one-shots like "drop the 3rd doorbell on link 2"); a
//! [`FaultInjector`] is the per-link runtime instance the port, window and
//! DMA paths consult. Injected events are counted in
//! [`FaultStats`](crate::stats::FaultStats).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::stats::FaultStats;
use crate::timing::LinkDirection;

/// Doorbell bits eligible for probabilistic dropping by default: the data
/// vectors (bits 0 and 1 — Put/Get in the `ntb-net` assignment). Control
/// sweeps (barrier, shutdown) ride higher bits and have no ack/retransmit
/// protocol above them, so dropping those models a fault the paper's
/// design simply cannot recover from; keep them lossless unless a test
/// opts in explicitly via [`FaultPlan::doorbell_drop_mask`].
pub const DATA_DOORBELL_MASK: u32 = 0b11;

/// Which fault class a scripted one-shot triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Silently discard the Nth doorbell ring (posted write lost).
    DropDoorbell,
    /// Flip one payload byte of the Nth window write.
    CorruptPayload,
    /// Complete the Nth DMA descriptor with an error.
    FailDma,
    /// Stall the Nth DMA descriptor by [`FaultPlan::dma_stall`].
    StallDma,
    /// Suppress the Nth put acknowledgement the receiver would send — a
    /// *protocol*-level fault (broken ack path) rather than a fabric
    /// fault, used to prove the trace checker catches ack-less puts.
    DropAck,
}

/// A scripted one-shot fault: "inject `action` on exactly the `nth` event
/// (1-based) of its stream on `link`", regardless of the probabilistic
/// rates. Both directions of the link count into the same script so "the
/// Nth doorbell on link 2→3" reads naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Link index (as assigned by the network builder).
    pub link: usize,
    /// Fault class to force.
    pub action: FaultAction,
    /// 1-based event index within that class's stream (summed over both
    /// directions).
    pub nth: u64,
}

/// What a scheduled whole-node fault does to its PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultAction {
    /// Kill the PE: every port, the DMA engine and the service threads
    /// stop atomically (operations fail with
    /// [`NtbError::NodeDead`](crate::error::NtbError)). The node stays
    /// dead until a scheduled [`NodeFaultAction::Restart`] (or an explicit
    /// restart call) revives it.
    Crash,
    /// Stall the PE for `hold`: its threads and port operations block in
    /// place (the host froze), then resume untouched — no state is lost,
    /// so peers must re-admit it without a permanent eviction.
    Freeze {
        /// How long the node stays frozen before it thaws.
        hold: Duration,
    },
    /// Revive a crashed PE and drive its rejoin handshake.
    Restart,
}

/// A scheduled whole-node fault: at `at` after network bring-up, apply
/// `action` to PE `pe`. Node faults are node-scoped (unlike every other
/// entry of the plan, which is matched to links by index); the network
/// builder runs them from a dedicated orchestrator thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// The PE the fault applies to.
    pub pe: usize,
    /// Delay from network bring-up to the fault.
    pub at: Duration,
    /// What happens to the PE.
    pub action: NodeFaultAction,
}

/// What a scheduled resource fault does to its target.
///
/// Unlike the crash/freeze family these never kill anything: they starve
/// or slow a resource mid-run, modelling the gray failures (a degraded
/// port renegotiating its lanes, a neighbour stealing pinned memory) that
/// production fabrics produce far more often than clean outages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResourceFaultAction {
    /// Gray failure: multiply every transaction's wire time on the target
    /// *link* by `factor` for `hold`, then restore nominal speed. The
    /// link never reports Down — it is just slow, which is exactly what
    /// makes gray failures hard on timeout-based recovery.
    SlowPort {
        /// Wire-time multiplier (> 1.0 slows the port).
        factor: f64,
        /// How long the port stays slow before recovering.
        hold: Duration,
    },
    /// Shrink the target *PE*'s store-and-forward queue capacity to
    /// `capacity` entries (applied by the network layer; excess entries
    /// already queued drain normally, new pushes shed).
    ShrinkForwardQueue {
        /// New queue capacity in entries.
        capacity: usize,
    },
    /// Shrink the target *PE*'s host-memory arena to `capacity` bytes.
    /// Allocations already made survive; new ones fail with
    /// [`NtbError::OutOfMemory`](crate::error::NtbError) once the arena
    /// no longer covers them.
    ShrinkHostMem {
        /// New arena capacity in bytes.
        capacity: u64,
    },
}

/// A scheduled resource fault: at `at` after network bring-up, apply
/// `action` to `target` (a link index for [`SlowPort`], a PE index for
/// the shrink actions). Executed by the network's fault orchestrator,
/// like node faults.
///
/// [`SlowPort`]: ResourceFaultAction::SlowPort
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceFault {
    /// Link index ([`SlowPort`](ResourceFaultAction::SlowPort)) or PE
    /// index (shrink actions) the fault applies to.
    pub target: usize,
    /// Delay from network bring-up to the fault.
    pub at: Duration,
    /// What happens to the resource.
    pub action: ResourceFaultAction,
}

/// A timed link outage: after the link has carried `after_doorbells`
/// doorbell events, it goes Down for `duration` — every window write,
/// doorbell ring and DMA through it fails with
/// [`NtbError::LinkDown`](crate::error::NtbError) until the window
/// expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDownWindow {
    /// Link index the outage applies to.
    pub link: usize,
    /// Trigger: total doorbell events on the link before the outage.
    pub after_doorbells: u64,
    /// Wall-clock length of the outage.
    pub duration: Duration,
}

/// Declarative description of the faults to inject, shared by every link
/// of a network (each link filters the parts addressed to it by index).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Probability of discarding an eligible doorbell ring.
    pub doorbell_drop_rate: f64,
    /// Which doorbell bits the drop rate applies to
    /// (default [`DATA_DOORBELL_MASK`]).
    pub doorbell_drop_mask: u32,
    /// Probability of flipping one byte of a window payload write.
    pub payload_corrupt_rate: f64,
    /// Probability of failing a DMA descriptor at completion.
    pub dma_fail_rate: f64,
    /// Probability of stalling a DMA descriptor.
    pub dma_stall_rate: f64,
    /// Probability of suppressing a put acknowledgement at the receiver
    /// (deliberately breaks the ack protocol; see
    /// [`FaultAction::DropAck`]).
    pub ack_drop_rate: f64,
    /// How long a stalled DMA descriptor sleeps before completing.
    pub dma_stall: Duration,
    /// Timed outages, matched to links by index.
    pub link_down: Vec<LinkDownWindow>,
    /// One-shot scripted faults, matched to links by index.
    pub scripted: Vec<ScriptedFault>,
    /// Scheduled whole-node crash/freeze/restart events, matched to PEs
    /// (executed by the network's fault orchestrator, not the per-link
    /// injectors).
    pub node_faults: Vec<NodeFault>,
    /// Scheduled resource faults — slow ports and mid-run capacity
    /// shrinks (executed by the network's fault orchestrator).
    pub resource_faults: Vec<ResourceFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            doorbell_drop_rate: 0.0,
            doorbell_drop_mask: DATA_DOORBELL_MASK,
            payload_corrupt_rate: 0.0,
            dma_fail_rate: 0.0,
            dma_stall_rate: 0.0,
            ack_drop_rate: 0.0,
            dma_stall: Duration::from_millis(5),
            link_down: Vec::new(),
            scripted: Vec::new(),
            node_faults: Vec::new(),
            resource_faults: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing, costs nothing on the hot path.
    pub fn none() -> Self {
        Self::default()
    }

    /// Seed every probabilistic decision.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drop eligible doorbells with probability `rate`.
    pub fn with_doorbell_drop(mut self, rate: f64) -> Self {
        self.doorbell_drop_rate = rate;
        self
    }

    /// Restrict (or widen) which doorbell bits the drop rate targets.
    pub fn with_doorbell_drop_mask(mut self, mask: u32) -> Self {
        self.doorbell_drop_mask = mask;
        self
    }

    /// Flip one payload byte per window write with probability `rate`.
    pub fn with_payload_corrupt(mut self, rate: f64) -> Self {
        self.payload_corrupt_rate = rate;
        self
    }

    /// Fail DMA descriptors with probability `rate`.
    pub fn with_dma_fail(mut self, rate: f64) -> Self {
        self.dma_fail_rate = rate;
        self
    }

    /// Stall DMA descriptors with probability `rate` for `stall`.
    pub fn with_dma_stall(mut self, rate: f64, stall: Duration) -> Self {
        self.dma_stall_rate = rate;
        self.dma_stall = stall;
        self
    }

    /// Suppress put acknowledgements with probability `rate`. Unlike the
    /// fabric faults, the recovery layer cannot fully hide this (an ack
    /// that is *never* sent defeats the ack protocol by construction);
    /// it exists so negative tests can hand the invariant checker a
    /// genuinely broken trace.
    pub fn with_ack_drop(mut self, rate: f64) -> Self {
        self.ack_drop_rate = rate;
        self
    }

    /// Add a timed outage on `link` after `after_doorbells` doorbell
    /// events.
    pub fn with_link_down(mut self, link: usize, after_doorbells: u64, duration: Duration) -> Self {
        self.link_down.push(LinkDownWindow { link, after_doorbells, duration });
        self
    }

    /// Add a scripted one-shot fault.
    pub fn with_scripted(mut self, link: usize, action: FaultAction, nth: u64) -> Self {
        self.scripted.push(ScriptedFault { link, action, nth });
        self
    }

    /// Schedule PE `pe` to crash `at` after bring-up.
    pub fn with_node_crash(mut self, pe: usize, at: Duration) -> Self {
        self.node_faults.push(NodeFault { pe, at, action: NodeFaultAction::Crash });
        self
    }

    /// Schedule PE `pe` to freeze `at` after bring-up and thaw after
    /// `hold`.
    pub fn with_node_freeze(mut self, pe: usize, at: Duration, hold: Duration) -> Self {
        self.node_faults.push(NodeFault { pe, at, action: NodeFaultAction::Freeze { hold } });
        self
    }

    /// Schedule a crashed PE `pe` to restart (and rejoin) `at` after
    /// bring-up.
    pub fn with_node_restart(mut self, pe: usize, at: Duration) -> Self {
        self.node_faults.push(NodeFault { pe, at, action: NodeFaultAction::Restart });
        self
    }

    /// Schedule link `link` to run at `factor`× wire time from `at` for
    /// `hold` — a gray failure: slow, never Down.
    pub fn with_slow_port(
        mut self,
        link: usize,
        at: Duration,
        factor: f64,
        hold: Duration,
    ) -> Self {
        self.resource_faults.push(ResourceFault {
            target: link,
            at,
            action: ResourceFaultAction::SlowPort { factor, hold },
        });
        self
    }

    /// Schedule PE `pe`'s forward queue to shrink to `capacity` entries
    /// at `at`.
    pub fn with_queue_shrink(mut self, pe: usize, at: Duration, capacity: usize) -> Self {
        self.resource_faults.push(ResourceFault {
            target: pe,
            at,
            action: ResourceFaultAction::ShrinkForwardQueue { capacity },
        });
        self
    }

    /// Schedule PE `pe`'s host-memory arena to shrink to `capacity`
    /// bytes at `at`.
    pub fn with_mem_shrink(mut self, pe: usize, at: Duration, capacity: u64) -> Self {
        self.resource_faults.push(ResourceFault {
            target: pe,
            at,
            action: ResourceFaultAction::ShrinkHostMem { capacity },
        });
        self
    }

    /// Whether this plan can inject anything at all *on a link's hot
    /// path*. Node faults are deliberately excluded: they are executed by
    /// the network orchestrator, and arming the per-link CRC machinery
    /// for them would tax every clean link for a fault that never touches
    /// the wire. See [`has_node_faults`](Self::has_node_faults).
    pub fn is_active(&self) -> bool {
        self.doorbell_drop_rate > 0.0
            || self.payload_corrupt_rate > 0.0
            || self.dma_fail_rate > 0.0
            || self.dma_stall_rate > 0.0
            || self.ack_drop_rate > 0.0
            || !self.link_down.is_empty()
            || !self.scripted.is_empty()
    }

    /// Whether the plan schedules any whole-node faults (consulted by the
    /// network builder to decide if the orchestrator thread is needed).
    pub fn has_node_faults(&self) -> bool {
        !self.node_faults.is_empty()
    }

    /// Whether the plan schedules any resource faults (slow ports or
    /// capacity shrinks; orchestrator-executed, like node faults).
    pub fn has_resource_faults(&self) -> bool {
        !self.resource_faults.is_empty()
    }
}

/// What the DMA worker should do with a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaFaultOutcome {
    /// Execute normally.
    None,
    /// Complete with [`NtbError::DmaFault`](crate::error::NtbError).
    Fail,
    /// Sleep for the duration, then execute normally.
    Stall(Duration),
}

#[derive(Debug)]
struct DownWindowState {
    window: LinkDownWindow,
    fired: bool,
}

#[derive(Debug, Default)]
struct DownState {
    windows: Vec<DownWindowState>,
    until: Option<Instant>,
}

/// Per-link runtime fault source, shared by the two ports of a link (like
/// the link timer). All decisions are deterministic per seed; see the
/// module docs for the counter-hash scheme.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    link: usize,
    active: bool,
    stats: Arc<FaultStats>,
    /// Event counters, one stream per (class, direction).
    doorbell_events: [AtomicU64; 2],
    corrupt_events: [AtomicU64; 2],
    dma_events: [AtomicU64; 2],
    ack_events: [AtomicU64; 2],
    /// Doorbell events summed over both directions (down-window trigger
    /// and scripted-`nth` reference frame).
    total_doorbells: AtomicU64,
    total_corrupts: AtomicU64,
    total_dmas: AtomicU64,
    total_acks: AtomicU64,
    down: Mutex<DownState>,
    /// Gray-failure wire-time multiplier in permille (1000 = nominal).
    /// Set by the network's fault orchestrator while a
    /// [`ResourceFaultAction::SlowPort`] window is open.
    slow_permille: AtomicU32,
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)` using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const STREAM_DOORBELL: u64 = 1;
const STREAM_CORRUPT: u64 = 2;
const STREAM_DMA: u64 = 3;
const STREAM_ACK: u64 = 4;

/// Advance a fault-event stream counter, returning the 1-based event
/// number.
fn next_event(counter: &AtomicU64) -> u64 {
    // lint: relaxed-ok(reproducibility comes from hashing the returned event number with
    // the plan seed, not from this RMW's ordering)
    counter.fetch_add(1, Ordering::Relaxed) + 1
}

impl FaultInjector {
    /// A lossless injector (empty plan); the shared instance for networks
    /// built without fault injection.
    pub fn none() -> Arc<Self> {
        Self::new(FaultPlan::none(), 0)
    }

    /// Build the injector for link `link` out of a network-wide plan.
    pub fn new(plan: FaultPlan, link: usize) -> Arc<Self> {
        let windows = plan
            .link_down
            .iter()
            .filter(|w| w.link == link)
            .map(|w| DownWindowState { window: *w, fired: false })
            .collect();
        let active = plan.is_active();
        Arc::new(FaultInjector {
            plan,
            link,
            active,
            stats: Arc::new(FaultStats::new()),
            doorbell_events: Default::default(),
            corrupt_events: Default::default(),
            dma_events: Default::default(),
            ack_events: Default::default(),
            total_doorbells: AtomicU64::new(0),
            total_corrupts: AtomicU64::new(0),
            total_dmas: AtomicU64::new(0),
            total_acks: AtomicU64::new(0),
            down: Mutex::new(DownState { windows, until: None }),
            slow_permille: AtomicU32::new(1000),
        })
    }

    /// Injected-event counters of this link.
    pub fn stats(&self) -> &Arc<FaultStats> {
        &self.stats
    }

    /// The link index this injector was built for.
    pub fn link_index(&self) -> usize {
        self.link
    }

    /// Whether the plan can inject anything (false for the shared
    /// lossless injector).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Open or close a slow-port window: every transaction's wire time on
    /// this link is multiplied by `factor` until reset to `1.0`. Values
    /// are quantized to permille; anything ≤ 0 is clamped to nominal.
    pub fn set_slow_factor(&self, factor: f64) {
        let permille = if factor > 0.0 { (factor * 1000.0).round() as u32 } else { 1000 };
        // lint: relaxed-ok(latency knob sampled per transaction; no data is guarded)
        self.slow_permille.store(permille.max(1), Ordering::Relaxed);
    }

    /// Current gray-failure wire-time multiplier (1.0 = nominal).
    pub fn slow_factor(&self) -> f64 {
        // lint: relaxed-ok(latency knob sampled per transaction; no data is guarded)
        f64::from(self.slow_permille.load(Ordering::Relaxed)) / 1000.0
    }

    fn decide(&self, stream: u64, dir_stream_index: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let h = mix(self
            .plan
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((self.link as u64) << 48)
            .wrapping_add(stream << 40)
            .wrapping_add(dir_stream_index));
        unit(h) < rate
    }

    fn scripted_hit(&self, action: FaultAction, nth: u64) -> bool {
        self.plan.scripted.iter().any(|s| s.link == self.link && s.action == action && s.nth == nth)
    }

    /// Whether the link is currently in a Down window. Also arms pending
    /// windows whose doorbell trigger has been reached and retires
    /// expired ones.
    pub fn link_is_down(&self) -> bool {
        if !self.active {
            return false;
        }
        let mut st = self.down.lock();
        if let Some(until) = st.until {
            if Instant::now() < until {
                return true;
            }
            st.until = None;
        }
        // lint: relaxed-ok(monotonic doorbell total read for window arming; staleness shifts
        // the trigger by at most one event)
        let total = self.total_doorbells.load(Ordering::Relaxed);
        let mut fired_until = None;
        for w in st.windows.iter_mut() {
            if !w.fired && total >= w.window.after_doorbells {
                w.fired = true;
                fired_until = Some(Instant::now() + w.window.duration);
                self.stats.add_link_down_window();
                break;
            }
        }
        if let Some(until) = fired_until {
            st.until = Some(until);
            return true;
        }
        false
    }

    /// Consulted by [`NtbPort::ring_peer`](crate::port::NtbPort::ring_peer):
    /// returns `true` if this ring should be silently discarded. Counts
    /// one doorbell event per call (drops included — the write left the
    /// CPU either way).
    pub fn should_drop_doorbell(&self, dir: LinkDirection, bit: u32) -> bool {
        if !self.active {
            return false;
        }
        let n = next_event(&self.doorbell_events[dir.index()]);
        let total = next_event(&self.total_doorbells);
        let eligible = self.plan.doorbell_drop_mask & (1 << bit) != 0;
        let drop = self.scripted_hit(FaultAction::DropDoorbell, total)
            || (eligible
                && self.decide(STREAM_DOORBELL + ((dir.index() as u64) << 4), n, {
                    self.plan.doorbell_drop_rate
                }));
        if drop {
            self.stats.add_doorbell_dropped();
        }
        drop
    }

    /// Consulted by the outgoing window after a payload write of `len`
    /// bytes: returns the byte offset and XOR mask to flip, if this write
    /// should be corrupted.
    pub fn corrupt_payload(&self, dir: LinkDirection, len: u64) -> Option<(u64, u8)> {
        if !self.active || len == 0 {
            return None;
        }
        let n = next_event(&self.corrupt_events[dir.index()]);
        let total = next_event(&self.total_corrupts);
        let corrupt = self.scripted_hit(FaultAction::CorruptPayload, total)
            || self.decide(STREAM_CORRUPT + ((dir.index() as u64) << 4), n, {
                self.plan.payload_corrupt_rate
            });
        if !corrupt {
            return None;
        }
        self.stats.add_payload_corrupted();
        // Position and mask derive from the same hash family, so the
        // flipped bit is reproducible too.
        let h = mix(self.plan.seed
            ^ ((self.link as u64) << 32)
            ^ n.wrapping_mul(0xD134_2543_DE82_EF95));
        let offset = h % len;
        let mask = ((h >> 32) as u8) | 1; // never zero: guarantee a real flip
        Some((offset, mask))
    }

    /// Consulted by the service loop before it queues a put
    /// acknowledgement: returns `true` if the ack should never be sent.
    /// A protocol-breaking fault by design — the origin will retransmit
    /// forever (or abandon), and the invariant checker must notice.
    pub fn should_drop_ack(&self, dir: LinkDirection) -> bool {
        if !self.active {
            return false;
        }
        let n = next_event(&self.ack_events[dir.index()]);
        let total = next_event(&self.total_acks);
        let drop = self.scripted_hit(FaultAction::DropAck, total)
            || self.decide(STREAM_ACK + ((dir.index() as u64) << 4), n, self.plan.ack_drop_rate);
        if drop {
            self.stats.add_ack_suppressed();
        }
        drop
    }

    /// Consulted by the DMA worker per descriptor.
    pub fn dma_outcome(&self, dir: LinkDirection) -> DmaFaultOutcome {
        if !self.active {
            return DmaFaultOutcome::None;
        }
        let n = next_event(&self.dma_events[dir.index()]);
        let total = next_event(&self.total_dmas);
        if self.scripted_hit(FaultAction::FailDma, total)
            || self.decide(STREAM_DMA + ((dir.index() as u64) << 4), n, self.plan.dma_fail_rate)
        {
            self.stats.add_dma_failure();
            return DmaFaultOutcome::Fail;
        }
        if self.scripted_hit(FaultAction::StallDma, total)
            || self.decide(STREAM_DMA + 0x100 + ((dir.index() as u64) << 4), n, {
                self.plan.dma_stall_rate
            })
        {
            self.stats.add_dma_stall();
            return DmaFaultOutcome::Stall(self.plan.dma_stall);
        }
        DmaFaultOutcome::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let inj = FaultInjector::none();
        assert!(!inj.is_active());
        for _ in 0..1000 {
            assert!(!inj.should_drop_doorbell(LinkDirection::Upstream, 0));
            assert!(inj.corrupt_payload(LinkDirection::Upstream, 4096).is_none());
            assert_eq!(inj.dma_outcome(LinkDirection::Downstream), DmaFaultOutcome::None);
            assert!(!inj.link_is_down());
        }
        assert_eq!(inj.stats().snapshot().doorbells_dropped, 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan =
            FaultPlan::none().with_seed(0xFEED).with_doorbell_drop(0.1).with_payload_corrupt(0.05);
        let a = FaultInjector::new(plan.clone(), 3);
        let b = FaultInjector::new(plan, 3);
        let da: Vec<bool> =
            (0..2000).map(|_| a.should_drop_doorbell(LinkDirection::Upstream, 0)).collect();
        let db: Vec<bool> =
            (0..2000).map(|_| b.should_drop_doorbell(LinkDirection::Upstream, 0)).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|&d| d), "10% over 2000 events must fire");
        let ca: Vec<_> =
            (0..2000).map(|_| a.corrupt_payload(LinkDirection::Downstream, 512)).collect();
        let cb: Vec<_> =
            (0..2000).map(|_| b.corrupt_payload(LinkDirection::Downstream, 512)).collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(FaultPlan::none().with_seed(1).with_doorbell_drop(0.2), 0);
        let b = FaultInjector::new(FaultPlan::none().with_seed(2).with_doorbell_drop(0.2), 0);
        let da: Vec<bool> =
            (0..500).map(|_| a.should_drop_doorbell(LinkDirection::Upstream, 1)).collect();
        let db: Vec<bool> =
            (0..500).map(|_| b.should_drop_doorbell(LinkDirection::Upstream, 1)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn drop_rate_roughly_honored() {
        let inj = FaultInjector::new(FaultPlan::none().with_seed(7).with_doorbell_drop(0.1), 0);
        let drops =
            (0..10_000).filter(|_| inj.should_drop_doorbell(LinkDirection::Upstream, 0)).count();
        assert!((700..1300).contains(&drops), "~10% of 10k, got {drops}");
        assert_eq!(inj.stats().snapshot().doorbells_dropped, drops as u64);
    }

    #[test]
    fn mask_excludes_control_bits() {
        let inj = FaultInjector::new(FaultPlan::none().with_seed(7).with_doorbell_drop(1.0), 0);
        // Bits outside DATA_DOORBELL_MASK are never dropped even at rate 1.
        assert!(!inj.should_drop_doorbell(LinkDirection::Upstream, 2));
        assert!(!inj.should_drop_doorbell(LinkDirection::Upstream, 15));
        // Data bits are.
        assert!(inj.should_drop_doorbell(LinkDirection::Upstream, 0));
        assert!(inj.should_drop_doorbell(LinkDirection::Downstream, 1));
    }

    #[test]
    fn scripted_nth_doorbell_fires_exactly_once() {
        let inj =
            FaultInjector::new(FaultPlan::none().with_scripted(5, FaultAction::DropDoorbell, 3), 5);
        let drops: Vec<bool> =
            (0..6).map(|_| inj.should_drop_doorbell(LinkDirection::Upstream, 2)).collect();
        // Scripted drops ignore the eligibility mask: they name an exact event.
        assert_eq!(drops, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn scripted_wrong_link_never_fires() {
        let inj =
            FaultInjector::new(FaultPlan::none().with_scripted(5, FaultAction::DropDoorbell, 1), 4);
        assert!(!inj.should_drop_doorbell(LinkDirection::Upstream, 0));
    }

    #[test]
    fn corruption_offset_within_len_and_mask_nonzero() {
        let inj = FaultInjector::new(FaultPlan::none().with_seed(3).with_payload_corrupt(1.0), 0);
        for len in [1u64, 2, 7, 4096] {
            let (off, mask) = inj.corrupt_payload(LinkDirection::Upstream, len).unwrap();
            assert!(off < len);
            assert_ne!(mask, 0);
        }
    }

    #[test]
    fn dma_outcomes() {
        let inj = FaultInjector::new(FaultPlan::none().with_seed(1).with_dma_fail(1.0), 0);
        assert_eq!(inj.dma_outcome(LinkDirection::Upstream), DmaFaultOutcome::Fail);
        let stall_dur = Duration::from_millis(2);
        let inj = FaultInjector::new(FaultPlan::none().with_dma_stall(1.0, stall_dur), 0);
        assert_eq!(inj.dma_outcome(LinkDirection::Upstream), DmaFaultOutcome::Stall(stall_dur));
        assert_eq!(inj.stats().snapshot().dma_stalls, 1);
    }

    #[test]
    fn link_down_window_arms_after_trigger_and_expires() {
        let inj = FaultInjector::new(
            FaultPlan::none().with_link_down(0, 2, Duration::from_millis(30)),
            0,
        );
        assert!(!inj.link_is_down(), "not armed before trigger");
        inj.should_drop_doorbell(LinkDirection::Upstream, 0);
        assert!(!inj.link_is_down(), "one event: still below trigger");
        inj.should_drop_doorbell(LinkDirection::Upstream, 0);
        assert!(inj.link_is_down(), "trigger reached: down");
        assert_eq!(inj.stats().snapshot().link_down_windows, 1);
        std::thread::sleep(Duration::from_millis(40));
        assert!(!inj.link_is_down(), "window expired: back up");
        assert_eq!(inj.stats().snapshot().link_down_windows, 1, "fires once");
    }

    #[test]
    fn plan_activity_detection() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::none().with_doorbell_drop(0.01).is_active());
        assert!(FaultPlan::none().with_link_down(0, 0, Duration::ZERO).is_active());
        assert!(FaultPlan::none().with_scripted(0, FaultAction::FailDma, 1).is_active());
    }

    #[test]
    fn node_faults_schedule_without_arming_links() {
        let plan = FaultPlan::none()
            .with_node_crash(2, Duration::from_millis(10))
            .with_node_freeze(1, Duration::from_millis(5), Duration::from_millis(20))
            .with_node_restart(2, Duration::from_millis(50));
        assert!(plan.has_node_faults());
        // Node faults are orchestrator-scoped: the link hot path (CRC
        // checks, injector decisions) stays disarmed.
        assert!(!plan.is_active());
        assert_eq!(plan.node_faults.len(), 3);
        assert_eq!(plan.node_faults[0].action, NodeFaultAction::Crash);
        assert_eq!(
            plan.node_faults[1].action,
            NodeFaultAction::Freeze { hold: Duration::from_millis(20) }
        );
        assert_eq!(plan.node_faults[2].action, NodeFaultAction::Restart);
        assert!(!FaultPlan::none().has_node_faults());
    }

    #[test]
    fn resource_faults_schedule_without_arming_links() {
        let plan = FaultPlan::none()
            .with_slow_port(1, Duration::from_millis(5), 4.0, Duration::from_millis(50))
            .with_queue_shrink(2, Duration::from_millis(10), 4)
            .with_mem_shrink(0, Duration::from_millis(15), 1 << 20);
        assert!(plan.has_resource_faults());
        // Resource faults are orchestrator-scoped, like node faults: the
        // link hot path stays disarmed.
        assert!(!plan.is_active());
        assert_eq!(plan.resource_faults.len(), 3);
        assert_eq!(
            plan.resource_faults[0].action,
            ResourceFaultAction::SlowPort { factor: 4.0, hold: Duration::from_millis(50) }
        );
        assert_eq!(
            plan.resource_faults[1].action,
            ResourceFaultAction::ShrinkForwardQueue { capacity: 4 }
        );
        assert_eq!(
            plan.resource_faults[2].action,
            ResourceFaultAction::ShrinkHostMem { capacity: 1 << 20 }
        );
        assert!(!FaultPlan::none().has_resource_faults());
    }

    #[test]
    fn slow_factor_round_trips_and_clamps() {
        let inj = FaultInjector::none();
        assert_eq!(inj.slow_factor(), 1.0);
        inj.set_slow_factor(4.0);
        assert_eq!(inj.slow_factor(), 4.0);
        inj.set_slow_factor(1.5);
        assert_eq!(inj.slow_factor(), 1.5);
        // Nonsense values clamp to nominal instead of freezing the link.
        inj.set_slow_factor(0.0);
        assert_eq!(inj.slow_factor(), 1.0);
        inj.set_slow_factor(-3.0);
        assert_eq!(inj.slow_factor(), 1.0);
    }
}
