//! Memory windows: the data path through the NTB.
//!
//! An [`OutgoingWindow`] is the sender's view: stores into it are
//! address-translated by the BAR and land in the *peer host's* memory
//! (its [`IncomingWindow`] region). Every transfer through the window:
//!
//! 1. is bounds-checked against the BAR limit,
//! 2. is admission-checked against the peer's requester-ID LUT,
//! 3. reserves the physical link for its wire time (serializing with any
//!    other transfer in the same direction and paying the duplex penalty if
//!    the reverse direction is busy),
//! 4. copies the payload, and
//! 5. waits out the reservation so wall-clock time reflects the wire.
//!
//! The [`IncomingWindow`] is the receiver's view: plain local memory (the
//! NTB wrote straight into RAM), read and written at local-copy cost.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::bar::{BarConfig, LutTable};
use crate::error::{NtbError, Result};
use crate::fault::{DmaFaultOutcome, FaultInjector};
use crate::memory::Region;
use crate::stats::PortStats;
use crate::timing::{HostActivity, LinkDirection, LinkTimer, TimeModel, TransferMode};

/// The sender's translated view of the peer's window memory.
pub struct OutgoingWindow {
    bar: BarConfig,
    remote: Region,
    link: Arc<LinkTimer>,
    dir: LinkDirection,
    model: Arc<TimeModel>,
    peer_lut: Arc<LutTable>,
    requester_id: u16,
    stats: Arc<PortStats>,
    peer_stats: Arc<PortStats>,
    /// Transmit activity of the sending host (this transfer marks it).
    local_activity: Arc<HostActivity>,
    /// Transmit activity of the receiving host (contention source: its
    /// other adapter sending while we write into it).
    peer_activity: Arc<HostActivity>,
    /// The link's fault source (shared with the peer port; the lossless
    /// injector unless the network was built with a fault plan).
    faults: Arc<FaultInjector>,
}

impl std::fmt::Debug for OutgoingWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutgoingWindow")
            .field("bar", &self.bar)
            .field("dir", &self.dir)
            .field("requester_id", &self.requester_id)
            .finish()
    }
}

impl OutgoingWindow {
    /// Wire an outgoing window. `remote` is the peer's incoming region this
    /// window translates into; `peer_lut` is the peer's admission table.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bar: BarConfig,
        remote: Region,
        link: Arc<LinkTimer>,
        dir: LinkDirection,
        model: Arc<TimeModel>,
        peer_lut: Arc<LutTable>,
        requester_id: u16,
        stats: Arc<PortStats>,
        peer_stats: Arc<PortStats>,
        local_activity: Arc<HostActivity>,
        peer_activity: Arc<HostActivity>,
    ) -> Result<Arc<Self>> {
        Self::with_faults(
            bar,
            remote,
            link,
            dir,
            model,
            peer_lut,
            requester_id,
            stats,
            peer_stats,
            local_activity,
            peer_activity,
            FaultInjector::none(),
        )
    }

    /// Like [`OutgoingWindow::new`], with the link's fault injector.
    #[allow(clippy::too_many_arguments)]
    pub fn with_faults(
        bar: BarConfig,
        remote: Region,
        link: Arc<LinkTimer>,
        dir: LinkDirection,
        model: Arc<TimeModel>,
        peer_lut: Arc<LutTable>,
        requester_id: u16,
        stats: Arc<PortStats>,
        peer_stats: Arc<PortStats>,
        local_activity: Arc<HostActivity>,
        peer_activity: Arc<HostActivity>,
        faults: Arc<FaultInjector>,
    ) -> Result<Arc<Self>> {
        bar.validate()?;
        Ok(Arc::new(OutgoingWindow {
            bar,
            remote,
            link,
            dir,
            model,
            peer_lut,
            requester_id,
            stats,
            peer_stats,
            local_activity,
            peer_activity,
            faults,
        }))
    }

    /// Window size in bytes.
    pub fn size(&self) -> u64 {
        self.bar.size
    }

    /// The BAR configuration backing this window.
    pub fn bar(&self) -> &BarConfig {
        &self.bar
    }

    /// Direction this window's writes travel on the link.
    pub fn direction(&self) -> LinkDirection {
        self.dir
    }

    /// The link's fault injector.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// Consult the fault model for the next DMA descriptor through this
    /// window (called by the DMA worker before executing it).
    pub fn dma_fault_outcome(&self) -> DmaFaultOutcome {
        self.faults.dma_outcome(self.dir)
    }

    fn admit(&self, offset: u64, len: u64) -> Result<()> {
        if self.faults.link_is_down() {
            return Err(NtbError::LinkDown);
        }
        if let Err(e) = self.bar.check_access(offset, len) {
            self.stats.add_window_violation();
            return Err(e);
        }
        if let Err(e) = self.peer_lut.check(self.requester_id) {
            self.peer_stats.add_lut_reject();
            return Err(e);
        }
        Ok(())
    }

    /// Reserve the link for `bytes` under `mode` and return the completion
    /// deadline. Internal: callers copy first, then wait the deadline.
    /// The receiving host's concurrent transmissions (its other adapter)
    /// count as contention; this transfer marks the sending host busy.
    fn reserve(&self, bytes: u64, mode: TransferMode) -> Instant {
        let wire = self.slowed(self.model.scaled_duration(self.model.transfer_time(bytes, mode)));
        let contended = self.peer_activity.is_tx_busy();
        let deadline = self.link.reserve(self.dir, wire, self.model.duplex_penalty, contended);
        self.local_activity.mark_tx(deadline);
        deadline
    }

    /// Stretch a wire time by the link's gray-failure slow factor (a
    /// degraded port that renegotiated down: slower, never Down).
    fn slowed(&self, wire: Duration) -> Duration {
        let factor = self.faults.slow_factor();
        if factor == 1.0 {
            wire
        } else {
            wire.mul_f64(factor)
        }
    }

    fn account(&self, bytes: u64, mode: TransferMode) {
        self.stats.add_tx(bytes);
        self.peer_stats.add_rx(bytes);
        match mode {
            TransferMode::Dma => self.stats.add_dma_op(),
            TransferMode::Memcpy => self.stats.add_pio_op(),
        }
    }

    /// If the fault model wants this payload corrupted, flip one byte of
    /// what just landed in the remote region. The sender cannot tell — a
    /// bit flip on the wire is invisible until the receiver checks
    /// integrity.
    fn maybe_corrupt(&self, offset: u64, len: u64) -> Result<()> {
        if let Some((delta, mask)) = self.faults.corrupt_payload(self.dir, len) {
            let mut byte = [0u8; 1];
            self.remote.read(offset + delta, &mut byte)?;
            self.remote.write(offset + delta, &[byte[0] ^ mask])?;
        }
        Ok(())
    }

    /// Synchronously push `data` through the window at `offset`.
    /// Blocks for the modelled wire time (plus queueing on a busy link).
    pub fn write_bytes(&self, offset: u64, data: &[u8], mode: TransferMode) -> Result<()> {
        self.admit(offset, data.len() as u64)?;
        let deadline = self.reserve(data.len() as u64, mode);
        self.remote.write(offset, data)?;
        self.maybe_corrupt(offset, data.len() as u64)?;
        self.account(data.len() as u64, mode);
        if self.model.enabled() {
            // DEADLINE-CLIPPED: waits exactly to the reserved wire-time
            // deadline computed above.
            self.model.wait_until(deadline);
        }
        Ok(())
    }

    /// Synchronously push `len` bytes from `src` region (at `src_offset`)
    /// through the window at `dst_offset`. This is the zero-staging path
    /// the DMA engine uses.
    pub fn write_from_region(
        &self,
        src: &Region,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
        mode: TransferMode,
    ) -> Result<()> {
        self.admit(dst_offset, len)?;
        let deadline = self.reserve(len, mode);
        src.copy_to(src_offset, &self.remote, dst_offset, len)?;
        self.maybe_corrupt(dst_offset, len)?;
        self.account(len, mode);
        if self.model.enabled() {
            // DEADLINE-CLIPPED: waits exactly to the reserved wire-time
            // deadline computed above.
            self.model.wait_until(deadline);
        }
        Ok(())
    }

    /// Read through the window (a non-posted PCIe read): pulls bytes from
    /// the peer's window memory. Much slower than writes in `Memcpy` mode —
    /// every load round-trips the link.
    pub fn read_bytes(&self, offset: u64, buf: &mut [u8], mode: TransferMode) -> Result<()> {
        self.admit(offset, buf.len() as u64)?;
        let wire = match mode {
            TransferMode::Dma => self.model.transfer_time(buf.len() as u64, TransferMode::Dma),
            TransferMode::Memcpy => self.model.pio_read_time(buf.len() as u64),
        };
        // Read completions travel opposite to our writes.
        let deadline = self.link.reserve(
            self.dir.opposite(),
            self.slowed(self.model.scaled_duration(wire)),
            self.model.duplex_penalty,
            self.peer_activity.is_tx_busy(),
        );
        self.remote.read(offset, buf)?;
        self.stats.add_rx(buf.len() as u64);
        match mode {
            TransferMode::Dma => self.stats.add_dma_op(),
            TransferMode::Memcpy => self.stats.add_pio_op(),
        }
        if self.model.enabled() {
            // DEADLINE-CLIPPED: waits exactly to the reserved wire-time
            // deadline computed above.
            self.model.wait_until(deadline);
        }
        Ok(())
    }

    /// Account a non-posted PIO read of `len` bytes that targets the
    /// peer's *read aperture* rather than the window region: same link
    /// admission (down-link, LUT) and the same wire time and stats as
    /// [`read_bytes`](Self::read_bytes) in `Memcpy` mode, but no window
    /// bounds check and no copy — the caller reads the published aperture
    /// directly.
    pub fn charge_pio_read(&self, len: u64) -> Result<()> {
        if self.faults.link_is_down() {
            return Err(NtbError::LinkDown);
        }
        if let Err(e) = self.peer_lut.check(self.requester_id) {
            self.peer_stats.add_lut_reject();
            return Err(e);
        }
        let wire = self.model.pio_read_time(len);
        // Read completions travel opposite to our writes.
        let deadline = self.link.reserve(
            self.dir.opposite(),
            self.slowed(self.model.scaled_duration(wire)),
            self.model.duplex_penalty,
            self.peer_activity.is_tx_busy(),
        );
        self.stats.add_rx(len);
        self.stats.add_pio_op();
        if self.model.enabled() {
            // DEADLINE-CLIPPED: waits exactly to the reserved wire-time
            // deadline computed above.
            self.model.wait_until(deadline);
        }
        Ok(())
    }
}

/// The receiver's view of its own window memory: the region remote writes
/// land in, accessed at local cost.
#[derive(Debug, Clone)]
pub struct IncomingWindow {
    bar: BarConfig,
    region: Region,
}

impl IncomingWindow {
    /// Wrap the local backing region of a window.
    pub fn new(bar: BarConfig, region: Region) -> Result<Self> {
        bar.validate()?;
        Ok(IncomingWindow { bar, region })
    }

    /// Window size in bytes.
    pub fn size(&self) -> u64 {
        self.bar.size
    }

    /// The local memory backing the window. The service thread copies out
    /// of this (and forwards out of it, for bypass traffic).
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The BAR configuration backing this window.
    pub fn bar(&self) -> &BarConfig {
        &self.bar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bar::BarKind;
    use crate::error::NtbError;

    fn setup(size: u64, model: TimeModel) -> (Arc<OutgoingWindow>, IncomingWindow, Arc<LutTable>) {
        let model = Arc::new(model);
        let remote_region = Region::anonymous(size);
        let bar = BarConfig { index: 2, kind: BarKind::Bar64, size, translation_base: 0 };
        let lut = Arc::new(LutTable::new());
        lut.insert(0x42);
        let out = OutgoingWindow::new(
            bar,
            remote_region.clone(),
            LinkTimer::new(),
            LinkDirection::Upstream,
            model,
            Arc::clone(&lut),
            0x42,
            Arc::new(PortStats::new()),
            Arc::new(PortStats::new()),
            HostActivity::new(),
            HostActivity::new(),
        )
        .unwrap();
        let incoming = IncomingWindow::new(bar, remote_region).unwrap();
        (out, incoming, lut)
    }

    #[test]
    fn write_lands_in_peer_memory() {
        let (out, incoming, _) = setup(4096, TimeModel::zero());
        out.write_bytes(100, b"ntb payload", TransferMode::Dma).unwrap();
        assert_eq!(incoming.region().read_vec(100, 11).unwrap(), b"ntb payload");
    }

    #[test]
    fn write_beyond_limit_rejected() {
        let (out, _, _) = setup(4096, TimeModel::zero());
        let err = out.write_bytes(4090, &[0u8; 10], TransferMode::Dma).unwrap_err();
        assert!(matches!(err, NtbError::WindowLimitExceeded { .. }));
    }

    #[test]
    fn lut_miss_blocks_transfer() {
        let (out, incoming, lut) = setup(4096, TimeModel::zero());
        lut.remove(0x42);
        let err = out.write_bytes(0, &[1u8; 4], TransferMode::Dma).unwrap_err();
        assert_eq!(err, NtbError::LutMiss { requester_id: 0x42 });
        // Nothing landed.
        assert_eq!(incoming.region().read_vec(0, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn region_to_region_write() {
        let (out, incoming, _) = setup(4096, TimeModel::zero());
        let src = Region::anonymous(64);
        src.write(8, b"fromdma!").unwrap();
        out.write_from_region(&src, 8, 256, 8, TransferMode::Dma).unwrap();
        assert_eq!(incoming.region().read_vec(256, 8).unwrap(), b"fromdma!");
    }

    #[test]
    fn read_pulls_from_peer() {
        let (out, incoming, _) = setup(4096, TimeModel::zero());
        incoming.region().write(10, b"remote!").unwrap();
        let mut buf = [0u8; 7];
        out.read_bytes(10, &mut buf, TransferMode::Memcpy).unwrap();
        assert_eq!(&buf, b"remote!");
    }

    #[test]
    fn timed_write_takes_wire_time() {
        let model = TimeModel::paper();
        let expected = model.scaled_duration(model.transfer_time(256 * 1024, TransferMode::Dma));
        let (out, _, _) = setup(1 << 20, model);
        let t0 = Instant::now();
        out.write_bytes(0, &vec![7u8; 256 * 1024], TransferMode::Dma).unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed >= expected, "elapsed {elapsed:?} < modelled {expected:?}");
    }

    #[test]
    fn slow_port_stretches_wire_time_without_killing_link() {
        let model = TimeModel::scaled(0.05);
        let nominal = model.scaled_duration(model.transfer_time(256 * 1024, TransferMode::Dma));
        let (out, _, _) = setup(1 << 20, model);
        out.faults().set_slow_factor(4.0);
        let payload = vec![7u8; 256 * 1024];
        let t0 = Instant::now();
        // The link stays up — the write succeeds, it is just slow.
        out.write_bytes(0, &payload, TransferMode::Dma).unwrap();
        let slow = t0.elapsed();
        assert!(
            slow >= nominal.mul_f64(3.5),
            "slow-port write {slow:?} should be ~4x nominal {nominal:?}"
        );
        out.faults().set_slow_factor(1.0);
        let t1 = Instant::now();
        out.write_bytes(0, &payload, TransferMode::Dma).unwrap();
        assert!(t1.elapsed() < slow, "recovered port must be faster than the gray window");
    }

    #[test]
    fn memcpy_slower_than_dma_for_large_transfers() {
        // Use a shrunk time scale to keep the test fast but the ordering
        // observable.
        let model = TimeModel::scaled(0.05);
        let (out, _, _) = setup(1 << 20, model);
        let payload = vec![1u8; 512 * 1024];
        let t0 = Instant::now();
        out.write_bytes(0, &payload, TransferMode::Dma).unwrap();
        let dma = t0.elapsed();
        let t1 = Instant::now();
        out.write_bytes(0, &payload, TransferMode::Memcpy).unwrap();
        let pio = t1.elapsed();
        assert!(pio > dma, "pio {pio:?} should exceed dma {dma:?}");
    }

    #[test]
    fn stats_recorded() {
        let (out, _, _) = setup(4096, TimeModel::zero());
        out.write_bytes(0, &[0u8; 128], TransferMode::Dma).unwrap();
        out.write_bytes(0, &[0u8; 64], TransferMode::Memcpy).unwrap();
        let _ = out.write_bytes(4090, &[0u8; 100], TransferMode::Dma);
        assert_eq!(out.stats.bytes_tx(), 192);
        assert_eq!(out.stats.dma_ops(), 1);
        assert_eq!(out.stats.pio_ops(), 1);
        assert_eq!(out.stats.window_violations(), 1);
        assert_eq!(out.peer_stats.bytes_rx(), 192);
    }

    #[test]
    fn bad_bar_rejected_at_construction() {
        let bar = BarConfig { index: 0, kind: BarKind::Bar32, size: 100, translation_base: 0 };
        let r = OutgoingWindow::new(
            bar,
            Region::anonymous(100),
            LinkTimer::new(),
            LinkDirection::Upstream,
            Arc::new(TimeModel::zero()),
            Arc::new(LutTable::new()),
            0,
            Arc::new(PortStats::new()),
            Arc::new(PortStats::new()),
            HostActivity::new(),
            HostActivity::new(),
        );
        assert!(r.is_err());
        assert!(IncomingWindow::new(bar, Region::anonymous(100)).is_err());
    }
}
