//! Beyond the paper: switchless ring vs switch-emulating full mesh.
//!
//! The paper's pitch is that "high cost interconnection switches may not
//! be required if a cost-effective HPC system is desired". This module
//! quantifies what the switch would have bought: put and get latency to
//! the *far* host (two ring hops; one mesh hop) across the request-size
//! sweep, on identically calibrated links. The delta is exactly the
//! forwarding cost of the switchless design — the price paid for needing
//! only two adapters per host instead of N-1 (or a multi-root switch that,
//! as the paper notes, does not exist commercially).

use std::sync::Arc;
use std::time::Instant;

use ntb_net::{DeliveryTarget, NetConfig, RingNetwork, Topology};
use ntb_sim::{TimeModel, TransferMode};
use shmem_core::SymmetricHeap;

use crate::report::Series;
use crate::sizes::size_label;

/// Parameters of the comparison run.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Request sizes.
    pub sizes: Vec<u64>,
    /// Repetitions per point.
    pub reps: usize,
    /// Timing model.
    pub model: TimeModel,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig { sizes: crate::sizes::paper_sizes(), reps: 4, model: TimeModel::paper() }
    }
}

/// Result of the comparison.
#[derive(Debug, Clone)]
pub struct CompareResult {
    /// The swept sizes.
    pub sizes: Vec<u64>,
    /// Put latency to the far host on the ring (µs).
    pub ring_put_us: Vec<f64>,
    /// Put latency to the far host on the mesh (µs).
    pub mesh_put_us: Vec<f64>,
    /// Get latency from the far host on the ring (µs).
    pub ring_get_us: Vec<f64>,
    /// Get latency from the far host on the mesh (µs).
    pub mesh_get_us: Vec<f64>,
}

impl CompareResult {
    /// X-axis labels.
    pub fn labels(&self) -> Vec<String> {
        self.sizes.iter().map(|&s| size_label(s)).collect()
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        crate::report::render_series_table(
            "Topology comparison: far-host latency, switchless ring vs switch-like mesh (us)",
            &self.labels(),
            &[
                Series::new("ring put", self.ring_put_us.clone()),
                Series::new("mesh put", self.mesh_put_us.clone()),
                Series::new("ring get", self.ring_get_us.clone()),
                Series::new("mesh get", self.mesh_get_us.clone()),
            ],
        )
    }
}

/// Hosts in both networks (host 2 is the far target: two ring hops).
pub const COMPARE_HOSTS: usize = 5;

fn measure(topology: Topology, cfg: &CompareConfig) -> (Vec<f64>, Vec<f64>) {
    let net_cfg =
        NetConfig::paper(COMPARE_HOSTS).with_model(cfg.model.clone()).with_topology(topology);
    let net = RingNetwork::build(net_cfg).expect("build network");
    for node in net.nodes() {
        let heap = SymmetricHeap::new(Arc::clone(node.memory()), 1 << 20);
        heap.malloc(1 << 20).expect("symmetric buffer");
        node.set_delivery(heap as Arc<dyn DeliveryTarget>);
    }
    let node = net.node(0);
    let mut put_us = Vec::with_capacity(cfg.sizes.len());
    let mut get_us = Vec::with_capacity(cfg.sizes.len());
    for &size in &cfg.sizes {
        let data = vec![0xE1u8; size as usize];
        // Warm-up, then steady-state puts (as in fig9).
        node.put_bytes(2, 0, &data, TransferMode::Dma).expect("warm-up");
        let t0 = Instant::now();
        for _ in 0..cfg.reps {
            node.put_bytes(2, 0, &data, TransferMode::Dma).expect("put");
        }
        put_us.push((t0.elapsed() / cfg.reps as u32).as_secs_f64() * 1e6);
        node.quiet().expect("quiet");
        let t0 = Instant::now();
        for _ in 0..cfg.reps {
            let v = node.get_bytes(2, 0, size, TransferMode::Dma).expect("get");
            assert_eq!(v.len(), size as usize);
        }
        get_us.push((t0.elapsed() / cfg.reps as u32).as_secs_f64() * 1e6);
    }
    net.shutdown();
    (put_us, get_us)
}

/// Run the comparison: the same operations on both topologies.
pub fn run_compare(cfg: &CompareConfig) -> CompareResult {
    let (ring_put_us, ring_get_us) = measure(Topology::ring(COMPARE_HOSTS), cfg);
    let (mesh_put_us, mesh_get_us) = measure(Topology::clique(COMPARE_HOSTS), cfg);
    CompareResult { sizes: cfg.sizes.clone(), ring_put_us, mesh_put_us, ring_get_us, mesh_get_us }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_gets_beat_ring_gets_to_far_host() {
        let _serial = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let r = run_compare(&CompareConfig {
                sizes: vec![4 << 10, 256 << 10],
                reps: 3,
                model: TimeModel::paper(),
            });
            // Gets round-trip, so the extra ring hops show up clearly at
            // every size.
            for (i, (ring, mesh)) in r.ring_get_us.iter().zip(&r.mesh_get_us).enumerate() {
                if mesh >= ring {
                    return Err(format!(
                        "mesh get {mesh} must beat ring get {ring} (size idx {i})"
                    ));
                }
            }
            Ok(())
        });
    }

    #[test]
    fn render_mentions_both_topologies() {
        let _serial = crate::timing_test_guard();
        let r = run_compare(&CompareConfig {
            sizes: vec![4 << 10],
            reps: 2,
            model: TimeModel::paper(),
        });
        let txt = r.render();
        assert!(txt.contains("ring put") && txt.contains("mesh get"), "{txt}");
    }
}
