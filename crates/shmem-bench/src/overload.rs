//! Overload benchmark: goodput and tail latency versus offered load.
//!
//! The beyond-paper measurement that tracks the overload-survival layer
//! (credit-based flow control, wire deadlines, retry budgets, bounded
//! queues — DESIGN.md §14) across PRs. It emits `BENCH_overload.json`.
//!
//! Shape: an incast. Every PE except PE 0 fires deadline-bounded puts at
//! PE 0 — first flat out to find the saturation rate (the completion
//! rate an unpaced incast sustains), then open-loop paced at 1×, 2× and
//! 3× that rate. A system without admission control
//! collapses past saturation: queues grow, every operation waits behind
//! the backlog, goodput falls toward zero while latency diverges. With
//! load shedding the excess is rejected *typed* at admission and the
//! work that is admitted still completes — so goodput at 3× saturation
//! must hold at least half of the peak across the sweep. That retention
//! ratio is the regression gate.

use std::time::{Duration, Instant};

use ntb_sim::TimeModel;
use shmem_core::{OpOptions, OverloadConfig, ShmemConfig, ShmemWorld};

/// Parameters of the overload run.
#[derive(Debug, Clone)]
pub struct OverloadBenchConfig {
    /// Timing model (the committed run uses the paper-calibrated model).
    pub model: TimeModel,
    /// Ring size. PE 0 is the incast target; all others send.
    pub hosts: usize,
    /// Put payload in bytes.
    pub size: u64,
    /// Per-operation deadline carried by every timed put.
    pub deadline: Duration,
    /// Open-loop measurement window per load point.
    pub window: Duration,
    /// Offered-load multipliers over the calibrated saturation rate.
    pub multipliers: Vec<f64>,
    /// Puts per `quiet` batch (completion accounting granularity).
    pub batch: usize,
    /// Flow-control tuning for the measured worlds.
    pub overload: OverloadConfig,
}

impl Default for OverloadBenchConfig {
    fn default() -> Self {
        OverloadBenchConfig {
            model: TimeModel::paper(),
            hosts: 4,
            size: 512,
            deadline: Duration::from_millis(5),
            window: Duration::from_millis(400),
            multipliers: vec![1.0, 2.0, 3.0],
            batch: 8,
            overload: OverloadConfig::default(),
        }
    }
}

/// One open-loop load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load as a multiple of the calibrated saturation rate.
    pub multiplier: f64,
    /// Aggregate rate the senders tried to issue at (ops/s).
    pub offered_ops_per_sec: f64,
    /// Aggregate rate of puts that *completed* (admitted and acked
    /// before their deadline), in ops/s.
    pub goodput_ops_per_sec: f64,
    /// Median put-call latency in microseconds (includes any bounded
    /// admission wait).
    pub p50_us: f64,
    /// 99th-percentile put-call latency in microseconds.
    pub p99_us: f64,
    /// Put calls attempted across all senders.
    pub attempts: u64,
    /// Puts confirmed complete (their batch's quiet returned clean).
    pub completed: u64,
    /// Puts shed — rejected at admission or expired before the ack.
    pub shed: u64,
    /// Frame-level deadline sheds summed over every PE's links.
    pub deadline_sheds: u64,
    /// Frame-level overload sheds (queue/credit rejections), summed.
    pub overload_sheds: u64,
    /// Retransmissions withheld by dry retry budgets, summed.
    pub retry_sheds: u64,
}

/// Everything the overload run measured.
#[derive(Debug, Clone)]
pub struct OverloadResult {
    /// The time-model scale the run used.
    pub scale: f64,
    /// Ring size (PE 0 is the incast target).
    pub hosts: usize,
    /// Put payload in bytes.
    pub size: u64,
    /// Per-operation deadline in microseconds.
    pub deadline_us: u64,
    /// Calibrated saturation rate (flat-out completion rate), aggregate
    /// ops/s.
    pub saturation_ops_per_sec: f64,
    /// One measurement per offered-load multiplier, in sweep order.
    pub points: Vec<LoadPoint>,
    /// Goodput at the highest multiplier as a percentage of the best
    /// goodput anywhere in the sweep — the regression-gated number.
    pub goodput_retention_pct: f64,
}

fn world_cfg(cfg: &OverloadBenchConfig) -> ShmemConfig {
    let mut world = ShmemConfig::fast_sim()
        .with_hosts(cfg.hosts)
        .with_model(cfg.model.clone())
        .with_overload(cfg.overload);
    world.barrier_timeout = Duration::from_secs(600);
    world
}

/// What one sender brings home from an open-loop window.
struct SenderTally {
    attempts: u64,
    completed: u64,
    shed: u64,
    latencies_us: Vec<f64>,
}

/// One open-loop point: senders pace themselves at their share of the
/// aggregate `rate` (or flat out when `rate` is `None` — the calibration
/// run) and never wait for completions — excess load meets the admission
/// machinery, exactly like a real overload.
fn run_point(cfg: &OverloadBenchConfig, rate: Option<f64>, multiplier: f64) -> LoadPoint {
    let (size, batch) = (cfg.size as usize, cfg.batch);
    let (window, deadline) = (cfg.window, cfg.deadline);
    let senders = cfg.hosts - 1;
    let interval = rate.map(|r| Duration::from_secs_f64(senders as f64 / r));
    let results = ShmemWorld::run(world_cfg(cfg), move |ctx| {
        let sym = ctx.malloc_array::<u8>(size).expect("alloc");
        ctx.barrier_all().expect("barrier");
        let tally = if ctx.my_pe() == 0 {
            None
        } else {
            let data = vec![0xE1u8; size];
            let opts = OpOptions::new().deadline(deadline);
            let mut t = SenderTally { attempts: 0, completed: 0, shed: 0, latencies_us: vec![] };
            let mut in_flight = 0u64;
            let settle = |t: &mut SenderTally, in_flight: &mut u64, ok: bool| {
                if ok {
                    t.completed += *in_flight;
                } else {
                    t.shed += *in_flight;
                }
                *in_flight = 0;
            };
            let start = Instant::now();
            let mut next = start;
            while start.elapsed() < window {
                if let Some(interval) = interval {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep(next - now);
                    }
                    // Open loop: a sender running behind schedule does
                    // not slow its offered rate — the backlog is the
                    // point.
                    next += interval;
                }
                t.attempts += 1;
                let t0 = Instant::now();
                let admitted = ctx.put_slice_opts(&sym, 0, &data, 0, opts).is_ok();
                t.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                if admitted {
                    in_flight += 1;
                } else {
                    t.shed += 1;
                }
                if in_flight >= batch as u64 {
                    let ok = ctx.quiet().is_ok();
                    settle(&mut t, &mut in_flight, ok);
                }
            }
            let ok = ctx.quiet().is_ok();
            settle(&mut t, &mut in_flight, ok);
            Some(t)
        };
        // Let stragglers and the retry sweeper finish shedding before
        // the counters are read, then collect every PE's frame-level
        // shed totals.
        ctx.quiet().ok();
        ctx.barrier_all().expect("drain barrier");
        (tally, ctx.stats_snapshot())
    })
    .expect("load-point world");

    let mut point = LoadPoint {
        multiplier,
        offered_ops_per_sec: 0.0,
        goodput_ops_per_sec: 0.0,
        p50_us: 0.0,
        p99_us: 0.0,
        attempts: 0,
        completed: 0,
        shed: 0,
        deadline_sheds: 0,
        overload_sheds: 0,
        retry_sheds: 0,
    };
    let mut latencies: Vec<f64> = Vec::new();
    for (tally, stats) in results {
        point.deadline_sheds += stats.deadline_sheds;
        point.overload_sheds += stats.overload_sheds;
        point.retry_sheds += stats.retry_sheds;
        if let Some(t) = tally {
            point.attempts += t.attempts;
            point.completed += t.completed;
            point.shed += t.shed;
            latencies.extend(t.latencies_us);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    if !latencies.is_empty() {
        let pct = |p: f64| latencies[((latencies.len() as f64 - 1.0) * p).round() as usize];
        point.p50_us = pct(0.5);
        point.p99_us = pct(0.99);
    }
    // Paced points offer exactly their target rate; the flat-out
    // calibration offered whatever the senders physically achieved.
    point.offered_ops_per_sec = rate.unwrap_or(point.attempts as f64 / window.as_secs_f64());
    point.goodput_ops_per_sec = point.completed as f64 / window.as_secs_f64();
    point
}

/// Run the full overload benchmark: calibrate, then sweep the offered
/// load.
pub fn run_overload(cfg: &OverloadBenchConfig) -> OverloadResult {
    assert!(cfg.hosts >= 3, "incast needs at least two senders");
    assert!(!cfg.multipliers.is_empty(), "empty load sweep");
    // Calibration: an unpaced (flat-out) window. Its *goodput* — not its
    // attempt rate — is the saturation point: the completion rate the
    // system actually sustains when offered everything the senders have.
    let saturation = run_point(cfg, None, 0.0).goodput_ops_per_sec;
    assert!(saturation > 0.0, "calibration completed no work");
    let points: Vec<LoadPoint> =
        cfg.multipliers.iter().map(|&m| run_point(cfg, Some(m * saturation), m)).collect();
    let peak = points.iter().map(|p| p.goodput_ops_per_sec).fold(0.0f64, f64::max);
    let last = points.last().expect("at least one point").goodput_ops_per_sec;
    let retention = if peak > 0.0 { last / peak * 100.0 } else { 0.0 };
    OverloadResult {
        scale: cfg.model.scale,
        hosts: cfg.hosts,
        size: cfg.size,
        deadline_us: cfg.deadline.as_micros() as u64,
        saturation_ops_per_sec: saturation,
        points,
        goodput_retention_pct: retention,
    }
}

impl OverloadResult {
    /// Text report for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Overload sweep ({} PEs incast at PE 0, {} B puts, {} us deadline, scale {})\n\
             flat-out saturation: {:.0} ops/s aggregate\n",
            self.hosts, self.size, self.deadline_us, self.scale, self.saturation_ops_per_sec,
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:.1}x: offered {:>9.0} ops/s  goodput {:>9.0} ops/s  \
                 p50 {:>8.2} us  p99 {:>8.2} us  shed {} (frame-level: {} deadline, {} overload, {} retry)\n",
                p.multiplier,
                p.offered_ops_per_sec,
                p.goodput_ops_per_sec,
                p.p50_us,
                p.p99_us,
                p.shed,
                p.deadline_sheds,
                p.overload_sheds,
                p.retry_sheds,
            ));
        }
        out.push_str(&format!(
            "goodput retention at {:.1}x: {:.1}% of peak (gate: >= 50%)\n",
            self.points.last().map_or(0.0, |p| p.multiplier),
            self.goodput_retention_pct,
        ));
        out
    }

    /// Hand-rolled JSON document (no serde in the dependency budget).
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"multiplier\": {:.1}, \"offered_ops_per_sec\": {:.1}, \
                     \"goodput_ops_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                     \"attempts\": {}, \"completed\": {}, \"shed\": {}, \
                     \"deadline_sheds\": {}, \"overload_sheds\": {}, \"retry_sheds\": {}}}",
                    p.multiplier,
                    p.offered_ops_per_sec,
                    p.goodput_ops_per_sec,
                    p.p50_us,
                    p.p99_us,
                    p.attempts,
                    p.completed,
                    p.shed,
                    p.deadline_sheds,
                    p.overload_sheds,
                    p.retry_sheds,
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"overload\",\n  \"scale\": {},\n  \"hosts\": {},\n  \
             \"payload_bytes\": {},\n  \"deadline_us\": {},\n  \
             \"saturation_ops_per_sec\": {:.1},\n  \"points\": [\n{}\n  ],\n  \
             \"goodput_retention_pct\": {:.1}\n}}\n",
            self.scale,
            self.hosts,
            self.size,
            self.deadline_us,
            self.saturation_ops_per_sec,
            points.join(",\n"),
            self.goodput_retention_pct,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OverloadBenchConfig {
        OverloadBenchConfig {
            model: TimeModel::zero(),
            hosts: 3,
            size: 128,
            deadline: Duration::from_millis(5),
            window: Duration::from_millis(120),
            multipliers: vec![1.0, 3.0],
            batch: 8,
            overload: OverloadConfig::default(),
        }
    }

    #[test]
    fn overload_run_and_json_shape() {
        let _guard = crate::timing_test_guard();
        let r = run_overload(&tiny());
        assert!(r.saturation_ops_per_sec > 0.0);
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(p.attempts > 0, "senders must attempt work");
            assert!(p.offered_ops_per_sec > 0.0);
            assert!(p.p99_us >= p.p50_us);
            assert_eq!(
                p.attempts,
                p.completed + p.shed,
                "every attempt resolves as completed or shed"
            );
        }
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"overload\""));
        assert!(json.contains("\"saturation_ops_per_sec\""));
        assert!(json.contains("\"goodput_retention_pct\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    /// The regression gate: past saturation the shedding machinery must
    /// keep admitted work completing. Goodput at 3x the calibrated
    /// saturation rate holds at least half of the sweep's peak — a
    /// system that queues instead of shedding fails this by collapsing.
    #[test]
    fn goodput_survives_three_times_saturation() {
        let _guard = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let r = run_overload(&tiny());
            if r.goodput_retention_pct >= 50.0 {
                Ok(())
            } else {
                Err(format!("retention {:.1}% < 50%\n{}", r.goodput_retention_pct, r.render()))
            }
        });
    }
}
