//! Figure 9: OpenSHMEM Put/Get latency and throughput.
//!
//! The paper measures `shmem_x_put` and `shmem_x_get` between hosts of
//! the ring under four configurations — {DMA, memcpy} × {1 hop, 2 hops} —
//! sweeping 1 KB – 512 KB (Fig. 9(a)–(d)). Expected shapes:
//!
//! * Put is **locally blocking**: it returns once the payload has left
//!   the local buffer, and forwarding happens asynchronously in the
//!   service threads — so Put latency is nearly hop-insensitive.
//! * Get must round-trip: the request travels to the source host and the
//!   data travels back chunk by chunk through sleep-polling service
//!   threads — so Get latency is an order of magnitude above Put and
//!   clearly hop-sensitive.
//! * The DMA engine beats PIO `memcpy`, most visibly at large sizes.
//!
//! We run on a 5-host ring so that "2 hops" is the genuine shortest path
//! (on the paper's 3-host ring, 2-hop transfers were forced through the
//! intermediate host; the geometry is equivalent).

use std::time::Instant;

use ntb_sim::{TimeModel, TransferMode};
use shmem_core::{OpOptions, ShmemConfig, ShmemCtx, ShmemWorld};

use crate::report::Series;
use crate::sizes::size_label;
use crate::stats::mb_per_sec;

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathConfig {
    /// Data path.
    pub mode: TransferMode,
    /// Hops from PE 0 to the partner.
    pub hops: usize,
    /// The partner PE (1 = one hop right, 2 = two hops right on a 5-ring).
    pub partner: usize,
}

impl PathConfig {
    /// The paper's four curves.
    pub fn paper_grid() -> Vec<PathConfig> {
        vec![
            PathConfig { mode: TransferMode::Dma, hops: 1, partner: 1 },
            PathConfig { mode: TransferMode::Dma, hops: 2, partner: 2 },
            PathConfig { mode: TransferMode::Memcpy, hops: 1, partner: 1 },
            PathConfig { mode: TransferMode::Memcpy, hops: 2, partner: 2 },
        ]
    }

    /// Legend label matching the paper ("DMA 1 hop", ...).
    pub fn label(&self) -> String {
        format!("{} {} hop{}", self.mode.label(), self.hops, if self.hops == 1 { "" } else { "s" })
    }
}

/// Parameters of the Fig. 9 run.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Request sizes.
    pub sizes: Vec<u64>,
    /// Timed put iterations per point (after one warm-up).
    pub put_reps: usize,
    /// Timed get iterations per point.
    pub get_reps: usize,
    /// Timing model.
    pub model: TimeModel,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            sizes: crate::sizes::paper_sizes(),
            put_reps: 6,
            get_reps: 3,
            model: TimeModel::paper(),
        }
    }
}

/// One operation's curves across the four path configurations.
#[derive(Debug, Clone)]
pub struct OpCurves {
    /// Mean latency (µs), indexed `[config][size]`.
    pub latency_us: Vec<Vec<f64>>,
    /// Throughput (MB/s), indexed `[config][size]`.
    pub throughput: Vec<Vec<f64>>,
}

/// Result of the Fig. 9 run.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// The swept sizes.
    pub sizes: Vec<u64>,
    /// The four configurations, in [`PathConfig::paper_grid`] order.
    pub configs: Vec<PathConfig>,
    /// Put curves (Fig. 9(a) latency, 9(c) throughput).
    pub put: OpCurves,
    /// Get curves (Fig. 9(b) latency, 9(d) throughput).
    pub get: OpCurves,
}

impl Fig9Result {
    /// X-axis labels.
    pub fn labels(&self) -> Vec<String> {
        self.sizes.iter().map(|&s| size_label(s)).collect()
    }

    fn series(&self, values: &[Vec<f64>]) -> Vec<Series> {
        self.configs.iter().zip(values).map(|(c, v)| Series::new(c.label(), v.clone())).collect()
    }

    /// Render the four panels as text tables.
    pub fn render(&self) -> String {
        let labels = self.labels();
        let mut out = String::new();
        out.push_str(&crate::report::render_series_table(
            "Fig 9(a) Latency of Put operation (us)",
            &labels,
            &self.series(&self.put.latency_us),
        ));
        out.push('\n');
        out.push_str(&crate::report::render_series_table(
            "Fig 9(b) Latency of Get operation (us)",
            &labels,
            &self.series(&self.get.latency_us),
        ));
        out.push('\n');
        out.push_str(&crate::report::render_series_table(
            "Fig 9(c) Throughput of Put operation (MB/s)",
            &labels,
            &self.series(&self.put.throughput),
        ));
        out.push('\n');
        out.push_str(&crate::report::render_series_table(
            "Fig 9(d) Throughput of Get operation (MB/s)",
            &labels,
            &self.series(&self.get.throughput),
        ));
        out
    }
}

/// Number of PEs the Fig. 9/10 worlds use (2 hops must be a real shortest
/// path).
pub const FIG9_HOSTS: usize = 5;

fn measure_pe0(
    ctx: &ShmemCtx,
    sym: &shmem_core::TypedSym<u8>,
    cfg: &Fig9Config,
) -> (OpCurves, OpCurves) {
    let configs = PathConfig::paper_grid();
    let mut put = OpCurves { latency_us: Vec::new(), throughput: Vec::new() };
    let mut get = OpCurves { latency_us: Vec::new(), throughput: Vec::new() };

    for pc in &configs {
        let mut put_lat = Vec::with_capacity(cfg.sizes.len());
        let mut put_tput = Vec::with_capacity(cfg.sizes.len());
        let mut get_lat = Vec::with_capacity(cfg.sizes.len());
        let mut get_tput = Vec::with_capacity(cfg.sizes.len());
        for &size in &cfg.sizes {
            let data = vec![0xA5u8; size as usize];
            // --- Put: steady-state per-operation time over a pipelined
            // burst (one warm-up op primes the mailbox), as the paper's
            // repeated-transfer measurement does.
            let opts = OpOptions::new().mode(pc.mode);
            ctx.put_slice_opts(sym, 0, &data, pc.partner, opts).expect("warm-up put");
            let t0 = Instant::now();
            for _ in 0..cfg.put_reps {
                ctx.put_slice_opts(sym, 0, &data, pc.partner, opts).expect("timed put");
            }
            let per_op = t0.elapsed() / cfg.put_reps as u32;
            ctx.quiet().expect("quiet");
            put_lat.push(per_op.as_secs_f64() * 1e6);
            put_tput.push(mb_per_sec(size, per_op));
            // --- Get: each operation is a full round trip.
            let t0 = Instant::now();
            for _ in 0..cfg.get_reps {
                let v = ctx
                    .get_slice_opts::<u8>(sym, 0, size as usize, pc.partner, opts)
                    .expect("timed get");
                assert_eq!(v.len(), size as usize);
            }
            let per_op = t0.elapsed() / cfg.get_reps as u32;
            get_lat.push(per_op.as_secs_f64() * 1e6);
            get_tput.push(mb_per_sec(size, per_op));
        }
        put.latency_us.push(put_lat);
        put.throughput.push(put_tput);
        get.latency_us.push(get_lat);
        get.throughput.push(get_tput);
    }
    (put, get)
}

/// Run the full Fig. 9 sweep (builds a 5-PE world; PE 0 measures).
pub fn run_fig9(cfg: &Fig9Config) -> Fig9Result {
    let mut world_cfg = ShmemConfig::paper().with_hosts(FIG9_HOSTS).with_model(cfg.model.clone());
    world_cfg.barrier_timeout = std::time::Duration::from_secs(600);
    let cfg2 = cfg.clone();
    let mut results = ShmemWorld::run(world_cfg, move |ctx| {
        // Collective symmetric allocation: every PE participates.
        let max_size = *cfg2.sizes.iter().max().expect("non-empty sizes") as usize;
        let sym = ctx.malloc_array::<u8>(max_size).expect("symmetric buffer");
        let out = if ctx.my_pe() == 0 { Some(measure_pe0(ctx, &sym, &cfg2)) } else { None };
        ctx.barrier_all().expect("final barrier");
        out
    })
    .expect("fig9 world");
    let (put, get) = results.remove(0).expect("PE 0 measured");
    Fig9Result { sizes: cfg.sizes.clone(), configs: PathConfig::paper_grid(), put, get }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape check at the full calibrated scale: on small machines the
    /// real scheduler overhead is a few milliseconds per operation, so
    /// only paper-scale modelled latencies dominate it reliably. Two
    /// sizes and few reps keep the run under a couple of seconds.
    fn quick() -> Fig9Result {
        run_fig9(&Fig9Config {
            sizes: vec![4 << 10, 512 << 10],
            put_reps: 8,
            get_reps: 2,
            model: TimeModel::paper(),
        })
    }

    #[test]
    fn shapes_match_paper() {
        let _serial = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let r = quick();
            let last = r.sizes.len() - 1;
            // Get latency far above Put latency (every config, largest size).
            for c in 0..4 {
                if r.get.latency_us[c][last] <= 2.0 * r.put.latency_us[c][last] {
                    return Err(format!(
                        "get {} must exceed put {} (config {c})",
                        r.get.latency_us[c][last], r.put.latency_us[c][last]
                    ));
                }
            }
            // Get is hop-sensitive: 2 hops slower than 1 hop (DMA pair).
            // Checked at the small size, where the per-hop
            // request/response handling dominates (at 512 KB the chunk
            // pipeline amortizes the extra hop down to ~15%).
            if r.get.latency_us[1][0] <= 1.2 * r.get.latency_us[0][0] {
                return Err(format!(
                    "2-hop get {} vs 1-hop {}",
                    r.get.latency_us[1][0], r.get.latency_us[0][0]
                ));
            }
            // Put is nearly hop-insensitive: within 2x.
            if r.put.latency_us[1][last] >= 2.0 * r.put.latency_us[0][last] {
                return Err(format!(
                    "put hop-sensitivity too high: {} vs {}",
                    r.put.latency_us[1][last], r.put.latency_us[0][last]
                ));
            }
            // DMA beats memcpy for large puts.
            if r.put.latency_us[2][last] <= r.put.latency_us[0][last] {
                return Err(format!(
                    "memcpy put {} vs DMA {}",
                    r.put.latency_us[2][last], r.put.latency_us[0][last]
                ));
            }
            Ok(())
        });
    }

    #[test]
    fn render_has_four_panels() {
        let _serial = crate::timing_test_guard();
        let r = quick();
        let txt = r.render();
        for p in ["Fig 9(a)", "Fig 9(b)", "Fig 9(c)", "Fig 9(d)"] {
            assert!(txt.contains(p), "{p} missing");
        }
        assert!(txt.contains("DMA 1 hop"));
        assert!(txt.contains("memcpy 2 hops"));
    }
}
