//! `repro` — regenerate every figure of the paper's evaluation section.
//!
//! ```text
//! repro [all|fig8|fig9|fig10|compare|trace|transport|overload|scale] [--scale F] [--reps N] [--quick] [--csv DIR]
//! ```
//!
//! `compare` runs the beyond-paper topology comparison: the switchless
//! ring against the switch-emulating full mesh. `trace` runs a small
//! traced workload and prints the event trace, the per-PE metrics report
//! and the protocol-invariant checker's verdict. `transport` benchmarks
//! the batched/coalesced transport hot path against the legacy
//! per-message doorbell path and writes `BENCH_transport.json`.
//! `overload` sweeps incast offered load to 3× the calibrated saturation
//! rate and writes `BENCH_overload.json` (goodput, tail latency and shed
//! counts per load point). `scale` sweeps collective latency to 64
//! simulated PEs across ring/torus/clique topologies and both barrier
//! algorithms, writes `BENCH_scale.json` and enforces the scaling
//! regression gates (64-PE torus dissemination barrier ≤ 4× its 8-PE
//! latency; dissemination strictly beats the two-sweep ring barrier at
//! 16 PEs).
//!
//! * `--scale F`  — time-model scale (1.0 = paper-calibrated latencies,
//!   smaller = proportionally faster runs with the same shapes).
//! * `--reps N`   — measurement repetitions per point.
//! * `--quick`    — 4-point size axis instead of the paper's 10.
//! * `--csv DIR`  — also write each panel as CSV into DIR.

use std::fs;
use std::path::PathBuf;

use ntb_sim::TimeModel;
use shmem_bench::compare::{run_compare, CompareConfig};
use shmem_bench::fig10::{run_fig10, Fig10Config};
use shmem_bench::fig8::{run_fig8, run_scaling, Fig8Config};
use shmem_bench::fig9::{run_fig9, Fig9Config};
use shmem_bench::report::{render_csv, Series};
use shmem_bench::sizes::{paper_sizes, quick_sizes};

struct Options {
    what: String,
    scale: f64,
    reps: Option<usize>,
    quick: bool,
    csv: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options { what: "all".into(), scale: 1.0, reps: None, quick: false, csv: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "all" | "fig8" | "fig9" | "fig10" | "compare" | "scaling" | "trace" | "transport"
            | "overload" | "scale" => opts.what = a,
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a float"));
            }
            "--reps" => {
                opts.reps = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--reps needs an integer")),
                );
            }
            "--quick" => opts.quick = true,
            "--csv" => {
                opts.csv = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--csv needs a directory")),
                ));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [all|fig8|fig9|fig10|compare|scaling|trace|transport|overload|scale] [--scale F] [--reps N] [--quick] [--csv DIR]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn write_csv(dir: &Option<PathBuf>, name: &str, labels: &[String], series: &[Series]) {
    if let Some(dir) = dir {
        fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, render_csv(labels, series)).expect("write csv");
        println!("  wrote {}", path.display());
    }
}

/// Run a small fully-traced workload (puts, gets, AMOs, barriers on a
/// 3-PE ring), print the structured event trace and the metrics report,
/// and put the trace through the protocol-invariant checker.
fn run_trace_demo() {
    use shmem_core::{ShmemConfig, ShmemWorld};
    const PES: usize = 3;
    let results = ShmemWorld::run(ShmemConfig::fast_sim().with_hosts(PES), |ctx| {
        let log = ctx.node().obs().log().expect("observed world");
        log.enable();
        let sym = ctx.calloc_array::<u64>(64).expect("alloc");
        let right = (ctx.my_pe() + 1) % ctx.num_pes();
        let data: Vec<u64> = (0..64).map(|i| (ctx.my_pe() * 1000 + i) as u64).collect();
        ctx.put_slice(&sym, 0, &data, right).expect("put");
        ctx.quiet().expect("quiet");
        ctx.barrier_all().expect("barrier");
        ctx.get_slice::<u64>(&sym, 0, 64, right).expect("get");
        ctx.atomic_fetch_add(&sym, 0, 1u64, 0).expect("amo");
        ctx.barrier_all().expect("barrier");
        (std::sync::Arc::clone(log), std::sync::Arc::clone(ctx.metrics()))
    })
    .expect("trace demo world");
    let log = std::sync::Arc::clone(&results[0].0);
    let registries: Vec<_> = results.into_iter().map(|(_, m)| m).collect();
    let events = log.take();
    println!("{}", ntb_sim::render_events(&events));
    println!("({} events, {} dropped)\n", events.len(), log.dropped());
    println!("{}", shmem_bench::render_metrics_report("per-PE metrics", &registries));
    let report = ntb_net::check(&events, PES);
    if report.is_clean() {
        println!(
            "checker: clean ({} puts, {} gets, {} AMOs, {} barriers checked)",
            report.puts_checked, report.gets_checked, report.amos_checked, report.barriers_checked
        );
    } else {
        println!(
            "checker: {} violation(s)\n{}",
            report.violations.len(),
            report.render_violations()
        );
        std::process::exit(1);
    }
}

/// Run the transport hot-path benchmark and write `BENCH_transport.json`
/// into the current directory.
fn run_transport_bench(scale: f64, reps: Option<usize>) {
    use shmem_bench::transport::{run_transport, TransportConfig};
    let model = if scale == 1.0 { TimeModel::paper() } else { TimeModel::scaled(scale) };
    let cfg =
        TransportConfig { model, latency_reps: reps.unwrap_or(64), ..TransportConfig::default() };
    let t0 = std::time::Instant::now();
    let r = run_transport(&cfg);
    println!("{}", r.render());
    println!("(transport ran in {:.1?})", t0.elapsed());
    let path = PathBuf::from("BENCH_transport.json");
    fs::write(&path, r.to_json()).expect("write BENCH_transport.json");
    println!("wrote {}", path.display());
}

/// Run the scale sweep, enforce the scaling gates and write
/// `BENCH_scale.json` into the current directory.
fn run_scale_bench(scale: f64, reps: Option<usize>, quick: bool) {
    use shmem_bench::scale::{run_scale, ScaleConfig};
    let model = if scale == 1.0 { TimeModel::paper() } else { TimeModel::scaled(scale) };
    let mut cfg = ScaleConfig { model, reps: reps.unwrap_or(8), ..ScaleConfig::default() };
    if quick {
        cfg.pe_counts = vec![8, 16, 64];
        cfg.reps = reps.unwrap_or(4);
    }
    let t0 = std::time::Instant::now();
    let r = run_scale(&cfg);
    println!("{}", r.render());
    println!("(scale ran in {:.1?})", t0.elapsed());
    let path = PathBuf::from("BENCH_scale.json");
    fs::write(&path, r.to_json()).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());
    if let Err(err) = r.check_gates() {
        eprintln!("scale gate FAILED: {err}");
        std::process::exit(1);
    }
    println!("scale gates: ok");
}

/// Run the overload sweep and write `BENCH_overload.json` into the
/// current directory.
fn run_overload_bench(scale: f64, quick: bool) {
    use shmem_bench::overload::{run_overload, OverloadBenchConfig};
    let model = if scale == 1.0 { TimeModel::paper() } else { TimeModel::scaled(scale) };
    let mut cfg = OverloadBenchConfig { model, ..OverloadBenchConfig::default() };
    if quick {
        cfg.window = std::time::Duration::from_millis(150);
    }
    let t0 = std::time::Instant::now();
    let r = run_overload(&cfg);
    println!("{}", r.render());
    println!("(overload ran in {:.1?})", t0.elapsed());
    let path = PathBuf::from("BENCH_overload.json");
    fs::write(&path, r.to_json()).expect("write BENCH_overload.json");
    println!("wrote {}", path.display());
}

fn main() {
    let opts = parse_args();
    if opts.what == "trace" {
        run_trace_demo();
        return;
    }
    if opts.what == "transport" {
        run_transport_bench(opts.scale, opts.reps);
        return;
    }
    if opts.what == "overload" {
        run_overload_bench(opts.scale, opts.quick);
        return;
    }
    if opts.what == "scale" {
        run_scale_bench(opts.scale, opts.reps, opts.quick);
        return;
    }
    let sizes = if opts.quick { quick_sizes() } else { paper_sizes() };
    let model = if opts.scale == 1.0 { TimeModel::paper() } else { TimeModel::scaled(opts.scale) };
    println!(
        "# OpenSHMEM over switchless PCIe NTB — evaluation reproduction (scale {}, {} sizes)\n",
        opts.scale,
        sizes.len()
    );

    if opts.what == "all" || opts.what == "fig8" {
        let cfg = Fig8Config {
            sizes: sizes.clone(),
            reps: opts.reps.unwrap_or(8),
            model: model.clone(),
            ..Fig8Config::default()
        };
        let t0 = std::time::Instant::now();
        let r = run_fig8(&cfg);
        println!("{}", r.render());
        println!("(fig8 ran in {:.1?})\n", t0.elapsed());
        let labels = r.labels();
        for (i, (ind, ring)) in r.independent.iter().zip(&r.ring).enumerate() {
            write_csv(
                &opts.csv,
                &format!("fig8_link{i}"),
                &labels,
                &[Series::new("independent", ind.clone()), Series::new("ring", ring.clone())],
            );
        }
        write_csv(
            &opts.csv,
            "fig8_total",
            &labels,
            &[
                Series::new("independent", r.total_independent()),
                Series::new("ring", r.total_ring()),
            ],
        );
    }

    if opts.what == "all" || opts.what == "fig9" {
        let cfg = Fig9Config {
            sizes: sizes.clone(),
            put_reps: opts.reps.unwrap_or(6),
            get_reps: opts.reps.unwrap_or(6).div_ceil(2),
            model: model.clone(),
        };
        let t0 = std::time::Instant::now();
        let r = run_fig9(&cfg);
        println!("{}", r.render());
        println!("(fig9 ran in {:.1?})\n", t0.elapsed());
        let labels = r.labels();
        let names: Vec<String> = r.configs.iter().map(|c| c.label()).collect();
        let mk = |vals: &[Vec<f64>]| -> Vec<Series> {
            names.iter().zip(vals).map(|(n, v)| Series::new(n.clone(), v.clone())).collect()
        };
        write_csv(&opts.csv, "fig9a_put_latency", &labels, &mk(&r.put.latency_us));
        write_csv(&opts.csv, "fig9b_get_latency", &labels, &mk(&r.get.latency_us));
        write_csv(&opts.csv, "fig9c_put_throughput", &labels, &mk(&r.put.throughput));
        write_csv(&opts.csv, "fig9d_get_throughput", &labels, &mk(&r.get.throughput));
    }

    if opts.what == "scaling" {
        let t0 = std::time::Instant::now();
        let r = run_scaling(&[2, 3, 4, 5, 6], 512 << 10, opts.reps.unwrap_or(8), &model);
        println!("{}", r.render());
        println!("(scaling ran in {:.1?})\n", t0.elapsed());
    }

    if opts.what == "compare" {
        let cfg = CompareConfig {
            sizes: sizes.clone(),
            reps: opts.reps.unwrap_or(4),
            model: model.clone(),
        };
        let t0 = std::time::Instant::now();
        let r = run_compare(&cfg);
        println!("{}", r.render());
        println!("(compare ran in {:.1?})\n", t0.elapsed());
        let labels = r.labels();
        write_csv(
            &opts.csv,
            "compare_topologies",
            &labels,
            &[
                Series::new("ring put", r.ring_put_us.clone()),
                Series::new("mesh put", r.mesh_put_us.clone()),
                Series::new("ring get", r.ring_get_us.clone()),
                Series::new("mesh get", r.mesh_get_us.clone()),
            ],
        );
    }

    if opts.what == "all" || opts.what == "fig10" {
        let cfg = Fig10Config {
            sizes: sizes.clone(),
            reps: opts.reps.unwrap_or(5),
            model: model.clone(),
        };
        let t0 = std::time::Instant::now();
        let r = run_fig10(&cfg);
        println!("{}", r.render());
        println!("(fig10 ran in {:.1?})\n", t0.elapsed());
        let labels = r.labels();
        let series: Vec<Series> = r
            .configs
            .iter()
            .zip(&r.latency_us)
            .map(|(c, v)| Series::new(c.label(), v.clone()))
            .collect();
        write_csv(&opts.csv, "fig10_barrier_latency", &labels, &series);
    }
}
