//! Paper-style table rendering, CSV export, and observability reports.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use ntb_sim::{MetricsRegistry, OpClass};

/// One curve of a figure: a name plus one value per x-axis point.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "DMA 1 hop").
    pub name: String,
    /// One value per size, in figure order.
    pub values: Vec<f64>,
}

impl Series {
    /// Construct from a name and values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Series {
        Series { name: name.into(), values }
    }
}

/// Render a figure as an aligned text table: one row per x label, one
/// column per series — the textual equivalent of the paper's plots.
pub fn render_series_table(title: &str, x_labels: &[String], series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let label_w = x_labels.iter().map(|l| l.len()).max().unwrap_or(4).max(8);
    let col_w = series.iter().map(|s| s.name.len()).max().unwrap_or(8).max(12);
    let _ = write!(out, "{:<label_w$}", "size");
    for s in series {
        let _ = write!(out, "  {:>col_w$}", s.name);
    }
    let _ = writeln!(out);
    for (i, label) in x_labels.iter().enumerate() {
        let _ = write!(out, "{label:<label_w$}");
        for s in series {
            match s.values.get(i) {
                Some(v) => {
                    let _ = write!(out, "  {:>col_w$.1}", v);
                }
                None => {
                    let _ = write!(out, "  {:>col_w$}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the same data as CSV (`size,<series...>`).
pub fn render_csv(x_labels: &[String], series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "size");
    for s in series {
        let _ = write!(out, ",{}", s.name);
    }
    let _ = writeln!(out);
    for (i, label) in x_labels.iter().enumerate() {
        let _ = write!(out, "{label}");
        for s in series {
            match s.values.get(i) {
                Some(v) => {
                    let _ = write!(out, ",{v:.3}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the per-PE metrics registries gathered while tracing was on:
/// one latency line per op class with traffic, then the per-link frame
/// and recovery counters. The numeric companion to a trace dump.
pub fn render_metrics_report(
    title: &str,
    registries: &[std::sync::Arc<MetricsRegistry>],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (pe, reg) in registries.iter().enumerate() {
        for class in OpClass::ALL {
            let h = reg.op(class);
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  pe {pe} {:<7} count={:<6} mean={:.1}us p50<={}us p99<={}us max={}us",
                class.name(),
                h.count(),
                h.mean_us(),
                h.quantile_us(0.50),
                h.quantile_us(0.99),
                h.max_us()
            );
        }
        for link in 0..reg.link_count() {
            let Some(l) = reg.link(link) else { continue };
            // lint: relaxed-ok(report-time counter snapshot; counters are monotonic and the
            // report tolerates slight skew between them)
            let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
            let (tx, rx) = (ld(&l.frames_tx), ld(&l.frames_rx));
            let (retx, rer, crc) = (ld(&l.retransmits), ld(&l.reroutes), ld(&l.crc_rejects));
            if tx + rx + retx + rer + crc == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  pe {pe} link {link}  tx={tx} rx={rx} retransmits={retx} reroutes={rer} \
                 crc_rejects={crc}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Vec<String>, Vec<Series>) {
        (
            vec!["1KB".into(), "2KB".into()],
            vec![
                Series::new("DMA 1 hop", vec![10.5, 20.25]),
                Series::new("memcpy 1 hop", vec![5.0, 9.0]),
            ],
        )
    }

    #[test]
    fn table_contains_everything() {
        let (labels, series) = fixture();
        let t = render_series_table("Fig X", &labels, &series);
        assert!(t.contains("Fig X"));
        assert!(t.contains("DMA 1 hop"));
        assert!(t.contains("memcpy 1 hop"));
        assert!(t.contains("1KB"));
        assert!(t.contains("10.5"));
        assert!(t.contains("20.2")); // rounded to one decimal: 20.2 or 20.3
    }

    #[test]
    fn table_rows_align() {
        let (labels, series) = fixture();
        let t = render_series_table("T", &labels, &series);
        let lines: Vec<&str> = t.lines().skip(1).collect();
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned columns: {t}");
    }

    #[test]
    fn csv_shape() {
        let (labels, series) = fixture();
        let c = render_csv(&labels, &series);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "size,DMA 1 hop,memcpy 1 hop");
        assert_eq!(lines[1], "1KB,10.500,5.000");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn missing_values_render_as_blank() {
        let labels = vec!["1KB".into(), "2KB".into()];
        let series = vec![Series::new("short", vec![1.0])];
        let t = render_series_table("T", &labels, &series);
        assert!(t.contains('-'));
        let c = render_csv(&labels, &series);
        assert!(c.lines().nth(2).unwrap().ends_with(','));
    }

    #[test]
    fn metrics_report_shows_active_classes_and_links() {
        let reg = MetricsRegistry::new(2);
        reg.record_op(OpClass::Put, 12);
        reg.record_op(OpClass::Put, 20);
        reg.bump_link(1, |l| &l.frames_tx);
        let r = render_metrics_report("metrics", &[std::sync::Arc::clone(&reg)]);
        assert!(r.contains("pe 0 put"), "{r}");
        assert!(r.contains("count=2"), "{r}");
        assert!(r.contains("pe 0 link 1"), "{r}");
        assert!(!r.contains("barrier"), "idle classes are elided: {r}");
        assert!(!r.contains("link 0 "), "idle links are elided: {r}");
    }
}
