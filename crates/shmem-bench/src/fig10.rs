//! Figure 10: `shmem_barrier_all` latency.
//!
//! The paper calls `shmem_barrier_all()` after Put operations of varying
//! sizes and measures the barrier's latency under the same four
//! configurations as Fig. 9. Expected shape: the barrier costs far more
//! than a small put (two full doorbell sweeps around the ring, each hop
//! paying interrupt delivery and thread wake-up), and its latency is
//! roughly flat in the preceding request size — the property the paper
//! highlights ("the latencies are sustained as the requested data size
//! increases").

use std::time::Instant;

use ntb_sim::TimeModel;
use shmem_core::{OpOptions, ShmemConfig, ShmemWorld};

use crate::fig9::{PathConfig, FIG9_HOSTS};
use crate::report::Series;
use crate::sizes::size_label;

/// Parameters of the Fig. 10 run.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Request sizes for the preceding puts.
    pub sizes: Vec<u64>,
    /// Barrier repetitions per point.
    pub reps: usize,
    /// Timing model.
    pub model: TimeModel,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config { sizes: crate::sizes::paper_sizes(), reps: 5, model: TimeModel::paper() }
    }
}

/// Result of the Fig. 10 run.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// The swept sizes.
    pub sizes: Vec<u64>,
    /// The four configurations.
    pub configs: Vec<PathConfig>,
    /// Mean barrier latency (µs) at PE 0, indexed `[config][size]`.
    pub latency_us: Vec<Vec<f64>>,
}

impl Fig10Result {
    /// X-axis labels.
    pub fn labels(&self) -> Vec<String> {
        self.sizes.iter().map(|&s| size_label(s)).collect()
    }

    /// Render as a text table.
    pub fn render(&self) -> String {
        let series: Vec<Series> = self
            .configs
            .iter()
            .zip(&self.latency_us)
            .map(|(c, v)| Series::new(c.label(), v.clone()))
            .collect();
        crate::report::render_series_table(
            "Fig 10 Latency of shmem_barrier_all after Puts (us)",
            &self.labels(),
            &series,
        )
    }
}

/// Run the full Fig. 10 sweep. Every PE participates in every barrier;
/// PE 0 issues the preceding put and reports the barrier latency.
pub fn run_fig10(cfg: &Fig10Config) -> Fig10Result {
    let mut world_cfg = ShmemConfig::paper().with_hosts(FIG9_HOSTS).with_model(cfg.model.clone());
    world_cfg.barrier_timeout = std::time::Duration::from_secs(600);
    let configs = PathConfig::paper_grid();
    let sizes = cfg.sizes.clone();
    let reps = cfg.reps;
    let mut results = ShmemWorld::run(world_cfg, move |ctx| {
        let max_size = *sizes.iter().max().expect("non-empty sizes") as usize;
        let sym = ctx.malloc_array::<u8>(max_size).expect("symmetric buffer");
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for pc in PathConfig::paper_grid() {
            let mut per_size = Vec::with_capacity(sizes.len());
            for &size in &sizes {
                let data = vec![0x3Cu8; size as usize];
                let mut total = std::time::Duration::ZERO;
                for _ in 0..reps {
                    if ctx.my_pe() == 0 {
                        ctx.put_slice_opts(
                            &sym,
                            0,
                            &data,
                            pc.partner,
                            OpOptions::new().mode(pc.mode),
                        )
                        .expect("preceding put");
                    }
                    let t0 = Instant::now();
                    ctx.barrier_all().expect("measured barrier");
                    total += t0.elapsed();
                }
                per_size.push((total / reps as u32).as_secs_f64() * 1e6);
            }
            rows.push(per_size);
        }
        rows
    })
    .expect("fig10 world");
    Fig10Result { sizes: cfg.sizes.clone(), configs, latency_us: results.remove(0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntb_sim::TransferMode;
    use shmem_core::ShmemConfig as SC;

    fn quick() -> Fig10Result {
        run_fig10(&Fig10Config {
            sizes: vec![4 << 10, 256 << 10],
            reps: 2,
            model: TimeModel::paper(),
        })
    }

    #[test]
    fn barrier_latency_roughly_flat_in_size() {
        let _serial = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let r = quick();
            for (c, row) in r.latency_us.iter().enumerate() {
                let ratio = row.last().unwrap() / row.first().unwrap();
                if !(0.2..5.0).contains(&ratio) {
                    return Err(format!(
                        "config {c}: barrier latency should be roughly flat, got ratio {ratio}"
                    ));
                }
            }
            Ok(())
        });
    }

    #[test]
    fn barrier_costs_more_than_small_put() {
        let _serial = crate::timing_test_guard();
        // Measure a small put's steady latency in the same model scale and
        // compare with the barrier.
        let model = TimeModel::paper();
        let r = quick();
        let mut wc = SC::paper().with_hosts(FIG9_HOSTS).with_model(model);
        wc.barrier_timeout = std::time::Duration::from_secs(120);
        let put_us = ShmemWorld::run(wc, |ctx| {
            // malloc is collective: every PE calls it.
            let sym = ctx.malloc_array::<u8>(1024).unwrap();
            let us = if ctx.my_pe() == 0 {
                let data = vec![0u8; 1024];
                let t0 = Instant::now();
                ctx.put_slice_opts(&sym, 0, &data, 1, OpOptions::new().mode(TransferMode::Dma))
                    .unwrap();
                let us = t0.elapsed().as_secs_f64() * 1e6;
                ctx.quiet().expect("quiet");
                us
            } else {
                0.0
            };
            ctx.barrier_all().unwrap();
            us
        })
        .unwrap()[0];
        let barrier_us = r.latency_us[0][0];
        assert!(barrier_us > put_us, "barrier {barrier_us} must exceed a 1KB put {put_us}");
    }

    #[test]
    fn render_lists_all_configs() {
        let _serial = crate::timing_test_guard();
        let r = quick();
        let txt = r.render();
        assert!(txt.contains("Fig 10"));
        for c in &r.configs {
            assert!(txt.contains(&c.label()));
        }
    }
}
