//! # shmem-bench — the paper's evaluation, regenerated
//!
//! One module per figure of the paper's §IV:
//!
//! * [`fig8`] — raw NTB link transfer rate, independent vs
//!   ring-simultaneous, per connection and total (Fig. 8(a)–(d)).
//! * [`fig9`] — OpenSHMEM Put/Get latency and throughput across
//!   {DMA, memcpy} × {1 hop, 2 hops} (Fig. 9(a)–(d)).
//! * [`fig10`] — `shmem_barrier_all` latency following Puts of varying
//!   size, same four configurations (Fig. 10).
//!
//! Beyond the paper, [`transport`] benchmarks the batched/coalesced
//! transport hot path against the legacy per-message doorbell path and
//! emits `BENCH_transport.json` for cross-PR tracking, and [`overload`]
//! sweeps offered load past saturation to measure goodput retention
//! under the flow-control/deadline/shedding machinery
//! (`BENCH_overload.json`).
//!
//! The `repro` binary drives all of them and prints paper-style series;
//! the criterion benches under `benches/` run scaled-down versions for
//! regression tracking. Absolute numbers depend on the calibrated
//! [`TimeModel`](ntb_sim::TimeModel) — the claim reproduced is the
//! *shape*: who wins, by what factor, and where the curves bend (see
//! `EXPERIMENTS.md`).

pub mod compare;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod overload;
pub mod report;
pub mod scale;
pub mod sizes;
pub mod stats;
pub mod transport;

pub use report::{render_metrics_report, render_series_table, Series};
pub use sizes::{paper_sizes, size_label};
pub use stats::{mb_per_sec, Summary};

/// Wall-clock-sensitive tests must not overlap (cargo runs tests of one
/// binary in parallel threads, and concurrent simulated worlds corrupt
/// each other's timing on small machines). Each timing test holds this.
#[cfg(test)]
pub(crate) fn timing_test_guard() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    LOCK.lock()
}

/// Run a wall-clock shape check with bounded retries: ambient load on a
/// shared measurement machine can mask a real timing signal, but cannot
/// reliably fabricate one, so a pass on any attempt is meaningful.
/// Panics with the last failure if every attempt fails.
#[cfg(test)]
pub(crate) fn assert_shape_with_retries(attempts: usize, check: impl Fn() -> Result<(), String>) {
    let mut last = String::new();
    for i in 0..attempts {
        match check() {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("shape check attempt {}/{attempts} failed: {msg}", i + 1);
                last = msg;
            }
        }
    }
    panic!("shape check failed on all {attempts} attempts; last: {last}");
}
