//! Measurement summaries.

use std::time::Duration;

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean in microseconds.
    pub mean_us: f64,
    /// Median in microseconds.
    pub median_us: f64,
    /// Minimum in microseconds.
    pub min_us: f64,
    /// Maximum in microseconds.
    pub max_us: f64,
    /// 95th percentile in microseconds.
    pub p95_us: f64,
}

impl Summary {
    /// Summarize a sample set; panics on an empty input.
    pub fn from_samples(samples: &[Duration]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let n = us.len();
        let mean = us.iter().sum::<f64>() / n as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            us[idx]
        };
        Summary {
            n,
            mean_us: mean,
            median_us: pct(0.5),
            min_us: us[0],
            max_us: us[n - 1],
            p95_us: pct(0.95),
        }
    }
}

/// Throughput in the paper's unit (MB/s, decimal) for `bytes` moved in
/// `elapsed`.
pub fn mb_per_sec(bytes: u64, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    bytes as f64 / elapsed.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Duration {
        Duration::from_micros(v)
    }

    #[test]
    fn summary_basics() {
        let s = Summary::from_samples(&[us(10), us(20), us(30), us(40), us(100)]);
        assert_eq!(s.n, 5);
        assert!((s.mean_us - 40.0).abs() < 1e-9);
        assert!((s.median_us - 30.0).abs() < 1e-9);
        assert!((s.min_us - 10.0).abs() < 1e-9);
        assert!((s.max_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[us(7)]);
        assert_eq!(s.n, 1);
        assert!((s.median_us - 7.0).abs() < 1e-9);
        assert!((s.p95_us - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn throughput_math() {
        // 1 MB in 1 second = 1 MB/s.
        assert!((mb_per_sec(1_000_000, Duration::from_secs(1)) - 1.0).abs() < 1e-9);
        // 512 KiB in 1 ms ≈ 524 MB/s.
        let t = mb_per_sec(512 << 10, Duration::from_millis(1));
        assert!((t - 524.288).abs() < 1e-6);
        assert!(mb_per_sec(1, Duration::ZERO).is_infinite());
    }
}
