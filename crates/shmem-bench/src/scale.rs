//! Scale benchmark: collective latency versus PE count across topologies.
//!
//! The paper's testbed stops at a 5-host ring; this is the beyond-paper
//! measurement that tracks how the topology-generic routing layer and the
//! log-depth collectives behave as the simulated machine grows to 64 PEs.
//! It emits `BENCH_scale.json` with:
//!
//! * `shmem_barrier_all` latency at 8/16/32/64 PEs on a ring under both
//!   the paper's two-sweep algorithm and the dissemination algorithm,
//!   and on a balanced 2-D torus (dissemination); a 16-PE clique cell
//!   anchors the switch-like upper bound,
//! * binomial-tree broadcast and tree allreduce latency on the same
//!   dissemination cells,
//! * two regression gates: the 64-PE torus dissemination barrier must
//!   stay within [`TORUS_64V8_MAX_RATIO`]× of its 8-PE latency, and at
//!   16 PEs the dissemination barrier on the densest cabling the
//!   adapter budget allows (the clique) must strictly beat the paper's
//!   two-sweep ring barrier.
//!
//! The torus gate is the scaling claim: dissemination rounds cost the
//! hop distance of the round's partner, and on a torus the per-round hop
//! sum grows like the torus diameter (14 network hops at 8×8 vs 4 at
//! 2×4) instead of linearly in the PE count the way a ring's does. The
//! 16-PE gate is the re-cabling claim: on the ring itself the two-sweep
//! is already near-optimal (2(N−1) cheap scratchpad hops, and any
//! message-based scheme must still push flags through the same chain of
//! service threads hop by hop), so growing past the paper's testbed
//! means changing the shape, not just the algorithm.
//!
//! ## Measurement method: amplified model, normalized samples
//!
//! A 64-PE world runs ~9 threads per host; on a small machine the
//! scheduler serializes their wait tails, so raw wall clock measures CPU
//! contention (which grows with the PE count) instead of the modelled
//! network time. Every scale world therefore (a) switches the model to
//! coarse sleeping waits so concurrent delays overlap, and (b) runs with
//! the modelled latencies multiplied by a per-cell amplification, sized
//! from the cell's own critical-path hop count (via [`TopoGraph`]) so
//! the modelled critical path dominates scheduler noise without making
//! cheap cells needlessly slow. Each sample is divided by the cell's
//! amplification before reporting, so the tables and gates read in
//! paper-equivalent microseconds.

use std::time::{Duration, Instant};

use ntb_net::TopoGraph;
use ntb_sim::TimeModel;
use shmem_core::{BarrierAlgorithm, ReduceOp, ShmemConfig, ShmemWorld, Topology};

/// The 64-PE torus dissemination barrier may cost at most this multiple
/// of the 8-PE torus barrier.
pub const TORUS_64V8_MAX_RATIO: f64 = 4.0;

/// Parameters of the scale run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Timing model (the committed run uses the paper-calibrated model).
    pub model: TimeModel,
    /// PE counts to sweep. The gates need 8, 16 and 64 present.
    pub pe_counts: Vec<usize>,
    /// Timed samples per collective per cell (after one warm-up).
    pub reps: usize,
    /// `u64` elements broadcast per tree-broadcast sample.
    pub broadcast_elems: usize,
    /// Fixed modelled-latency multiplier; `None` (the default) sizes it
    /// per cell from the critical-path hop count. See the module docs.
    pub amplification: Option<f64>,
    /// Also measure tree broadcast/allreduce on dissemination cells.
    /// The gates only need barriers; the CI gate run turns this off.
    pub measure_trees: bool,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            model: TimeModel::paper(),
            pe_counts: vec![8, 16, 32, 64],
            reps: 8,
            broadcast_elems: 64,
            amplification: None,
            measure_trees: true,
        }
    }
}

/// Modelled critical-path cost estimate of one barrier on a cell, used
/// only to size the cell's amplification. Both barrier families pay one
/// doorbell + interrupt-service wakeup per hop on the critical path
/// (~155 µs paper); dissemination flags ride the slot-ring frame lane,
/// the two-sweep rides the scratchpad registers, but the ISR dominates
/// either way.
fn barrier_cp_estimate(topology: &Topology, pes: usize, algorithm: BarrierAlgorithm) -> Duration {
    let per_hop = Duration::from_micros(155);
    match algorithm {
        BarrierAlgorithm::RingSweep => per_hop * (2 * (pes - 1)) as u32,
        BarrierAlgorithm::Dissemination => {
            let graph = TopoGraph::new(topology.shape(), pes);
            let mut hops = 0usize;
            let mut dist = 1;
            while dist < pes {
                hops += graph.hops(0, dist);
                dist <<= 1;
            }
            per_hop * hops.max(1) as u32
        }
    }
}

/// Wall-clock target for one amplified collective sample. The scheduler
/// floor under a sample is a per-wakeup cost: it grows roughly linearly
/// with the world's thread count (~9 threads per host). Scaling the
/// target with the host count keeps the floor's *share* of every cell's
/// samples flat (a few percent), so the 64-vs-8 gate ratio compares
/// modelled time against modelled time instead of floors.
fn target_wall_secs(hosts: usize) -> f64 {
    0.350 * (hosts as f64 / 8.0).max(1.0)
}

/// Amplification sizing: lift the modelled critical path `cp` to the
/// host-scaled wall target so it dominates the scheduler floor.
fn auto_amplification(cfg: &ScaleConfig, cp: Duration, hosts: usize) -> f64 {
    let cp = cp.as_secs_f64() * cfg.model.scale.max(1e-6);
    // The wall target self-bounds the per-sample time, so the upper
    // clamp only guards against a wildly underestimated path.
    (target_wall_secs(hosts) / cp).clamp(8.0, 4000.0)
}

/// Most-balanced `rows x cols` torus factorization of `pes`
/// (rows ≤ cols, rows as close to √pes as the divisors allow).
pub fn torus_dims(pes: usize) -> (usize, usize) {
    let mut rows = 1;
    let mut r = 1;
    while r * r <= pes {
        if pes.is_multiple_of(r) {
            rows = r;
        }
        r += 1;
    }
    (rows, pes / rows)
}

/// One (PE count, shape, barrier algorithm) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Number of PEs in the world.
    pub pes: usize,
    /// Shape family: `ring`, `torus` or `clique`.
    pub shape: String,
    /// Concrete topology label (e.g. `torus4x8`).
    pub label: String,
    /// Barrier algorithm: `ring-sweep` or `dissemination`.
    pub algorithm: String,
    /// Median `shmem_barrier_all` latency in microseconds.
    pub barrier_p50_us: f64,
    /// Mean `shmem_barrier_all` latency in microseconds.
    pub barrier_mean_us: f64,
    /// Median tree-broadcast latency in microseconds (dissemination
    /// cells only).
    pub broadcast_p50_us: Option<f64>,
    /// Median tree-allreduce latency in microseconds (dissemination
    /// cells only).
    pub reduce_p50_us: Option<f64>,
}

/// Gate inputs and verdicts derived from the swept points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleGates {
    /// 8-PE torus dissemination barrier p50 (µs).
    pub torus_8_us: Option<f64>,
    /// 64-PE torus dissemination barrier p50 (µs).
    pub torus_64_us: Option<f64>,
    /// 16-PE ring two-sweep barrier p50 (µs).
    pub ring_sweep_16_us: Option<f64>,
    /// 16-PE clique dissemination barrier p50 (µs).
    pub clique_16_us: Option<f64>,
}

/// Result of a full scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleResult {
    /// All swept cells, in sweep order.
    pub points: Vec<ScalePoint>,
    /// Gate inputs extracted from `points`.
    pub gates: ScaleGates,
}

fn p50_us(samples: &[Duration]) -> f64 {
    assert!(!samples.is_empty(), "cannot summarize zero samples");
    let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    us.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    us[(us.len() - 1) / 2]
}

fn mean_us(samples: &[Duration]) -> f64 {
    samples.iter().map(|d| d.as_secs_f64() * 1e6).sum::<f64>() / samples.len() as f64
}

fn world_cfg(
    cfg: &ScaleConfig,
    hosts: usize,
    topology: Topology,
    algorithm: BarrierAlgorithm,
    amplification: f64,
) -> ShmemConfig {
    let mut model = cfg.model.clone();
    model.scale *= amplification;
    // Uniform wait strategy across the whole series (the network would
    // only auto-switch worlds beyond 8 hosts).
    model.coarse_waits = true;
    // The amplified model stretches every end-to-end latency by the
    // total scale factor, so the protocol's wall-clock timers must
    // stretch with it: an un-stretched 200 ms ack timeout fires while a
    // routed put's amplified RTT is still in flight, and the bench would
    // measure the retransmission storm instead of the algorithm.
    let s = model.scale.max(1.0);
    let base = ntb_net::RetryPolicy::default();
    let retry = ntb_net::RetryPolicy {
        ack_timeout: base.ack_timeout.mul_f64(s),
        backoff_base: base.backoff_base.mul_f64(s),
        backoff_max: base.backoff_max.mul_f64(s),
        probe_interval: base.probe_interval.mul_f64(s),
        mailbox_timeout: base.mailbox_timeout.mul_f64(s),
        ..base
    };
    let mut cfg = ShmemConfig::fast_sim()
        .with_hosts(hosts)
        .with_model(model)
        .with_topology(topology)
        .with_barrier_algorithm(algorithm)
        .with_retry(retry)
        // Static all-live membership on every cell. The detector's beats
        // share the service threads, whose amplified sleeps would delay
        // them into false evictions mid-measurement — and beyond 32
        // hosts the one-word membership bitmap cannot represent the
        // world at all.
        .with_heartbeat(shmem_core::HeartbeatConfig::disabled());
    cfg.barrier_timeout = Duration::from_secs(600);
    cfg.wait_timeout = Duration::from_secs(600);
    cfg
}

fn algorithm_label(algorithm: BarrierAlgorithm) -> &'static str {
    match algorithm {
        BarrierAlgorithm::RingSweep => "ring-sweep",
        BarrierAlgorithm::Dissemination => "dissemination",
    }
}

/// Time one (PE count, topology, algorithm) cell. Every PE times the
/// same collectives; PE 0's view is summarized. Tree broadcast/reduce
/// are only measured on dissemination cells — the two-sweep cells exist
/// for the barrier-algorithm comparison. Barriers and trees run in
/// separate worlds: a tree walks several times more hops than a barrier,
/// so each phase gets its own amplification sized to the same wall
/// target (one amp for both would overshoot the tree samples' wall time
/// several-fold, or starve the barrier samples of amplification).
fn run_cell(
    cfg: &ScaleConfig,
    pes: usize,
    topology: Topology,
    shape: &str,
    algorithm: BarrierAlgorithm,
) -> ScalePoint {
    let reps = cfg.reps;
    let elems = cfg.broadcast_elems;
    let trees = cfg.measure_trees && algorithm == BarrierAlgorithm::Dissemination;
    let label = topology.label();
    let barrier_cp = barrier_cp_estimate(&topology, pes, algorithm);
    let amp_b = cfg.amplification.unwrap_or_else(|| auto_amplification(cfg, barrier_cp, pes));
    let results =
        ShmemWorld::run(world_cfg(cfg, pes, topology, algorithm, amp_b), move |ctx| {
            ctx.barrier_all().expect("warm-up barrier");
            let mut barrier = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                ctx.barrier_all().expect("timed barrier");
                barrier.push(t0.elapsed());
            }
            barrier
        })
        .expect("scale world");
    let barrier = &results[0];
    let (mut bcast_p50, mut reduce_p50) = (None, None);
    if trees {
        // A binomial tree round-trips each level's puts plus the reduce's
        // return sweep; ~4x the barrier's hop budget is close enough to
        // size the amplification (the estimate only steers the floor
        // share, not the reported numbers).
        let amp_t =
            cfg.amplification.unwrap_or_else(|| auto_amplification(cfg, barrier_cp * 4, pes));
        let tree_results =
            ShmemWorld::run(world_cfg(cfg, pes, topology, algorithm, amp_t), move |ctx| {
                ctx.barrier_all().expect("tree-world warm-up barrier");
                let sym = ctx.calloc_array::<u64>(elems).expect("broadcast buffer");
                ctx.broadcast_tree(&sym, 0, elems, 0).expect("warm-up broadcast");
                let mut bcast = Vec::with_capacity(reps);
                for _ in 0..reps {
                    let t0 = Instant::now();
                    ctx.broadcast_tree(&sym, 0, elems, 0).expect("timed broadcast");
                    bcast.push(t0.elapsed());
                }
                ctx.free_array(sym).expect("free broadcast buffer");
                let src: Vec<u64> = vec![ctx.my_pe() as u64; 8];
                ctx.allreduce_tree(ReduceOp::Sum, &src).expect("warm-up reduce");
                let mut reduce = Vec::with_capacity(reps);
                for _ in 0..reps {
                    let t0 = Instant::now();
                    ctx.allreduce_tree(ReduceOp::Sum, &src).expect("timed reduce");
                    reduce.push(t0.elapsed());
                }
                (bcast, reduce)
            })
            .expect("scale tree world");
        let (bcast, reduce) = &tree_results[0];
        bcast_p50 = Some(p50_us(bcast) / amp_t);
        reduce_p50 = Some(p50_us(reduce) / amp_t);
    }
    ScalePoint {
        pes,
        shape: shape.to_string(),
        label,
        algorithm: algorithm_label(algorithm).to_string(),
        barrier_p50_us: p50_us(barrier) / amp_b,
        barrier_mean_us: mean_us(barrier) / amp_b,
        broadcast_p50_us: bcast_p50,
        reduce_p50_us: reduce_p50,
    }
}

impl ScaleGates {
    fn from_points(points: &[ScalePoint]) -> ScaleGates {
        let find = |shape: &str, algorithm: &str, pes: usize| {
            points
                .iter()
                .find(|p| p.shape == shape && p.algorithm == algorithm && p.pes == pes)
                .map(|p| p.barrier_p50_us)
        };
        ScaleGates {
            torus_8_us: find("torus", "dissemination", 8),
            torus_64_us: find("torus", "dissemination", 64),
            ring_sweep_16_us: find("ring", "ring-sweep", 16),
            clique_16_us: find("clique", "dissemination", 16),
        }
    }

    /// 64-vs-8 PE torus dissemination barrier ratio, if both cells ran.
    pub fn torus_64v8_ratio(&self) -> Option<f64> {
        match (self.torus_8_us, self.torus_64_us) {
            (Some(a), Some(b)) if a > 0.0 => Some(b / a),
            _ => None,
        }
    }
}

/// Run the full scale sweep.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleResult {
    let mut points = Vec::new();
    for &pes in &cfg.pe_counts {
        points.push(run_cell(cfg, pes, Topology::ring(pes), "ring", BarrierAlgorithm::RingSweep));
        points.push(run_cell(
            cfg,
            pes,
            Topology::ring(pes),
            "ring",
            BarrierAlgorithm::Dissemination,
        ));
        let (rows, cols) = torus_dims(pes);
        points.push(run_cell(
            cfg,
            pes,
            Topology::torus(rows, cols),
            "torus",
            BarrierAlgorithm::Dissemination,
        ));
        if pes <= 16 {
            points.push(run_cell(
                cfg,
                pes,
                Topology::clique(pes),
                "clique",
                BarrierAlgorithm::Dissemination,
            ));
        }
    }
    let gates = ScaleGates::from_points(&points);
    ScaleResult { points, gates }
}

impl ScaleResult {
    /// Check both regression gates; `Err` describes the first failure.
    pub fn check_gates(&self) -> Result<(), String> {
        let ratio = self
            .gates
            .torus_64v8_ratio()
            .ok_or("gate cells missing: torus dissemination barrier at 8 and 64 PEs")?;
        if ratio > TORUS_64V8_MAX_RATIO {
            return Err(format!(
                "torus dissemination barrier scaled {ratio:.2}x from 8 to 64 PEs \
                 (max {TORUS_64V8_MAX_RATIO:.1}x): {:.1} µs -> {:.1} µs",
                self.gates.torus_8_us.unwrap_or(f64::NAN),
                self.gates.torus_64_us.unwrap_or(f64::NAN),
            ));
        }
        let (sweep, diss) = match (self.gates.ring_sweep_16_us, self.gates.clique_16_us) {
            (Some(s), Some(d)) => (s, d),
            _ => {
                return Err(
                    "gate cells missing: 16-PE ring two-sweep and clique dissemination".into()
                )
            }
        };
        if diss >= sweep {
            return Err(format!(
                "dissemination barrier ({diss:.1} µs on the 16-PE clique) did not beat \
                 the two-sweep ring barrier ({sweep:.1} µs) at 16 PEs"
            ));
        }
        Ok(())
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::from("scale: collective latency vs PE count (p50 µs)\n");
        out.push_str(&format!(
            "  {:>4} {:<10} {:<14} {:>12} {:>12} {:>12}\n",
            "pes", "shape", "algorithm", "barrier", "broadcast", "reduce"
        ));
        let opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        };
        for p in &self.points {
            out.push_str(&format!(
                "  {:>4} {:<10} {:<14} {:>12.1} {:>12} {:>12}\n",
                p.pes,
                p.label,
                p.algorithm,
                p.barrier_p50_us,
                opt(p.broadcast_p50_us),
                opt(p.reduce_p50_us),
            ));
        }
        out.push_str("gates:\n");
        if let Some(ratio) = self.gates.torus_64v8_ratio() {
            out.push_str(&format!(
                "  torus dissemination barrier 64 vs 8 PEs: {ratio:.2}x (max {TORUS_64V8_MAX_RATIO:.1}x)\n"
            ));
        }
        if let (Some(s), Some(d)) = (self.gates.ring_sweep_16_us, self.gates.clique_16_us) {
            out.push_str(&format!(
                "  16-PE barrier: clique dissemination {d:.1} µs vs ring two-sweep {s:.1} µs\n"
            ));
        }
        out
    }

    /// JSON document written to `BENCH_scale.json`.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "null".to_string(),
        };
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"pes\": {}, \"shape\": \"{}\", \"label\": \"{}\", \
                     \"algorithm\": \"{}\", \"barrier_p50_us\": {:.3}, \
                     \"barrier_mean_us\": {:.3}, \"broadcast_p50_us\": {}, \
                     \"reduce_p50_us\": {}}}",
                    p.pes,
                    p.shape,
                    p.label,
                    p.algorithm,
                    p.barrier_p50_us,
                    p.barrier_mean_us,
                    opt(p.broadcast_p50_us),
                    opt(p.reduce_p50_us),
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"scale\",\n  \"points\": [\n{}\n  ],\n  \"gates\": {{\n    \
             \"torus_dissemination_p50_us_8\": {},\n    \
             \"torus_dissemination_p50_us_64\": {},\n    \
             \"torus_64_vs_8_ratio\": {},\n    \
             \"torus_64_vs_8_max_ratio\": {TORUS_64V8_MAX_RATIO:.1},\n    \
             \"ring_sweep_p50_us_16\": {},\n    \
             \"clique_dissemination_p50_us_16\": {},\n    \
             \"gates_pass\": {}\n  }}\n}}\n",
            points.join(",\n"),
            opt(self.gates.torus_8_us),
            opt(self.gates.torus_64_us),
            opt(self.gates.torus_64v8_ratio()),
            opt(self.gates.ring_sweep_16_us),
            opt(self.gates.clique_16_us),
            self.check_gates().is_ok(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(scale: f64) -> ScaleConfig {
        ScaleConfig {
            model: TimeModel::scaled(scale),
            pe_counts: vec![],
            reps: 4,
            broadcast_elems: 16,
            amplification: Some(1.0),
            measure_trees: true,
        }
    }

    #[test]
    fn torus_dims_stay_balanced() {
        assert_eq!(torus_dims(8), (2, 4));
        assert_eq!(torus_dims(16), (4, 4));
        assert_eq!(torus_dims(32), (4, 8));
        assert_eq!(torus_dims(64), (8, 8));
        assert_eq!(torus_dims(12), (3, 4));
    }

    #[test]
    fn scale_cell_16() {
        let _guard = crate::timing_test_guard();
        let cfg = quick_cfg(0.002);
        let torus =
            run_cell(&cfg, 16, Topology::torus(4, 4), "torus", BarrierAlgorithm::Dissemination);
        assert_eq!(torus.label, "torus4x4");
        assert!(torus.barrier_p50_us > 0.0);
        assert!(torus.broadcast_p50_us.expect("dissemination cell measures broadcast") > 0.0);
        assert!(torus.reduce_p50_us.expect("dissemination cell measures reduce") > 0.0);
        let clique =
            run_cell(&cfg, 16, Topology::clique(16), "clique", BarrierAlgorithm::Dissemination);
        assert!(clique.barrier_p50_us > 0.0);
    }

    #[test]
    fn scale_cell_32() {
        let _guard = crate::timing_test_guard();
        let cfg = quick_cfg(0.002);
        let sweep = run_cell(&cfg, 32, Topology::ring(32), "ring", BarrierAlgorithm::RingSweep);
        assert!(sweep.broadcast_p50_us.is_none(), "two-sweep cells are barrier-only");
        let torus =
            run_cell(&cfg, 32, Topology::torus(4, 8), "torus", BarrierAlgorithm::Dissemination);
        assert!(torus.barrier_p50_us > 0.0);
        assert!(torus.reduce_p50_us.is_some());
    }

    #[test]
    fn scale_cell_64() {
        let _guard = crate::timing_test_guard();
        let cfg = quick_cfg(0.002);
        let torus =
            run_cell(&cfg, 64, Topology::torus(8, 8), "torus", BarrierAlgorithm::Dissemination);
        assert_eq!(torus.label, "torus8x8");
        assert!(torus.barrier_p50_us > 0.0);
        assert!(torus.broadcast_p50_us.is_some());
        let ring = run_cell(&cfg, 64, Topology::ring(64), "ring", BarrierAlgorithm::Dissemination);
        assert!(ring.barrier_p50_us > 0.0);
    }

    #[test]
    fn scale_gates_hold() {
        let _guard = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let cfg = ScaleConfig {
                model: TimeModel::scaled(0.1),
                pe_counts: vec![8, 16, 64],
                reps: 6,
                broadcast_elems: 16,
                amplification: None,
                measure_trees: false,
            };
            run_scale(&cfg).check_gates()
        });
    }

    #[test]
    #[ignore = "diagnostic: prints the modelled-vs-floor split at several amplifications"]
    fn amp_probe() {
        let _guard = crate::timing_test_guard();
        for amp in [50.0, 150.0, 400.0] {
            let cfg = ScaleConfig {
                model: TimeModel::paper(),
                pe_counts: vec![],
                reps: 4,
                broadcast_elems: 16,
                amplification: Some(amp),
                measure_trees: false,
            };
            let p8 =
                run_cell(&cfg, 8, Topology::torus(2, 4), "torus", BarrierAlgorithm::Dissemination);
            let p64 =
                run_cell(&cfg, 64, Topology::torus(8, 8), "torus", BarrierAlgorithm::Dissemination);
            println!(
                "amp {amp}: torus8 {:.0} us, torus64 {:.0} us, ratio {:.2}",
                p8.barrier_p50_us,
                p64.barrier_p50_us,
                p64.barrier_p50_us / p8.barrier_p50_us
            );
        }
    }

    #[test]
    fn json_has_gate_keys() {
        let r = ScaleResult {
            points: vec![ScalePoint {
                pes: 8,
                shape: "torus".into(),
                label: "torus2x4".into(),
                algorithm: "dissemination".into(),
                barrier_p50_us: 10.0,
                barrier_mean_us: 11.0,
                broadcast_p50_us: Some(12.0),
                reduce_p50_us: None,
            }],
            gates: ScaleGates {
                torus_8_us: Some(10.0),
                torus_64_us: Some(30.0),
                ring_sweep_16_us: Some(100.0),
                clique_16_us: Some(20.0),
            },
        };
        let json = r.to_json();
        assert!(json.contains("\"torus_64_vs_8_ratio\": 3.000"));
        assert!(json.contains("\"clique_dissemination_p50_us_16\": 20.000"));
        assert!(json.contains("\"torus_64_vs_8_max_ratio\": 4.0"));
        assert!(json.contains("\"gates_pass\": true"));
        assert!(json.contains("\"reduce_p50_us\": null"));
        assert!(r.check_gates().is_ok());
    }

    #[test]
    fn gate_failures_are_described() {
        let mut gates = ScaleGates {
            torus_8_us: Some(10.0),
            torus_64_us: Some(50.0),
            ring_sweep_16_us: Some(100.0),
            clique_16_us: Some(20.0),
        };
        let fail = ScaleResult { points: vec![], gates };
        let err = fail.check_gates().expect_err("5x ratio must fail");
        assert!(err.contains("5.00x"), "unexpected message: {err}");
        gates.torus_64_us = Some(30.0);
        gates.clique_16_us = Some(200.0);
        let fail = ScaleResult { points: vec![], gates };
        let err = fail.check_gates().expect_err("slower dissemination must fail");
        assert!(err.contains("did not beat"), "unexpected message: {err}");
    }
}
