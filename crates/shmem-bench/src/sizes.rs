//! The paper's request-size axis: 1 KB to 512 KB in powers of two.

/// The ten request sizes every figure sweeps.
pub fn paper_sizes() -> Vec<u64> {
    (0..10).map(|i| 1024u64 << i).collect()
}

/// A short subset for quick (CI) runs.
pub fn quick_sizes() -> Vec<u64> {
    vec![1 << 10, 16 << 10, 128 << 10, 512 << 10]
}

/// Human label matching the paper's axes ("1KB" ... "512KB").
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_axis_is_1k_to_512k() {
        let s = paper_sizes();
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 1024);
        assert_eq!(*s.last().unwrap(), 512 * 1024);
        assert!(s.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn labels() {
        assert_eq!(size_label(1024), "1KB");
        assert_eq!(size_label(512 * 1024), "512KB");
        assert_eq!(size_label(1 << 20), "1MB");
        assert_eq!(size_label(100), "100B");
    }

    #[test]
    fn quick_is_subset_of_paper() {
        let p = paper_sizes();
        assert!(quick_sizes().iter().all(|s| p.contains(s)));
    }
}
