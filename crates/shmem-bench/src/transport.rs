//! Transport hot-path benchmark: batched/coalesced ring vs the legacy
//! one-doorbell-per-message scratchpad path.
//!
//! This is the beyond-paper measurement that tracks the redesigned
//! transport across PRs. It emits `BENCH_transport.json` with:
//!
//! * p50/p99/mean blocking Put and Get latency at a small payload,
//! * small-message (≤ 1 KiB) Put throughput with doorbell coalescing
//!   **on** (deferred doorbells, one per batch, flushed by `quiet`)
//!   versus **off** (legacy scratchpad mailbox, one doorbell and one
//!   consumption handshake per message), with the improvement percentage,
//! * a Get curve across sizes spanning the aperture PIO fast path, the
//!   single-sub-request protocol path and the pipelined multi-chunk
//!   window, each point paired with a Put at the same size (the
//!   get-vs-put ratio series) and with a window=1 stop-and-wait run
//!   (the pipelining speedup),
//! * `shmem_barrier_all` latency at 2, 3 and 5 PEs.
//!
//! The coalesced path issues `OpOptions::new().coalesce(true)` puts so
//! doorbells are deferred until the batch cap or `quiet()`; the legacy
//! path runs in a world built with `coalescing(false)` so every put pays
//! the full publish → doorbell → interrupt → consume round trip.

use std::time::{Duration, Instant};

use ntb_sim::TimeModel;
use shmem_core::{OpOptions, ShmemConfig, ShmemWorld};

use crate::stats::mb_per_sec;

/// Parameters of the transport run.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Timing model (the committed run uses the paper-calibrated model).
    pub model: TimeModel,
    /// Payload for the per-op latency sections.
    pub latency_size: u64,
    /// Timed per-op latency samples (after one warm-up op).
    pub latency_reps: usize,
    /// Small-message sizes for the throughput comparison (all ≤ 1 KiB).
    pub small_sizes: Vec<u64>,
    /// Sizes for the Get curve (should straddle the PIO crossover and
    /// the pipeline chunk so all three get paths are exercised).
    pub get_sizes: Vec<u64>,
    /// Timed samples per Get-curve point (after one warm-up op).
    pub get_reps: usize,
    /// Messages per timed burst (exceeds the tx ring so slots wrap).
    pub burst: usize,
    /// Timed bursts per size.
    pub bursts: usize,
    /// Timed barriers per PE count.
    pub barrier_reps: usize,
    /// PE counts for the barrier section.
    pub barrier_pes: Vec<usize>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            model: TimeModel::paper(),
            latency_size: 512,
            latency_reps: 64,
            small_sizes: vec![64, 256, 1024],
            get_sizes: vec![512, 4 << 10, 64 << 10, 1 << 20],
            get_reps: 16,
            burst: 64,
            bursts: 4,
            barrier_reps: 16,
            barrier_pes: vec![2, 3, 5],
        }
    }
}

/// Percentile summary of one latency section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Payload size in bytes.
    pub size: u64,
    /// Number of timed samples.
    pub n: usize,
    /// Median in microseconds.
    pub p50_us: f64,
    /// 99th percentile in microseconds.
    pub p99_us: f64,
    /// Arithmetic mean in microseconds.
    pub mean_us: f64,
}

impl LatencyStats {
    fn from_samples(size: u64, samples: &[Duration]) -> LatencyStats {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let pct = |p: f64| us[((us.len() as f64 - 1.0) * p).round() as usize];
        LatencyStats {
            size,
            n: us.len(),
            p50_us: pct(0.5),
            p99_us: pct(0.99),
            mean_us: us.iter().sum::<f64>() / us.len() as f64,
        }
    }
}

/// Coalescing-on vs coalescing-off throughput at one message size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Message size in bytes.
    pub size: u64,
    /// Total timed messages per side.
    pub messages: usize,
    /// Messages per second with doorbell coalescing on.
    pub on_msgs_per_sec: f64,
    /// Messages per second on the legacy per-message path.
    pub off_msgs_per_sec: f64,
    /// MB/s (decimal) with coalescing on.
    pub on_mb_per_sec: f64,
    /// MB/s (decimal) with coalescing off.
    pub off_mb_per_sec: f64,
    /// Relative improvement of on over off, in percent.
    pub improvement_pct: f64,
}

/// One size on the Get curve: pipelined get vs a put of the same size
/// and vs the window=1 stop-and-wait oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GetCurvePoint {
    /// Payload size in bytes.
    pub size: u64,
    /// Timed samples per series.
    pub n: usize,
    /// Median pipelined (default window) Get latency in microseconds.
    pub get_p50_us: f64,
    /// Mean pipelined Get latency in microseconds.
    pub get_mean_us: f64,
    /// Pipelined Get goodput, MB/s (decimal).
    pub get_mb_per_sec: f64,
    /// Median blocking Put latency at the same size, in microseconds.
    pub put_p50_us: f64,
    /// `get_p50_us / put_p50_us` — the cliff this series tracks.
    pub get_vs_put_ratio: f64,
    /// Median Get latency with the window forced to 1 (stop-and-wait).
    pub stop_wait_p50_us: f64,
    /// Relative win of the pipelined window over stop-and-wait, percent
    /// (≈ 0 below the chunk size where there is only one sub-request).
    pub pipeline_speedup_pct: f64,
}

/// Barrier latency at one PE count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierPoint {
    /// Number of PEs in the ring.
    pub pes: usize,
    /// Median barrier latency in microseconds.
    pub p50_us: f64,
    /// Mean barrier latency in microseconds.
    pub mean_us: f64,
}

/// Everything the transport run measured.
#[derive(Debug, Clone)]
pub struct TransportResult {
    /// The time-model scale the run used.
    pub scale: f64,
    /// Blocking Put latency (coalescing on, per-op flush).
    pub put: LatencyStats,
    /// Blocking Get latency (full round trip).
    pub get: LatencyStats,
    /// Small-message throughput, one point per size.
    pub throughput: Vec<ThroughputPoint>,
    /// Get curve: pipelined vs put and vs stop-and-wait, per size.
    pub get_curve: Vec<GetCurvePoint>,
    /// Barrier latency, one point per PE count.
    pub barriers: Vec<BarrierPoint>,
}

fn world_cfg(model: &TimeModel, hosts: usize, coalesce: bool) -> ShmemConfig {
    let mut cfg = ShmemConfig::fast_sim()
        .with_hosts(hosts)
        .with_model(model.clone())
        .with_coalescing(coalesce);
    cfg.barrier_timeout = Duration::from_secs(600);
    cfg
}

/// Per-op blocking Put and Get latency on a 2-PE ring (coalescing on —
/// a blocking put still flushes its batch before returning).
fn run_latency(cfg: &TransportConfig) -> (LatencyStats, LatencyStats) {
    let size = cfg.latency_size;
    let reps = cfg.latency_reps;
    let results = ShmemWorld::run(world_cfg(&cfg.model, 2, true), move |ctx| {
        let sym = ctx.malloc_array::<u8>(size as usize).expect("alloc");
        ctx.barrier_all().expect("barrier");
        if ctx.my_pe() != 0 {
            ctx.barrier_all().expect("barrier");
            return None;
        }
        let data = vec![0x5Au8; size as usize];
        let opts = OpOptions::new();
        ctx.put_slice_opts(&sym, 0, &data, 1, opts).expect("warm-up put");
        ctx.quiet().expect("quiet");
        let mut put_samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            ctx.put_slice_opts(&sym, 0, &data, 1, opts).expect("timed put");
            put_samples.push(t0.elapsed());
        }
        ctx.quiet().expect("quiet");
        let _ = ctx.get_slice_opts::<u8>(&sym, 0, size as usize, 1, opts).expect("warm-up get");
        let mut get_samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let v = ctx.get_slice_opts::<u8>(&sym, 0, size as usize, 1, opts).expect("timed get");
            get_samples.push(t0.elapsed());
            assert_eq!(v.len(), size as usize);
        }
        ctx.barrier_all().expect("barrier");
        Some((put_samples, get_samples))
    })
    .expect("latency world");
    let (put_samples, get_samples) = results.into_iter().flatten().next().expect("PE 0 measured");
    (LatencyStats::from_samples(size, &put_samples), LatencyStats::from_samples(size, &get_samples))
}

/// Total wall time per size for `bursts × burst` puts on a 2-PE ring.
/// With `coalesce` on, puts defer their doorbells (flushed at the batch
/// cap and by `quiet`); off, each put is a full mailbox round trip.
fn run_bursts(cfg: &TransportConfig, coalesce: bool) -> Vec<(u64, Duration)> {
    let sizes = cfg.small_sizes.clone();
    let (burst, bursts) = (cfg.burst, cfg.bursts);
    let max_size = *sizes.iter().max().expect("at least one size") as usize;
    let results = ShmemWorld::run(world_cfg(&cfg.model, 2, coalesce), move |ctx| {
        let sym = ctx.malloc_array::<u8>(max_size).expect("alloc");
        let opts = if coalesce { OpOptions::new().coalesce(true) } else { OpOptions::new() };
        let mut timings = Vec::with_capacity(sizes.len());
        for &size in &sizes {
            ctx.barrier_all().expect("barrier");
            if ctx.my_pe() != 0 {
                continue;
            }
            let data = vec![0xA5u8; size as usize];
            // Warm-up primes the mailbox / ring for this size.
            ctx.put_slice_opts(&sym, 0, &data, 1, opts).expect("warm-up put");
            ctx.quiet().expect("quiet");
            let t0 = Instant::now();
            for _ in 0..bursts {
                for _ in 0..burst {
                    ctx.put_slice_opts(&sym, 0, &data, 1, opts).expect("burst put");
                }
                ctx.quiet().expect("quiet");
            }
            timings.push((size, t0.elapsed()));
        }
        ctx.barrier_all().expect("barrier");
        timings
    })
    .expect("burst world");
    results.into_iter().find(|t| !t.is_empty()).expect("PE 0 measured")
}

/// Get curve on a 2-PE ring: per size, time puts, pipelined gets at the
/// configured window, and gets with the window forced to 1 so the
/// stop-and-wait oracle and the ratio series come from the same world.
fn run_get_curve(cfg: &TransportConfig) -> Vec<GetCurvePoint> {
    let sizes = cfg.get_sizes.clone();
    let reps = cfg.get_reps.max(1);
    let max_size = *sizes.iter().max().expect("at least one get size") as usize;
    let results = ShmemWorld::run(world_cfg(&cfg.model, 2, true), move |ctx| {
        let sym = ctx.malloc_array::<u8>(max_size).expect("alloc");
        let mut points = Vec::with_capacity(sizes.len());
        for &size in &sizes {
            ctx.barrier_all().expect("barrier");
            if ctx.my_pe() != 0 {
                continue;
            }
            let n = size as usize;
            let data = vec![0xC3u8; n];
            let opts = OpOptions::new();
            let time_series = |op: &mut dyn FnMut()| {
                let mut samples = Vec::with_capacity(reps);
                op(); // warm-up
                for _ in 0..reps {
                    let t0 = Instant::now();
                    op();
                    samples.push(t0.elapsed());
                }
                samples
            };
            let puts = time_series(&mut || {
                ctx.put_slice_opts(&sym, 0, &data, 1, opts).expect("curve put");
                ctx.quiet().expect("quiet");
            });
            let gets = time_series(&mut || {
                let v = ctx.get_slice_opts::<u8>(&sym, 0, n, 1, opts).expect("curve get");
                assert_eq!(v.len(), n);
            });
            let sw_opts = OpOptions::new().get_window(1);
            let stop_wait = time_series(&mut || {
                let v = ctx.get_slice_opts::<u8>(&sym, 0, n, 1, sw_opts).expect("stop-wait get");
                assert_eq!(v.len(), n);
            });
            let put = LatencyStats::from_samples(size, &puts);
            let get = LatencyStats::from_samples(size, &gets);
            let sw = LatencyStats::from_samples(size, &stop_wait);
            points.push(GetCurvePoint {
                size,
                n: reps,
                get_p50_us: get.p50_us,
                get_mean_us: get.mean_us,
                get_mb_per_sec: mb_per_sec(size, Duration::from_secs_f64(get.p50_us / 1e6)),
                put_p50_us: put.p50_us,
                get_vs_put_ratio: get.p50_us / put.p50_us,
                stop_wait_p50_us: sw.p50_us,
                pipeline_speedup_pct: (sw.p50_us / get.p50_us - 1.0) * 100.0,
            });
        }
        ctx.barrier_all().expect("barrier");
        points
    })
    .expect("get curve world");
    results.into_iter().find(|p| !p.is_empty()).expect("PE 0 measured")
}

/// Barrier latency samples at one PE count.
fn run_barrier(cfg: &TransportConfig, pes: usize) -> BarrierPoint {
    let reps = cfg.barrier_reps;
    let results = ShmemWorld::run(world_cfg(&cfg.model, pes, true), move |ctx| {
        ctx.barrier_all().expect("warm-up barrier");
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            ctx.barrier_all().expect("timed barrier");
            samples.push(t0.elapsed());
        }
        samples
    })
    .expect("barrier world");
    // Every PE timed the same collective; summarize PE 0's view.
    let stats = LatencyStats::from_samples(0, &results[0]);
    BarrierPoint { pes, p50_us: stats.p50_us, mean_us: stats.mean_us }
}

/// Run the full transport benchmark.
pub fn run_transport(cfg: &TransportConfig) -> TransportResult {
    let (put, get) = run_latency(cfg);
    let on = run_bursts(cfg, true);
    let off = run_bursts(cfg, false);
    let messages = cfg.burst * cfg.bursts;
    let throughput = on
        .iter()
        .zip(&off)
        .map(|(&(size, on_t), &(off_size, off_t))| {
            assert_eq!(size, off_size, "size axes must match");
            let on_rate = messages as f64 / on_t.as_secs_f64();
            let off_rate = messages as f64 / off_t.as_secs_f64();
            ThroughputPoint {
                size,
                messages,
                on_msgs_per_sec: on_rate,
                off_msgs_per_sec: off_rate,
                on_mb_per_sec: mb_per_sec(size * messages as u64, on_t),
                off_mb_per_sec: mb_per_sec(size * messages as u64, off_t),
                improvement_pct: (on_rate / off_rate - 1.0) * 100.0,
            }
        })
        .collect();
    let get_curve = run_get_curve(cfg);
    let barriers = cfg.barrier_pes.iter().map(|&pes| run_barrier(cfg, pes)).collect();
    TransportResult { scale: cfg.model.scale, put, get, throughput, get_curve, barriers }
}

impl TransportResult {
    /// Get p50 over put p50 at the headline latency size — the number
    /// the regression gate bounds.
    pub fn get_vs_put_p50_ratio(&self) -> f64 {
        self.get.p50_us / self.put.p50_us
    }

    /// Text report for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Transport hot path (time-model scale {})\n\
             put  {} B latency: p50 {:.2} us  p99 {:.2} us  mean {:.2} us  (n={})\n\
             get  {} B latency: p50 {:.2} us  p99 {:.2} us  mean {:.2} us  (n={})\n",
            self.scale,
            self.put.size,
            self.put.p50_us,
            self.put.p99_us,
            self.put.mean_us,
            self.put.n,
            self.get.size,
            self.get.p50_us,
            self.get.p99_us,
            self.get.mean_us,
            self.get.n,
        ));
        out.push_str(&format!(
            "get-vs-put p50 ratio at {} B: {:.2}x\n",
            self.put.size,
            self.get_vs_put_p50_ratio()
        ));
        out.push_str("small-message put throughput (coalescing on vs off):\n");
        for t in &self.throughput {
            out.push_str(&format!(
                "  {:>5} B: on {:>10.0} msg/s ({:>8.2} MB/s)  off {:>10.0} msg/s ({:>8.2} MB/s)  {:+.1}%\n",
                t.size,
                t.on_msgs_per_sec,
                t.on_mb_per_sec,
                t.off_msgs_per_sec,
                t.off_mb_per_sec,
                t.improvement_pct,
            ));
        }
        out.push_str("get curve (pipelined vs put, vs window=1 stop-and-wait):\n");
        for g in &self.get_curve {
            out.push_str(&format!(
                "  {:>7} B: get p50 {:>9.2} us ({:>8.2} MB/s)  put p50 {:>9.2} us  ratio {:>5.2}x  stop-wait {:>9.2} us  {:+.1}%\n",
                g.size,
                g.get_p50_us,
                g.get_mb_per_sec,
                g.put_p50_us,
                g.get_vs_put_ratio,
                g.stop_wait_p50_us,
                g.pipeline_speedup_pct,
            ));
        }
        out.push_str("barrier latency:\n");
        for b in &self.barriers {
            out.push_str(&format!(
                "  {} PEs: p50 {:.2} us  mean {:.2} us\n",
                b.pes, b.p50_us, b.mean_us
            ));
        }
        out
    }

    /// Hand-rolled JSON document (no serde in the dependency budget).
    pub fn to_json(&self) -> String {
        fn latency_json(l: &LatencyStats) -> String {
            format!(
                "{{\"size_bytes\": {}, \"n\": {}, \"p50\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3}}}",
                l.size, l.n, l.p50_us, l.p99_us, l.mean_us
            )
        }
        let throughput: Vec<String> = self
            .throughput
            .iter()
            .map(|t| {
                format!(
                    "    {{\"size_bytes\": {}, \"messages\": {}, \
                     \"coalesce_on_msgs_per_sec\": {:.1}, \"coalesce_off_msgs_per_sec\": {:.1}, \
                     \"coalesce_on_mb_per_sec\": {:.3}, \"coalesce_off_mb_per_sec\": {:.3}, \
                     \"improvement_pct\": {:.1}}}",
                    t.size,
                    t.messages,
                    t.on_msgs_per_sec,
                    t.off_msgs_per_sec,
                    t.on_mb_per_sec,
                    t.off_mb_per_sec,
                    t.improvement_pct
                )
            })
            .collect();
        let get_curve: Vec<String> = self
            .get_curve
            .iter()
            .map(|g| {
                format!(
                    "    {{\"size_bytes\": {}, \"n\": {}, \
                     \"get_p50\": {:.3}, \"get_mean\": {:.3}, \"get_mb_per_sec\": {:.3}, \
                     \"put_p50\": {:.3}, \"get_vs_put_ratio\": {:.3}, \
                     \"stop_wait_p50\": {:.3}, \"pipeline_speedup_pct\": {:.1}}}",
                    g.size,
                    g.n,
                    g.get_p50_us,
                    g.get_mean_us,
                    g.get_mb_per_sec,
                    g.put_p50_us,
                    g.get_vs_put_ratio,
                    g.stop_wait_p50_us,
                    g.pipeline_speedup_pct
                )
            })
            .collect();
        let barriers: Vec<String> = self
            .barriers
            .iter()
            .map(|b| {
                format!(
                    "    {{\"pes\": {}, \"p50\": {:.3}, \"mean\": {:.3}}}",
                    b.pes, b.p50_us, b.mean_us
                )
            })
            .collect();
        format!
        (
            "{{\n  \"bench\": \"transport\",\n  \"scale\": {},\n  \"put_latency_us\": {},\n  \"get_latency_us\": {},\n  \"get_vs_put_p50_ratio\": {:.3},\n  \"small_put_throughput\": [\n{}\n  ],\n  \"get_curve\": [\n{}\n  ],\n  \"barrier_latency_us\": [\n{}\n  ]\n}}\n",
            self.scale,
            latency_json(&self.put),
            latency_json(&self.get),
            self.get_vs_put_p50_ratio(),
            throughput.join(",\n"),
            get_curve.join(",\n"),
            barriers.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TransportConfig {
        TransportConfig {
            model: TimeModel::zero(),
            latency_size: 64,
            latency_reps: 8,
            small_sizes: vec![64, 256],
            get_sizes: vec![64, 4096],
            get_reps: 4,
            burst: 16,
            bursts: 2,
            barrier_reps: 4,
            barrier_pes: vec![2, 3],
        }
    }

    #[test]
    fn transport_run_and_json_shape() {
        let _guard = crate::timing_test_guard();
        let r = run_transport(&tiny());
        assert_eq!(r.put.n, 8);
        assert_eq!(r.get.n, 8);
        assert_eq!(r.throughput.len(), 2);
        assert_eq!(r.throughput[0].messages, 32);
        assert_eq!(r.get_curve.len(), 2);
        assert_eq!(r.get_curve[1].size, 4096);
        assert_eq!(r.barriers.len(), 2);
        assert_eq!(r.barriers[1].pes, 3);
        for t in &r.throughput {
            assert!(t.on_msgs_per_sec.is_finite() && t.on_msgs_per_sec > 0.0);
            assert!(t.off_msgs_per_sec.is_finite() && t.off_msgs_per_sec > 0.0);
        }
        for g in &r.get_curve {
            assert_eq!(g.n, 4);
            assert!(g.get_p50_us > 0.0 && g.put_p50_us > 0.0);
            assert!(g.get_vs_put_ratio.is_finite() && g.get_vs_put_ratio > 0.0);
            assert!(g.stop_wait_p50_us > 0.0);
        }
        assert!(r.get_vs_put_p50_ratio() > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"transport\""));
        assert!(json.contains("\"put_latency_us\""));
        assert!(json.contains("\"improvement_pct\""));
        assert!(json.contains("\"get_vs_put_p50_ratio\""));
        assert!(json.contains("\"get_curve\""));
        assert!(json.contains("\"stop_wait_p50\""));
        assert!(json.contains("\"barrier_latency_us\""));
        // Crude balance check on the hand-rolled document.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    /// With injected delays the coalesced path must beat the per-message
    /// mailbox path — that is the point of the redesign. Scaled model so
    /// the simulated handshake dominates scheduler noise.
    #[test]
    fn coalescing_improves_small_put_throughput() {
        let _guard = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let cfg = TransportConfig {
                model: TimeModel::scaled(0.05),
                latency_size: 256,
                latency_reps: 4,
                small_sizes: vec![256],
                get_sizes: vec![256],
                get_reps: 2,
                burst: 32,
                bursts: 2,
                barrier_reps: 2,
                barrier_pes: vec![2],
            };
            let r = run_transport(&cfg);
            let t = r.throughput[0];
            if t.improvement_pct >= 25.0 {
                Ok(())
            } else {
                Err(format!("improvement {:.1}% < 25%", t.improvement_pct))
            }
        });
    }

    /// The regression gate for the get-path cliff: blocking Get p50 must
    /// stay within 10x of Put p50 at 512 B. The seed sat at ~140x (1 ms
    /// responder poll + 800 us interrupt-driven response service per
    /// get); the aperture fast path and the pipelined protocol keep the
    /// ratio low, and this gate keeps it from regressing. Scaled model
    /// so the simulated latencies dominate scheduler noise.
    #[test]
    fn get_latency_within_ten_x_of_put() {
        let _guard = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let cfg = TransportConfig {
                model: TimeModel::scaled(0.05),
                latency_size: 512,
                latency_reps: 16,
                small_sizes: vec![256],
                get_sizes: vec![512],
                get_reps: 4,
                burst: 8,
                bursts: 1,
                barrier_reps: 2,
                barrier_pes: vec![2],
            };
            let r = run_transport(&cfg);
            let ratio = r.get_vs_put_p50_ratio();
            if ratio <= 10.0 {
                Ok(())
            } else {
                Err(format!(
                    "get p50 {:.2} us is {ratio:.1}x put p50 {:.2} us (> 10x gate)",
                    r.get.p50_us, r.put.p50_us
                ))
            }
        });
    }
}
