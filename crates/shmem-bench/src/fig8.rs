//! Figure 8: raw NTB link transfer rate, independent vs ring-simultaneous.
//!
//! The paper's first experiment bypasses the OpenSHMEM layer entirely: it
//! DMAs blocks of 1 KB – 512 KB through a single NTB connection
//! ("independent", only that pair of hosts active) and then has **all**
//! hosts transmit rightward at once ("ring"), plotting per-connection
//! throughput (Fig. 8(a)–(c)) and the network total (Fig. 8(d)). The
//! finding: per-link rate dips slightly under simultaneous transfer —
//! both adapters of a host contend — while total network throughput grows
//! with the number of active connections.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use ntb_net::{NetConfig, RingNetwork, RouteDirection};
use ntb_sim::{Region, TimeModel, TransferMode};

use crate::report::Series;
use crate::sizes::size_label;
use crate::stats::mb_per_sec;

/// Parameters of the Fig. 8 run.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Ring size (the paper's testbed: 3).
    pub hosts: usize,
    /// Request sizes to sweep.
    pub sizes: Vec<u64>,
    /// Transfers per measurement.
    pub reps: usize,
    /// Timing model (use [`TimeModel::paper`] for paper-scale numbers).
    pub model: TimeModel,
    /// Data path (the paper's Fig. 8 uses the DMA engine).
    pub mode: TransferMode,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            hosts: 3,
            sizes: crate::sizes::paper_sizes(),
            reps: 8,
            model: TimeModel::paper(),
            mode: TransferMode::Dma,
        }
    }
}

/// Result of the Fig. 8 run.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// The swept sizes.
    pub sizes: Vec<u64>,
    /// Per-link throughput (MB/s), indexed `[link][size]`, link *i* being
    /// host *i* → host *i+1*: the "independent" setup (one link active).
    pub independent: Vec<Vec<f64>>,
    /// Same links under simultaneous all-host transmission ("ring").
    pub ring: Vec<Vec<f64>>,
}

impl Fig8Result {
    /// Total network rate per size for the independent setup
    /// (sum of individually-measured link rates, as the paper sums its
    /// per-connection results in Fig. 8(d)).
    pub fn total_independent(&self) -> Vec<f64> {
        self.sum_links(&self.independent)
    }

    /// Total network rate per size under simultaneous transfer.
    pub fn total_ring(&self) -> Vec<f64> {
        self.sum_links(&self.ring)
    }

    fn sum_links(&self, per_link: &[Vec<f64>]) -> Vec<f64> {
        (0..self.sizes.len()).map(|i| per_link.iter().map(|link| link[i]).sum()).collect()
    }

    /// X-axis labels.
    pub fn labels(&self) -> Vec<String> {
        self.sizes.iter().map(|&s| size_label(s)).collect()
    }

    /// Render the four panels as text tables.
    pub fn render(&self) -> String {
        let labels = self.labels();
        let mut out = String::new();
        for (i, (ind, ring)) in self.independent.iter().zip(&self.ring).enumerate() {
            let j = (i + 1) % self.independent.len();
            out.push_str(&crate::report::render_series_table(
                &format!(
                    "Fig 8({}) Data transfer rate host{i} -> host{j} (MB/s)",
                    char::from(b'a' + i as u8)
                ),
                &labels,
                &[Series::new("Independent", ind.clone()), Series::new("Ring", ring.clone())],
            ));
            out.push('\n');
        }
        out.push_str(&crate::report::render_series_table(
            "Fig 8(d) Total data transfer rate of the network (MB/s)",
            &labels,
            &[
                Series::new("Independent", self.total_independent()),
                Series::new("Ring", self.total_ring()),
            ],
        ));
        out
    }
}

/// Measure one sender transmitting `reps` blocks of `size` rightward.
/// Returns throughput in MB/s.
fn measure_sender(
    net: &RingNetwork,
    host: usize,
    size: u64,
    reps: usize,
    mode: TransferMode,
    start: &Barrier,
) -> f64 {
    let node = net.node(host);
    let src = Region::anonymous(size);
    src.fill(0, size, 0x5A).expect("fill staging buffer");
    // Unmeasured warm-up: first-touch faults and DMA-worker wake-up.
    node.raw_send(RouteDirection::Right, &src, 0, 0, size, mode).expect("warm-up transfer");
    start.wait();
    let t0 = Instant::now();
    for _ in 0..reps {
        node.raw_send(RouteDirection::Right, &src, 0, 0, size, mode).expect("raw transfer");
    }
    mb_per_sec(size * reps as u64, t0.elapsed())
}

/// Run the full Fig. 8 sweep.
pub fn run_fig8(cfg: &Fig8Config) -> Fig8Result {
    assert!(cfg.hosts >= 2, "fig8 needs at least two hosts");
    let net = RingNetwork::build(NetConfig::paper(cfg.hosts).with_model(cfg.model.clone()))
        .expect("build ring");
    let n_links = cfg.hosts;
    let mut independent = vec![Vec::with_capacity(cfg.sizes.len()); n_links];
    let mut ring = vec![Vec::with_capacity(cfg.sizes.len()); n_links];

    for &size in &cfg.sizes {
        // Independent: one active link at a time.
        for (host, series) in independent.iter_mut().enumerate() {
            let start = Barrier::new(1);
            series.push(measure_sender(&net, host, size, cfg.reps, cfg.mode, &start));
        }
        // Ring: all hosts transmit rightward simultaneously.
        let start = Arc::new(Barrier::new(cfg.hosts));
        let rates: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.hosts)
                .map(|host| {
                    let net = &net;
                    let start = Arc::clone(&start);
                    let mode = cfg.mode;
                    let reps = cfg.reps;
                    s.spawn(move || measure_sender(net, host, size, reps, mode, &start))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sender thread")).collect()
        });
        for (host, rate) in rates.into_iter().enumerate() {
            ring[host].push(rate);
        }
    }
    net.shutdown();
    Fig8Result { sizes: cfg.sizes.clone(), independent, ring }
}

/// The paper's scaling observation (§IV, Fig. 8 discussion): "overall
/// network throughput increased in the ring network as the number of
/// hosts that participated in the network increased". Sweep the ring
/// size at a fixed request size and report the total simultaneous rate.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Ring sizes swept.
    pub hosts: Vec<usize>,
    /// Total network rate (MB/s) with all hosts transmitting.
    pub total_ring: Vec<f64>,
    /// Mean per-link rate (MB/s) in the same runs.
    pub per_link: Vec<f64>,
}

impl ScalingResult {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let labels: Vec<String> = self.hosts.iter().map(|h| format!("{h} hosts")).collect();
        crate::report::render_series_table(
            "Ring scaling: total simultaneous transfer rate vs ring size (MB/s)",
            &labels,
            &[
                Series::new("total", self.total_ring.clone()),
                Series::new("per-link mean", self.per_link.clone()),
            ],
        )
    }
}

/// Run the ring-size sweep at `size`-byte transfers.
pub fn run_scaling(hosts: &[usize], size: u64, reps: usize, model: &TimeModel) -> ScalingResult {
    let mut total_ring = Vec::with_capacity(hosts.len());
    let mut per_link = Vec::with_capacity(hosts.len());
    for &n in hosts {
        let r = run_fig8(&Fig8Config {
            hosts: n,
            sizes: vec![size],
            reps,
            model: model.clone(),
            mode: TransferMode::Dma,
        });
        let total: f64 = r.total_ring()[0];
        total_ring.push(total);
        per_link.push(total / n as f64);
    }
    ScalingResult { hosts: hosts.to_vec(), total_ring, per_link }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shape-checking run at full calibrated scale (raw link transfers
    /// are microseconds; the whole sweep stays in the low milliseconds).
    /// Smaller scales would push the modelled times below real thread
    /// overheads and drown the shapes in noise.
    fn quick() -> Fig8Result {
        run_fig8(&Fig8Config {
            hosts: 3,
            sizes: vec![4 << 10, 64 << 10, 512 << 10],
            reps: 8,
            model: TimeModel::paper(),
            mode: TransferMode::Dma,
        })
    }

    #[test]
    fn throughput_grows_with_size() {
        let _serial = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let r = quick();
            for link in &r.independent {
                if link.last().unwrap() <= link.first().unwrap() {
                    return Err(format!("large transfers amortize setup: {link:?}"));
                }
            }
            Ok(())
        });
    }

    #[test]
    fn ring_total_exceeds_single_link() {
        let _serial = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let r = quick();
            // Compare against the *best* single link so scheduler noise
            // on any one measurement cannot flip the verdict.
            let best_single =
                r.independent.iter().map(|l| l.last().copied().unwrap()).fold(0.0f64, f64::max);
            let total = *r.total_ring().last().unwrap();
            if total <= 1.2 * best_single {
                return Err(format!(
                    "three simultaneous links beat one: total {total} vs best single {best_single}"
                ));
            }
            Ok(())
        });
    }

    #[test]
    fn ring_per_link_at_most_independent() {
        let _serial = crate::timing_test_guard();
        crate::assert_shape_with_retries(3, || {
            let r = quick();
            // Allow 20% measurement noise, but on average the ring rate
            // must not exceed the independent rate (host contention).
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let ind: f64 = r.independent.iter().map(|l| avg(l)).sum::<f64>() / 3.0;
            let ring: f64 = r.ring.iter().map(|l| avg(l)).sum::<f64>() / 3.0;
            if ring > ind * 1.2 {
                return Err(format!("ring {ring} should not beat independent {ind}"));
            }
            Ok(())
        });
    }

    #[test]
    fn total_rate_grows_with_ring_size() {
        let _serial = crate::timing_test_guard();
        // The paper's claim is made on its 3-host testbed; we assert the
        // 2 -> 3 host growth. 512 KB transfers and long runs keep the
        // modelled wire time dominant over the harness's real per-op CPU
        // cost; past ~4 simultaneous senders a small (1-core) measurement
        // machine becomes the bottleneck itself (see EXPERIMENTS.md), so
        // wider sweeps belong on bigger hardware.
        crate::assert_shape_with_retries(3, || {
            let r = run_scaling(&[2, 3], 512 << 10, 40, &TimeModel::paper());
            if r.total_ring[1] <= 1.1 * r.total_ring[0] {
                return Err(format!("3 hosts must out-aggregate 2: {:?}", r.total_ring));
            }
            if !r.render().contains("3 hosts") {
                return Err("render missing labels".into());
            }
            Ok(())
        });
    }

    #[test]
    fn render_mentions_all_panels() {
        let _serial = crate::timing_test_guard();
        let r = quick();
        let txt = r.render();
        assert!(txt.contains("Fig 8(a)"));
        assert!(txt.contains("Fig 8(d)"));
        assert!(txt.contains("Independent"));
        assert!(txt.contains("Ring"));
    }
}
