//! Criterion bench for the Fig. 8 primitive: raw one-hop window transfers
//! (DMA vs PIO) at the paper's small/medium/large sizes, on a shrunk time
//! scale so the suite stays fast while preserving relative shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntb_net::{NetConfig, RingNetwork, RouteDirection};
use ntb_sim::{Region, TimeModel, TransferMode};

fn bench_raw_link(c: &mut Criterion) {
    let net = RingNetwork::build(NetConfig::paper(3).with_model(TimeModel::scaled(0.02)))
        .expect("build ring");
    let node = net.node(0);
    let mut group = c.benchmark_group("fig8_raw_link");
    group.sample_size(10);
    for &size in &[4u64 << 10, 64 << 10, 512 << 10] {
        let src = Region::anonymous(size);
        src.fill(0, size, 0x5A).unwrap();
        group.throughput(Throughput::Bytes(size));
        for mode in [TransferMode::Dma, TransferMode::Memcpy] {
            group.bench_with_input(BenchmarkId::new(mode.label(), size), &size, |b, &size| {
                b.iter(|| {
                    node.raw_send(RouteDirection::Right, &src, 0, 0, size, mode).unwrap();
                })
            });
        }
    }
    group.finish();
    net.shutdown();
}

criterion_group!(benches, bench_raw_link);
criterion_main!(benches);
