//! Switchless ring vs switch-emulating full mesh — the tradeoff the paper
//! motivates ("high cost interconnection switches may not be required if
//! a cost-effective HPC system is desired").
//!
//! The mesh gives every pair a dedicated one-hop link (what an ideal
//! non-blocking switch provides) at the cost of N-1 adapters per host;
//! the ring needs exactly two adapters per host but pays forwarding
//! latency for non-neighbours. This bench quantifies the gap for put and
//! get to the "far" host of a 5-node network.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntb_net::{DeliveryTarget, NetConfig, RingNetwork, Topology};
use ntb_sim::{TimeModel, TransferMode};
use shmem_core::SymmetricHeap;

fn rig(topology: Topology) -> RingNetwork {
    let cfg = NetConfig::paper(5).with_model(TimeModel::scaled(0.05)).with_topology(topology);
    let net = RingNetwork::build(cfg).expect("build network");
    for node in net.nodes() {
        let heap = SymmetricHeap::new(Arc::clone(node.memory()), 1 << 20);
        heap.malloc(1 << 20).expect("symmetric buffer");
        node.set_delivery(heap as Arc<dyn DeliveryTarget>);
    }
    net
}

fn bench_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_far_host");
    group.sample_size(10);
    let size = 128usize << 10;
    group.throughput(Throughput::Bytes(size as u64));
    for (name, topology) in [("ring", Topology::ring(5)), ("mesh", Topology::clique(5))] {
        let net = rig(topology);
        let node = Arc::clone(net.node(0));
        let data = vec![0xD7u8; size];
        // Host 2 is two ring hops away; on the mesh it is adjacent.
        group.bench_with_input(BenchmarkId::new(format!("{name}_put"), size), &size, |b, _| {
            b.iter(|| node.put_bytes(2, 0, &data, TransferMode::Dma).unwrap());
            node.quiet().expect("quiet");
        });
        group.bench_with_input(BenchmarkId::new(format!("{name}_get"), size), &size, |b, &s| {
            b.iter(|| {
                let v = node.get_bytes(2, 0, s as u64, TransferMode::Dma).unwrap();
                assert_eq!(v.len(), s);
            })
        });
        net.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_topologies);
criterion_main!(benches);
