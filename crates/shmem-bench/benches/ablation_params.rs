//! Ablations over the two calibrated design parameters DESIGN.md flags:
//!
//! * **Get-response chunk size** (the bypass/forwarding granularity): the
//!   paper streams Get responses through fixed buffers; smaller chunks
//!   mean more per-chunk service think time, larger chunks need larger
//!   window areas. Swept against 512 KB Get latency.
//! * **Service-thread wake delay** (the "Sleep & Wait" loop of Fig. 5):
//!   the main contributor to small-message Put latency. Swept against
//!   64 KB Put latency.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntb_net::{DeliveryTarget, NetConfig, RingNetwork};
use ntb_sim::{TimeModel, TransferMode};
use shmem_core::SymmetricHeap;

fn rig(model: TimeModel, get_chunk: u64) -> RingNetwork {
    let cfg = NetConfig::paper(5).with_model(model).with_get_chunk(get_chunk);
    let net = RingNetwork::build(cfg).expect("build ring");
    for node in net.nodes() {
        let heap = SymmetricHeap::new(Arc::clone(node.memory()), 1 << 20);
        heap.malloc(1 << 20).expect("symmetric buffer");
        node.set_delivery(heap as Arc<dyn DeliveryTarget>);
    }
    net
}

fn bench_get_chunk_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_get_chunk");
    group.sample_size(10);
    for &chunk in &[16u64 << 10, 64 << 10, 256 << 10] {
        let net = rig(TimeModel::scaled(0.05), chunk);
        let node = Arc::clone(net.node(0));
        group.bench_with_input(BenchmarkId::from_parameter(chunk >> 10), &chunk, |b, _| {
            b.iter(|| {
                let v = node.get_bytes(1, 0, 512 << 10, TransferMode::Dma).unwrap();
                assert_eq!(v.len(), 512 << 10);
            })
        });
        net.shutdown();
    }
    group.finish();
}

fn bench_service_wake_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_service_wake");
    group.sample_size(10);
    for &wake_us in &[30u64, 150, 600] {
        let mut model = TimeModel::scaled(0.2);
        model.interrupt_service_delay = std::time::Duration::from_micros(wake_us);
        let net = rig(model, 64 << 10);
        let node = Arc::clone(net.node(0));
        let data = vec![0u8; 64 << 10];
        group.bench_with_input(BenchmarkId::from_parameter(wake_us), &wake_us, |b, _| {
            b.iter(|| node.put_bytes(1, 0, &data, TransferMode::Dma).unwrap());
            node.quiet().expect("quiet");
        });
        net.shutdown();
    }
    group.finish();
}

/// Root-fan-out broadcast vs the ring-pipelined broadcast: on the
/// switchless topology the root's two adapters are the fan-out
/// bottleneck; the pipeline spreads the work over every link.
fn bench_broadcast_algorithms(c: &mut Criterion) {
    use shmem_core::{ShmemConfig, ShmemWorld};
    let mut group = c.benchmark_group("ablation_broadcast");
    group.sample_size(10);
    for (name, pipelined) in [("root_fanout", false), ("ring_pipeline", true)] {
        group.bench_with_input(
            criterion::BenchmarkId::new(name, 64 << 10),
            &pipelined,
            |b, &pipelined| {
                b.iter_custom(|iters| {
                    let mut cfg =
                        ShmemConfig::paper().with_hosts(5).with_model(TimeModel::scaled(0.05));
                    cfg.barrier_timeout = std::time::Duration::from_secs(120);
                    let totals = ShmemWorld::run(cfg, move |ctx| {
                        let sym = ctx.calloc_array::<u8>(64 << 10).unwrap();
                        let t0 = std::time::Instant::now();
                        for _ in 0..iters {
                            if pipelined {
                                ctx.broadcast_ring(&sym, 0, 64 << 10, 0).unwrap();
                            } else {
                                ctx.broadcast(&sym, 0, 64 << 10, 0).unwrap();
                            }
                        }
                        t0.elapsed()
                    })
                    .expect("world");
                    totals[0]
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_get_chunk_size,
    bench_service_wake_delay,
    bench_broadcast_algorithms
);
criterion_main!(benches);
