//! Criterion bench for the Fig. 9 primitives: protocol-level put and get
//! across {DMA, memcpy} × {1 hop, 2 hops}, against a live 5-host ring
//! with symmetric heaps installed (the same data path `shmem_put`/
//! `shmem_get` take, without respawning a world per sample).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntb_net::{DeliveryTarget, NetConfig, RingNetwork};
use ntb_sim::{TimeModel, TransferMode};
use shmem_core::SymmetricHeap;

struct Rig {
    net: RingNetwork,
}

impl Rig {
    fn new() -> Rig {
        let net = RingNetwork::build(NetConfig::paper(5).with_model(TimeModel::scaled(0.02)))
            .expect("build ring");
        for node in net.nodes() {
            let heap = SymmetricHeap::new(Arc::clone(node.memory()), 1 << 20);
            heap.malloc(1 << 20).expect("symmetric buffer");
            node.set_delivery(heap as Arc<dyn DeliveryTarget>);
        }
        Rig { net }
    }
}

fn bench_put(c: &mut Criterion) {
    let rig = Rig::new();
    let node = rig.net.node(0);
    let mut group = c.benchmark_group("fig9_put");
    group.sample_size(10);
    for &size in &[4usize << 10, 256 << 10] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        for mode in [TransferMode::Dma, TransferMode::Memcpy] {
            for (hops, dest) in [(1usize, 1usize), (2, 2)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}_{}hop", mode.label(), hops), size),
                    &size,
                    |b, _| {
                        b.iter(|| node.put_bytes(dest, 0, &data, mode).unwrap());
                        node.quiet().expect("quiet");
                    },
                );
            }
        }
    }
    group.finish();
    rig.net.shutdown();
}

fn bench_get(c: &mut Criterion) {
    let rig = Rig::new();
    let node = rig.net.node(0);
    let mut group = c.benchmark_group("fig9_get");
    group.sample_size(10);
    for &size in &[4u64 << 10, 256 << 10] {
        group.throughput(Throughput::Bytes(size));
        for mode in [TransferMode::Dma, TransferMode::Memcpy] {
            for (hops, src) in [(1usize, 1usize), (2, 2)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}_{}hop", mode.label(), hops), size),
                    &size,
                    |b, &size| {
                        b.iter(|| {
                            let v = node.get_bytes(src, 0, size, mode).unwrap();
                            assert_eq!(v.len(), size as usize);
                        })
                    },
                );
            }
        }
    }
    group.finish();
    rig.net.shutdown();
}

criterion_group!(benches, bench_put, bench_get);
criterion_main!(benches);
