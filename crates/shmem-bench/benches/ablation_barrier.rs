//! Ablation: the paper's ring start/end doorbell barrier vs a naive
//! centralized counter barrier built from remote atomics.
//!
//! The paper argues the centralized barrier "is not suitable since it is
//! hard to make a centralized shared counter in the switchless
//! interconnect network". This ablation quantifies that: the counter
//! barrier needs `2(N-1)` AMO round trips through PE 0 (each a full
//! request/response over the ring), while the ring sweep needs `2N`
//! one-way doorbells — so the sweep wins and scales linearly rather than
//! quadratically in ring distance.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntb_sim::TimeModel;
use shmem_core::{BarrierAlgorithm, CmpOp, ShmemConfig, ShmemCtx, ShmemWorld, TypedSym};

/// Naive centralized barrier: every PE increments a counter on PE 0 and
/// waits (polling with remote fetches) until the epoch's target count.
fn centralized_barrier(ctx: &ShmemCtx, counter: &TypedSym<u64>, epoch: u64) {
    let n = ctx.num_pes() as u64;
    ctx.atomic_fetch_add(counter, 0, 1u64, 0).unwrap();
    let target = epoch * n;
    if ctx.my_pe() == 0 {
        // PE 0 can watch its own copy change.
        ctx.wait_until(counter, 0, CmpOp::Ge, target).unwrap();
    } else {
        loop {
            let v = ctx.atomic_fetch(counter, 0, 0).unwrap();
            if v >= target {
                break;
            }
            std::thread::yield_now();
        }
    }
}

fn run_world<F>(hosts: usize, iters: u64, alg: BarrierAlgorithm, f: F) -> Duration
where
    F: Fn(&ShmemCtx, u64) + Send + Sync,
{
    let mut cfg = ShmemConfig::paper()
        .with_hosts(hosts)
        .with_model(TimeModel::scaled(0.02))
        .with_barrier_algorithm(alg);
    cfg.barrier_timeout = Duration::from_secs(120);
    let totals = ShmemWorld::run(cfg, move |ctx| {
        let t0 = Instant::now();
        f(ctx, iters);
        t0.elapsed()
    })
    .expect("world");
    totals[0]
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_barrier");
    group.sample_size(10);
    for &hosts in &[3usize, 5] {
        group.bench_with_input(BenchmarkId::new("ring_sweep", hosts), &hosts, |b, &hosts| {
            b.iter_custom(|iters| {
                run_world(hosts, iters, BarrierAlgorithm::RingSweep, |ctx, iters| {
                    for _ in 0..iters {
                        ctx.barrier_all().unwrap();
                    }
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("dissemination", hosts), &hosts, |b, &hosts| {
            b.iter_custom(|iters| {
                run_world(hosts, iters, BarrierAlgorithm::Dissemination, |ctx, iters| {
                    for _ in 0..iters {
                        ctx.barrier_all().unwrap();
                    }
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("centralized_counter", hosts),
            &hosts,
            |b, &hosts| {
                b.iter_custom(|iters| {
                    run_world(hosts, iters, BarrierAlgorithm::RingSweep, |ctx, iters| {
                        let counter = ctx.calloc_array::<u64>(1).unwrap();
                        for epoch in 1..=iters {
                            centralized_barrier(ctx, &counter, epoch);
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
