//! Criterion bench for Fig. 10: `shmem_barrier_all` latency following
//! puts of varying size. Each sample spawns a scaled-down 5-PE world and
//! times `iters` barriers inside it (iter_custom), so world construction
//! stays out of the measurement.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntb_sim::{TimeModel, TransferMode};
use shmem_core::{OpOptions, ShmemConfig, ShmemWorld};

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_barrier");
    group.sample_size(10);
    for &put_size in &[0usize, 4 << 10, 256 << 10] {
        group.bench_with_input(
            BenchmarkId::new("after_put", put_size),
            &put_size,
            |b, &put_size| {
                b.iter_custom(|iters| {
                    let mut cfg =
                        ShmemConfig::paper().with_hosts(5).with_model(TimeModel::scaled(0.02));
                    cfg.barrier_timeout = Duration::from_secs(120);
                    let totals = ShmemWorld::run(cfg, move |ctx| {
                        let sym = ctx.malloc_array::<u8>(put_size.max(1)).unwrap();
                        let data = vec![0u8; put_size];
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            if ctx.my_pe() == 0 && put_size > 0 {
                                ctx.put_slice_opts(
                                    &sym,
                                    0,
                                    &data,
                                    1,
                                    OpOptions::new().mode(TransferMode::Dma),
                                )
                                .unwrap();
                            }
                            let t0 = Instant::now();
                            ctx.barrier_all().unwrap();
                            total += t0.elapsed();
                        }
                        total
                    })
                    .expect("world");
                    totals[0]
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_barrier);
criterion_main!(benches);
