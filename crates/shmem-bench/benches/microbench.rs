//! Microbenchmarks of the hot data structures (no injected delays):
//! frame codec, symmetric-heap allocator, region copies, scratchpad and
//! doorbell register paths. These bound the model's own overhead — the
//! part of every measured latency that is *not* calibrated wire time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntb_net::Frame;
use ntb_sim::{Doorbell, HostMemory, Region, ScratchpadBank, TimeModel, TransferMode};
use shmem_core::SymmetricHeap;

fn bench_frame_codec(c: &mut Criterion) {
    let frame = Frame::put(3, 7, 65536, 1024, 1, TransferMode::Dma);
    c.bench_function("frame_encode", |b| b.iter(|| std::hint::black_box(frame.encode())));
    let words = frame.encode();
    c.bench_function("frame_decode", |b| {
        b.iter(|| Frame::decode(std::hint::black_box(words)).unwrap())
    });
}

fn bench_heap_alloc(c: &mut Criterion) {
    c.bench_function("heap_malloc_free", |b| {
        let heap = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 1 << 20);
        b.iter(|| {
            let a = heap.malloc(std::hint::black_box(256)).unwrap();
            heap.free(a).unwrap();
        })
    });
    c.bench_function("heap_flat_write_4k", |b| {
        let heap = SymmetricHeap::new(HostMemory::new(0, 1 << 30), 1 << 20);
        let a = heap.malloc(8192).unwrap();
        let data = vec![7u8; 4096];
        b.iter(|| heap.write_flat(a.offset(), &data).unwrap())
    });
}

fn bench_region_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("region_copy");
    for &size in &[4u64 << 10, 256 << 10] {
        let src = Region::anonymous(size);
        let dst = Region::anonymous(size);
        group.throughput(Throughput::Bytes(size));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| src.copy_to(0, &dst, 0, size).unwrap())
        });
    }
    group.finish();
}

fn bench_registers(c: &mut Criterion) {
    let model = Arc::new(TimeModel::zero());
    let spads = ScratchpadBank::new(Arc::clone(&model));
    c.bench_function("scratchpad_write_read", |b| {
        b.iter(|| {
            spads.write(0, 0xABCD).unwrap();
            std::hint::black_box(spads.read(0).unwrap());
        })
    });
    let db = Doorbell::new(model);
    c.bench_function("doorbell_ring_clear", |b| {
        b.iter(|| {
            db.ring(3).unwrap();
            db.clear(1 << 3);
        })
    });
}

criterion_group!(benches, bench_frame_codec, bench_heap_alloc, bench_region_copy, bench_registers);
criterion_main!(benches);
