//! Fixture conformance: every rule has at least one fixture that must
//! scan clean and one that must produce findings of exactly that rule —
//! guarding both false positives and false negatives. The final test
//! scans the real workspace, pinning the tree itself at zero findings.

use std::path::{Path, PathBuf};

use ntb_lint::{scan_file, scan_workspace, FileMode, Finding};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn scan(name: &str) -> Vec<Finding> {
    scan_file(&fixture(name), FileMode::Single).expect("fixture readable")
}

fn assert_clean(name: &str) {
    let got = scan(name);
    assert!(got.is_empty(), "{name} must scan clean, got: {got:#?}");
}

fn assert_flags(name: &str, rule: &str, at_least: usize) {
    let got = scan(name);
    let hits = got.iter().filter(|f| f.rule == rule).count();
    assert!(
        hits >= at_least,
        "{name} must produce >= {at_least} `{rule}` finding(s), got: {got:#?}"
    );
    let other: Vec<_> = got.iter().filter(|f| f.rule != rule).collect();
    assert!(other.is_empty(), "{name} must only trip `{rule}`, also got: {other:#?}");
}

#[test]
fn safety_fixtures() {
    assert_clean("safety_pass.rs");
    assert_flags("safety_fail.rs", "safety", 1);
}

#[test]
fn atomics_fixtures() {
    assert_clean("atomics_pass.rs");
    assert_flags("atomics_fail.rs", "atomics", 1);
    // Importing `Ordering::Relaxed` hides the ordering at use sites; the
    // import line itself is the finding.
    assert_flags("atomics_fail_import.rs", "atomics", 1);
}

#[test]
fn unwraps_fixtures() {
    assert_clean("unwraps_pass.rs");
    assert_flags("unwraps_fail.rs", "unwraps", 2);
}

#[test]
fn locks_fixtures() {
    assert_clean("locks_pass.rs");
    assert_flags("locks_fail_order.rs", "locks", 1);
    assert_flags("locks_fail_unclassified.rs", "locks", 1);
    let msg = &scan("locks_fail_order.rs")[0].message;
    assert!(
        msg.contains("rank 10") && msg.contains("rank 120"),
        "order finding names both ranks: {msg}"
    );
}

/// The linter's reason to exist: the workspace it ships in stays clean.
/// Walks the real crate tree (two levels up from this crate's manifest).
#[test]
fn workspace_self_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolvable");
    let findings = scan_workspace(&root).expect("workspace scannable");
    assert!(findings.is_empty(), "workspace must lint clean, got: {findings:#?}");
}
