//! Fixture conformance: every rule has at least one fixture that must
//! scan clean and one that must produce findings of exactly that rule —
//! guarding both false positives and false negatives. The final test
//! scans the real workspace, pinning the tree itself at zero findings.

use std::path::{Path, PathBuf};

use ntb_lint::{scan_file, scan_workspace_with_stats, FileMode, Finding};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn scan(name: &str) -> Vec<Finding> {
    scan_file(&fixture(name), FileMode::Single).expect("fixture readable")
}

fn assert_clean(name: &str) {
    let got = scan(name);
    assert!(got.is_empty(), "{name} must scan clean, got: {got:#?}");
}

fn assert_flags(name: &str, rule: &str, at_least: usize) {
    let got = scan(name);
    let hits = got.iter().filter(|f| f.rule == rule).count();
    assert!(
        hits >= at_least,
        "{name} must produce >= {at_least} `{rule}` finding(s), got: {got:#?}"
    );
    let other: Vec<_> = got.iter().filter(|f| f.rule != rule).collect();
    assert!(other.is_empty(), "{name} must only trip `{rule}`, also got: {other:#?}");
}

#[test]
fn safety_fixtures() {
    assert_clean("safety_pass.rs");
    assert_flags("safety_fail.rs", "safety", 1);
}

#[test]
fn atomics_fixtures() {
    assert_clean("atomics_pass.rs");
    assert_flags("atomics_fail.rs", "atomics", 1);
    // Importing `Ordering::Relaxed` hides the ordering at use sites; the
    // import line itself is the finding.
    assert_flags("atomics_fail_import.rs", "atomics", 1);
}

#[test]
fn unwraps_fixtures() {
    assert_clean("unwraps_pass.rs");
    assert_flags("unwraps_fail.rs", "unwraps", 2);
}

#[test]
fn locks_fixtures() {
    assert_clean("locks_pass.rs");
    assert_flags("locks_fail_order.rs", "locks", 1);
    assert_flags("locks_fail_unclassified.rs", "locks", 1);
    let msg = &scan("locks_fail_order.rs")[0].message;
    assert!(
        msg.contains("rank 10") && msg.contains("rank 120"),
        "order finding names both ranks: {msg}"
    );
}

#[test]
fn resolution_fixtures() {
    assert_clean("resolution_pass.rs");
    assert_flags("resolution_fail.rs", "resolution", 1);
    assert_clean("resolution_annotated.rs");
    // A mismatched event name in the annotation must not waive the site.
    assert_flags("resolution_tampered.rs", "resolution", 1);
    let msg = &scan("resolution_fail.rs")[0].message;
    assert!(
        msg.contains("leaky_get") && msg.contains("RESOLVES("),
        "finding names the function and the annotation escape hatch: {msg}"
    );
}

#[test]
fn deadline_fixtures() {
    assert_clean("deadline_pass.rs");
    assert_flags("deadline_fail.rs", "deadline-clip", 2);
    assert_clean("deadline_annotated.rs");
    // A bare marker with no justification is tampering, not a waiver.
    assert_flags("deadline_tampered.rs", "deadline-clip", 1);
}

#[test]
fn bounded_fixtures() {
    assert_clean("bounded_pass.rs");
    assert_flags("bounded_fail.rs", "bounded-wait", 1);
    assert_clean("bounded_annotated.rs");
    assert_flags("bounded_tampered.rs", "bounded-wait", 1);
}

#[test]
fn typederr_fixtures() {
    assert_clean("typederr_pass.rs");
    assert_flags("typederr_fail.rs", "typed-error", 1);
    assert_clean("typederr_annotated.rs");
    // A sub-minimal reason ("ok") is tampering, not a waiver.
    assert_flags("typederr_tampered.rs", "typed-error", 1);
}

/// The linter's reason to exist: the workspace it ships in stays clean —
/// and demonstrably *looked at* the protocol surface while doing so.
/// Walks the real crate tree (two levels up from this crate's manifest)
/// and pins non-trivial floors on every evidence counter, so a refactor
/// that silently stops the parser from finding functions (or a rule from
/// visiting its sites) fails here rather than passing vacuously.
#[test]
fn workspace_self_scan_is_clean_with_evidence() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolvable");
    let (findings, stats) = scan_workspace_with_stats(&root).expect("workspace scannable");
    assert!(findings.is_empty(), "workspace must lint clean, got: {findings:#?}");
    assert!(stats.files >= 50, "suspiciously few files scanned: {stats}");
    assert!(stats.functions >= 900, "suspiciously few functions parsed: {stats}");
    assert!(stats.acquires >= 5, "resolution rule found too few acquires: {stats}");
    assert!(stats.exits_checked >= 10, "resolution rule checked too few exits: {stats}");
    assert!(stats.waits_checked >= 12, "deadline rule checked too few waits: {stats}");
    assert!(stats.loops_checked >= 15, "bounded rule checked too few loops: {stats}");
    assert!(stats.errors_checked >= 15, "typed-error rule checked too few sites: {stats}");
}
