//! Seeded deadline-clip violations: fixed-duration waits that ignore the
//! op deadline (a short deadline overshoots by up to a full tick).

impl Waiter {
    pub fn await_ack(&self) -> bool {
        self.doorbell.wait_and_clear(DB_ACK, Some(Duration::from_millis(50)))
    }

    pub fn nap(&self) {
        std::thread::sleep(Duration::from_millis(5));
    }
}
