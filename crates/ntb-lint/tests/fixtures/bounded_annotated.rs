//! Bounded-wait fixture (annotated): an intentionally unbounded spin,
//! justified at the loop head.

impl Locker {
    pub fn acquire(&self) {
        // BOUNDED-BY: OpenSHMEM set_lock semantics — blocks until the
        // lock is acquired; a dead lock home fails the CAS typed.
        loop {
            if self.try_cas() {
                return;
            }
            std::thread::yield_now();
        }
    }
}
