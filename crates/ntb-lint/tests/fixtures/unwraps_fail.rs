// Fixture: bare unwrap/expect in non-test code must be flagged
// (rule: unwraps).

pub fn parse(bytes: &[u8]) -> u64 {
    let arr: [u8; 8] = bytes.try_into().unwrap();
    u64::from_le_bytes(arr)
}

pub fn lookup(map: &std::collections::HashMap<u32, u64>, k: u32) -> u64 {
    *map.get(&k).expect("key must exist")
}
