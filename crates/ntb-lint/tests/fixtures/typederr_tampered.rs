//! Tampered annotation: a reason too short to justify anything must not
//! waive the finding.

impl Gate {
    pub fn check_alive(&self, pe: usize) -> Result<(), NtbError> {
        if self.view.is_live(pe) {
            Ok(())
        } else {
            // RESOLVES(none): ok
            Err(NtbError::PeFailed { pe, epoch: self.view.epoch })
        }
    }
}
