// Fixture: importing Relaxed hides the ordering at use sites; the import
// itself must be flagged (rule: atomics).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

pub fn hidden(counter: &AtomicU64) -> u64 {
    counter.load(Relaxed)
}
