// Fixture: every unsafe block carries a SAFETY comment (rule: safety).

pub fn read_shared(p: *const u64) -> u64 {
    // SAFETY: p comes from a live Region mapping, valid for reads of 8
    // bytes and aligned; cross-host ordering is handled by the caller.
    unsafe { core::ptr::read_volatile(p) }
}

pub struct Window(core::cell::UnsafeCell<[u8; 64]>);

// SAFETY: concurrent access goes through read/write windows whose
// ordering is established by SeqCst doorbell operations.
unsafe impl Sync for Window {}

#[cfg(test)]
mod tests {
    // Unsafe in test code is exempt from the rule.
    #[test]
    fn no_comment_needed_here() {
        let x = 7u64;
        let v = unsafe { core::ptr::read(&x) };
        assert_eq!(v, 7);
    }
}
