// Fixture: nested acquisition in strictly increasing rank order
// (rule: locks). The manifest maps this file's `low` receiver to
// shmem-amo (rank 10) and `high` to obs (rank 120).

pub fn nested_in_order(low: &Mutex<u64>, high: &Mutex<Vec<u64>>) {
    let a = low.lock();
    let mut b = high.lock();
    b.push(*a);
}

pub fn temporaries_do_not_pin(low: &Mutex<u64>, high: &Mutex<Vec<u64>>) {
    high.lock().push(1);
    // The high guard died at the statement end; low is a fresh chain.
    let _v = *low.lock();
}
