//! Resolution-pairing fixture (clean): every exit reachable after the
//! acquire passes a paired resolution first.

impl Requester {
    pub fn tracked_get(&self) -> Result<Vec<u8>, NtbError> {
        let id = self.pending.register(8, self.target);
        self.obs.emit(EventKind::GetReqTx, u64::from(id), [0, 8]);
        match self.pending.wait_with_retry_until(id, &self.model, None) {
            Ok(buf) => {
                self.obs.emit(EventKind::GetDone, u64::from(id), [8, 0]);
                Ok(buf)
            }
            Err(e) => {
                self.pending.abandon(id);
                Err(e)
            }
        }
    }
}
