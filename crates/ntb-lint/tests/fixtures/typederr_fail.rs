//! Seeded typed-error violation: a failure verdict is synthesized but no
//! pending entry is resolved anywhere in the function (the PR 6
//! `fail_expired` ghost-entry shape).

impl Expirer {
    pub fn give_up(&self) -> Result<(), NtbError> {
        Err(NtbError::LinkFailed { attempts: 3 })
    }
}
