//! Typed-error fixture (annotated): a fast-fail gate with no entry to
//! resolve, stated explicitly.

impl Gate {
    pub fn check_alive(&self, pe: usize) -> Result<(), NtbError> {
        if self.view.is_live(pe) {
            Ok(())
        } else {
            // RESOLVES(none): fast-fail gate before anything is
            // registered; in-flight entries are swept by fail_dest.
            Err(NtbError::PeFailed { pe, epoch: self.view.epoch })
        }
    }
}
