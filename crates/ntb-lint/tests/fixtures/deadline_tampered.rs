//! Tampered annotation: a bare marker with no justification must not
//! waive the finding.

impl Waiter {
    pub fn await_ack(&self) -> bool {
        // DEADLINE-CLIPPED:
        self.doorbell.wait_and_clear(DB_ACK, Some(Duration::from_millis(50)))
    }
}
