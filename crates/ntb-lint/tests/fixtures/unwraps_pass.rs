// Fixture: typed errors and annotated unwraps (rule: unwraps).

pub fn parse(bytes: &[u8]) -> Result<u64, String> {
    let arr: [u8; 8] = bytes.try_into().map_err(|_| "short read".to_string())?;
    Ok(u64::from_le_bytes(arr))
}

pub fn spawn_worker() {
    // lint: unwrap-ok(spawn fails only on resource exhaustion at bring-up)
    std::thread::Builder::new().spawn(|| {}).expect("spawn worker");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<u8, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
