//! Tampered annotation: the event name does not match the acquired
//! event, so the waiver must not apply.

impl Requester {
    pub fn mislabeled_get(&self) -> Result<Vec<u8>, NtbError> {
        // RESOLVES(pending.register): validation failures are swept.
        let id = self.pending.register(8, self.target);
        // RESOLVES(PutIssue): wrong event — this is a GetReqTx acquire.
        self.obs.emit(EventKind::GetReqTx, u64::from(id), [0, 8]);
        let wire = offset32(self.offset)?;
        self.transmit(wire);
        self.pending.wait_with_retry_until(id, &self.model, None)
    }
}
