//! Typed-error fixture (clean): the failure construction co-occurs with
//! pending-entry resolution in the same function.

impl Expirer {
    pub fn expire(&self, id: u32) -> Result<(), NtbError> {
        self.pending.abandon(id);
        Err(NtbError::DeadlineExceeded)
    }
}
