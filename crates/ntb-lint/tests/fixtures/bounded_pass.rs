//! Bounded-wait fixture (clean): the waiting loop checks a deadline and
//! clips its poll tick to it.

impl Drainer {
    pub fn drain(&self, deadline: Instant) -> bool {
        loop {
            if self.is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(deadline.saturating_duration_since(Instant::now()).min(POLL));
        }
    }
}
