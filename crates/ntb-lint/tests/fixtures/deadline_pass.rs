//! Deadline-clip fixture (clean): every blocking wait's timeout is
//! derived from the op deadline.

impl Waiter {
    pub fn await_ack(&self, deadline: Instant) -> bool {
        let remaining = deadline.saturating_duration_since(Instant::now());
        self.doorbell.wait_and_clear(DB_ACK, Some(remaining))
    }

    pub fn poll_tick(&self, deadline: Instant) {
        std::thread::sleep(deadline.saturating_duration_since(Instant::now()).min(POLL));
    }
}
