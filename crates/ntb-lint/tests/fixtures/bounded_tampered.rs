//! Tampered annotation: a bare `BOUNDED-BY:` with no reason must not
//! waive the finding.

impl Locker {
    pub fn acquire(&self) {
        // BOUNDED-BY:
        loop {
            if self.try_cas() {
                return;
            }
            std::thread::yield_now();
        }
    }
}
