// Fixture: unsafe without a SAFETY comment must be flagged (rule: safety).

pub fn read_shared(p: *const u64) -> u64 {
    unsafe { core::ptr::read_volatile(p) }
}
