//! Seeded bounded-wait violation: a spin loop with no deadline check,
//! retry budget, or shutdown flag in sight.

impl Spinner {
    pub fn spin(&self) {
        loop {
            if self.probe() {
                break;
            }
            std::thread::yield_now();
        }
    }
}
