//! Deadline fixture (annotated): fixed-duration waits justified at the
//! call site.

impl Waiter {
    pub fn await_ack(&self) -> bool {
        // DEADLINE-CLIPPED: idle-poll quantum of the service loop; there
        // is no op deadline here, only the lost-interrupt safety net.
        self.doorbell.wait_and_clear(DB_ACK, Some(Duration::from_millis(50)))
    }
}
