//! Resolution fixture (annotated): same early-`?` shape as the failing
//! fixture, waived at each acquire with a justified annotation.

impl Requester {
    pub fn swept_get(&self) -> Result<Vec<u8>, NtbError> {
        // RESOLVES(pending.register): the service sweeper reaps entries
        // whose descriptor validation failed before transmit.
        let id = self.pending.register(8, self.target);
        // RESOLVES(GetReqTx): the sweeper emits GetAbandon when it reaps.
        self.obs.emit(EventKind::GetReqTx, u64::from(id), [0, 8]);
        let wire = offset32(self.offset)?;
        self.transmit(wire);
        self.pending.wait_with_retry_until(id, &self.model, None)
    }
}
