// Fixture: allowlisted orderings plus an annotated Relaxed (rule: atomics).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64, counter: &AtomicU64) {
    counter.store(1, Ordering::Release);
    let _ = flag.load(Ordering::Acquire);
    let _ = flag.swap(2, Ordering::SeqCst);
    // lint: relaxed-ok(diagnostic counter; read only for stats reporting)
    let _ = counter.load(Ordering::Relaxed);
}
