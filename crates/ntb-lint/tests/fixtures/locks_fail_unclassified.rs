// Fixture: a lock receiver with no LOCK_SITES entry must be flagged
// (rule: locks).

pub fn mystery_lock(mystery: &Mutex<u64>) -> u64 {
    *mystery.lock()
}
