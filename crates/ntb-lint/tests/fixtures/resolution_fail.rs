//! Seeded resolution violation: a `?` between the acquire and its
//! resolution leaks the pending entry on the error path (the exact
//! defect shape fixed in the amo request path).

impl Requester {
    pub fn leaky_get(&self) -> Result<Vec<u8>, NtbError> {
        let id = self.pending.register(8, self.target);
        self.obs.emit(EventKind::GetReqTx, u64::from(id), [0, 8]);
        let wire = offset32(self.offset)?;
        self.transmit(wire);
        self.pending.wait_with_retry_until(id, &self.model, None)
    }
}
