// Fixture: inverted acquisition order must be flagged (rule: locks).
// The manifest maps `low` to shmem-amo (rank 10) and `high` to obs
// (rank 120).

pub fn nested_inverted(low: &Mutex<u64>, high: &Mutex<Vec<u64>>) {
    let b = high.lock();
    let a = low.lock(); // acquiring rank 10 while holding rank 120
    drop((a, b));
}
