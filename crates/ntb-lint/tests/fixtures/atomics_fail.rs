// Fixture: bare Relaxed without annotation must be flagged (rule: atomics).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn sneaky(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}
