//! A lightweight function/block parser on top of [`crate::lexer`].
//!
//! The protocol-discipline rules (resolution pairing, deadline clipping,
//! bounded waits, typed-error discipline) are *function-granular*: they
//! reason about which control-flow exits a function has and what happens
//! between an acquire site and each exit. This module builds just enough
//! structure for that — brace-matched function bodies, early-return / `?`
//! exit enumeration, closure spans (a `?` inside a closure exits the
//! closure, not the function), and one-level call-graph edges — without
//! pulling in `syn` (the workspace is vendored-offline).
//!
//! This is a *lint*, not a verifier: exit coverage downstream uses a
//! linear token-order approximation (a resolution token anywhere between
//! the acquire and the exit counts). That over-approximates on branches
//! that bypass the resolution, but it reliably catches the real defect
//! class — an early `return`/`?` between acquire and resolve — which is
//! exactly what PRs 2, 6 and 7 each fixed by hand.

use crate::lexer::{Tok, TokKind};

/// How control leaves the function at this exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// An explicit `return` statement.
    Return,
    /// A `?` try-operator propagation.
    Try,
    /// Falling off the end of the body (tail expression / unit).
    End,
}

/// One control-flow exit from a function body.
#[derive(Debug, Clone, Copy)]
pub struct Exit {
    /// Token index of the `return` / `?` / closing `}`.
    pub idx: usize,
    /// Token index where the exit's coverage window ends: for `return`,
    /// the end of the return statement (so `return Err(resolve(..))`
    /// counts its own expression); for `?` and `End`, the exit token.
    pub stmt_end: usize,
    /// 1-based source line of the exit token.
    pub line: u32,
    pub kind: ExitKind,
}

/// One parsed function (free fn or method; nested fns are separate entries).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's matching `}`.
    pub body_close: usize,
    /// Exits, in token order. Excludes exits inside nested fns and
    /// closure bodies (those exit the closure, not this function).
    pub exits: Vec<Exit>,
    /// Closure body token spans (inclusive) within this function's body.
    pub closures: Vec<(usize, usize)>,
    /// Spans of nested `fn` items inside this body (inclusive, from the
    /// nested `fn` keyword to its closing `}`).
    pub nested: Vec<(usize, usize)>,
}

impl FnInfo {
    /// Is token index `i` inside this function's body (exclusive of the
    /// braces themselves is not required — inclusive is fine for rules)?
    pub fn contains(&self, i: usize) -> bool {
        (self.body_open..=self.body_close).contains(&i)
    }

    /// Is token index `i` in a closure body or nested fn (i.e. not part
    /// of this function's own control flow)?
    pub fn in_sub_scope(&self, i: usize) -> bool {
        self.closures.iter().chain(self.nested.iter()).any(|&(a, b)| (a..=b).contains(&i))
    }
}

/// Parse every function in the token stream.
pub fn parse_functions(toks: &[Tok]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            if let Some(info) = parse_one_fn(toks, i) {
                // Keep scanning *inside* the body so nested fns get their
                // own entries; the outer fn records them in `nested` below.
                fns.push(info);
            }
        }
        i += 1;
    }
    // Record nesting: a fn whose body lies inside another's body.
    let spans: Vec<(usize, usize)> = fns.iter().map(|f| (f.body_open, f.body_close)).collect();
    for (open, close) in &spans {
        for f in fns.iter_mut() {
            if f.body_open < *open && *close <= f.body_close {
                f.nested.push((*open, *close));
            }
        }
    }
    // Re-derive exits now that nested spans are known.
    for f in &mut fns {
        f.exits = find_exits(toks, f);
    }
    fns
}

/// Parse one `fn` starting at token index `i` (the `fn` keyword).
fn parse_one_fn(toks: &[Tok], i: usize) -> Option<FnInfo> {
    let name = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident)?.text.clone();
    // Find the body `{`: first `{` at paren/bracket depth 0 after the
    // name. A `;` at depth 0 first means a bodiless decl (trait method).
    let mut j = i + 2;
    let mut pdepth = 0i32;
    let body_open = loop {
        let t = toks.get(j)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => pdepth += 1,
                ")" | "]" => pdepth -= 1,
                "{" if pdepth == 0 => break j,
                // Struct-pattern args (`fn f(Foo { a }: Foo)`) sit at
                // pdepth >= 1 and are skipped by the depth guard above.
                "{" => {}
                ";" if pdepth == 0 => return None,
                _ => {}
            }
        }
        j += 1;
    };
    let body_close = match_brace(toks, body_open)?;
    let closures = find_closures(toks, body_open + 1, body_close);
    let mut info = FnInfo {
        name,
        line: toks[i].line,
        body_open,
        body_close,
        exits: Vec::new(),
        closures,
        nested: Vec::new(),
    };
    info.exits = find_exits(toks, &info);
    Some(info)
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Can the previous token end an expression operand? If so, a following
/// `|` is binary-or; otherwise it opens a closure's parameter list.
fn tok_ends_operand(t: &Tok) -> bool {
    match t.kind {
        TokKind::Num | TokKind::Str | TokKind::Char | TokKind::Lifetime => true,
        TokKind::Ident => !matches!(t.text.as_str(), "return" | "move" | "else" | "in"),
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "}" | "?"),
    }
}

/// Find closure body spans between `from` and `to` (exclusive of `to`).
fn find_closures(toks: &[Tok], from: usize, to: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut k = from;
    while k < to {
        let t = &toks[k];
        if !(t.kind == TokKind::Punct && t.text == "|") {
            k += 1;
            continue;
        }
        // Closure-start iff the previous token can't end an operand.
        let is_start = k == 0 || !tok_ends_operand(&toks[k - 1]);
        if !is_start {
            k += 1;
            continue;
        }
        // Scan for the closing `|` of the parameter list at delimiter
        // depth 0. Failing to find one before a `;`/unbalanced close means
        // this was not a closure after all (e.g. a leading `|` pattern).
        let mut j = k + 1;
        let mut depth = 0i32;
        let mut close: Option<usize> = None;
        while j < to {
            let u = &toks[j];
            if u.kind == TokKind::Punct {
                match u.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => break,
                    "|" if depth == 0 => {
                        close = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(close) = close else {
            k += 1;
            continue;
        };
        // Body: a brace block, or an expression running to the first
        // `,`/`;` at depth 0 (or an unbalanced closing delimiter).
        let body_start = close + 1;
        let body_end = match toks.get(body_start) {
            Some(t) if t.kind == TokKind::Punct && t.text == "{" => {
                match_brace(toks, body_start).unwrap_or(to.saturating_sub(1))
            }
            _ => {
                let mut j = body_start;
                let mut depth = 0i32;
                loop {
                    if j >= to {
                        break to.saturating_sub(1);
                    }
                    let u = &toks[j];
                    if u.kind == TokKind::Punct {
                        match u.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => {
                                if depth == 0 {
                                    break j.saturating_sub(1);
                                }
                                depth -= 1;
                            }
                            "," | ";" if depth == 0 => break j.saturating_sub(1),
                            _ => {}
                        }
                    }
                    j += 1;
                }
            }
        };
        spans.push((k, body_end.max(body_start)));
        k = body_end.max(body_start) + 1;
    }
    spans
}

/// Enumerate the function's own exits (skipping closures and nested fns).
fn find_exits(toks: &[Tok], f: &FnInfo) -> Vec<Exit> {
    let mut exits = Vec::new();
    let mut i = f.body_open + 1;
    while i < f.body_close {
        if f.in_sub_scope(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "return" {
            exits.push(Exit {
                idx: i,
                stmt_end: stmt_end_after(toks, i, f.body_close),
                line: t.line,
                kind: ExitKind::Return,
            });
        } else if t.kind == TokKind::Punct && t.text == "?" {
            // `?` in `impl Trait + ?Sized` is not the try operator.
            let is_sized = toks.get(i + 1).is_some_and(|u| u.text == "Sized");
            // The try operator follows an operand; a leading `?` can't.
            let after_operand = i > 0 && tok_ends_operand(&toks[i - 1]);
            if !is_sized && after_operand {
                exits.push(Exit { idx: i, stmt_end: i, line: t.line, kind: ExitKind::Try });
            }
        }
        i += 1;
    }
    exits.push(Exit {
        idx: f.body_close,
        stmt_end: f.body_close,
        line: toks[f.body_close].line,
        kind: ExitKind::End,
    });
    exits
}

/// End of the statement containing token `i`: the first `;` at relative
/// delimiter depth 0, or the token before a closing delimiter / `,` that
/// leaves the statement's nesting level.
fn stmt_end_after(toks: &[Tok], i: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j <= limit {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return j.saturating_sub(1).max(i);
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return j,
                "," if depth == 0 => return j.saturating_sub(1).max(i),
                _ => {}
            }
        }
        j += 1;
    }
    limit
}

/// Names of functions/methods called (ident directly followed by `(`)
/// inside `[from, to]`, for one-level call-graph edges.
pub fn call_names(toks: &[Tok], from: usize, to: usize) -> Vec<String> {
    let mut out = Vec::new();
    for i in from..to.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "if" | "while" | "for" | "match" | "return" | "loop" | "fn" | "let" | "move" | "in"
        ) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|u| u.kind == TokKind::Punct && u.text == "(") {
            out.push(t.text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnInfo> {
        let (toks, _) = lex(src);
        parse_functions(&toks)
    }

    #[test]
    fn simple_fn_with_exits() {
        let f = &fns("fn f() -> u8 { if x { return 1; } y()?; 2 }")[0];
        assert_eq!(f.name, "f");
        let kinds: Vec<ExitKind> = f.exits.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![ExitKind::Return, ExitKind::Try, ExitKind::End]);
    }

    #[test]
    fn closure_exits_do_not_count() {
        let f = &fns("fn f() { let g = |x| { a()?; return 1; }; g(2); }")[0];
        assert_eq!(f.exits.iter().filter(|e| e.kind != ExitKind::End).count(), 0, "{:?}", f.exits);
        assert_eq!(f.closures.len(), 1);
    }

    #[test]
    fn binary_or_is_not_a_closure() {
        let f = &fns("fn f(a: u8, b: u8) -> u8 { let c = a | b; c }")[0];
        assert!(f.closures.is_empty(), "{:?}", f.closures);
        let g = &fns("fn g(a: bool, b: bool) -> bool { a || b }")[0];
        assert!(g.closures.is_empty(), "{:?}", g.closures);
    }

    #[test]
    fn expression_closure_span_ends_at_comma() {
        let f = &fns("fn f(v: Vec<u8>) { v.iter().map(|x| x + 1).for_each(|y| use_(y)); }")[0];
        assert_eq!(f.closures.len(), 2, "{:?}", f.closures);
    }

    #[test]
    fn zero_param_closure() {
        let f = &fns("fn f() { std::thread::spawn(move || { work()?; }); }")[0];
        assert_eq!(f.closures.len(), 1);
        assert!(f.exits.iter().all(|e| e.kind == ExitKind::End));
    }

    #[test]
    fn nested_fn_is_separate() {
        let all = fns("fn outer() { fn inner() { return; } inner(); }");
        assert_eq!(all.len(), 2);
        let outer = all.iter().find(|f| f.name == "outer").unwrap();
        let inner = all.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.exits.iter().all(|e| e.kind == ExitKind::End), "{:?}", outer.exits);
        assert!(inner.exits.iter().any(|e| e.kind == ExitKind::Return));
    }

    #[test]
    fn question_sized_is_not_an_exit() {
        let f = &fns("fn f<T: ?Sized>(t: &T) { use_(t); }")[0];
        assert!(f.exits.iter().all(|e| e.kind == ExitKind::End));
    }

    #[test]
    fn trait_method_decl_has_no_body() {
        let all = fns("trait T { fn a(&self); fn b(&self) { return; } }");
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name, "b");
    }

    #[test]
    fn return_stmt_end_covers_its_expression() {
        let src = "fn f() { return resolve(id); }";
        let (toks, _) = lex(src);
        let all = parse_functions(&toks);
        let e = all[0].exits.iter().find(|e| e.kind == ExitKind::Return).unwrap();
        let window: Vec<&str> = toks[e.idx..=e.stmt_end].iter().map(|t| t.text.as_str()).collect();
        assert!(window.contains(&"resolve"), "{window:?}");
    }

    #[test]
    fn call_names_found() {
        let (toks, _) = lex("fn f() { self.cleanup(a); helper(); }");
        let all = parse_functions(&toks);
        let f = &all[0];
        let names = call_names(&toks, f.body_open, f.body_close);
        assert!(names.contains(&"cleanup".to_string()));
        assert!(names.contains(&"helper".to_string()));
    }
}
