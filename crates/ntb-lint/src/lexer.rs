//! A hand-rolled Rust tokenizer — just enough lexical structure for the
//! concurrency rules, with no external parser dependency (the workspace is
//! vendored-offline, so `syn` is not an option).
//!
//! The lexer understands the token shapes that would otherwise produce
//! false positives in a grep-based pass: line and (nested) block comments,
//! plain / byte / raw string literals, character literals vs. lifetimes,
//! and numeric literals. Everything else becomes an identifier or a
//! single-character punctuation token. Every token carries its 1-based
//! source line so findings and annotation lookups stay line-accurate.

/// Lexical class of a [`Tok`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `lock`, ...).
    Ident,
    /// Single punctuation character (`.`, `(`, `:`, `#`, ...).
    Punct,
    /// String, byte-string or raw-string literal (contents opaque).
    Str,
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Source text (for `Str` the raw literal including quotes).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// A comment, kept out of the token stream but recorded for annotation
/// lookups (`// SAFETY:`, `// lint: ...`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// Tokenize `src`, returning the token stream and the comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment { line, text: chars[start..i].iter().collect() });
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: chars[start..i.min(n)].iter().collect(),
                });
                continue;
            }
        }
        // Raw strings / raw identifiers / byte strings: r"..", r#".."#,
        // br".."/b"..", r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, raw) = match (c, chars.get(i + 1), chars.get(i + 2)) {
                ('r', Some('"'), _) | ('r', Some('#'), _) => (1, true),
                ('b', Some('"'), _) => (1, false),
                ('b', Some('r'), Some('"')) | ('b', Some('r'), Some('#')) => (2, true),
                _ => (0, false),
            };
            if prefix_len > 0 {
                let start = i;
                let start_line = line;
                let mut j = i + prefix_len;
                if raw {
                    let mut hashes = 0usize;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && chars[j] == '"' {
                        j += 1;
                        // Scan for `"` followed by `hashes` hashes.
                        'raw: while j < n {
                            if chars[j] == '\n' {
                                line += 1;
                            } else if chars[j] == '"' {
                                let mut k = 0usize;
                                while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    j += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            j += 1;
                        }
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: chars[start..j.min(n)].iter().collect(),
                            line: start_line,
                        });
                        i = j;
                        continue;
                    } else if c == 'r' && hashes == 1 && j < n && is_ident_start(chars[j]) {
                        // Raw identifier r#ident.
                        let id_start = j;
                        while j < n && is_ident_cont(chars[j]) {
                            j += 1;
                        }
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            text: chars[id_start..j].iter().collect(),
                            line,
                        });
                        i = j;
                        continue;
                    }
                    // Not actually a raw literal: fall through to ident.
                } else {
                    // b"...": delegate to the plain-string scanner below by
                    // consuming the prefix here.
                    i += prefix_len;
                    let (j, nl) = scan_plain_string(&chars, i);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: chars[start..j].iter().collect(),
                        line: start_line,
                    });
                    line += nl;
                    i = j;
                    continue;
                }
            }
        }
        // Plain strings.
        if c == '"' {
            let start = i;
            let start_line = line;
            let (j, nl) = scan_plain_string(&chars, i);
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[start..j].iter().collect(),
                line: start_line,
            });
            line += nl;
            i = j;
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote.
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let mut j = i + 2;
                while j < n && is_ident_cont(chars[j]) {
                    j += 1;
                }
                if j >= n || chars[j] != '\'' {
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            // Char literal: 'x', '\n', '\u{1F600}', '\''.
            let start = i;
            let mut j = i + 1;
            while j < n {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '\'' {
                    j += 1;
                    break;
                }
                if chars[j] == '\n' {
                    break; // malformed; bail at line end
                }
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Char,
                text: chars[start..j.min(n)].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i + 1;
            while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            // Fractional part only when followed by a digit (so `0..n`
            // ranges and `1.max(2)` method calls keep their dots).
            if j + 1 < n && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
                j += 2;
                while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            toks.push(Tok { kind: TokKind::Num, text: chars[start..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let start = i;
            let mut j = i + 1;
            while j < n && is_ident_cont(chars[j]) {
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: chars[start..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Everything else: one punctuation character.
        toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    (toks, comments)
}

/// Scan a `"..."` literal starting at the opening quote; returns the index
/// one past the closing quote and the number of newlines crossed.
fn scan_plain_string(chars: &[char], open: usize) -> (usize, u32) {
    let n = chars.len();
    let mut j = open + 1;
    let mut newlines = 0u32;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                break;
            }
            '\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j.min(n), newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).0.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone()).collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let (toks, comments) = lex("let x = 1; // unwrap() in a comment\n/* unsafe */ let y;");
        assert!(toks.iter().all(|t| t.text != "unwrap" && t.text != "unsafe"));
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("unwrap"));
    }

    #[test]
    fn strings_are_opaque() {
        let (toks, _) = lex(r#"let s = "call .unwrap() here"; s.len();"#);
        assert!(!idents(r#"let s = ".unwrap()";"#).contains(&"unwrap".to_string()));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn raw_and_byte_strings() {
        let (toks, _) =
            lex(r##"let a = r#"raw "quoted" unsafe"#; let b = b"bytes"; let c = br"rb";"##);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 3);
        assert!(!toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "unsafe"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn lines_are_tracked() {
        let (toks, comments) = lex("a\nb // c\nd");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(comments[0].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "x");
        assert_eq!(comments.len(), 1);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let (toks, _) = lex("for i in 0..10 { let m = 1.max(2); let f = 1.5e3; }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "max"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "1.5e3"));
    }
}
