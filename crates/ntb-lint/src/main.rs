//! CLI for the workspace concurrency lint.
//!
//! ```text
//! cargo run -p ntb-lint                  # lint the workspace (crates/*/src)
//! cargo run -p ntb-lint -- --file F.rs   # lint one file, all rules apply
//! cargo run -p ntb-lint -- --print-order # show the declared lock hierarchy
//! cargo run -p ntb-lint -- --root DIR    # lint a workspace rooted elsewhere
//! ```
//!
//! Exits 0 when clean, 1 on findings, 2 on usage/IO errors.

use ntb_lint::{manifest, scan_file, scan_workspace, FileMode};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--file" => {
                i += 1;
                match args.get(i) {
                    Some(f) => files.push(PathBuf::from(f)),
                    None => return usage("--file requires a path"),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(r) => root = Some(PathBuf::from(r)),
                    None => return usage("--root requires a directory"),
                }
            }
            "--print-order" => {
                print_order();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    let result = if files.is_empty() {
        let root = root.unwrap_or_else(find_workspace_root);
        scan_workspace(&root)
    } else {
        let mut out = Vec::new();
        for f in &files {
            match scan_file(f, FileMode::Single) {
                Ok(fs) => out.extend(fs),
                Err(e) => {
                    eprintln!("ntb-lint: cannot read {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        Ok(out)
    };

    match result {
        Ok(findings) if findings.is_empty() => {
            println!("ntb-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("ntb-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ntb-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walk up from the current directory (or this crate's manifest dir) to the
/// directory containing `crates/`.
fn find_workspace_root() -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for dir in start.ancestors() {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir.to_path_buf();
        }
    }
    // Fall back to the location baked in at compile time (../.. from this
    // crate), so `cargo run -p ntb-lint` works from anywhere.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap_or(start)
}

fn print_order() {
    println!("Declared lock hierarchy (acquire top-to-bottom; ranks strictly increase):\n");
    for c in manifest::LOCK_ORDER {
        println!("  {:>4}  {:<18} {}", c.rank, c.name, c.rationale);
    }
    println!("\nClassified sites: {}", manifest::LOCK_SITES.len());
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ntb-lint: {err}");
    }
    eprintln!(
        "usage: ntb-lint [--root DIR] [--file FILE.rs]... [--print-order]\n\
         \n\
         With no arguments, lints every workspace source file (crates/*/src).\n\
         --file applies every rule to the named file (fixture mode)."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
