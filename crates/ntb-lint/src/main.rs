//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p ntb-lint                  # lint the workspace (crates/*/src)
//! cargo run -p ntb-lint -- --file F.rs   # lint one file, all rules apply
//! cargo run -p ntb-lint -- --rule ID     # only report findings from rule ID
//! cargo run -p ntb-lint -- --json        # machine-readable findings + stats
//! cargo run -p ntb-lint -- --print-order # show the declared lock hierarchy
//! cargo run -p ntb-lint -- --root DIR    # lint a workspace rooted elsewhere
//! ```
//!
//! Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.

use ntb_lint::{
    manifest, scan_source_with_stats, scan_workspace_with_stats, FileMode, Finding, ScanStats,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut rules: Vec<String> = Vec::new();
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--file" => {
                i += 1;
                match args.get(i) {
                    Some(f) => files.push(PathBuf::from(f)),
                    None => return usage("--file requires a path"),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(r) => root = Some(PathBuf::from(r)),
                    None => return usage("--root requires a directory"),
                }
            }
            "--rule" => {
                i += 1;
                match args.get(i) {
                    Some(r) if manifest::RULE_PRECEDENCE.contains(&r.as_str()) => {
                        rules.push(r.clone())
                    }
                    Some(r) => {
                        return usage(&format!(
                            "unknown rule `{r}`; known rules: {}",
                            manifest::RULE_PRECEDENCE.join(", ")
                        ))
                    }
                    None => return usage("--rule requires a rule id"),
                }
            }
            "--json" => json = true,
            "--print-order" => {
                print_order();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    let result: std::io::Result<(Vec<Finding>, ScanStats)> = if files.is_empty() {
        let root = root.unwrap_or_else(find_workspace_root);
        scan_workspace_with_stats(&root)
    } else {
        let mut out = Vec::new();
        let mut stats = ScanStats::default();
        let mut err = None;
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(src) => {
                    let (fnd, s) =
                        scan_source_with_stats(&f.display().to_string(), &src, FileMode::Single);
                    out.extend(fnd);
                    stats = merge(stats, s);
                }
                Err(e) => {
                    eprintln!("ntb-lint: cannot read {}: {e}", f.display());
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            Some(_) => return ExitCode::from(2),
            None => Ok((out, stats)),
        }
    };

    match result {
        Ok((mut findings, stats)) => {
            if !rules.is_empty() {
                findings.retain(|f| rules.iter().any(|r| r == f.rule));
            }
            if json {
                println!("{}", render_json(&findings, &stats));
            } else if findings.is_empty() {
                println!("ntb-lint: clean ({stats})");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("ntb-lint: {} finding(s) ({stats})", findings.len());
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ntb-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn merge(mut a: ScanStats, b: ScanStats) -> ScanStats {
    a.files += b.files;
    a.functions += b.functions;
    a.acquires += b.acquires;
    a.exits_checked += b.exits_checked;
    a.waits_checked += b.waits_checked;
    a.loops_checked += b.loops_checked;
    a.errors_checked += b.errors_checked;
    a
}

/// Hand-rolled JSON (the lint is deliberately dependency-free).
fn render_json(findings: &[Finding], stats: &ScanStats) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str(&format!(
        "  \"stats\": {{\"files\": {}, \"functions\": {}, \"acquires\": {}, \
         \"exits_checked\": {}, \"waits_checked\": {}, \"loops_checked\": {}, \
         \"errors_checked\": {}}},\n",
        stats.files,
        stats.functions,
        stats.acquires,
        stats.exits_checked,
        stats.waits_checked,
        stats.loops_checked,
        stats.errors_checked
    ));
    s.push_str(&format!("  \"clean\": {}\n}}", findings.is_empty()));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Walk up from the current directory (or this crate's manifest dir) to the
/// directory containing `crates/`.
fn find_workspace_root() -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for dir in start.ancestors() {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir.to_path_buf();
        }
    }
    // Fall back to the location baked in at compile time (../.. from this
    // crate), so `cargo run -p ntb-lint` works from anywhere.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap_or(start)
}

fn print_order() {
    println!("Declared lock hierarchy (acquire top-to-bottom; ranks strictly increase):\n");
    for c in manifest::LOCK_ORDER {
        println!("  {:>4}  {:<18} {}", c.rank, c.name, c.rationale);
    }
    println!("\nClassified sites: {}", manifest::LOCK_SITES.len());
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ntb-lint: {err}");
    }
    eprintln!(
        "usage: ntb-lint [--root DIR] [--file FILE.rs]... [--rule ID]... [--json] [--print-order]\n\
         \n\
         With no arguments, lints every workspace source file (crates/*/src).\n\
         --file applies every rule to the named file (fixture mode).\n\
         --rule limits output to the named rule id (repeatable); known ids:\n\
         \x20    {}\n\
         --json prints findings and evidence counters as machine-readable JSON\n\
         (the CI lint job uploads this as an artifact on failure).\n\
         \n\
         exit codes: 0 = clean, 1 = findings reported, 2 = usage or I/O error",
        manifest::RULE_PRECEDENCE.join(", ")
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
