//! Rule `deadline-clip`: blocking wait primitives inside op-completion
//! code must derive their timeout from a deadline-clipped expression.
//!
//! The defect class (fixed by hand in PRs 6 and 7): a wait uses a policy
//! constant (`ack_timeout`, a 50 ms poll tick) instead of clipping to the
//! op deadline, so a typed `DeadlineExceeded` degrades into `LinkFailed`
//! after the full retry ladder. The rule requires every call to a
//! [`manifest::WAIT_PRIMITIVES`] name to mention a deadline-derived
//! identifier ([`manifest::DEADLINE_IDENTS`] substrings) in its argument
//! list, or to carry `// DEADLINE-CLIPPED: why`.

use crate::lexer::TokKind;
use crate::rules::{has_justified_annotation, in_protocol_scope};
use crate::{manifest, FileCtx, FileMode, Finding, ScanStats};

pub(crate) fn run(
    ctx: &FileCtx<'_>,
    mode: FileMode,
    out: &mut Vec<Finding>,
    stats: &mut ScanStats,
) {
    if !in_protocol_scope(ctx.file, mode) {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !manifest::WAIT_PRIMITIVES.contains(&t.text.as_str()) {
            continue;
        }
        // A call site, not a definition (`fn wait_until(..)`) or a path
        // segment without arguments.
        if toks.get(i + 1).is_none_or(|u| u.text != "(") {
            continue;
        }
        if i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn" {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        stats.waits_checked += 1;
        // Argument span: `(` .. matching `)`.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut clipped = false;
        while j < toks.len() {
            let u = &toks[j];
            if u.kind == TokKind::Punct {
                match u.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            } else if u.kind == TokKind::Ident {
                let lower = u.text.to_ascii_lowercase();
                if manifest::DEADLINE_IDENTS.iter().any(|d| lower.contains(d)) {
                    clipped = true;
                }
            }
            j += 1;
        }
        if clipped || has_justified_annotation(ctx, t.line, "DEADLINE-CLIPPED:") {
            continue;
        }
        out.push(Finding {
            file: ctx.file.to_string(),
            line: t.line,
            rule: "deadline-clip",
            message: format!(
                "`{}(..)` with no deadline-derived timeout in its arguments; clip the wait \
                 to the op deadline (e.g. `deadline.saturating_duration_since(now)`), or \
                 justify with `// DEADLINE-CLIPPED: why`",
                t.text
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::{scan_source, FileMode, Finding};

    fn findings(src: &str) -> Vec<Finding> {
        scan_source("mem://deadline.rs", src, FileMode::Single)
    }

    #[test]
    fn unclipped_wait_is_flagged() {
        let out = findings("fn f() { cond.wait_timeout(&mut g, Duration::from_millis(50)); }");
        assert!(out.iter().any(|f| f.rule == "deadline-clip"), "{out:?}");
    }

    #[test]
    fn deadline_derived_argument_passes() {
        let ok = "fn f() { cond.wait_timeout(&mut g, deadline.saturating_duration_since(now)); }";
        assert!(findings(ok).iter().all(|f| f.rule != "deadline-clip"));
        let ok2 = "fn f() { thread::sleep(remaining.min(TICK)); }";
        assert!(findings(ok2).iter().all(|f| f.rule != "deadline-clip"));
    }

    #[test]
    fn annotation_waives_with_reason_only() {
        let ok = "fn f() {\n\
                  // DEADLINE-CLIPPED: poll quantum; the loop checks the op deadline.\n\
                  thread::sleep(TICK);\n\
                  }";
        assert!(findings(ok).iter().all(|f| f.rule != "deadline-clip"));
        // Empty reason is tampering.
        let bad = "fn f() {\n// DEADLINE-CLIPPED:\nthread::sleep(TICK);\n}";
        assert!(findings(bad).iter().any(|f| f.rule == "deadline-clip"));
    }

    #[test]
    fn definitions_are_not_call_sites() {
        let src = "fn wait_until(&self, id: u64) -> bool { true }";
        assert!(findings(src).iter().all(|f| f.rule != "deadline-clip"));
    }
}
