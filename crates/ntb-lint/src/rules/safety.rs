//! Rule `safety`: every non-test `unsafe` carries a `// SAFETY:` comment.

use crate::lexer::TokKind;
use crate::{FileCtx, Finding};

pub(crate) fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.toks {
        if t.kind == TokKind::Ident
            && t.text == "unsafe"
            && !ctx.in_test(t.line)
            && !ctx.annotated(t.line, "SAFETY:")
        {
            out.push(Finding {
                file: ctx.file.to_string(),
                line: t.line,
                rule: "safety",
                message: "`unsafe` without a `// SAFETY:` comment stating the upheld invariant"
                    .into(),
            });
        }
    }
}
