//! Rule `atomics`: allowlisted atomic orderings; `Relaxed` needs
//! `// lint: relaxed-ok(reason)`, and importing `Ordering::Relaxed` is
//! forbidden (it hides the ordering at every use site).

use crate::lexer::{Tok, TokKind};
use crate::{FileCtx, Finding};

const ALLOWED_ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];

pub(crate) fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "Ordering") {
            continue;
        }
        // Match `Ordering :: <Variant>`.
        let (Some(c1), Some(c2), Some(v)) = (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
        else {
            continue;
        };
        if c1.text != ":" || c2.text != ":" || v.kind != TokKind::Ident {
            continue;
        }
        if ctx.in_test(v.line) {
            continue;
        }
        if stmt_starts_with_use(toks, i) {
            if v.text == "Relaxed" {
                out.push(Finding {
                    file: ctx.file.to_string(),
                    line: v.line,
                    rule: "atomics",
                    message: "importing `Ordering::Relaxed` hides the ordering at use sites; \
                              name `Ordering::Relaxed` explicitly at each load/store"
                        .into(),
                });
            }
            continue;
        }
        if ALLOWED_ORDERINGS.contains(&v.text.as_str()) {
            continue;
        }
        if v.text == "Relaxed" {
            if !ctx.annotated(v.line, "lint: relaxed-ok") {
                out.push(Finding {
                    file: ctx.file.to_string(),
                    line: v.line,
                    rule: "atomics",
                    message: "`Ordering::Relaxed` without `// lint: relaxed-ok(reason)`; \
                              protocol state needs an explicit justification for no ordering"
                        .into(),
                });
            }
        } else {
            out.push(Finding {
                file: ctx.file.to_string(),
                line: v.line,
                rule: "atomics",
                message: format!("unknown atomic ordering `{}`", v.text),
            });
        }
    }
}

/// Does the statement containing token `i` start with `use`?
fn stmt_starts_with_use(toks: &[Tok], i: usize) -> bool {
    for j in (0..i).rev() {
        let t = &toks[j];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            return toks.get(j + 1).is_some_and(|t| t.text == "use");
        }
    }
    toks.first().is_some_and(|t| t.text == "use")
}
