//! Rule `typed-error`: constructing a failure variant of the typed error
//! ladder must co-occur with pending-entry resolution.
//!
//! Constructing `NtbError::LinkFailed` / `DeadlineExceeded` /
//! `Overloaded` / `PeFailed` (or the `ShmemError` equivalents) means "an
//! in-flight op is being failed". Doing so while leaving the pending or
//! unacked entry live is the PR 6 `fail_expired` bug shape: the caller
//! gets a typed verdict but the table still carries the ghost entry. The
//! rule requires the containing function to call one of
//! [`manifest::RESOLVER_CALLS`], or the site to carry a
//! `// RESOLVES(<event-or-none>): why` annotation explaining where the
//! entry is (or why none exists).
//!
//! Pattern positions (`match` arms, `matches!`, `if let`) are uses, not
//! constructions, and are skipped by shape heuristics.

use crate::lexer::TokKind;
use crate::rules::{has_resolves_annotation, in_protocol_scope};
use crate::{manifest, FileCtx, FileMode, Finding, ScanStats};

pub(crate) fn run(
    ctx: &FileCtx<'_>,
    mode: FileMode,
    out: &mut Vec<Finding>,
    stats: &mut ScanStats,
) {
    if !in_protocol_scope(ctx.file, mode) {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !manifest::ERROR_ENUMS.contains(&t.text.as_str()) {
            continue;
        }
        let (Some(c1), Some(c2), Some(v)) = (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
        else {
            continue;
        };
        if c1.text != ":" || c2.text != ":" || v.kind != TokKind::Ident {
            continue;
        }
        if !manifest::FAIL_VARIANTS.contains(&v.text.as_str()) {
            continue;
        }
        if ctx.in_test(v.line) {
            continue;
        }
        if is_pattern_position(toks, i) {
            continue;
        }
        stats.errors_checked += 1;
        let Some(f) = ctx.enclosing_fn(i) else { continue };
        // Any resolver call in the function counts (the resolution rule
        // handles per-exit precision; this rule is a co-occurrence check).
        let mut resolved = false;
        for j in f.body_open..=f.body_close.min(toks.len() - 1) {
            let u = &toks[j];
            if u.kind == TokKind::Ident
                && manifest::RESOLVER_CALLS.contains(&u.text.as_str())
                && toks.get(j + 1).is_some_and(|w| w.text == "(")
            {
                resolved = true;
                break;
            }
        }
        if resolved || has_resolves_annotation(ctx, v.line, None) {
            continue;
        }
        out.push(Finding {
            file: ctx.file.to_string(),
            line: v.line,
            rule: "typed-error",
            message: format!(
                "`{}` constructs `{}::{}` but `{}` never resolves a pending entry \
                 (no abandon/fail/ack/drain call); resolve the entry here, or annotate with \
                 `// RESOLVES(<event>): why` (use `RESOLVES(none): ..` when no entry exists)",
                f.name, t.text, v.text, f.name
            ),
        });
    }
}

/// Is `Enum :: Variant` at token `i` a pattern (match arm / `matches!` /
/// `if let`) rather than a construction?
fn is_pattern_position(toks: &[crate::lexer::Tok], i: usize) -> bool {
    // Backward: a `matches!(` within a few tokens, or a `let` with no `=`
    // between it and the variant (`if let Err(NtbError::X) = ..`).
    let back = i.saturating_sub(8);
    let mut saw_eq = false;
    for j in (back..i).rev() {
        let t = &toks[j];
        if t.kind == TokKind::Punct && t.text == "=" {
            saw_eq = true;
        }
        if t.kind == TokKind::Ident {
            if t.text == "matches" {
                return true;
            }
            if t.text == "let" && !saw_eq {
                return true;
            }
        }
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
    }
    // Forward: skip the variant's struct body and closing delimiters,
    // then look for `=>` (a match arm) or a guard `if`.
    let mut j = i + 4;
    if toks.get(j).is_some_and(|t| t.text == "{") {
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    while toks.get(j).is_some_and(|t| matches!(t.text.as_str(), ")" | "]" | "}")) {
        j += 1;
    }
    if toks.get(j).is_some_and(|t| t.text == "|") {
        // Or-pattern: `NtbError::A | NtbError::B => ..`.
        return true;
    }
    if toks.get(j).is_some_and(|t| t.text == "if") {
        return true;
    }
    toks.get(j).is_some_and(|t| t.text == "=") && toks.get(j + 1).is_some_and(|t| t.text == ">")
}

#[cfg(test)]
mod tests {
    use crate::{scan_source, FileMode, Finding};

    fn findings(src: &str) -> Vec<Finding> {
        scan_source("mem://typederr.rs", src, FileMode::Single)
    }

    #[test]
    fn construction_without_resolution_is_flagged() {
        let src = "fn f(&self) -> Result<(), NtbError> { Err(NtbError::DeadlineExceeded) }";
        let out = findings(src);
        assert!(out.iter().any(|f| f.rule == "typed-error"), "{out:?}");
    }

    #[test]
    fn construction_with_resolver_call_passes() {
        let src = "fn f(&self, id: u64) -> Result<(), NtbError> {\n\
                   self.pending.abandon(id);\n\
                   Err(NtbError::DeadlineExceeded)\n\
                   }";
        assert!(findings(src).iter().all(|f| f.rule != "typed-error"));
    }

    #[test]
    fn match_arm_patterns_are_uses_not_constructions() {
        let src = "fn f(e: &NtbError) -> bool {\n\
                   match e {\n\
                   NtbError::LinkFailed { .. } => true,\n\
                   NtbError::DeadlineExceeded => true,\n\
                   NtbError::PeFailed { pe, .. } if *pe == 0 => true,\n\
                   _ => false,\n\
                   }\n\
                   }";
        assert!(findings(src).iter().all(|f| f.rule != "typed-error"), "{:?}", findings(src));
    }

    #[test]
    fn matches_macro_and_if_let_are_uses() {
        let src = "fn f(e: &NtbError) -> bool { matches!(e, NtbError::LinkFailed { .. }) }";
        assert!(findings(src).iter().all(|f| f.rule != "typed-error"));
        let src2 = "fn g(r: Result<(), NtbError>) -> bool {\n\
                    if let Err(NtbError::DeadlineExceeded) = r { return true; }\n\
                    false\n\
                    }";
        assert!(findings(src2).iter().all(|f| f.rule != "typed-error"), "{:?}", findings(src2));
    }

    #[test]
    fn annotation_with_none_event_waives() {
        let src = "fn f(&self) -> Result<(), NtbError> {\n\
                   // RESOLVES(none): fast-fail gate, no pending entry exists yet.\n\
                   Err(NtbError::PeFailed { pe: 0, epoch: 1 })\n\
                   }";
        assert!(findings(src).iter().all(|f| f.rule != "typed-error"));
    }

    #[test]
    fn or_pattern_is_a_use() {
        let src = "fn f(e: &NtbError) -> bool {\n\
                   match e { NtbError::DeadlineExceeded | NtbError::LinkDown => true, _ => false }\n\
                   }";
        assert!(findings(src).iter().all(|f| f.rule != "typed-error"));
    }
}
