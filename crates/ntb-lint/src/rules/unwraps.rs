//! Rule `unwraps`: no `.unwrap()` / `.expect(` in non-test ntb-net /
//! shmem-core code without `// lint: unwrap-ok(reason)`.

use crate::lexer::TokKind;
use crate::rules::in_protocol_scope;
use crate::{FileCtx, FileMode, Finding};

pub(crate) fn run(ctx: &FileCtx<'_>, mode: FileMode, out: &mut Vec<Finding>) {
    if !in_protocol_scope(ctx.file, mode) {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == ".") {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !(m.kind == TokKind::Ident && (m.text == "unwrap" || m.text == "expect")) {
            continue;
        }
        if toks.get(i + 2).is_none_or(|t| t.text != "(") {
            continue;
        }
        if ctx.in_test(m.line) || ctx.annotated(m.line, "lint: unwrap-ok") {
            continue;
        }
        out.push(Finding {
            file: ctx.file.to_string(),
            line: m.line,
            rule: "unwraps",
            message: format!(
                "`.{}()` in non-test code: return a typed `ShmemError`/`NtbError`, \
                 or justify with `// lint: unwrap-ok(reason)`",
                m.text
            ),
        });
    }
}
