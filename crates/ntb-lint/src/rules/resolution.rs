//! Rule `resolution`: lifecycle acquire/resolution pairing, per function.
//!
//! An *acquire* is an `obs.emit(EventKind::<X>, ..)` of a registered
//! acquire-side event ([`manifest::EVENT_PAIRS`]) or a classified
//! protocol-table insert like `pending.register(..)`
//! ([`manifest::CALL_PAIRS`]). Every control-flow exit of the containing
//! function that is reachable *after* the acquire (in token order) must
//! pass a paired resolution first:
//!
//! - an emit of one of the pair's resolution events,
//! - a call to one of the pair's resolver methods, or
//! - a call to a *local* function whose own body contains one of those
//!   (one-level call-graph credit, e.g. `fail_ops_to` resolving for its
//!   callers),
//!
//! or the site carries a `// RESOLVES(<event>): why` annotation — at the
//! acquire line to waive the whole site, or at the exit line to waive
//! that one path.
//!
//! Coverage is a linear token-order approximation (this is a lint, not a
//! verifier): a resolution token anywhere between the acquire and the
//! exit counts. That over-approximates on branches that bypass the
//! resolution, but it reliably catches the real defect class — an early
//! `return` or `?` between acquire and resolve — which is what PRs 2, 6
//! and 7 each fixed by hand.

use crate::lexer::{Tok, TokKind};
use crate::parse::ExitKind;
use crate::rules::{has_resolves_annotation, in_protocol_scope};
use crate::{manifest, FileCtx, FileMode, Finding, ScanStats};
use std::collections::{HashMap, HashSet};

/// One acquire site found in a function body.
struct Acquire {
    /// Token index of the acquire (the event variant / the method name).
    idx: usize,
    line: u32,
    /// Display name (`GetReqTx`, `pending.register`, ...).
    event: &'static str,
    /// Resolution event names.
    resolve_events: &'static [&'static str],
    /// Resolution call names.
    resolve_calls: &'static [&'static str],
}

pub(crate) fn run(
    ctx: &FileCtx<'_>,
    mode: FileMode,
    out: &mut Vec<Finding>,
    stats: &mut ScanStats,
) {
    if !in_protocol_scope(ctx.file, mode) {
        return;
    }
    let toks = &ctx.toks;

    // One-level call graph: which resolution tokens does each local fn
    // contain? (event variants emitted + methods called)
    let mut fn_tokens: HashMap<&str, HashSet<&str>> = HashMap::new();
    for f in &ctx.fns {
        let mut set = HashSet::new();
        for t in &toks[f.body_open..=f.body_close.min(toks.len() - 1)] {
            if t.kind == TokKind::Ident {
                set.insert(t.text.as_str());
            }
        }
        // Last definition wins on duplicate names across impls; for
        // resolution credit a union would also be sound, so merge.
        fn_tokens.entry(f.name.as_str()).or_default().extend(set);
    }

    for f in &ctx.fns {
        if ctx.in_test(f.line) || ctx.in_test(toks[f.body_open].line) {
            continue;
        }
        let acquires = find_acquires(toks, f.body_open, f.body_close);
        for a in acquires {
            if ctx.in_test(a.line) {
                continue;
            }
            stats.acquires += 1;
            // An annotation at the acquire waives every exit.
            if has_resolves_annotation(ctx, a.line, Some(a.event)) {
                continue;
            }
            for e in &f.exits {
                // Exits lexically before the acquire can't leak the entry.
                if e.stmt_end < a.idx {
                    continue;
                }
                stats.exits_checked += 1;
                let window_end = e.stmt_end.min(f.body_close);
                if window_covers(toks, a.idx + 1, window_end, &a, &fn_tokens) {
                    continue;
                }
                if has_resolves_annotation(ctx, e.line, Some(a.event)) {
                    continue;
                }
                let how = match e.kind {
                    ExitKind::Return => "an explicit `return`",
                    ExitKind::Try => "a `?` propagation",
                    ExitKind::End => "the end of the function",
                };
                out.push(Finding {
                    file: ctx.file.to_string(),
                    line: e.line,
                    rule: "resolution",
                    message: format!(
                        "`{}` acquires `{}` at line {} but {} leaves it unresolved; \
                         reach one of [{}] on this path, or annotate the acquire or this \
                         exit with `// RESOLVES({}): why`",
                        f.name,
                        a.event,
                        a.line,
                        how,
                        a.resolve_events
                            .iter()
                            .chain(a.resolve_calls.iter())
                            .copied()
                            .collect::<Vec<_>>()
                            .join(", "),
                        a.event
                    ),
                });
            }
        }
    }
}

/// Find acquire sites in `[from, to]`.
fn find_acquires(toks: &[Tok], from: usize, to: usize) -> Vec<Acquire> {
    let mut out = Vec::new();
    for i in from..=to.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Event acquire: `emit ( EventKind :: <X>` — requiring the emit
        // prefix keeps match arms over EventKind (the checker, tests)
        // from reading as acquires.
        if t.text == "EventKind"
            && i >= 2
            && toks[i - 2].text == "emit"
            && toks[i - 1].text == "("
            && toks.get(i + 1).is_some_and(|u| u.text == ":")
            && toks.get(i + 2).is_some_and(|u| u.text == ":")
        {
            if let Some(v) = toks.get(i + 3) {
                if let Some(pair) = manifest::EVENT_PAIRS.iter().find(|p| p.acquire_event == v.text)
                {
                    out.push(Acquire {
                        idx: i + 3,
                        line: v.line,
                        event: pair.acquire_event,
                        resolve_events: pair.resolve_events,
                        resolve_calls: pair.resolve_calls,
                    });
                }
            }
            continue;
        }
        // Table acquire: `<receiver> . <method> (`.
        if let Some(cp) = manifest::CALL_PAIRS.iter().find(|cp| cp.method == t.text) {
            let recv_ok = i >= 2
                && toks[i - 1].text == "."
                && toks[i - 2].kind == TokKind::Ident
                && toks[i - 2].text == cp.receiver;
            let called = toks.get(i + 1).is_some_and(|u| u.text == "(");
            if recv_ok && called {
                out.push(Acquire {
                    idx: i,
                    line: t.line,
                    event: cp.event,
                    resolve_events: &[],
                    resolve_calls: cp.resolutions,
                });
            }
        }
    }
    out
}

/// Does the token window `[from, to]` contain a resolution for `a`?
fn window_covers(
    toks: &[Tok],
    from: usize,
    to: usize,
    a: &Acquire,
    fn_tokens: &HashMap<&str, HashSet<&str>>,
) -> bool {
    for i in from..=to.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Resolution event mention: `EventKind :: <R>`.
        if t.text == "EventKind"
            && toks.get(i + 1).is_some_and(|u| u.text == ":")
            && toks.get(i + 2).is_some_and(|u| u.text == ":")
            && toks.get(i + 3).is_some_and(|u| {
                u.kind == TokKind::Ident && a.resolve_events.contains(&u.text.as_str())
            })
        {
            return true;
        }
        // Resolver call, or one-level local-call credit.
        if toks.get(i + 1).is_some_and(|u| u.text == "(") {
            let name = t.text.as_str();
            if a.resolve_calls.contains(&name) {
                return true;
            }
            if let Some(body) = fn_tokens.get(name) {
                if a.resolve_events.iter().chain(a.resolve_calls.iter()).any(|r| body.contains(r)) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::{scan_source, FileMode, Finding};

    fn findings(src: &str) -> Vec<Finding> {
        scan_source("mem://resolution.rs", src, FileMode::Single)
    }

    #[test]
    fn early_try_exit_after_acquire_is_flagged() {
        let src = "fn f(&self) -> Result<(), E> {\n\
                   let id = self.pending.register(8, target);\n\
                   self.obs.emit(EventKind::GetReqTx, id, [0, 0]);\n\
                   let off = offset32(x)?;\n\
                   self.pending.wait_with_retry_until(id, off, None)\n\
                   }";
        let out = findings(src);
        assert!(out.iter().any(|f| f.rule == "resolution" && f.line == 4), "{out:?}");
    }

    #[test]
    fn resolved_on_every_exit_is_clean() {
        let src = "fn f(&self) -> Result<(), E> {\n\
                   let id = self.pending.register(8, target);\n\
                   self.obs.emit(EventKind::GetReqTx, id, [0, 0]);\n\
                   self.pending.wait_with_retry_until(id, model, None)?;\n\
                   self.obs.emit(EventKind::GetDone, id, [0, 0]);\n\
                   Ok(())\n\
                   }";
        let out = findings(src);
        assert!(out.iter().all(|f| f.rule != "resolution"), "{out:?}");
    }

    #[test]
    fn acquire_annotation_waives_all_exits() {
        let src = "fn f(&self) {\n\
                   // RESOLVES(CreditConsume): the peer re-grants after absorbing the frame.\n\
                   self.obs.emit(EventKind::CreditConsume, 1, [0, 0]);\n\
                   }";
        assert!(findings(src).iter().all(|f| f.rule != "resolution"));
    }

    #[test]
    fn wrong_event_annotation_still_fires() {
        let src = "fn f(&self) {\n\
                   // RESOLVES(PutIssue): mismatched pairing must not waive this.\n\
                   self.obs.emit(EventKind::CreditConsume, 1, [0, 0]);\n\
                   }";
        assert!(findings(src).iter().any(|f| f.rule == "resolution"));
    }

    #[test]
    fn one_level_call_graph_credit() {
        let src = "fn cleanup(&self, pe: u16) { self.pending.fail_dest(pe, err()); }\n\
                   fn f(&self) {\n\
                   self.obs.emit(EventKind::GetReqTx, 1, [0, 0]);\n\
                   self.cleanup(3);\n\
                   }";
        let out = findings(src);
        assert!(out.iter().all(|f| f.rule != "resolution"), "{out:?}");
    }

    #[test]
    fn checker_style_match_arms_are_not_acquires() {
        let src = "fn f(kind: EventKind) -> bool {\n\
                   matches!(kind, EventKind::GetReqTx | EventKind::PutIssue)\n\
                   }";
        assert!(findings(src).iter().all(|f| f.rule != "resolution"));
    }
}
