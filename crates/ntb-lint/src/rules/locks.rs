//! Rule `locks`: classified lock sites + intra-function rank ordering,
//! plus the `lockdep-sync` class-table consistency check.

use crate::lexer::{Tok, TokKind};
use crate::{manifest, FileCtx, Finding};

/// One lock acquisition discovered in the token stream.
struct Acq {
    line: u32,
    receiver: String,
    /// Index of the `.` token, for statement-shape probing.
    dot: usize,
}

pub(crate) fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    // Pass A: find acquisitions -> classify.
    let mut acqs: Vec<(Acq, Option<&'static manifest::LockClassDecl>)> = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == ".") {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !(m.kind == TokKind::Ident && matches!(m.text.as_str(), "lock" | "read" | "write")) {
            continue;
        }
        // Require an empty argument list: distinguishes RwLock::read()
        // from e.g. Region::read(addr, buf).
        if !(toks.get(i + 2).is_some_and(|t| t.text == "(")
            && toks.get(i + 3).is_some_and(|t| t.text == ")"))
        {
            continue;
        }
        if ctx.in_test(m.line) {
            continue;
        }
        let Some(recv) = (i > 0).then(|| &toks[i - 1]).filter(|t| t.kind == TokKind::Ident) else {
            // `.lock()` on a non-identifier receiver (call result etc.).
            if !ctx.annotated(m.line, "lint: lock-order-ok") {
                out.push(Finding {
                    file: ctx.file.to_string(),
                    line: m.line,
                    rule: "locks",
                    message: format!(
                        "`.{}()` on a non-identifier receiver cannot be classified; \
                         bind the lock to a named field/binding listed in LOCK_SITES",
                        m.text
                    ),
                });
            }
            continue;
        };
        let class = manifest::classify(ctx.file, &recv.text);
        if class.is_none() {
            out.push(Finding {
                file: ctx.file.to_string(),
                line: m.line,
                rule: "locks",
                message: format!(
                    "unclassified lock acquisition `{}.{}()`; add a LOCK_SITES entry \
                     (file suffix + receiver -> class) to crates/ntb-lint/src/manifest.rs",
                    recv.text, m.text
                ),
            });
        }
        acqs.push((Acq { line: m.line, receiver: recv.text.clone(), dot: i }, class));
    }

    // Pass B: intra-function ordering. Walk the token stream tracking brace
    // depth; a guard bound by a `let`-containing statement lives until its
    // enclosing block closes, anything else dies at the statement's `;`.
    struct Held {
        rank: u32,
        name: &'static str,
        depth: i32,
        block_scoped: bool,
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = 0usize; // token index of current statement start
    let mut acq_iter = acqs.iter().filter(|(_, c)| c.is_some()).peekable();
    for i in 0..toks.len() {
        // Acquisition at this token?
        while let Some((acq, class)) = acq_iter.peek() {
            if acq.dot != i {
                break;
            }
            let class = class.expect("filtered to classified sites");
            let block_scoped = guard_is_block_scoped(toks, stmt_start, acq.dot);
            for h in &held {
                if class.rank <= h.rank && !ctx.annotated(acq.line, "lint: lock-order-ok") {
                    out.push(Finding {
                        file: ctx.file.to_string(),
                        line: acq.line,
                        rule: "locks",
                        message: format!(
                            "lock order violation: acquiring `{}` (class {}, rank {}) while \
                             holding `{}` (rank {}); ranks must strictly increase — \
                             see the LOCK_ORDER manifest",
                            acq.receiver, class.name, class.rank, h.name, h.rank
                        ),
                    });
                }
            }
            held.push(Held { rank: class.rank, name: class.name, depth, block_scoped });
            acq_iter.next();
        }
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "{" => {
                    depth += 1;
                    stmt_start = i + 1;
                }
                "}" => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                    stmt_start = i + 1;
                }
                // `,` ends a match arm (and an argument position, where a
                // temporary guard dies with the full expression anyway).
                ";" | "," => {
                    held.retain(|h| h.block_scoped || h.depth < depth);
                    stmt_start = i + 1;
                }
                _ => {}
            }
        }
    }

    // Pass C: lockdep class-table sync. When scanning the runtime lockdep
    // module, every `LockClass { name: "...", rank: N }` literal must match
    // the manifest.
    if ctx.file.replace('\\', "/").ends_with("ntb-net/src/lockdep.rs") {
        for i in 0..toks.len() {
            if !(toks[i].kind == TokKind::Ident && toks[i].text == "LockClass") {
                continue;
            }
            if toks.get(i + 1).is_none_or(|t| t.text != "{") {
                continue;
            }
            let mut name: Option<String> = None;
            let mut rank: Option<u32> = None;
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "}" {
                if toks[j].text == "name" && toks.get(j + 2).map(|t| t.kind) == Some(TokKind::Str) {
                    name = Some(toks[j + 2].text.trim_matches('"').to_string());
                }
                if toks[j].text == "rank" && toks.get(j + 2).map(|t| t.kind) == Some(TokKind::Num) {
                    rank = toks[j + 2].text.parse().ok();
                }
                j += 1;
            }
            if let (Some(name), Some(rank)) = (name, rank) {
                match manifest::class_by_name(&name) {
                    Some(decl) if decl.rank == rank => {}
                    Some(decl) => out.push(Finding {
                        file: ctx.file.to_string(),
                        line: toks[i].line,
                        rule: "lockdep-sync",
                        message: format!(
                            "lockdep class `{}` has rank {} but the LOCK_ORDER manifest says {}",
                            name, rank, decl.rank
                        ),
                    }),
                    None => out.push(Finding {
                        file: ctx.file.to_string(),
                        line: toks[i].line,
                        rule: "lockdep-sync",
                        message: format!(
                            "lockdep class `{}` is not declared in the LOCK_ORDER manifest",
                            name
                        ),
                    }),
                }
            }
        }
    }
}

/// Does a guard acquired at `dot` inside the statement spanning
/// `[start, dot)` live past the statement's terminator?
///
/// - `if let` / `while let` / `match` scrutinee temporaries survive the
///   whole construct under Rust 2021 drop rules, so any guard in the
///   scrutinee is block-scoped even when a chained call consumes it.
/// - A plain `let` block-scopes the guard only when the guard itself is
///   what gets bound: `.lock()` ending the chain (modulo guard-preserving
///   adapters like `unwrap`). A chain that continues past `.lock()`
///   consumes the guard as a temporary, which dies at the `;`.
fn guard_is_block_scoped(toks: &[Tok], start: usize, dot: usize) -> bool {
    let mut saw_let = false;
    for t in &toks[start..dot.min(toks.len())] {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "if" | "while" | "match" => return true,
            "let" => saw_let = true,
            _ => {}
        }
    }
    if !saw_let {
        return false;
    }
    // `.lock ( )` occupies dot..dot+3; inspect what follows the guard.
    let mut j = dot + 4;
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            // `?` propagates without consuming the guard value's identity.
            Some("?") => j += 1,
            Some(".") => {
                // Guard-preserving adapters yield the guard back to the
                // `let`; anything else consumes it as a temporary.
                return toks.get(j + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
                });
            }
            _ => return true,
        }
    }
}
